#!/usr/bin/env python
"""Quickstart: compile, deploy, and run Xar-Trek on the paper's testbed.

Builds the full system for the paper's five benchmarks, runs one
application per system mode under a medium server load, and prints
where the scheduler placed each function and what it bought.

Run: ``python examples/quickstart.py``
"""

from repro import PAPER_BENCHMARKS, SystemMode, build_system
from repro.experiments import MODE_LABELS, percent_gain

APP = "digit.2000"  # fastest on the FPGA (Table 1)
BACKGROUND = 54  # MG-B load generators -> medium load (60 processes)


def run_once(mode: SystemMode) -> tuple[float, list]:
    """One run of APP under `mode` with background load; returns time+targets."""
    runtime = build_system(PAPER_BENCHMARKS, seed=7)
    load = runtime.launch_background(BACKGROUND)
    # `functional=True` also executes the real KNN digit classifier and
    # verifies the result — migration never changes the answer.
    done = runtime.launch(APP, mode=mode, functional=True, delay_s=0.05)
    record = runtime.platform.sim.run_until_event(done)
    load.stop()
    assert record.verified, "functional verification failed"
    return record.elapsed_s, record.targets


def main() -> None:
    print(f"Application: {APP}, background load: {BACKGROUND} processes\n")
    times = {}
    for mode in (SystemMode.VANILLA_X86, SystemMode.ALWAYS_FPGA, SystemMode.XAR_TREK):
        elapsed, targets = run_once(mode)
        times[mode] = elapsed
        placed = ", ".join(str(t) for t in targets) or "-"
        print(f"{MODE_LABELS[mode]:20s} {elapsed * 1e3:9.1f} ms   function ran on: {placed}")

    gain = percent_gain(times[SystemMode.VANILLA_X86], times[SystemMode.XAR_TREK])
    print(f"\nXar-Trek gain over Vanilla Linux/x86: {gain:.0f}%")
    print("(The paper reports 88%-1% gains at medium load, Figure 4.)")


if __name__ == "__main__":
    main()
