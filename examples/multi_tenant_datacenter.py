#!/usr/bin/env python
"""A multi-tenant server under a workload spike — the paper's motivation.

Tenants submit a stream of compute-intensive applications to the x86
host while a batch of MG-B jobs (another tenant) hogs the CPUs. Runs
the same trace under all four systems and reports average completion
time, where functions executed, and what the scheduler did.

Run: ``python examples/multi_tenant_datacenter.py``
"""

import numpy as np

from repro import PAPER_BENCHMARKS, SystemMode, build_system
from repro.experiments import MODE_LABELS, percent_gain

N_TENANT_APPS = 20
BACKGROUND = 40
ARRIVAL_SPACING_S = 0.5
SEED = 11


def tenant_trace() -> list[tuple[str, float]]:
    """A deterministic arrival trace: (application, arrival time)."""
    rng = np.random.default_rng(SEED)
    apps = rng.choice(PAPER_BENCHMARKS, size=N_TENANT_APPS)
    arrivals = np.cumsum(rng.exponential(ARRIVAL_SPACING_S, size=N_TENANT_APPS))
    return [(str(app), float(t)) for app, t in zip(apps, arrivals)]


def run_trace(mode: SystemMode) -> dict:
    runtime = build_system(PAPER_BENCHMARKS, seed=SEED)
    load = runtime.launch_background(BACKGROUND)
    events = [
        runtime.launch(app, seed=i, mode=mode, delay_s=at)
        for i, (app, at) in enumerate(tenant_trace())
    ]
    records = runtime.wait_all(events)
    load.stop()
    targets: dict[str, int] = {}
    for rec in records:
        for tgt in rec.targets:
            targets[str(tgt)] = targets.get(str(tgt), 0) + 1
    return {
        "avg_s": float(np.mean([r.elapsed_s for r in records])),
        "p95_s": float(np.percentile([r.elapsed_s for r in records], 95)),
        "targets": targets,
        "stats": runtime.server.stats if mode is SystemMode.XAR_TREK else None,
    }


def main() -> None:
    print(
        f"{N_TENANT_APPS} tenant applications arriving over "
        f"~{N_TENANT_APPS * ARRIVAL_SPACING_S:.0f}s, "
        f"{BACKGROUND} background MG-B processes\n"
    )
    results = {}
    for mode in (
        SystemMode.VANILLA_X86,
        SystemMode.VANILLA_ARM,
        SystemMode.ALWAYS_FPGA,
        SystemMode.XAR_TREK,
    ):
        results[mode] = run_trace(mode)
        r = results[mode]
        print(
            f"{MODE_LABELS[mode]:20s} avg {r['avg_s'] * 1e3:9.1f} ms   "
            f"p95 {r['p95_s'] * 1e3:9.1f} ms   placements {r['targets']}"
        )

    base = results[SystemMode.VANILLA_X86]["avg_s"]
    xar = results[SystemMode.XAR_TREK]["avg_s"]
    print(f"\nXar-Trek gain over Vanilla Linux/x86: {percent_gain(base, xar):.0f}%")

    stats = results[SystemMode.XAR_TREK]["stats"]
    print(
        f"Scheduler: {stats.requests} requests, decisions by rule: {stats.by_rule}, "
        f"reconfigurations started: {stats.reconfigurations_started}"
    )


if __name__ == "__main__":
    main()
