#!/usr/bin/env python
"""Transparent migration: the kernel's answer never depends on where it ran.

Demonstrates the two substrates that make migration *transparent*:

1. The Popcorn state transformation: a thread halted at a migration
   point is re-encoded from x86-64 register/stack layout to AArch64 and
   back, bit-for-bit.
2. The functional workloads: the selected function (here the KNN digit
   classifier and the face detector) is a pure computation — running
   it "on x86", "on ARM", or "on the FPGA" in the simulation yields
   identical results, which this script checks explicitly.

Run: ``python examples/transparent_migration.py``
"""

import numpy as np

from repro.core import SystemMode, build_system
from repro.popcorn import (
    CType,
    LivenessMetadata,
    MachineState,
    MigrationPoint,
    StateTransformer,
    allocate_locations,
)
from repro.types import Target
from repro.workloads import create_workload


def demo_state_transformation() -> None:
    print("=== Popcorn cross-ISA state transformation ===")
    live_vars = allocate_locations(
        [("i", CType.I32), ("n", CType.I64), ("buf", CType.PTR),
         ("acc", CType.F64), ("stride", CType.I64), ("lo", CType.I64),
         ("hi", CType.I64)]
    )
    point = MigrationPoint(1, "conj_grad", 0x40, tuple(live_vars))
    transformer = StateTransformer(LivenessMetadata([point]))

    values = {"i": 41, "n": 1 << 40, "buf": 0x7F00_1234_5000,
              "acc": 2.718281828, "stride": 8, "lo": 0, "hi": 13999}
    frame = transformer.build_frame("conj_grad", point, values, "x86_64")
    state = MachineState(isa="x86_64", frames=[frame])

    print(f"x86-64 layout : regs={sorted(frame.registers)} "
          f"stack-slots={sorted(frame.stack)}")
    on_arm = transformer.transform(state, "aarch64")
    arm_frame = on_arm.frames[0]
    print(f"AArch64 layout: regs={sorted(arm_frame.registers)} "
          f"stack-slots={sorted(arm_frame.stack)}")

    back = transformer.transform(on_arm, "x86_64")
    assert back.frames[0].registers == frame.registers
    assert back.frames[0].stack == frame.stack
    recovered = transformer.read_live_values(arm_frame, "aarch64")
    assert recovered == values
    print("Round trip x86_64 -> aarch64 -> x86_64: bit-for-bit identical.\n")


def demo_functional_equivalence() -> None:
    print("=== Functional equivalence across targets ===")
    for app in ("digit.500", "facedet.320", "bfs.500"):
        workload = create_workload(app)
        inp = workload.generate_input(seed=3)
        reference = workload.run_kernel(inp)
        # "Run on each target": the simulated placement never touches the
        # computation, so re-running must match the reference exactly.
        for target in (Target.X86, Target.ARM, Target.FPGA):
            output = workload.run_kernel(inp)
            if isinstance(reference, np.ndarray):
                assert np.array_equal(output, reference)
            else:
                assert output == reference
        assert workload.verify(inp, reference)
        print(f"  {app:12s} identical output on x86 / ARM / FPGA  (verified)")
    print()


def demo_simulated_migration() -> None:
    print("=== A run that actually migrates (forced to ARM) ===")
    runtime = build_system(["digit.500"])
    entry = runtime.server.thresholds.entry("digit.500")
    entry.arm_threshold = 0.0  # force: any load justifies ARM
    entry.fpga_threshold = float("inf")
    done = runtime.launch("digit.500", mode=SystemMode.XAR_TREK, functional=True)
    record = runtime.platform.sim.run_until_event(done)
    assert record.verified and record.targets == [Target.ARM]
    dsm = runtime.dsm
    print(f"  migrations: {record.migrations} (there and back), "
          f"DSM pages moved: {dsm.stats.page_transfers}, "
          f"bytes on the wire: {dsm.stats.bytes_transferred / 1e6:.2f} MB")
    print(f"  end-to-end: {record.elapsed_s * 1e3:.1f} ms "
          f"(paper Table 1: 2281 ms for digit.500 x86->ARM)")


if __name__ == "__main__":
    demo_state_transformation()
    demo_functional_equivalence()
    demo_simulated_migration()
