#!/usr/bin/env python
"""Time-varying load: does the scheduler track a wave-shaped spike?

A background process count waves 10 -> 100 -> 10 while the multi-image
face-detection service runs back-to-back 30-second windows. Prints the
per-window throughput next to the load the window saw, showing the
scheduler switching x86 -> FPGA as the wave rises and back as it falls
(a compressed version of the paper's Figure 8 setup).

Run: ``python examples/periodic_datacenter.py``
"""

from repro import SystemMode, build_system
from repro.experiments.periodic import WaveLoad
from repro.types import Target

WINDOW_S = 30.0
N_WINDOWS = 8
FRAME_S = WINDOW_S * N_WINDOWS


def main() -> None:
    runtime = build_system(["facedet.320"], seed=5)
    wave = WaveLoad(
        runtime, low=10, high=100, period_s=FRAME_S, duration_s=FRAME_S, step_s=5.0
    )
    events = []
    for window in range(N_WINDOWS):
        events.append(
            runtime.launch(
                "facedet.320",
                seed=window,
                mode=SystemMode.XAR_TREK,
                calls=1000,
                deadline_s=WINDOW_S,
                delay_s=window * WINDOW_S + 0.01,
            )
        )
    records = runtime.wait_all(events)
    wave.stop()

    print(f"{'window':>6s} {'wave load':>10s} {'imgs/s':>8s} {'on FPGA':>8s} {'on x86':>7s}")
    for window, rec in enumerate(records):
        mid = window * WINDOW_S + WINDOW_S / 2
        load = wave.target_at(mid)
        fpga = sum(1 for t in rec.targets if t is Target.FPGA)
        x86 = sum(1 for t in rec.targets if t is Target.X86)
        print(
            f"{window:6d} {load:10d} {rec.calls_completed / WINDOW_S:8.2f} "
            f"{fpga:8d} {x86:7d}"
        )
    print(
        "\nThe scheduler stays on x86 while the host is cool and moves the "
        "kernel to the FPGA past the threshold — then comes back."
    )


if __name__ == "__main__":
    main()
