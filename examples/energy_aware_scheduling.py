#!/usr/bin/env python
"""Energy-aware scheduling — the paper's Section 5 extension, running.

The paper optimizes performance only, noting that power optimization
would need metrics like performance-per-watt or energy-delay product
(EDP) and ThunderX-class ARM CPUs are not power-efficient — but the
*per-core* watts still differ wildly across the three targets. This
example runs the same workload under three policies and prints the
time/energy frontier:

* the paper's Algorithm 2 threshold heuristic (performance-oriented);
* a cost-model policy (explicit time minimization);
* EDP-minimizing energy-aware scheduling.

Run: ``python examples/energy_aware_scheduling.py``
"""

from repro.core import (
    SystemMode,
    build_system,
    cost_model_policy,
    energy_aware_policy,
    marginal_run_energy,
)
from repro.hardware import PowerModel
from repro.workloads import all_profiles, profile_for

APPS = ["digit.2000", "facedet.640", "digit.500"]
BACKGROUND = 40


def run_policy(name: str, policy) -> None:
    runtime = build_system(APPS, seed=9, policy=policy)
    runtime.platform.sim.run_until_event(runtime.preload_fpga())
    model = PowerModel()
    load = runtime.launch_background(BACKGROUND, work_s=120.0)
    events = [
        runtime.launch(app, seed=i, mode=SystemMode.XAR_TREK, delay_s=0.01)
        for i, app in enumerate(APPS)
    ]
    records = runtime.wait_all(events)
    load.stop()

    avg_s = sum(r.elapsed_s for r in records) / len(records)
    # Marginal energy of the measured apps (host watts + target watts),
    # excluding the background load's consumption.
    energy_j = sum(
        marginal_run_energy(profile_for(r.app), r.dominant_target(), model)
        for r in records
    )
    placements = [str(t) for r in records for t in r.targets]
    print(
        f"{name:22s} avg {avg_s * 1e3:8.1f} ms   app energy {energy_j:7.1f} J   "
        f"EDP {energy_j * avg_s:8.1f} J*s   placements {placements}"
    )


def main() -> None:
    profiles = all_profiles()
    print(f"{len(APPS)} applications, {BACKGROUND} background processes\n")
    run_policy("Algorithm 2 heuristic", None)
    run_policy("cost model", cost_model_policy(profiles))
    run_policy("energy-aware (EDP)", energy_aware_policy(profiles, delay_exponent=1.0))
    run_policy("energy-only", energy_aware_policy(profiles, delay_exponent=0.0))
    print(
        "\nThe ARM server's ~0.85 W/core (vs the Xeon's ~10 W/core and the "
        "FPGA's ~40 W/kernel) makes it the energy haven; EDP policies "
        "trade completion time for joules, exactly the axis the paper "
        "leaves as future work."
    )


if __name__ == "__main__":
    main()
