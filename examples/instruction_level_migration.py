#!/usr/bin/env python
"""Instruction-level execution migration with the migratable VM.

The deepest transparency demo in the repository: a recursive factorial
runs on the VM whose variables live in *ISA-encoded* register/stack
slots. Mid-execution — at migration points, with several activation
frames on the stack — the thread hops between the x86-64 and AArch64
layouts. Every hop re-encodes every frame through the Popcorn state
transformer; the final answer must (and does) match the unmigrated run.

Run: ``python examples/instruction_level_migration.py``
"""

from repro.popcorn import MigratableVM, compile_minic

# MiniC source: the front end lexes, parses, and lowers this to the
# migratable IR, allocating every variable an ISA-specific location.
FACT_SOURCE = """
func fact(n) {
    migrate_point entry;          // cross-ISA-equivalent location
    if n <= 1 { return 1; }
    return n * fact(n - 1);       // recursion deepens the stack
}
"""


def main() -> None:
    compiled = compile_minic(FACT_SOURCE)
    n = 12

    reference = MigratableVM(compiled).run(n)
    print(f"fact({n}) without migration            = {reference}")

    hops = []

    def ping_pong(vm, _fn, _tag, _point):
        destination = "aarch64" if vm.isa == "x86_64" else "x86_64"
        hops.append((len(vm.state.frames), vm.isa, destination))
        vm.migrate(destination)

    vm = MigratableVM(compiled, migration_hook=ping_pong)
    migrated = vm.run(n)
    print(f"fact({n}) migrating at EVERY point     = {migrated}")
    print(f"migrations: {vm.migrations}, deepest stack migrated: "
          f"{max(depth for depth, _s, _d in hops)} frames")
    assert migrated == reference

    print("\nA few of the hops (stack depth, from -> to):")
    for depth, src, dst in hops[:6]:
        print(f"  depth {depth:2d}   {src:8s} -> {dst}")
    print(
        "\nEvery hop re-encoded every live frame between the two ABIs' "
        "register/stack layouts; a single mis-mapped slot would have "
        "corrupted the arithmetic."
    )


if __name__ == "__main__":
    main()
