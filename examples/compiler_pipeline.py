#!/usr/bin/env python
"""Walk the Xar-Trek compiler pipeline (Figure 1, steps A-G) explicitly.

Shows each intermediate artifact: the profiling spec text, the inserted
instrumentation call sites, the multi-ISA binary's aligned symbol
table, per-kernel HLS reports, the XCLBIN partitioning, and the final
threshold table.

Run: ``python examples/compiler_pipeline.py``
"""

from repro.compiler import (
    ProfilingSpec,
    XarTrekCompiler,
    instrument,
    kernel_ir_for,
    estimate,
)
from repro.hardware import ALVEO_U50

SPEC_TEXT = """\
# Step A's artifact: the (manual) profiling specification.
platform alveo-u50
application digit.2000
    function classify kernel=KNL_HW_DR200
application facedet.320
    function detect_faces kernel=KNL_HW_FD320
application cg.A
    function conj_grad kernel=KNL_HW_CG_A
"""


def main() -> None:
    print("=== Step A: profiling spec ===")
    spec = ProfilingSpec.parse(SPEC_TEXT)
    print(spec.to_text())

    print("=== Step B: instrumentation (inserted call sites) ===")
    inst = instrument(spec.application("digit.2000"))
    for site in inst.call_sites:
        print(f"  {site.location:30s} -> {site.kind}")
    print()

    print("=== Steps C-G: the full pipeline ===")
    result = XarTrekCompiler(ALVEO_U50).compile(spec)

    app = result.application("digit.2000")
    binary = app.compiled.binary
    print(f"Multi-ISA binary for digit.2000: {binary.size_bytes / 1e6:.2f} MB")
    for isa, image in sorted(binary.images.items()):
        print(
            f"  {isa:8s} text={image.text_bytes / 1e3:8.1f}kB "
            f"data={image.data_bytes / 1e3:6.1f}kB "
            f"metadata={image.metadata_bytes / 1e3:6.1f}kB"
        )
    print("Aligned symbols (same virtual address on every ISA):")
    for name, addr in binary.addresses.items():
        print(f"  {addr:#10x}  {name}")
    print(f"Migration points: {len(app.compiled.metadata)}")
    print()

    print("=== Step D: HLS reports ===")
    for kernel in ("KNL_HW_DR200", "KNL_HW_FD320", "KNL_HW_CG_A"):
        report = estimate(kernel_ir_for(kernel), ALVEO_U50)
        res = report.resources
        print(
            f"  {kernel:14s} LUT={res.lut:7d} DSP={res.dsp:4d} BRAM={res.bram:4d} "
            f"URAM={res.uram:3d}  latency={report.latency_seconds * 1e3:8.2f} ms "
            f"(II={report.ii})"
        )
    print()

    print("=== Steps E-F: XCLBIN partitioning ===")
    for name, image in result.xclbins.items():
        print(
            f"  {name}: kernels={list(image.kernel_names)} "
            f"size={image.size_bytes / 1e6:.1f} MB"
        )
    print()

    print("=== Step G: threshold table ===")
    print(result.thresholds.to_text())


if __name__ == "__main__":
    main()
