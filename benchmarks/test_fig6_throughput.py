"""Figure 6: face-detection throughput vs background load.

The modified multi-image face detection (1000 images, 60 s window)
under n = 0, 25, 50, 75, 100 background MG-B processes. Shape
requirements (Section 4.2):

* at n = 0 Xar-Trek matches Vanilla/x86 (no migration below the
  FPGA threshold) and x86 beats always-FPGA;
* beyond 25 background processes Xar-Trek migrates to the FPGA and
  the average gain over x86 is around 4x (paper: ~4x);
* Xar-Trek is never worse than always-FPGA — early configuration at
  application start hides the card setup the traditional flow pays.
"""

import numpy as np
import pytest

from repro.experiments import figure6_throughput


@pytest.mark.benchmark(group="fig6")
def test_fig6_throughput(report):
    result = report(figure6_throughput)

    x86 = dict(zip(result.column("background"), result.column("Vanilla Linux/x86 (img/s)")))
    fpga = dict(zip(result.column("background"), result.column("FPGA (img/s)")))
    xar = dict(zip(result.column("background"), result.column("Xar-Trek (img/s)")))

    # Low load: Xar-Trek == x86, and x86 beats always-FPGA.
    assert xar[0] == pytest.approx(x86[0], rel=0.02)
    assert x86[0] > fpga[0]

    # Hot host: Xar-Trek switches to the FPGA and wins big over x86.
    hot_gains = [xar[n] / x86[n] for n in (25, 50, 75, 100)]
    assert all(g > 1.5 for g in hot_gains)
    assert float(np.mean(hot_gains)) > 3.0  # paper: ~4x average

    # Never worse than the always-FPGA baseline at any point.
    for n in (0, 25, 50, 75, 100):
        assert xar[n] >= fpga[n] * 0.999
