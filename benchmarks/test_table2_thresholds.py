"""Table 2: threshold estimation (compiler step G).

Runs the estimation tool over the five calibrated profiles and compares
against the paper's thresholds. Shape requirements:

* FPGA_THR = 0 exactly for the benchmarks whose FPGA scenario beats an
  idle x86 (FaceDet640, Digit500, Digit2000);
* CG-A is the only benchmark with ARM_THR < FPGA_THR;
* every threshold lands within a few processes of the paper's value
  (the paper sweeps real process launches; we sweep the same
  processor-sharing relation).
"""

import pytest

from repro.experiments import table2_thresholds
from repro.workloads import PAPER_TABLE2


@pytest.mark.benchmark(group="table2")
def test_table2_thresholds(report):
    result = report(table2_thresholds)
    for row in result.rows:
        name, kernel, fpga_thr, arm_thr, paper_fpga, paper_arm = row
        assert kernel == PAPER_TABLE2[name][0]
        assert (fpga_thr == 0) == (paper_fpga == 0)
        assert (arm_thr < fpga_thr) == (paper_arm < paper_fpga)
        assert abs(fpga_thr - paper_fpga) <= 8
        assert abs(arm_thr - paper_arm) <= 8
