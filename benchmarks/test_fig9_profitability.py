"""Figure 9: Xar-Trek's profitability vs workload composition.

Fixed 120-process load; ten-application sets sweeping from 100%
compute-intensive (digit.2000 — fastest on the FPGA) to 100%
non-compute-intensive (CG-A — slowest on the FPGA). Shape requirements
(Section 4.4):

* Xar-Trek's gain over Vanilla/x86 declines monotonically (within
  noise) as the CG-A share grows;
* gains are large while compute-intensive applications dominate
  (paper: 26-32% across the mixed points; ours are larger because the
  simulated ARM server is otherwise idle — see EXPERIMENTS.md);
* the 100% CG-A point is the worst case for Xar-Trek.
"""

import pytest

from repro.experiments import figure9_profitability


@pytest.mark.benchmark(group="fig9")
def test_fig9_profitability(report):
    result = report(figure9_profitability)
    percentages = result.column("% CG-A")
    gains = result.column("gain (%)")

    # Mixed workloads dominated by compute-intensive apps: clear wins.
    for pct, gain in zip(percentages, gains):
        if pct <= 50:
            assert gain > 20.0

    # Profitability declines with the non-compute-intensive share.
    assert gains[0] == max(gains)
    assert gains[-1] == min(gains)
    # Broad monotone trend (adjacent noise tolerated, ends must order).
    assert gains[0] - gains[-1] > 5.0

    # 100% CG-A is the worst case for Xar-Trek in the sweep.
    assert percentages[-1] == 100
