"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one of the paper's tables or figures:
it runs the corresponding experiment under ``pytest-benchmark`` (one
round — these are simulations, wall-clock variance is not the point),
prints the regenerated rows/series next to the paper's numbers, and
asserts the paper's qualitative shape.

Run them all with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def run_and_report(benchmark, experiment_fn, *args, **kwargs):
    """Benchmark one experiment function and print its result table."""
    result = benchmark.pedantic(
        experiment_fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    return result


@pytest.fixture
def report(benchmark):
    """``report(fn, *args)`` -> ExperimentResult, benchmarked + printed."""

    def _run(experiment_fn, *args, **kwargs):
        return run_and_report(benchmark, experiment_fn, *args, **kwargs)

    return _run
