"""Figure 5: average execution time at high load (120 processes).

Same sets as Figure 4 but the background fills to 120 processes — more
than all 102 cores. Shape requirements:

* Xar-Trek beats Vanilla/x86 at every set size (the paper reports
  19-31% gains; our gains are larger because the simulated ARM server
  is otherwise idle — see EXPERIMENTS.md for the discussion);
* Vanilla/x86 degrades roughly 2x from the 60-process operating point
  (processor sharing: 120/60), which the bench cross-checks.
"""

import numpy as np
import pytest

from repro.experiments import figure4_medium_load, figure5_high_load
from repro.experiments.fixed_workload import gains_over


@pytest.mark.benchmark(group="fig5")
def test_fig5_high_load(report):
    result = report(figure5_high_load, repeats=10, seed=0)

    x86 = result.column("Vanilla Linux/x86 (ms)")
    xar = result.column("Xar-Trek (ms)")
    for x, xt in zip(x86, xar):
        assert xt < x
    gains = gains_over(result, "Vanilla Linux/x86", "Xar-Trek")
    assert min(gains) > 15.0  # at least the paper's floor (19%)

    # Cross-check the load model: doubling processes ~doubles the
    # x86-only time for the same sets.
    medium = figure4_medium_load(repeats=3, seed=0)
    medium_x86 = medium.column("Vanilla Linux/x86 (ms)")
    high = figure5_high_load(repeats=3, seed=0)
    high_x86 = high.column("Vanilla Linux/x86 (ms)")
    ratio = float(np.mean(np.array(high_x86) / np.array(medium_x86)))
    assert 1.6 < ratio < 2.6
