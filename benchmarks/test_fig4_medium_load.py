"""Figure 4: average execution time at medium load (60 processes).

Randomized sets of 5-25 applications plus MG-B background filling the
process count to 60 (more than the 6 x86 cores, fewer than the 102
total). Shape requirements:

* Xar-Trek beats Vanilla/x86 at every set size (paper: 88%-1% gains);
* Xar-Trek also beats the always-FPGA baseline on average — the
  scheduler avoids the FPGA for CG-A-like members where always-FPGA
  queues them onto a slow kernel.
"""

import numpy as np
import pytest

from repro.experiments import figure4_medium_load
from repro.experiments.fixed_workload import gains_over


@pytest.mark.benchmark(group="fig4")
def test_fig4_medium_load(report):
    result = report(figure4_medium_load, repeats=10, seed=0)

    x86 = result.column("Vanilla Linux/x86 (ms)")
    fpga = result.column("FPGA (ms)")
    xar = result.column("Xar-Trek (ms)")

    for x, xt in zip(x86, xar):
        assert xt < x  # positive gain everywhere

    gains = gains_over(result, "Vanilla Linux/x86", "Xar-Trek")
    assert max(gains) > 50.0  # the paper's large-gain end (88%)
    assert min(gains) > 0.0  # and no regressions (paper floor: 1%)

    assert float(np.mean(xar)) < float(np.mean(fpga))
