"""Benches for the paper's Section 5/7 extension directions.

Not figures from the paper — these quantify the future-work features
the reproduction implements on top of it:

* **FPGA space-sharing** (Section 7, cf. [28]): replicating compute
  units out of leftover area shortens the always-FPGA baseline's queues
  under the Figure 7 periodic workload.
* **Scheduling-policy comparison** (Section 5's "policies inspired by
  heuristics that balance power and performance"): the paper's
  threshold heuristic vs. an explicit cost model vs. EDP-minimizing
  energy-aware scheduling, reporting both time and joules.
"""

import numpy as np
import pytest

from repro.core import (
    SystemMode,
    build_system,
    cost_model_policy,
    energy_aware_policy,
    marginal_run_energy,
)
from repro.experiments import sample_application_set
from repro.hardware import PowerModel
from repro.workloads import PAPER_BENCHMARKS, all_profiles, profile_for


@pytest.mark.benchmark(group="ext-space-sharing")
def test_space_sharing_reduces_fpga_queueing(benchmark):
    """Four tenants hammering one hot kernel: replicated CUs parallelize
    what a single CU serializes."""

    def tenants_makespan(replicate: bool) -> float:
        runtime = build_system(
            PAPER_BENCHMARKS, seed=5, replicate_compute_units=replicate
        )
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        load = runtime.launch_background(40, work_s=120.0)
        events = [
            runtime.launch(
                "digit.2000", seed=i, mode=SystemMode.XAR_TREK, delay_s=0.01
            )
            for i in range(6)
        ]
        records = runtime.wait_all(events)
        load.stop()
        return max(r.end_s for r in records)

    def run():
        return tenants_makespan(False), tenants_makespan(True)

    single_cu, multi_cu = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n6 tenants on one kernel: single CU {single_cu:.2f} s, "
        f"replicated CUs {multi_cu:.2f} s "
        f"({(single_cu - multi_cu) / single_cu * 100:.0f}% faster)"
    )
    assert multi_cu < single_cu * 0.75


@pytest.mark.benchmark(group="ext-policies")
def test_policy_comparison_time_and_energy(benchmark):
    """One random 10-app set under medium load, three policies.

    Expected ordering: cost-model <= heuristic on time (it has strictly
    more information); energy-aware burns the fewest active joules but
    pays time for it.
    """
    profiles = all_profiles()
    policies = {
        "heuristic (Alg. 2)": None,
        "cost model": cost_model_policy(profiles),
        "energy-aware (EDP)": energy_aware_policy(profiles, delay_exponent=1.0),
    }

    def run_policy(policy):
        rng = np.random.default_rng(11)
        apps = sample_application_set(rng, 10)
        runtime = build_system(PAPER_BENCHMARKS, seed=11, policy=policy)
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        load = runtime.launch_background(45, work_s=120.0)
        events = [
            runtime.launch(app, seed=i, mode=SystemMode.XAR_TREK, delay_s=0.01)
            for i, app in enumerate(apps)
        ]
        records = runtime.wait_all(events)
        load.stop()
        model = PowerModel()
        return {
            "avg_s": float(np.mean([r.elapsed_s for r in records])),
            "active_j": sum(
                marginal_run_energy(profile_for(r.app), r.dominant_target(), model)
                for r in records
            ),
        }

    def run():
        return {name: run_policy(policy) for name, policy in policies.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, res in results.items():
        print(f"{name:20s} avg {res['avg_s'] * 1e3:9.1f} ms   active {res['active_j']:9.1f} J")

    heuristic = results["heuristic (Alg. 2)"]
    model = results["cost model"]
    green = results["energy-aware (EDP)"]

    # The cost model never loses to the heuristic by much (and usually wins).
    assert model["avg_s"] <= heuristic["avg_s"] * 1.05
    # EDP scheduling trades time for energy.
    assert green["active_j"] < heuristic["active_j"]
