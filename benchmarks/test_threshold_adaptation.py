"""Long-running threshold behaviour (Algorithm 1 over a deployment).

Not a paper figure — a longitudinal view of Section 3.3's mechanism
complementing the dynamic-threshold ablation (which shows the updater
*escaping* a bad table). Here the table starts *correct*: the check is
that Algorithm 1 refreshes the observed execution times with real
measurements while leaving good thresholds alone — no oscillation when
the placement is already optimal — and that load-inflated observations
are visible in the table afterwards.
"""

import pytest

from repro.core import SystemMode, build_system
from repro.types import Target
from repro.workloads import profile_for


@pytest.mark.benchmark(group="threshold-adaptation")
def test_threshold_table_refreshes_without_oscillating(benchmark):
    def run():
        runtime = build_system(["digit.2000"], seed=6)
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        entry = runtime.server.thresholds.entry("digit.2000")
        seed_observed_fpga = entry.observed(Target.FPGA)
        seeds = (entry.fpga_threshold, entry.arm_threshold)

        # Phase 1: idle host; FPGA_THR = 0 so every run uses the FPGA.
        for i in range(3):
            runtime.platform.sim.run_until_event(
                runtime.launch("digit.2000", seed=i, mode=SystemMode.XAR_TREK)
            )
        calm_observed = entry.observed(Target.FPGA)

        # Phase 2: a 50-process spike inflates the host-side portion of
        # even the FPGA scenario.
        load = runtime.launch_background(50, work_s=120.0)
        for i in range(4):
            runtime.platform.sim.run_until_event(
                runtime.launch("digit.2000", seed=10 + i, mode=SystemMode.XAR_TREK)
            )
        load.stop()
        return entry, seeds, seed_observed_fpga, calm_observed

    entry, seeds, seed_observed_fpga, calm_observed = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\nobserved FPGA time: seed {seed_observed_fpga * 1e3:.0f} ms -> calm "
        f"{calm_observed * 1e3:.0f} ms -> spike {entry.observed(Target.FPGA) * 1e3:.0f} ms"
    )

    # Observations were refreshed with real (simulated) measurements:
    # calm runs pay the ~100 us scheduler hop over the step-G seed, and
    # the spike inflates the x86-side host work visibly.
    profile = profile_for("digit.2000")
    assert calm_observed == pytest.approx(profile.x86_fpga_s, rel=0.01)
    assert entry.observed(Target.FPGA) > calm_observed * 1.2

    # The placement was optimal throughout (FPGA still beats the last
    # observed x86 time), so Algorithm 1 left the thresholds alone: no
    # oscillation under a correct table.
    assert (entry.fpga_threshold, entry.arm_threshold) == seeds
    assert entry.observed(Target.FPGA) < entry.observed(Target.X86)
