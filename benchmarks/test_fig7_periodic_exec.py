"""Figure 7: periodic workload, average execution time.

Thirty waves of 20 randomized applications, one wave every 30 s; the
overlap of slow waves sweeps the process count from medium toward high
and back. Shape requirements (Section 4.3):

* Xar-Trek beats Vanilla/x86 (paper: by 18%);
* Xar-Trek beats Vanilla/FPGA (paper: by 32%; in our model the
  always-FPGA baseline degrades further because CG-A waves pile up on
  its single compute unit — see EXPERIMENTS.md);
* Xar-Trek's gain over x86 here is *smaller* than its Figure 4
  medium-load gain — the load is not sustained (the paper's
  observation), which the bench cross-checks.
"""

import pytest

from repro.experiments import figure7_periodic_execution, figure4_medium_load
from repro.experiments.fixed_workload import gains_over
from repro.experiments.report import percent_gain


@pytest.mark.benchmark(group="fig7")
def test_fig7_periodic_execution(report):
    result = report(figure7_periodic_execution)
    times = {row[0]: row[1] for row in result.rows}

    x86 = times["Vanilla Linux/x86"]
    fpga = times["FPGA"]
    xar = times["Xar-Trek"]

    assert xar < x86
    assert xar < fpga

    periodic_gain = percent_gain(x86, xar)
    assert periodic_gain > 10.0  # paper: 18%

    # Not-sustained loads yield smaller gains than sustained medium load.
    sustained = figure4_medium_load(repeats=3, seed=0)
    sustained_gain = max(gains_over(sustained, "Vanilla Linux/x86", "Xar-Trek"))
    assert periodic_gain < sustained_gain
