"""Figure 10: size of binaries.

Per application, the artifact sizes of the three development processes:
traditional FPGA (x86 executable + XCLBIN), Popcorn (multi-ISA
executable), and Xar-Trek (both). Shape requirements (Section 4.5):

* Xar-Trek is always the largest — it subsumes both baselines;
* the relative increases fall in the paper's 33%-282% band
  (ours: roughly 20%-280%);
* Popcorn's CG-A binary is visibly larger than the other four (its
  900 LOC vs their 300-500).
"""

import pytest

from repro.experiments import figure10_binary_sizes


@pytest.mark.benchmark(group="fig10")
def test_fig10_binary_sizes(report):
    result = report(figure10_binary_sizes)

    popcorn = dict(zip(result.column("application"), result.column("Popcorn x86+ARM (MB)")))
    for row in result.rows:
        app, x86_fpga, pop, xar, inc_fpga, inc_pop = row
        assert xar > x86_fpga
        assert xar > pop
        # Increases within (a tolerant version of) the paper's band.
        assert 10.0 < inc_fpga < 320.0
        assert 10.0 < inc_pop < 320.0

    # CG-A's Popcorn binary stands out (LOC-driven).
    others = [size for app, size in popcorn.items() if app != "cg.A"]
    assert popcorn["cg.A"] > max(others) * 1.1
