"""Figure 3: average execution time at low load (< #x86 cores).

Randomized sets of 1-5 applications, no background load, 10 repeats,
all four systems. Shape requirements (Section 4.1):

* Xar-Trek tracks Vanilla/x86 closely — it correctly does *not*
  migrate when the host is cool;
* Vanilla/ARM is always the slowest system;
* Xar-Trek beats the always-FPGA baseline clearly on average (the
  paper reports 50-75% gains): always-FPGA collapses whenever a set
  contains an FPGA-hostile application (CG-A, FaceDet320).
"""

import numpy as np
import pytest

from repro.experiments import figure3_low_load
from repro.experiments.fixed_workload import gains_over


@pytest.mark.benchmark(group="fig3")
def test_fig3_low_load(report):
    result = report(figure3_low_load, repeats=10, seed=0)

    x86 = result.column("Vanilla Linux/x86 (ms)")
    arm = result.column("Vanilla Linux/ARM (ms)")
    fpga = result.column("FPGA (ms)")
    xar = result.column("Xar-Trek (ms)")

    # Xar-Trek ~= x86 at every set size (no useless migration).
    for x, xt in zip(x86, xar):
        assert xt == pytest.approx(x, rel=0.02)

    # Vanilla/ARM is always slowest.
    for row_arm, others in zip(arm, zip(x86, fpga, xar)):
        assert row_arm > min(others)
    assert np.mean(arm) > np.mean(x86) and np.mean(arm) > np.mean(xar)

    # Xar-Trek beats always-FPGA on average (paper: 50-75%).
    mean_gain = float(np.mean(gains_over(result, "FPGA", "Xar-Trek")))
    assert mean_gain > 25.0
