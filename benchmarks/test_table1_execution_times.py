"""Table 1: benchmark execution times under each migration scenario.

Regenerates the paper's Table 1 by running each benchmark alone in the
simulated testbed: vanilla x86, x86 with the function on the FPGA
(card preconfigured), and x86 with the function migrated to ARM via
Popcorn. Shape requirements (all from Section 4):

* every scenario time lands within 2% of the paper's measurement
  (the profiles are calibrated; the DES adds only protocol overheads);
* the FPGA wins for FaceDet640 / Digit500 / Digit2000 and loses for
  CG-A / FaceDet320;
* ARM in isolation is always slower than x86;
* CG-A is the only benchmark where ARM beats the FPGA.
"""

import pytest

from repro.experiments import table1_execution_times
from repro.workloads import PAPER_BENCHMARKS, PAPER_TABLE1_MS


@pytest.mark.benchmark(group="table1")
def test_table1_execution_times(report):
    result = report(table1_execution_times)
    rows = {row[0]: row for row in result.rows}

    for name in PAPER_BENCHMARKS:
        _, x86_ms, fpga_ms, arm_ms, _paper = rows[name]
        paper_x86, paper_fpga, paper_arm = PAPER_TABLE1_MS[name]
        assert x86_ms == pytest.approx(paper_x86, rel=0.02)
        assert fpga_ms == pytest.approx(paper_fpga, rel=0.02)
        assert arm_ms == pytest.approx(paper_arm, rel=0.02)
        # ARM is always the slowest isolated option vs x86.
        assert arm_ms > x86_ms
        # FPGA wins exactly where the paper says it does.
        assert (fpga_ms < x86_ms) == (paper_fpga < paper_x86)
        # CG-A is the only ARM-beats-FPGA benchmark.
        assert (arm_ms < fpga_ms) == (name == "cg.A")
