"""Table 4: BFS execution time on x86 vs FPGA.

Runs the real BFS traversal per graph size (functional check) and
reports the modelled per-target times. Shape requirements:

* x86 beats the FPGA by more than an order of magnitude at every size
  (pointer chasing defeats the PCIe-attached FPGA — Section 4.4);
* both columns reproduce the paper's values;
* the 5000-node graph is the largest the Alveo U50's on-chip memory
  model accepts with headroom — the paper could not fit larger ones,
  and the HLS model's buffer bound grows toward the device limit.
"""

import pytest

from repro.compiler import estimate, kernel_ir_for
from repro.experiments import table4_bfs
from repro.hardware import ALVEO_U50
from repro.workloads import PAPER_TABLE4_MS


@pytest.mark.benchmark(group="table4")
def test_table4_bfs(report):
    result = report(table4_bfs)
    for row in result.rows:
        nodes, x86_ms, fpga_ms, paper_x86, paper_fpga, traversal_ok = row
        assert traversal_ok is True
        assert fpga_ms > 10 * x86_ms
        assert x86_ms == pytest.approx(PAPER_TABLE4_MS[nodes][0], rel=0.01)
        assert fpga_ms == pytest.approx(PAPER_TABLE4_MS[nodes][1], rel=0.01)

    # The threshold-estimation consequence the paper draws: no
    # reasonable load justifies migrating BFS to the FPGA.
    from repro.compiler import estimate_thresholds
    from repro.workloads import profile_for

    # "Will likely not find a reasonable CPU load that would justify
    # migrating to the FPGA": the estimated threshold exceeds 100
    # processes (the x86 would have to be ~19x oversubscribed).
    table = estimate_thresholds([profile_for("bfs.5000")], max_load=128)
    assert table.entry("bfs.5000").fpga_threshold > 100

    # On-chip capacity pressure grows with graph size (the U50 limit).
    small = estimate(kernel_ir_for("KNL_HW_BFS1000"), ALVEO_U50)
    large = estimate(kernel_ir_for("KNL_HW_BFS5000"), ALVEO_U50)
    budget = ALVEO_U50.usable_resources
    assert large.resources.max_fraction_of(budget) > small.resources.max_fraction_of(
        budget
    )
