"""Microbenchmarks of the hot substrate operations.

Unlike the table/figure benches (single-shot simulations), these
exercise pytest-benchmark properly — many rounds of the operations that
dominate experiment wall-clock: the cross-ISA state transformation, the
DES event loop, processor-sharing job churn, and the two functional
kernels the examples run.
"""

import numpy as np
import pytest

from repro.popcorn import (
    CType,
    LivenessMetadata,
    MachineState,
    MigrationPoint,
    StateTransformer,
    allocate_locations,
)
from repro.sim import Simulator
from repro.hardware.sharing import FairShareServer
from repro.workloads.digit_recognition import classify, generate_dataset
from repro.workloads.face_detection import detect_faces
from repro.workloads.images import generate_face_image


@pytest.fixture(scope="module")
def transform_state():
    live_vars = allocate_locations(
        [(f"v{i}", t) for i, t in enumerate(
            [CType.I64, CType.I32, CType.PTR, CType.F64] * 3
        )]
    )
    point = MigrationPoint(1, "kernel", 0, tuple(live_vars))
    transformer = StateTransformer(LivenessMetadata([point]))
    values = {
        var.name: (1.5 if CType.is_float(var.ctype) else 7)
        for var in point.live_vars
    }
    frame = transformer.build_frame("kernel", point, values, "x86_64")
    return transformer, MachineState(isa="x86_64", frames=[frame] * 4)


@pytest.mark.benchmark(group="micro-transform")
def test_state_transformation_throughput(benchmark, transform_state):
    transformer, state = transform_state
    result = benchmark(lambda: transformer.transform(state, "aarch64"))
    assert result.isa == "aarch64"


@pytest.mark.benchmark(group="micro-des")
def test_des_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.call_in(0.001, tick)

        sim.call_in(0.001, tick)
        sim.run()
        return count[0]

    assert benchmark(run_10k_events) == 10_000


@pytest.mark.benchmark(group="micro-ps")
def test_processor_sharing_churn(benchmark):
    """1000 staggered jobs on a 6-way PS server: the Figure 4/5 hot path."""

    def run():
        sim = Simulator()
        server = FairShareServer(sim, "cpu", capacity=6, job_cap=1.0)
        for i in range(1000):
            sim.call_in(i * 0.01, lambda: server.submit(0.5))
        sim.run()
        return server.active_jobs

    assert benchmark(run) == 0


@pytest.mark.benchmark(group="micro-facedet")
def test_face_detection_kernel(benchmark):
    rng = np.random.default_rng(0)
    image, truths = generate_face_image(320, 240, 5, rng)
    detections = benchmark(lambda: detect_faces(image))
    assert len(detections) >= 4


@pytest.mark.benchmark(group="micro-digit")
def test_digit_recognition_kernel(benchmark):
    data = generate_dataset(2000, 500, seed=0)
    predictions = benchmark(
        lambda: classify(data.test, data.train, data.train_labels, k=3)
    )
    assert (predictions == data.test_labels).mean() > 0.9
