"""Ablations of the design choices DESIGN.md calls out.

Each bench disables one mechanism and shows the paper-claimed benefit
disappearing:

* early FPGA configuration at application start (Section 3.1; behind
  Figure 6's win over always-FPGA);
* Algorithm 1's dynamic threshold refinement (Section 3.3): with a
  stale/incorrect threshold table, the scheduler keeps making the same
  bad placement forever without it;
* the scheduler's client/server hop cost: gains survive realistic
  socket latencies (sensitivity, not a mechanism toggle).
"""

import pytest

from repro.core import SystemMode, build_system
from repro.types import Target


def window_run(mode: SystemMode, background: int = 50):
    """One 30 s face-detection window; returns the RunRecord + first-image time."""
    runtime = build_system(["facedet.320"], seed=3)
    load = runtime.launch_background(background, work_s=60.0)
    record = runtime.platform.sim.run_until_event(
        runtime.launch(
            "facedet.320", mode=mode, calls=500, deadline_s=30.0, delay_s=0.01,
        )
    )
    load.stop()
    return record


@pytest.mark.benchmark(group="ablation-early-config")
def test_ablation_hidden_vs_synchronous_configuration(benchmark):
    """The paper's Figure 6 note: Xar-Trek configures the FPGA at
    application start and keeps serving calls on CPUs while the
    multi-second XCLBIN download runs; the traditional always-FPGA flow
    blocks its first invocation on a synchronous configuration. Over a
    throughput window Xar-Trek therefore comes out ahead of the
    always-FPGA baseline even though both end up on the same kernel."""

    def run():
        return window_run(SystemMode.XAR_TREK), window_run(SystemMode.ALWAYS_FPGA)

    xar, fpga = benchmark.pedantic(run, rounds=1, iterations=1)
    xar_cpu_calls = sum(1 for t in xar.targets if t is not Target.FPGA)
    print(
        f"\nXar-Trek (hidden config)     : {xar.calls_completed / 30.0:.2f} img/s "
        f"({xar_cpu_calls} early calls served on CPUs)"
        f"\nalways-FPGA (blocking config): {fpga.calls_completed / 30.0:.2f} img/s"
    )
    # Xar-Trek serves the configuration window from CPUs instead of
    # blocking, so it processes at least as many images.
    assert xar.calls_completed >= fpga.calls_completed
    assert xar_cpu_calls >= 1
    # Both converge to the FPGA once the kernel is resident.
    assert xar.targets[-1] is Target.FPGA
    assert fpga.targets[-1] is Target.FPGA


@pytest.mark.benchmark(group="ablation-dynamic-thresholds")
def test_ablation_dynamic_threshold_refinement(benchmark):
    """Start from a *wrong* threshold table that sends CG-A to the FPGA
    (its worst target). Algorithm 1 observes fpga_exec > x86_exec and
    raises FPGA_THR until the policy flips to ARM; with the updater
    disabled the system repeats the bad placement forever."""

    def run_sequence(dynamic: bool) -> list:
        runtime = build_system(
            ["cg.A"], seed=1, dynamic_thresholds=dynamic,
            threshold_increase_step=8.0,
        )
        entry = runtime.server.thresholds.entry("cg.A")
        entry.fpga_threshold = 0.0  # stale/corrupt estimate
        entry.arm_threshold = 24.0
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        load = runtime.launch_background(30, work_s=600.0)
        records = []
        for i in range(6):
            records.append(
                runtime.platform.sim.run_until_event(
                    runtime.launch("cg.A", seed=i, mode=SystemMode.XAR_TREK)
                )
            )
        load.stop()
        return records

    def run():
        return run_sequence(dynamic=True), run_sequence(dynamic=False)

    with_updates, without_updates = benchmark.pedantic(run, rounds=1, iterations=1)

    static_targets = [r.targets[0] for r in without_updates]
    dynamic_targets = [r.targets[0] for r in with_updates]
    print(f"\nstatic table : {[str(t) for t in static_targets]}")
    print(f"dynamic table: {[str(t) for t in dynamic_targets]}")

    # Static table repeats the bad FPGA placement forever.
    assert all(t is Target.FPGA for t in static_targets)
    # Algorithm 1 escapes the lock-in: later runs explore other targets.
    assert any(t is not Target.FPGA for t in dynamic_targets)
    # And exploring pays on average across the sequence. (Algorithm 1
    # keeps comparing against the last *observed* x86 time, so it
    # oscillates rather than converging — exactly the paper's
    # pseudocode — but the mean still improves.)
    mean_dynamic = sum(r.elapsed_s for r in with_updates) / len(with_updates)
    mean_static = sum(r.elapsed_s for r in without_updates) / len(without_updates)
    assert mean_dynamic < mean_static


@pytest.mark.benchmark(group="ablation-socket-latency")
def test_ablation_scheduler_latency_sensitivity(benchmark):
    """The client/server hop is ~100 us; gains survive even millisecond
    sockets because function runtimes are tens of milliseconds+."""

    def time_with_latency(latency_s: float) -> float:
        runtime = build_system(["digit.2000"], seed=2)
        runtime.server.socket_latency_s = latency_s
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        load = runtime.launch_background(40, work_s=120.0)
        record = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK, delay_s=0.01)
        )
        load.stop()
        return record.elapsed_s

    def run():
        return {lat: time_with_latency(lat) for lat in (50e-6, 1e-3, 10e-3)}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + "\n".join(f"socket {lat * 1e3:6.2f} ms -> {t * 1e3:9.1f} ms" for lat, t in times.items()))
    # Monotone but marginal: 10 ms of socket adds ~20 ms to a ~1.2 s run.
    assert times[10e-3] < times[50e-6] * 1.05
