#!/usr/bin/env python
"""Standalone entry point for the wall-clock benchmark harness.

Equivalent to ``python -m repro bench``; exists so the perf trajectory
can be driven straight from the benchmarks directory:

    PYTHONPATH=src python benchmarks/wallclock.py --quick
    PYTHONPATH=src python benchmarks/wallclock.py --baseline BENCH_wallclock.json
    PYTHONPATH=src python benchmarks/wallclock.py --jobs 4   # report_sweep workers

The timing machinery lives in :mod:`repro.experiments.wallclock`; the
emitted ``BENCH_wallclock.json`` is documented in docs/performance.md.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
