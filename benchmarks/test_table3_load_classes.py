"""Table 3: the CPU-load class definition.

Regenerates the low/medium/high classification for the paper's 102-core
testbed and checks the boundaries the experiments rely on: Figure 3
runs below 6 processes (low), Figure 4 at 60 (medium), Figure 5 at 120
(high).
"""

import pytest

from repro.experiments import LoadClass, classify_load, table3_load_classes


@pytest.mark.benchmark(group="table3")
def test_table3_load_classes(report):
    result = report(table3_load_classes)
    assert [row[0] for row in result.rows] == [
        LoadClass.LOW,
        LoadClass.MEDIUM,
        LoadClass.HIGH,
    ]
    # The experiment operating points of Figures 3-5.
    assert classify_load(5) == LoadClass.LOW
    assert classify_load(60) == LoadClass.MEDIUM
    assert classify_load(120) == LoadClass.HIGH
    # Boundaries at the testbed's core counts.
    assert classify_load(6) == LoadClass.MEDIUM
    assert classify_load(102) == LoadClass.MEDIUM
    assert classify_load(103) == LoadClass.HIGH
