"""Figure 8: face-detection throughput under a periodic load wave.

Background load waves between 10 and 120 processes over ~35 minutes
while ten 60-second face-detection windows run. Shape requirements
(Section 4.3):

* Xar-Trek beats Vanilla/x86 by a wide margin (paper: 175%);
* Xar-Trek also beats Vanilla/FPGA (paper: 50%) — it serves the
  low-load phases from the (faster-there) x86 and the high-load phases
  from the FPGA;
* the gains are smaller than the sustained-load Figure 6 gaps.
"""

import pytest

from repro.experiments import figure8_periodic_throughput


@pytest.mark.benchmark(group="fig8")
def test_fig8_periodic_throughput(report):
    result = report(figure8_periodic_throughput)
    tput = {row[0]: row[1] for row in result.rows}

    x86 = tput["Vanilla Linux/x86"]
    fpga = tput["FPGA"]
    xar = tput["Xar-Trek"]

    assert xar > x86 * 1.5  # paper: +175%
    assert xar >= fpga  # paper: +50%; ours is a smaller but real edge
    assert fpga > x86  # the always-FPGA baseline still beats pure x86
