"""Environment-sensitivity benches (see EXPERIMENTS.md's divergence notes).

These quantify how much each modelling assumption carries: ARM
capacity, background duty cycle, XCLBIN programming time, and Ethernet
bandwidth. They double as the evidence base for the Figure 5/6
divergence discussion.
"""

import pytest

from repro.experiments import (
    arm_capacity_sensitivity,
    background_duty_sensitivity,
    interconnect_sensitivity,
    reconfig_time_sensitivity,
)


@pytest.mark.benchmark(group="sens-arm")
def test_arm_capacity_sensitivity(report):
    result = report(arm_capacity_sensitivity, repeats=3)
    gains = result.column("gain (%)")
    # Finding: flat in ARM capacity (the FPGA carries the gain).
    assert max(gains) - min(gains) < 10.0
    assert all(g > 50.0 for g in gains)


@pytest.mark.benchmark(group="sens-duty")
def test_background_duty_sensitivity(report):
    result = report(background_duty_sensitivity, repeats=3)
    by_duty = {row[0]: row for row in result.rows}
    # A memory-bound background dilates the x86 baseline less...
    assert by_duty[0.25][1] < by_duty[1.0][1]
    # ...and shaves the gain, but only by a few points.
    assert by_duty[0.25][3] < by_duty[1.0][3]
    assert by_duty[1.0][3] - by_duty[0.25][3] < 15.0


@pytest.mark.benchmark(group="sens-reconfig")
def test_reconfig_time_sensitivity(report):
    result = report(reconfig_time_sensitivity)
    advantages = result.column("Xar-Trek advantage (%)")
    # Hiding configuration is worth more the longer programming takes.
    assert advantages == sorted(advantages)
    assert advantages[-1] > advantages[0]
    assert all(a >= 0 for a in advantages)


@pytest.mark.benchmark(group="sens-interconnect")
def test_interconnect_sensitivity(report):
    result = report(interconnect_sensitivity)
    for row in result.rows:
        name, slow, paper_speed, fast = row[0], row[1], row[2], row[3]
        # Faster links can only lower (or keep) the migration threshold.
        assert fast <= paper_speed <= slow
        # Compute-dominated workloads: the whole sweep moves by at most
        # a few processes.
        assert slow - fast <= 4
