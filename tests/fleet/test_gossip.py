"""The gossip plane: round-0 publish, periodic refresh, bounded
staleness, and the load-digest score model."""

import pytest

from repro.fleet import FleetConfig, FleetDeployment, GossipError, LoadDigest
from repro.fleet.gossip import RECONFIGURING_PENALTY, GossipBus
from repro.metrics import MetricsRegistry
from repro.sim import Simulator

pytestmark = pytest.mark.metrics

APPS = ("digit.2000",)


def _digest(**overrides):
    base = dict(
        node="node0",
        index=0,
        published_at=0.0,
        x86_active=0.0,
        arm_active=0.0,
        fpga_active=0.0,
        fpga_reconfiguring=False,
    )
    base.update(overrides)
    return LoadDigest(**base)


class TestLoadDigest:
    def test_score_sums_all_three_targets(self):
        digest = _digest(x86_active=2.0, arm_active=1.0, fpga_active=3.0)
        assert digest.score == 6.0

    def test_reconfiguring_card_is_penalized(self):
        busy = _digest(fpga_reconfiguring=True)
        assert busy.score == RECONFIGURING_PENALTY
        assert _digest().score == 0.0


class TestGossipBus:
    def test_reading_before_round_zero_raises(self):
        sim = Simulator()
        bus = GossipBus(sim, [], 1.0, MetricsRegistry(clock=lambda: sim.now))
        with pytest.raises(GossipError, match="start"):
            bus.digest(0)

    def test_interval_must_be_positive(self):
        sim = Simulator()
        with pytest.raises(GossipError, match="positive"):
            GossipBus(sim, [], 0.0, MetricsRegistry(clock=lambda: sim.now))

    def test_round_zero_publishes_immediately(self):
        fleet = FleetDeployment(FleetConfig(nodes=2, apps=APPS, seed=9))
        assert fleet.gossip.rounds == 1
        for node in fleet.nodes:
            digest = fleet.gossip.digest(node.index)
            assert digest.published_at == 0.0
            assert digest.node == node.name

    def test_rounds_tick_on_the_shared_clock(self):
        fleet = FleetDeployment(
            FleetConfig(nodes=2, apps=APPS, seed=9, gossip_interval_s=0.5)
        )
        fleet.sim.run(until=2.1)
        fleet.stop()
        assert fleet.gossip.rounds == 1 + 4  # round 0 + ticks at .5s steps

    def test_staleness_is_bounded_by_the_interval(self):
        interval = 0.5
        fleet = FleetDeployment(
            FleetConfig(nodes=2, apps=APPS, seed=9, gossip_interval_s=interval)
        )
        fleet.sim.run(until=1.3)  # between ticks, on purpose
        for node in fleet.nodes:
            digest = fleet.gossip.digest(node.index)
            staleness = fleet.gossip.observe_staleness(digest)
            assert 0.0 <= staleness < interval
        histogram = fleet.metrics.get("fleet_gossip_staleness_seconds")
        assert histogram.count == 2
        fleet.stop()

    def test_skew_tracks_published_imbalance(self):
        fleet = FleetDeployment(FleetConfig(nodes=2, apps=APPS, seed=9))
        assert fleet.load_skew() == 0.0
        fleet.nodes[0].runtime.launch_background(10)
        fleet.sim.run(until=1.1)  # one refresh after the load landed
        fleet.stop()
        assert fleet.load_skew() >= 10.0


class TestPublishFastPath:
    def test_version_bumps_once_per_round(self):
        fleet = FleetDeployment(
            FleetConfig(nodes=2, apps=APPS, seed=9, gossip_interval_s=0.5)
        )
        assert fleet.gossip.version == 1  # round 0
        fleet.sim.run(until=1.1)
        fleet.stop()
        assert fleet.gossip.version == fleet.gossip.rounds == 3

    def test_memoized_gauge_children_track_published_scores(self):
        # publish() goes through per-node children resolved once at
        # construction; the observable gauge values must still follow
        # every round's digests exactly.
        fleet = FleetDeployment(FleetConfig(nodes=2, apps=APPS, seed=9))
        gauge = fleet.metrics.get("fleet_node_load")
        for node in fleet.nodes:
            assert gauge.labels(node=node.name).value == (
                fleet.gossip.digest(node.index).score
            )
        fleet.nodes[0].runtime.launch_background(6)
        fleet.gossip.publish()
        fleet.stop()
        loaded = fleet.nodes[0]
        assert gauge.labels(node=loaded.name).value == (
            fleet.gossip.digest(loaded.index).score
        )
        assert gauge.labels(node=loaded.name).value >= 6.0
