"""Device-level backpressure in the fleet: admission state travels in
the gossiped LoadDigest, and the router moves clients off a node that
published a brownout rung — before the node starts shedding."""

import pytest

from repro.faults import OverloadConfig, ResilienceConfig
from repro.fleet import FleetConfig, FleetDeployment, RouteOutcome

pytestmark = pytest.mark.metrics

APPS = ("digit.2000",)


def _overload():
    return ResilienceConfig(
        overload=OverloadConfig(
            x86_only_enter_load=24.0,
            x86_only_exit_load=16.0,
            shed_enter_load=48.0,
            shed_exit_load=32.0,
        )
    )


@pytest.fixture
def fleet():
    return FleetDeployment(
        FleetConfig(nodes=3, apps=APPS, seed=3), resilience=_overload()
    )


class TestDigestBackpressure:
    def test_digest_carries_admission_state(self, fleet):
        node = fleet.nodes[0]
        digest = node.digest(fleet.sim.now)
        assert digest.queue_depth == 0.0
        assert digest.brownout == 0

    def test_brownout_rung_published_in_digest(self, fleet):
        node = fleet.nodes[0]
        guard = node.runtime.resilience.overload
        guard.update(50.0)  # past the shed rung
        digest = node.digest(fleet.sim.now)
        assert digest.brownout == 2
        # The rung does not distort the scalar load score; it is its
        # own field, so the router can act on it explicitly.
        healthy = fleet.nodes[1].digest(fleet.sim.now)
        assert digest.x86_active == healthy.x86_active

    def test_queue_depth_published_in_digest(self, fleet):
        node = fleet.nodes[0]
        guard = node.runtime.resilience.overload
        guard.enqueued()
        guard.enqueued()
        assert node.digest(fleet.sim.now).queue_depth == 2.0

    def test_unprotected_node_publishes_zeros(self):
        fleet = FleetDeployment(FleetConfig(nodes=2, apps=APPS, seed=0))
        digest = fleet.nodes[0].digest(fleet.sim.now)
        assert digest.queue_depth == 0.0
        assert digest.brownout == 0


class TestRouterReaction:
    def test_published_brownout_moves_the_client(self, fleet):
        node, _ = fleet.router.route("alice", "digit.2000")
        node.runtime.resilience.overload.update(50.0)
        # The router only ever sees the *published* digest: before the
        # next gossip round the client stays sticky.
        target, outcome = fleet.router.route("alice", "digit.2000")
        assert outcome == RouteOutcome.STICKY
        assert target is node
        fleet.sim.run(until=fleet.config.gossip_interval_s + 0.1)
        target, outcome = fleet.router.route("alice", "digit.2000")
        assert outcome == RouteOutcome.REBALANCE
        assert target is not node
        assert target.runtime.resilience.overload.brownout_level == 0

    def test_x86_only_rung_is_already_overloaded(self, fleet):
        node, _ = fleet.router.route("bob", "digit.2000")
        node.runtime.resilience.overload.update(30.0)  # rung 1
        fleet.sim.run(until=fleet.config.gossip_interval_s + 0.1)
        target, outcome = fleet.router.route("bob", "digit.2000")
        assert outcome == RouteOutcome.REBALANCE
        assert target is not node

    def test_recovered_node_keeps_its_remaining_clients(self, fleet):
        node, _ = fleet.router.route("carol", "digit.2000")
        guard = node.runtime.resilience.overload
        guard.update(50.0)
        guard.update(10.0)  # drained: back to full
        fleet.sim.run(until=fleet.config.gossip_interval_s + 0.1)
        target, outcome = fleet.router.route("carol", "digit.2000")
        assert outcome == RouteOutcome.STICKY
        assert target is node
