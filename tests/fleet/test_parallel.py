"""The parallel-vs-serial fleet differential oracle.

``FleetDeployment.run_cohorts(jobs>1)`` ships per-node work units to
the persistent sweep worker pool; the serial path stays the reference.
The contract under test: the parallel :class:`FleetCohortResult` —
checksum lines, per-node results, fault fallbacks, and every node's
metrics snapshot — is byte-identical to serial, for 1-node and
10-node fleets, with and without fault plans, and with empty node
shards; and the per-worker runtime cache makes repeated calls skip
node-runtime rebuilds.
"""

import pytest

from repro.core.cohort import ArrivalLaw, CohortSpec
from repro.experiments.sweep import shutdown_pool
from repro.fleet import FleetConfig, FleetDeployment
from repro.fleet.parallel import (
    FLEET_JOBS_ENV,
    FLEET_MIN_NODES_ENV,
    fleet_parallel_threshold,
    resolve_fleet_jobs,
    run_node_work,
)

pytestmark = pytest.mark.metrics

APPS = ("digit.2000", "facedet.320")


def _specs(clients=150):
    first = clients // 2
    return [
        CohortSpec(
            "digit.2000", first, calls=3,
            arrival=ArrivalLaw("uniform", start=0.0, span=10.0), seed=21,
        ),
        CohortSpec(
            "facedet.320", clients - first, calls=2,
            arrival=ArrivalLaw("poisson", start=1.0, span=8.0), seed=22,
        ),
    ]


def _fleet(nodes, seed=11):
    return FleetDeployment(FleetConfig(nodes=nodes, apps=APPS, seed=seed))


class TestParallelEqualsSerial:
    def test_ten_node_fleet_bit_identical(self):
        serial_fleet = _fleet(10)
        parallel_fleet = _fleet(10)
        serial = serial_fleet.run_cohorts(_specs(), background=10, jobs=1)
        parallel = parallel_fleet.run_cohorts(_specs(), background=10, jobs=2)
        serial_fleet.stop()
        parallel_fleet.stop()

        assert serial.mode == "serial"
        assert parallel.mode == "parallel"
        assert parallel.workers == 2
        assert parallel.lines() == serial.lines()
        assert parallel.assigned_per_node == serial.assigned_per_node
        assert [i for i, _r in parallel.node_results] == [
            i for i, _r in serial.node_results
        ]
        # Worker-side runs are replayed into each node's own registry,
        # so the observability contract holds byte for byte too.
        for ours, theirs in zip(serial_fleet.nodes, parallel_fleet.nodes):
            assert (
                ours.server.metrics.snapshot() == theirs.server.metrics.snapshot()
            )

    def test_one_node_fleet_through_forced_pool(self):
        fleet = _fleet(1)
        serial = fleet.run_cohorts(_specs(60), background=5, jobs=1)
        # min_nodes=0 disables the serial fallback, pushing even the
        # single shard through a worker process.
        parallel = fleet.run_cohorts(_specs(60), background=5, jobs=2, min_nodes=0)
        fleet.stop()
        assert parallel.mode == "parallel"
        assert parallel.lines() == serial.lines()

    def test_fault_plans_bit_identical(self):
        from repro.faults import FleetFaultPlan
        from repro.workloads import profile_for

        kernels = sorted(
            {
                profile_for(app).kernel_name
                for app in APPS
                if profile_for(app).kernel_name
            }
        )
        plan = FleetFaultPlan.generate(7, 4, horizon_s=20.0, kernels=kernels)
        plans = dict(plan.plans)
        assert plans, "fault plan generated no per-node plans"

        fleet = _fleet(4, seed=7)
        serial = fleet.run_cohorts(
            _specs(), background=5, fault_plans=plans, jobs=1
        )
        parallel = fleet.run_cohorts(
            _specs(), background=5, fault_plans=plans, jobs=2, min_nodes=0
        )
        fleet.stop()
        assert parallel.mode == "parallel"
        assert parallel.lines() == serial.lines()
        assert parallel.fault_fallbacks == serial.fault_fallbacks

    def test_empty_node_shards(self):
        # More nodes than clients: some nodes get no sub-specs and must
        # be absent from node_results on both paths.
        specs = [
            CohortSpec(
                "digit.2000", 4, calls=2,
                arrival=ArrivalLaw("staggered", span=4.0), seed=3,
            )
        ]
        fleet = _fleet(8)
        serial = fleet.run_cohorts(specs, background=0, jobs=1)
        parallel = fleet.run_cohorts(specs, background=0, jobs=2, min_nodes=0)
        fleet.stop()
        assert parallel.mode == "parallel"
        assert len(serial.node_results) < 8
        assert parallel.lines() == serial.lines()
        assert sum(serial.assigned_per_node) == 4


class TestFallbacksAndKnobs:
    def test_serial_below_threshold(self):
        # One non-empty shard < the default two-shard threshold, so a
        # multi-job call still runs serially (like run_cells).
        fleet = _fleet(1)
        result = fleet.run_cohorts(_specs(40), background=0, jobs=2)
        fleet.stop()
        assert result.mode == "serial"
        assert result.workers == 1

    def test_jobs_env(self, monkeypatch):
        monkeypatch.delenv(FLEET_JOBS_ENV, raising=False)
        assert resolve_fleet_jobs(None) == 1
        monkeypatch.setenv(FLEET_JOBS_ENV, "3")
        assert resolve_fleet_jobs(None) == 3
        assert resolve_fleet_jobs(5) == 5

    def test_min_nodes_env(self, monkeypatch):
        monkeypatch.delenv(FLEET_MIN_NODES_ENV, raising=False)
        assert fleet_parallel_threshold() == 2
        monkeypatch.setenv(FLEET_MIN_NODES_ENV, "0")
        assert fleet_parallel_threshold() == 0


class TestPoolReuse:
    def test_second_call_skips_worker_rebuilds(self):
        # A single work unit caps workers at one, so the fresh pool's
        # only worker must serve both calls — the second call hits its
        # runtime cache deterministically.
        shutdown_pool()
        fleet = _fleet(1)
        first = fleet.run_cohorts(_specs(40), background=0, jobs=2, min_nodes=0)
        second = fleet.run_cohorts(_specs(40), background=0, jobs=2, min_nodes=0)
        fleet.stop()
        shutdown_pool()
        assert first.mode == second.mode == "parallel"
        assert first.worker_rebuilds == 1
        assert second.worker_rebuilds == 0
        assert second.lines() == first.lines()

    def test_worker_runtime_cache_in_process(self):
        from repro.experiments.sweep import platform_config_hash
        from repro.fleet import parallel

        fleet = _fleet(1)
        node = fleet.nodes[0]
        per_node, _assigned = fleet.shard_cohorts(_specs(40))
        work = parallel.NodeWork(
            index=0,
            seed=node.seed,
            platform_hash=platform_config_hash(),
            apps=fleet.config.apps,
            use_dsm=fleet.config.use_dsm,
            replicate_compute_units=fleet.config.replicate_compute_units,
            sub_specs=tuple(per_node[0]),
            background=0,
            vectorized=None,
            fault_targets=None,
            thresholds=node.server.thresholds.copy(),
            socket_latency_s=node.server.socket_latency_s,
        )
        fleet.stop()
        parallel._RUNTIME_CACHE.clear()
        try:
            first = run_node_work(work)
            second = run_node_work(work)
        finally:
            parallel._RUNTIME_CACHE.clear()
        assert first.rebuilt is True
        assert second.rebuilt is False
        assert second.result.lines() == first.result.lines()
