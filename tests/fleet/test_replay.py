"""Multi-node replay determinism: same config, same everything."""

import pytest

from repro.core import SystemMode
from repro.core.cohort import ArrivalLaw, CohortSpec
from repro.fleet import FleetConfig, FleetDeployment

pytestmark = pytest.mark.metrics

APPS = ("digit.2000", "facedet.320")


def _drive(seed):
    fleet = FleetDeployment(FleetConfig(nodes=4, apps=APPS, seed=seed))
    handles = [
        fleet.launch(
            APPS[i % len(APPS)],
            client=f"k{i % 6}",
            seed=200 + i,
            mode=SystemMode.XAR_TREK,
            calls=2,
            delay_s=0.3 * i,
        )
        for i in range(12)
    ]
    records = fleet.wait_all(handles)
    specs = [
        CohortSpec(
            "digit.2000", 200, calls=2,
            arrival=ArrivalLaw("uniform", start=0.0, span=12.0), seed=31,
        ),
    ]
    cohorts = fleet.run_cohorts(specs, background=10)
    fleet.stop()
    lines = [
        f"{r.app},{r.start_s!r},{r.end_s!r},{r.calls_completed},{r.migrations}"
        for r in records
    ]
    return (
        lines,
        cohorts.lines(),
        fleet.router.clients_per_node(),
        fleet.router.cross_node_migrations,
        fleet.dsm.stats.page_transfers,
        fleet.gossip.rounds,
    )


class TestReplayDeterminism:
    def test_same_seed_replays_identically(self):
        assert _drive(seed=17) == _drive(seed=17)

    def test_different_seeds_place_differently(self):
        first = _drive(seed=17)
        second = _drive(seed=18)
        # The full tuples must differ (seeded platforms and routing).
        assert first != second

    def test_cohort_sharding_is_deterministic_and_complete(self):
        fleet = FleetDeployment(FleetConfig(nodes=3, apps=APPS, seed=17))
        specs = [
            CohortSpec(
                "digit.2000", 300, calls=2,
                arrival=ArrivalLaw("staggered", start=0.0, span=9.0), seed=41,
            ),
            CohortSpec(
                "facedet.320", 150, calls=2,
                arrival=ArrivalLaw("poisson", start=0.5, span=9.0), seed=42,
            ),
        ]
        per_node, assigned = fleet.shard_cohorts(specs)
        per_node2, assigned2 = fleet.shard_cohorts(specs)
        assert assigned == assigned2
        assert [
            [(s.app, s.clients, s.arrival.times) for s in node_specs]
            for node_specs in per_node
        ] == [
            [(s.app, s.clients, s.arrival.times) for s in node_specs]
            for node_specs in per_node2
        ]
        # Every client assigned exactly once, and the sub-spec explicit
        # arrival times partition the originals.
        assert sum(assigned) == 450
        assert sum(
            s.clients for node_specs in per_node for s in node_specs
        ) == 450
        # p2c over the quantized stale view keeps the shards balanced.
        assert max(assigned) - min(assigned) <= 50
        fleet.stop()
