"""Fleet construction, config validation, and the per-client path."""

import pytest

from repro.core import SystemMode
from repro.fleet import FleetConfig, FleetDeployment, FleetError, node_seeds

pytestmark = pytest.mark.metrics

APPS = ("digit.2000",)


class TestConfigValidation:
    def test_needs_at_least_one_node(self):
        with pytest.raises(FleetError, match=">= 1 node"):
            FleetConfig(nodes=0)

    def test_needs_a_positive_gossip_interval(self):
        with pytest.raises(FleetError, match="gossip_interval_s"):
            FleetConfig(gossip_interval_s=0.0)

    def test_needs_at_least_one_application(self):
        with pytest.raises(FleetError, match="application"):
            FleetConfig(apps=())


class TestNodeSeeds:
    def test_deterministic_in_the_fleet_seed(self):
        assert node_seeds(7, 4) == node_seeds(7, 4)
        assert node_seeds(7, 4) != node_seeds(8, 4)

    def test_prefix_stable_across_fleet_sizes(self):
        # Node i's platform must be a pure function of (seed, i), not of
        # the fleet size: growing the fleet must not reshuffle the
        # existing nodes (SeedSequence spawn children are index-based).
        assert node_seeds(7, 8)[:3] == node_seeds(7, 3)


class TestDeployment:
    def test_every_node_is_a_complete_system(self):
        fleet = FleetDeployment(FleetConfig(nodes=3, apps=APPS, seed=5))
        assert [node.name for node in fleet.nodes] == ["node0", "node1", "node2"]
        for node, seed in zip(fleet.nodes, fleet.seeds):
            assert node.seed == seed
            assert node.server.running
            assert node.platform.sim is fleet.sim  # one shared clock
        # Distinct platforms, distinct seeds.
        assert len({id(node.platform) for node in fleet.nodes}) == 3
        assert len(set(fleet.seeds)) == 3

    def test_launch_routes_and_returns_records(self):
        fleet = FleetDeployment(FleetConfig(nodes=3, apps=APPS, seed=5))
        handles = [
            fleet.launch(
                "digit.2000",
                client=f"c{i}",
                seed=i,
                mode=SystemMode.XAR_TREK,
                calls=2,
                delay_s=0.1 * i,
            )
            for i in range(6)
        ]
        records = fleet.wait_all(handles)
        assert len(records) == 6
        assert all(record.finished for record in records)
        assert sum(fleet.router.clients_per_node()) == 6
        # Staggered clients spread out instead of herding onto node0.
        assert max(fleet.router.clients_per_node()) < 6

    def test_stop_cancels_the_gossip_tick_so_the_sim_drains(self):
        fleet = FleetDeployment(FleetConfig(nodes=2, apps=APPS, seed=5))
        fleet.sim.run(until=3.0)
        assert fleet.gossip.rounds >= 3
        fleet.stop()
        fleet.sim.run()  # would never return with the tick still armed
        assert not fleet.gossip.started
