"""Per-node fault plans and node-outage failover at fleet scale."""

import pytest

from repro.core import SystemMode
from repro.core.cohort import ArrivalLaw, CohortSpec
from repro.faults import FaultPlan, FaultPlanError, FleetFaultPlan, fleet_fault_seeds
from repro.fleet import FleetConfig, FleetDeployment
from repro.workloads import profile_for

pytestmark = pytest.mark.metrics

APPS = ("digit.2000",)
KERNELS = [profile_for("digit.2000").kernel_name]


class TestFleetFaultPlan:
    def test_seeds_are_deterministic_and_distinct_from_platform_seeds(self):
        assert fleet_fault_seeds(3, 4) == fleet_fault_seeds(3, 4)
        from repro.fleet import node_seeds

        assert fleet_fault_seeds(3, 4) != node_seeds(3, 4)

    def test_generate_strikes_the_requested_fraction(self):
        plan = FleetFaultPlan.generate(0, 8, horizon_s=30.0, kernels=KERNELS)
        assert set(plan.plans) == {0, 1, 2, 3}  # default fraction 0.5
        assert len(plan) == sum(len(p) for p in plan.plans.values())
        assert plan.counts_by_kind()
        quarter = FleetFaultPlan.generate(
            0, 8, horizon_s=30.0, kernels=KERNELS, fault_fraction=0.25
        )
        assert set(quarter.plans) == {0, 1}

    def test_generate_rejects_bad_fractions(self):
        with pytest.raises(FaultPlanError, match="fault_fraction"):
            FleetFaultPlan.generate(0, 4, horizon_s=30.0, fault_fraction=0.0)
        with pytest.raises(FaultPlanError, match="fault_fraction"):
            FleetFaultPlan.generate(0, 4, horizon_s=30.0, fault_fraction=1.5)

    def test_validation_rejects_bad_keys_and_values(self):
        with pytest.raises(FaultPlanError, match="node indexes"):
            FleetFaultPlan(plans={-1: FaultPlan.empty()})
        with pytest.raises(FaultPlanError, match="expected a FaultPlan"):
            FleetFaultPlan(plans={0: "not a plan"})

    def test_arm_rejects_out_of_range_nodes(self):
        fleet = FleetDeployment(FleetConfig(nodes=2, apps=APPS, seed=1))
        plan = FleetFaultPlan(plans={5: FaultPlan.empty()})
        with pytest.raises(FaultPlanError, match="only 2 nodes"):
            plan.arm(fleet)
        fleet.stop()

    def test_arm_creates_one_injector_per_targeted_node(self):
        fleet = FleetDeployment(FleetConfig(nodes=4, apps=APPS, seed=1))
        plan = FleetFaultPlan.generate(0, 4, horizon_s=30.0, kernels=KERNELS)
        injectors = plan.arm(fleet)
        assert set(injectors) == set(plan.plans)
        assert len({id(inj) for inj in injectors.values()}) == len(injectors)
        fleet.stop()


class TestNodeOutageFailover:
    def test_outage_moves_clients_and_service_continues(self):
        fleet = FleetDeployment(FleetConfig(nodes=3, apps=APPS, seed=2))
        node, _ = fleet.router.route("henry", "digit.2000")
        node.server.stop()  # what a server_outage fault does mid-window
        handle = fleet.launch(
            "digit.2000", client="henry", seed=7,
            mode=SystemMode.XAR_TREK, calls=2,
        )
        [record] = fleet.wait_all([handle])
        assert record.finished
        survivor = fleet.nodes[fleet.router.assignments["henry"]]
        assert survivor is not node and survivor.healthy
        assert fleet.router.cross_node_migrations == 1
        fleet.stop()

    def test_cohort_run_under_per_node_faults_degrades_gracefully(self):
        fleet = FleetDeployment(FleetConfig(nodes=2, apps=APPS, seed=2))
        plan = FleetFaultPlan.generate(0, 2, horizon_s=40.0, kernels=KERNELS)
        specs = [
            CohortSpec(
                "digit.2000", 200, calls=3,
                arrival=ArrivalLaw("uniform", start=0.0, span=20.0), seed=51,
            ),
        ]
        result = fleet.run_cohorts(specs, fault_plans=dict(plan.plans))
        fleet.stop()
        assert result.clients == 200
        assert result.fault_fallbacks > 0  # faults landed, clients completed
        assert len(result.node_results) == 2
