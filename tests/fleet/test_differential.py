"""The 1-node fleet == single-node runtime differential oracle.

Same pattern as the cohort oracle: the fleet tier (router RNG, gossip
ticks, fabric DSM) must add *zero* simulated time and *zero* RNG
perturbation to what happens inside a node, so a 1-node fleet is bit-
identical to the plain :class:`XarTrekRuntime` built from the same
derived seed — on both the per-client path and the sharded cohort path.
"""

import pytest

from repro.core import SystemMode, build_system
from repro.core.cohort import ArrivalLaw, CohortSpec
from repro.fleet import FleetConfig, FleetDeployment, node_seeds

pytestmark = pytest.mark.metrics

APPS = ("digit.2000", "facedet.320")


def _lines(records):
    targets = lambda r: "/".join(str(t) for t in r.targets)  # noqa: E731
    return [
        f"{r.app},{r.start_s!r},{r.end_s!r},{r.calls_completed},"
        f"{r.migrations},{targets(r)}"
        for r in records
    ]


def _launch_all(target, fleet_style):
    handles = []
    for i in range(10):
        app = APPS[i % len(APPS)]
        kwargs = dict(seed=100 + i, mode=SystemMode.XAR_TREK, calls=3,
                      delay_s=0.4 * i)
        if fleet_style:
            handles.append(target.launch(app, client=f"c{i % 4}", **kwargs))
        else:
            handles.append(target.launch(app, **kwargs))
    return target.wait_all(handles)


def _specs():
    return [
        CohortSpec(
            "digit.2000", 90, calls=3,
            arrival=ArrivalLaw("uniform", start=0.0, span=10.0), seed=21,
        ),
        CohortSpec(
            "facedet.320", 60, calls=2,
            arrival=ArrivalLaw("poisson", start=1.0, span=8.0), seed=22,
        ),
    ]


class TestOneNodeFleetEquivalence:
    def test_per_client_path_is_bit_identical(self):
        fleet = FleetDeployment(FleetConfig(nodes=1, apps=APPS, seed=11))
        fleet_records = _launch_all(fleet, fleet_style=True)
        fleet.stop()

        reference = build_system(APPS, seed=node_seeds(11, 1)[0])
        reference_records = _launch_all(reference, fleet_style=False)

        assert _lines(fleet_records) == _lines(reference_records)

    def test_cohort_path_is_bit_identical(self):
        fleet = FleetDeployment(FleetConfig(nodes=1, apps=APPS, seed=11))
        fleet_result = fleet.run_cohorts(_specs(), background=20)
        fleet.stop()

        reference = build_system(APPS, seed=node_seeds(11, 1)[0])
        reference_result = reference.run_cohorts(_specs(), background=20)

        assert fleet_result.clients == reference_result.clients == 150
        [(index, node_result)] = fleet_result.node_results
        assert index == 0
        assert node_result.lines() == reference_result.lines()
        # All clients landed on the only node, with no p2c draws burned.
        assert fleet_result.assigned_per_node == [150]
