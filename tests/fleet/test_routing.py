"""Router outcomes: initial, sticky, rebalance, failover — and the DSM
accounting behind cross-node migrations."""

import pytest

from repro.fleet import FleetConfig, FleetDeployment, RouteOutcome

pytestmark = pytest.mark.metrics

APPS = ("digit.2000",)


@pytest.fixture
def fleet():
    return FleetDeployment(FleetConfig(nodes=3, apps=APPS, seed=3))


class TestOutcomes:
    def test_first_contact_is_initial_then_sticky(self, fleet):
        node, outcome = fleet.router.route("alice", "digit.2000")
        assert outcome == RouteOutcome.INITIAL
        again, outcome = fleet.router.route("alice", "digit.2000")
        assert outcome == RouteOutcome.STICKY
        assert again is node

    def test_outage_forces_failover_to_a_healthy_node(self, fleet):
        node, _ = fleet.router.route("bob", "digit.2000")
        node.server.stop()
        assert not node.healthy
        target, outcome = fleet.router.route("bob", "digit.2000")
        assert outcome == RouteOutcome.FAILOVER
        assert target is not node and target.healthy
        # The move shipped the client's working set over the fabric.
        assert fleet.router.cross_node_migrations == 1
        assert fleet.dsm.stats.page_transfers > 0
        assert fleet.router.migration_bytes > 0

    def test_gossip_delta_rebalances_an_overloaded_node(self, fleet):
        node, _ = fleet.router.route("carol", "digit.2000")
        # Pile load onto carol's node, then let a gossip round publish
        # the imbalance (the router only ever sees the stale digests).
        node.runtime.launch_background(40)
        fleet.sim.run(until=fleet.config.gossip_interval_s + 0.1)
        target, outcome = fleet.router.route("carol", "digit.2000")
        assert outcome == RouteOutcome.REBALANCE
        assert target is not node
        assert fleet.router.cross_node_migrations == 1

    def test_balanced_fleet_stays_sticky(self, fleet):
        node, _ = fleet.router.route("dave", "digit.2000")
        fleet.sim.run(until=fleet.config.gossip_interval_s + 0.1)
        target, outcome = fleet.router.route("dave", "digit.2000")
        assert outcome == RouteOutcome.STICKY
        assert target is node
        assert fleet.router.cross_node_migrations == 0

    def test_total_outage_degrades_instead_of_crashing(self, fleet):
        for node in fleet.nodes:
            node.server.stop()
        node, _outcome = fleet.router.route("erin", "digit.2000")
        assert node in fleet.nodes  # a node is still picked; its
        # scheduler raises SchedulerUnavailable and the client takes
        # the local x86 fallback, same as the single-node degradation.


class TestFleetFloorCache:
    def test_floor_matches_fresh_minimum(self, fleet):
        candidates = [n for n in fleet.nodes if n.healthy]
        fresh = min(fleet.gossip.digest(n.index).score for n in candidates)
        assert fleet.router._fleet_floor(candidates) == fresh

    def test_floor_is_reused_within_a_gossip_round(self, fleet):
        candidates = list(fleet.nodes)
        fleet.router._fleet_floor(candidates)
        cached = fleet.router._floor_cache
        assert cached is not None
        fleet.router._fleet_floor(candidates)
        assert fleet.router._floor_cache is cached  # no recompute

    def test_publish_invalidates_the_floor(self, fleet):
        candidates = list(fleet.nodes)
        assert fleet.router._fleet_floor(candidates) == 0.0
        for node in fleet.nodes:
            node.runtime.launch_background(5)
        # Live load changed but nothing was published: the stale floor
        # must not move yet.
        assert fleet.router._fleet_floor(candidates) == 0.0
        fleet.gossip.publish()
        fleet.stop()
        assert fleet.router._fleet_floor(candidates) >= 5.0

    def test_candidate_set_change_invalidates_the_floor(self, fleet):
        fleet.nodes[0].runtime.launch_background(5)
        fleet.gossip.publish()
        fleet.stop()
        full = fleet.router._fleet_floor(list(fleet.nodes))
        assert full == 0.0  # nodes 1/2 are idle
        only_loaded = fleet.router._fleet_floor([fleet.nodes[0]])
        assert only_loaded >= 5.0

    def test_sticky_decisions_use_the_cached_floor(self, fleet):
        # Many sticky routes inside one gossip round: the digests the
        # floor depends on are read once, not per decision.
        for key in range(8):
            fleet.router.route(f"client-{key}", "digit.2000")
        reads = 0
        original = fleet.gossip.digest

        def counting(index):
            nonlocal reads
            reads += 1
            return original(index)

        fleet.gossip.digest = counting
        try:
            for key in range(8):
                fleet.router.route(f"client-{key}", "digit.2000")
        finally:
            fleet.gossip.digest = original
        # One stale read per sticky decision (the node's own digest),
        # plus at most one floor recompute over the 3 candidates.
        assert reads <= 8 + 3


class TestAccounting:
    def test_working_set_is_seeded_once_and_moves_wholesale(self, fleet):
        node, _ = fleet.router.route("frank", "digit.2000")
        node.server.stop()
        fleet.router.route("frank", "digit.2000")
        first_pages = fleet.dsm.stats.page_transfers
        first_bytes = fleet.router.migration_bytes
        # A second migration of the same client moves the same range:
        # equal page count again, no re-seeding traffic.
        survivor = fleet.nodes[fleet.router.assignments["frank"]]
        survivor.server.stop()
        fleet.router.route("frank", "digit.2000")
        assert fleet.dsm.stats.page_transfers == 2 * first_pages
        assert fleet.router.migration_bytes == 2 * first_bytes

    def test_assigned_counts_follow_moves(self, fleet):
        node, _ = fleet.router.route("grace", "digit.2000")
        counts = fleet.router.clients_per_node()
        assert counts[node.index] == 1 and sum(counts) == 1
        node.server.stop()
        target, _ = fleet.router.route("grace", "digit.2000")
        counts = fleet.router.clients_per_node()
        assert counts[node.index] == 0
        assert counts[target.index] == 1
