"""Unit + property tests for the page-based DSM (MSI protocol)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import ETHERNET_1GBPS, Link
from repro.popcorn import DSM, DSMError, PageState
from repro.sim import Simulator


def make_dsm(nodes=("x86", "arm"), page_size=4096):
    sim = Simulator()
    dsm = DSM(sim, Link(sim, ETHERNET_1GBPS), page_size=page_size)
    for node in nodes:
        dsm.add_node(node)
    return sim, dsm


class TestBasics:
    def test_page_of_masks_offset(self):
        _sim, dsm = make_dsm()
        assert dsm.page_of(0x1234) == 0x1000
        assert dsm.page_of(0x1000) == 0x1000

    def test_page_size_must_be_power_of_two(self):
        sim = Simulator()
        with pytest.raises(DSMError):
            DSM(sim, Link(sim, ETHERNET_1GBPS), page_size=3000)

    def test_unknown_node_rejected(self):
        sim, dsm = make_dsm()
        with pytest.raises(DSMError):
            dsm.read("ghost", 0x1000)

    def test_duplicate_node_rejected(self):
        _sim, dsm = make_dsm()
        with pytest.raises(DSMError):
            dsm.add_node("x86")

    def test_first_touch_is_free(self):
        sim, dsm = make_dsm()
        sim.run_until_event(dsm.read("x86", 0x1000))
        assert dsm.stats.page_transfers == 0
        assert dsm.stats.local_hits == 1
        assert dsm.page_state("x86", 0x1000) == PageState.SHARED

    def test_first_write_is_free_and_exclusive(self):
        sim, dsm = make_dsm()
        sim.run_until_event(dsm.write("x86", 0x2000))
        assert dsm.page_state("x86", 0x2000) == PageState.MODIFIED
        assert dsm.stats.bytes_transferred == 0


class TestProtocol:
    def test_remote_read_fetches_page(self):
        sim, dsm = make_dsm()
        sim.run_until_event(dsm.write("x86", 0x1000))
        sim.run_until_event(dsm.read("arm", 0x1000))
        assert dsm.stats.page_transfers == 1
        # Owner downgraded to shared.
        assert dsm.page_state("x86", 0x1000) == PageState.SHARED
        assert dsm.page_state("arm", 0x1000) == PageState.SHARED

    def test_write_invalidates_other_copies(self):
        sim, dsm = make_dsm()
        sim.run_until_event(dsm.write("x86", 0x1000))
        sim.run_until_event(dsm.read("arm", 0x1000))
        sim.run_until_event(dsm.write("arm", 0x1000))
        assert dsm.page_state("x86", 0x1000) == PageState.INVALID
        assert dsm.page_state("arm", 0x1000) == PageState.MODIFIED
        assert dsm.stats.invalidations == 1

    def test_silent_upgrade_when_sole_sharer(self):
        sim, dsm = make_dsm()
        sim.run_until_event(dsm.read("x86", 0x1000))
        before = dsm.stats.control_messages
        sim.run_until_event(dsm.write("x86", 0x1000))
        assert dsm.stats.control_messages == before
        assert dsm.page_state("x86", 0x1000) == PageState.MODIFIED

    def test_repeated_local_access_hits(self):
        sim, dsm = make_dsm()
        sim.run_until_event(dsm.write("x86", 0x1000))
        for _ in range(5):
            sim.run_until_event(dsm.read("x86", 0x1000))
            sim.run_until_event(dsm.write("x86", 0x1000))
        assert dsm.stats.page_transfers == 0

    def test_transfers_take_link_time(self):
        sim, dsm = make_dsm()
        sim.run_until_event(dsm.write("x86", 0x1000))
        start = sim.now
        sim.run_until_event(dsm.read("arm", 0x1000))
        wire = (4096 + 64) / ETHERNET_1GBPS.bandwidth_bytes_per_s
        assert sim.now - start >= wire

    def test_seed_pages_claims_without_traffic(self):
        sim, dsm = make_dsm()
        dsm.seed_pages("x86", [0x1000, 0x2000, 0x2008])
        assert dsm.page_state("x86", 0x1000) == PageState.MODIFIED
        assert dsm.page_state("x86", 0x2000) == PageState.MODIFIED
        assert dsm.stats.bytes_transferred == 0

    def test_migrate_pages_batches_one_transfer(self):
        sim, dsm = make_dsm()
        addrs = [0x100000 + i * 4096 for i in range(10)]
        dsm.seed_pages("x86", addrs)
        start = sim.now
        sim.run_until_event(dsm.migrate_pages("x86", "arm", addrs))
        assert dsm.stats.page_transfers == 10
        for addr in addrs:
            assert dsm.page_state("arm", addr) == PageState.MODIFIED
            assert dsm.page_state("x86", addr) == PageState.INVALID
        # Batched: roughly one wire transfer of 10 pages, not 10 RTTs.
        wire = 10 * 4096 / ETHERNET_1GBPS.bandwidth_bytes_per_s
        assert sim.now - start == pytest.approx(
            wire + ETHERNET_1GBPS.latency_s, rel=0.01
        )

    def test_migrate_untouched_pages_is_free(self):
        sim, dsm = make_dsm()
        sim.run_until_event(dsm.migrate_pages("x86", "arm", [0x5000]))
        assert dsm.stats.page_transfers == 0
        assert dsm.page_state("arm", 0x5000) == PageState.MODIFIED


class TestInvariants:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["read", "write"]),
                st.sampled_from(["x86", "arm", "nic"]),
                st.integers(min_value=0, max_value=8),  # page index
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_msi_single_writer_multiple_readers(self, ops):
        """After any op sequence: at most one M holder per page, and an M
        holder excludes S holders."""
        sim, dsm = make_dsm(nodes=("x86", "arm", "nic"))
        for op, node, page_index in ops:
            addr = 0x10000 + page_index * 4096
            event = dsm.read(node, addr) if op == "read" else dsm.write(node, addr)
            sim.run_until_event(event)
            # Invariant check after every operation.
            for entry_page, entry in dsm.directory.items():
                states = list(entry.states.values())
                modified = states.count(PageState.MODIFIED)
                shared = states.count(PageState.SHARED)
                assert modified <= 1, f"page {entry_page:#x} has {modified} writers"
                if modified:
                    assert shared == 0, f"page {entry_page:#x} mixes M and S"

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["read", "write"]),
                st.sampled_from(["x86", "arm"]),
                st.integers(min_value=0, max_value=4),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_accessor_always_ends_with_valid_copy(self, ops):
        sim, dsm = make_dsm()
        for op, node, page_index in ops:
            addr = page_index * 4096
            event = dsm.read(node, addr) if op == "read" else dsm.write(node, addr)
            sim.run_until_event(event)
            state = dsm.page_state(node, addr)
            if op == "write":
                assert state == PageState.MODIFIED
            else:
                assert state in (PageState.SHARED, PageState.MODIFIED)
