"""Tests for IR-level instrumentation (compiler step B on the VM substrate)."""

import pytest

from repro.popcorn.minic import parse_minic
from repro.popcorn.vm import (
    MigratableVM,
    MigrationPointInstr,
    Ret,
    VMError,
    compile_program,
    instrument_program,
)

SOURCE = """
func main(n) {
    let total = 0;
    let i = 0;
    while i < n {
        total = total + helper(i);
        i = i + 1;
    }
    return total;
}
func helper(x) {
    if x % 2 == 0 { return x * x; }
    return x;
}
"""


def expected(n):
    return sum(i * i if i % 2 == 0 else i for i in range(n))


class TestInstrumentation:
    def test_points_inserted_at_entry_and_returns(self):
        program = instrument_program(parse_minic(SOURCE), ["helper"])
        helper = program.function("helper")
        assert isinstance(helper.body[0], MigrationPointInstr)
        assert helper.body[0].tag == "entry"
        # One point before each of the two Rets (plus entry).
        points = [i for i in helper.body if isinstance(i, MigrationPointInstr)]
        rets = [i for i in helper.body if isinstance(i, Ret)]
        assert len(points) == 1 + len(rets)
        # Unselected functions untouched.
        assert not any(
            isinstance(i, MigrationPointInstr)
            for i in program.function("main").body
        )

    def test_instrumented_program_computes_the_same(self):
        plain = MigratableVM(compile_program(parse_minic(SOURCE))).run(10)
        instrumented = instrument_program(parse_minic(SOURCE), ["helper", "main"])
        result = MigratableVM(compile_program(instrumented)).run(10)
        assert result == plain == expected(10)

    def test_jump_targets_survive_insertion(self):
        # main's while loop uses @pc jumps; instrumenting main shifts
        # every instruction, and the loop must still terminate/compute.
        instrumented = instrument_program(parse_minic(SOURCE), ["main"])
        result = MigratableVM(compile_program(instrumented)).run(7)
        assert result == expected(7)

    def test_migrations_fire_at_inserted_points(self):
        instrumented = instrument_program(parse_minic(SOURCE), ["helper"])
        compiled = compile_program(instrumented)

        def ping_pong(vm, _fn, _tag, _point):
            vm.migrate("aarch64" if vm.isa == "x86_64" else "x86_64")

        vm = MigratableVM(compiled, migration_hook=ping_pong)
        result = vm.run(8)
        assert result == expected(8)
        # Every call passes the entry point; even-x calls also pass the
        # fall-through return point (odd x branches straight to its
        # Ret, bypassing that return's guard — see instrument_program).
        assert vm.migrations == 8 + 4

    def test_idempotent_on_already_instrumented(self):
        once = instrument_program(parse_minic(SOURCE), ["helper"])
        twice = instrument_program(once, ["helper"])
        assert len(twice.function("helper").body) == len(once.function("helper").body)

    def test_unknown_function_rejected(self):
        with pytest.raises(VMError, match="undefined"):
            instrument_program(parse_minic(SOURCE), ["ghost"])
