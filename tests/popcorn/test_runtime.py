"""Unit tests for the Popcorn runtime (thread migration on the platform)."""

import pytest

from repro.hardware import paper_testbed
from repro.popcorn import (
    DSM,
    CType,
    ISAImage,
    LivenessMetadata,
    MachineState,
    MigrationError,
    MigrationPoint,
    MultiISABinary,
    PopcornRuntime,
    StateTransformer,
    allocate_locations,
)
from repro.types import Target


def make_runtime(with_dsm=False, isas=("x86_64", "aarch64")):
    platform = paper_testbed()
    live_vars = allocate_locations(
        [("i", CType.I64), ("x", CType.F64), ("p", CType.PTR)]
    )
    metadata = LivenessMetadata([MigrationPoint(1, "kernel", 0, tuple(live_vars))])
    dsm = None
    if with_dsm:
        dsm = DSM(platform.sim, platform.ethernet)
        dsm.add_node("x86")
        dsm.add_node("arm")
    runtime = PopcornRuntime(platform, metadata, dsm=dsm)
    images = {
        isa: ISAImage(isa, 100_000, 10_000, 2_000) for isa in isas
    }
    binary = MultiISABinary("app", images=images)
    transformer = StateTransformer(metadata)
    point = metadata.point(1)
    frame = transformer.build_frame(
        "kernel", point, {"i": 5, "x": 2.5, "p": 0xDEAD}, "x86_64"
    )
    state = MachineState(isa="x86_64", frames=[frame])
    return platform, runtime, binary, state


class TestSpawn:
    def test_spawn_assigns_ids(self):
        _platform, runtime, binary, state = make_runtime()
        t1 = runtime.spawn_thread(binary, state.copy())
        t2 = runtime.spawn_thread(binary, state.copy())
        assert t1.thread_id != t2.thread_id

    def test_spawn_on_fpga_rejected(self):
        _platform, runtime, binary, state = make_runtime()
        with pytest.raises(MigrationError):
            runtime.spawn_thread(binary, state, Target.FPGA)

    def test_state_isa_must_match_node(self):
        _platform, runtime, binary, state = make_runtime()
        with pytest.raises(MigrationError):
            runtime.spawn_thread(binary, state, Target.ARM)

    def test_binary_must_support_state_isa(self):
        _platform, runtime, binary, state = make_runtime(isas=("aarch64",))
        with pytest.raises(MigrationError):
            runtime.spawn_thread(binary, state)


class TestMigrate:
    def test_migration_moves_thread_and_transforms_state(self):
        platform, runtime, binary, state = make_runtime()
        thread = runtime.spawn_thread(binary, state)
        done = runtime.migrate(thread, Target.ARM)
        platform.sim.run_until_event(done)
        assert thread.node is Target.ARM
        assert thread.isa == "aarch64"
        assert thread.migration_count == 1
        assert platform.now > 0  # consumed simulated time

    def test_round_trip_restores_layout(self):
        platform, runtime, binary, state = make_runtime()
        original = state.copy()
        thread = runtime.spawn_thread(binary, state)
        platform.sim.run_until_event(runtime.migrate(thread, Target.ARM))
        platform.sim.run_until_event(runtime.migrate(thread, Target.X86))
        assert thread.isa == "x86_64"
        assert thread.state.frames[0].registers == original.frames[0].registers
        assert thread.state.frames[0].stack == original.frames[0].stack

    def test_migrate_to_current_node_is_instant(self):
        platform, runtime, binary, state = make_runtime()
        thread = runtime.spawn_thread(binary, state)
        done = runtime.migrate(thread, Target.X86)
        platform.sim.run_until_event(done)
        assert platform.now == 0.0
        assert thread.migration_count == 0

    def test_migrate_to_fpga_rejected(self):
        _platform, runtime, binary, state = make_runtime()
        thread = runtime.spawn_thread(binary, state)
        with pytest.raises(MigrationError):
            runtime.migrate(thread, Target.FPGA)

    def test_migration_to_unsupported_isa_rejected(self):
        platform, runtime, _binary, state = make_runtime()
        x86_only = MultiISABinary(
            "x86only", images={"x86_64": ISAImage("x86_64", 1000, 100)}
        )
        thread = runtime.spawn_thread(x86_only, state)
        with pytest.raises(MigrationError):
            runtime.migrate(thread, Target.ARM)

    def test_dirty_pages_move_through_dsm(self):
        platform, runtime, binary, state = make_runtime(with_dsm=True)
        thread = runtime.spawn_thread(binary, state)
        addrs = [0x9000 + i * 4096 for i in range(8)]
        runtime.dsm.seed_pages("x86", addrs)
        thread.dirty_addresses = list(addrs)
        platform.sim.run_until_event(runtime.migrate(thread, Target.ARM))
        assert runtime.dsm.stats.page_transfers == 8
        assert thread.dirty_addresses == []  # consumed by the migration

    def test_migration_cost_estimate_is_lower_bound(self):
        platform, runtime, binary, state = make_runtime()
        estimate = runtime.migration_overhead_seconds(state)
        thread = runtime.spawn_thread(binary, state)
        platform.sim.run_until_event(runtime.migrate(thread, Target.ARM))
        assert platform.now >= estimate * 0.99

    def test_migration_consumes_source_cpu(self):
        platform, runtime, binary, state = make_runtime()
        thread = runtime.spawn_thread(binary, state)
        platform.sim.run_until_event(runtime.migrate(thread, Target.ARM))
        assert platform.x86.cpu.utilization() > 0
