"""Unit + property tests for migration points and the state transformer."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.popcorn import (
    CType,
    Frame,
    LivenessMetadata,
    MachineState,
    MetadataError,
    MigrationPoint,
    RegisterLoc,
    StackLoc,
    StateTransformer,
    TransformError,
    allocate_locations,
)


# -- CType wire encoding -------------------------------------------------------
class TestCType:
    @pytest.mark.parametrize(
        "ctype,value",
        [
            (CType.I32, -(2**31)),
            (CType.I32, 2**31 - 1),
            (CType.I64, -(2**63)),
            (CType.I64, 2**63 - 1),
            (CType.PTR, 0xFFFF_FFFF_FFFF_FFFF),
            (CType.F64, 3.141592653589793),
            (CType.F32, 1.5),
        ],
    )
    def test_pack_unpack_round_trip(self, ctype, value):
        assert CType.unpack(ctype, CType.pack(ctype, value)) == value

    def test_slots_are_8_bytes(self):
        for ctype in CType.ALL:
            assert len(CType.pack(ctype, 0)) == 8

    def test_sizes(self):
        assert CType.size(CType.I32) == 4
        assert CType.size(CType.F64) == 8
        with pytest.raises(MetadataError):
            CType.size("i128")

    @given(st.floats(allow_nan=False, allow_infinity=True))
    @settings(max_examples=50, deadline=None)
    def test_f64_exact_round_trip(self, value):
        assert CType.unpack(CType.F64, CType.pack(CType.F64, value)) == value


# -- location allocation ---------------------------------------------------------
class TestAllocateLocations:
    def test_layouts_differ_across_isas(self):
        # x86-64 has 5 callee-saved registers, AArch64 has 10: with 8
        # integer variables, x86 spills and ARM does not.
        live_vars = allocate_locations([(f"v{i}", CType.I64) for i in range(8)])
        x86_spills = sum(
            isinstance(v.location("x86_64"), StackLoc) for v in live_vars
        )
        arm_spills = sum(
            isinstance(v.location("aarch64"), StackLoc) for v in live_vars
        )
        assert x86_spills == 3 and arm_spills == 0

    def test_floats_always_spill(self):
        (var,) = allocate_locations([("x", CType.F64)])
        assert isinstance(var.location("x86_64"), StackLoc)
        assert isinstance(var.location("aarch64"), StackLoc)

    def test_no_two_vars_share_a_location(self):
        live_vars = allocate_locations(
            [(f"v{i}", CType.I64 if i % 2 else CType.F64) for i in range(12)]
        )
        for isa in ("x86_64", "aarch64"):
            locations = [str(v.location(isa)) for v in live_vars]
            assert len(locations) == len(set(locations))

    def test_reserve_regs_holds_back_registers(self):
        live_vars = allocate_locations(
            [(f"v{i}", CType.I64) for i in range(10)], reserve_regs=3
        )
        x86_regs = {
            v.location("x86_64").register
            for v in live_vars
            if isinstance(v.location("x86_64"), RegisterLoc)
        }
        assert len(x86_regs) == 2  # 5 callee-saved minus 3 reserved

    def test_deterministic(self):
        spec = [(f"v{i}", CType.I64) for i in range(6)]
        assert allocate_locations(spec) == allocate_locations(spec)


# -- metadata ---------------------------------------------------------------
class TestMetadata:
    def test_duplicate_point_ids_rejected(self):
        point = MigrationPoint(1, "f", 0, tuple(allocate_locations([("a", "i64")])))
        with pytest.raises(MetadataError):
            LivenessMetadata([point, point])

    def test_lookup_by_function(self):
        points = [
            MigrationPoint(1, "f", 0, ()),
            MigrationPoint(2, "g", 0, ()),
            MigrationPoint(3, "f", 8, ()),
        ]
        metadata = LivenessMetadata(points)
        assert [p.point_id for p in metadata.points_in("f")] == [1, 3]
        assert metadata.points_in("missing") == []
        with pytest.raises(MetadataError):
            metadata.point(99)

    def test_frame_bytes_counts_spills(self):
        live_vars = allocate_locations([(f"v{i}", CType.F64) for i in range(3)])
        point = MigrationPoint(1, "f", 0, tuple(live_vars))
        assert point.frame_bytes("x86_64") == 3 * 8 + 8

    def test_bad_stack_offset_rejected(self):
        with pytest.raises(MetadataError):
            StackLoc(-8)
        with pytest.raises(MetadataError):
            StackLoc(12)


# -- the transformer ----------------------------------------------------------
VALUE_STRATEGY = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31 - 1).map(lambda v: ("i32", v)),
    st.integers(min_value=-(2**63), max_value=2**63 - 1).map(lambda v: ("i64", v)),
    st.integers(min_value=0, max_value=2**64 - 1).map(lambda v: ("ptr", v)),
    st.floats(allow_nan=False).map(lambda v: ("f64", v)),
)


def build_state(var_specs, depth=1):
    """A metadata + state pair with `depth` frames of the given variables."""
    live_vars = allocate_locations([(f"v{i}", t) for i, (t, _v) in enumerate(var_specs)])
    points = [
        MigrationPoint(i + 1, f"fn{i}", 0, tuple(live_vars)) for i in range(depth)
    ]
    metadata = LivenessMetadata(points)
    transformer = StateTransformer(metadata)
    values = {f"v{i}": v for i, (_t, v) in enumerate(var_specs)}
    frames = [
        transformer.build_frame(f"fn{i}", points[i], values, "x86_64", 0x1000 + i)
        for i in range(depth)
    ]
    return transformer, MachineState(isa="x86_64", frames=frames), values


class TestTransformer:
    @given(
        specs=st.lists(VALUE_STRATEGY, min_size=1, max_size=12),
        depth=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_round_trip_is_bitwise_identity(self, specs, depth):
        transformer, state, _values = build_state(specs, depth)
        back = transformer.transform(
            transformer.transform(state, "aarch64"), "x86_64"
        )
        assert back.depth == state.depth
        for orig, restored in zip(state.frames, back.frames):
            assert restored.registers == orig.registers
            assert restored.stack == orig.stack
            assert restored.return_address == orig.return_address

    @given(specs=st.lists(VALUE_STRATEGY, min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_values_preserved_on_destination(self, specs):
        transformer, state, values = build_state(specs)
        on_arm = transformer.transform(state, "aarch64")
        assert on_arm.isa == "aarch64"
        recovered = transformer.read_live_values(on_arm.frames[0], "aarch64")
        assert recovered == values
        assert transformer.states_equivalent(state, on_arm)

    def test_transform_to_same_isa_is_copy(self):
        transformer, state, _ = build_state([("i64", 7)])
        copy = transformer.transform(state, "x86_64")
        assert copy is not state
        assert copy.frames[0].registers == state.frames[0].registers

    def test_source_state_not_mutated(self):
        transformer, state, _ = build_state([("i64", 7), ("f64", 1.5)])
        snapshot = state.copy()
        transformer.transform(state, "aarch64")
        assert state.frames[0].registers == snapshot.frames[0].registers
        assert state.frames[0].stack == snapshot.frames[0].stack

    def test_missing_register_detected(self):
        transformer, state, _ = build_state([("i64", 7)])
        state.frames[0].registers.clear()
        with pytest.raises(TransformError, match="expected in"):
            transformer.transform(state, "aarch64")

    def test_wrong_function_detected(self):
        transformer, state, _ = build_state([("i64", 7)])
        state.frames[0] = Frame(
            function="not-the-function",
            point_id=1,
            registers=state.frames[0].registers,
            stack=state.frames[0].stack,
        )
        with pytest.raises(TransformError, match="belongs to"):
            transformer.transform(state, "aarch64")

    def test_unknown_isa_rejected(self):
        transformer, state, _ = build_state([("i64", 7)])
        with pytest.raises(Exception):
            transformer.transform(state, "riscv64")

    def test_missing_value_on_encode_rejected(self):
        transformer, state, _ = build_state([("i64", 7)])
        point = transformer.metadata.point(1)
        with pytest.raises(TransformError, match="missing value"):
            transformer.build_frame("fn0", point, {}, "x86_64")

    def test_stack_pointer_recomputed_and_aligned(self):
        transformer, state, _ = build_state(
            [("f64", 1.0)] * 6, depth=3
        )  # all spilled: frame sizes differ per ISA only via padding
        on_arm = transformer.transform(state, "aarch64")
        assert on_arm.stack_pointer % 16 == 0
        assert on_arm.stack_pointer < MachineState.stack_pointer

    def test_cost_model_scales_with_state(self):
        transformer, small, _ = build_state([("i64", 1)])
        _, large, _ = build_state([("i64", 1)] * 12, depth=4)
        assert transformer.transform_cost_seconds(
            large
        ) > transformer.transform_cost_seconds(small)
        assert transformer.transform_cost_seconds(small) > 0

    def test_states_equivalent_rejects_different_depths(self):
        transformer, one, _ = build_state([("i64", 1)])
        _, two, _ = build_state([("i64", 1)], depth=2)
        assert not transformer.states_equivalent(one, two)

    def test_size_accounting(self):
        _, state, _ = build_state([("i64", 1)] * 4, depth=2)
        assert state.size_bytes() > 0
        assert state.live_value_count() == 8

    def test_empty_state_has_no_active_frame(self):
        state = MachineState(isa="x86_64", frames=[])
        with pytest.raises(TransformError):
            _ = state.active_frame
        assert not math.isnan(state.size_bytes())
