"""Unit + property tests for the XELF binary container."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CodeModel, compile_multi_isa
from repro.popcorn import (
    ISAImage,
    LivenessMetadata,
    MultiISABinary,
    Symbol,
    SymbolKind,
    XELFError,
    dump_xelf,
    load_xelf,
    read_xelf,
    write_xelf,
)


def compiled(name="app", loc=500, functions=("kernel",)):
    return compile_multi_isa(CodeModel(name, loc, tuple(functions)))


class TestRoundTrip:
    def test_pipeline_artifact_round_trips(self):
        original = compiled()
        payload = write_xelf(original.binary, original.metadata)
        binary, metadata = read_xelf(payload)

        assert binary.name == original.binary.name
        assert binary.isas == original.binary.isas
        assert binary.addresses == original.binary.addresses
        assert binary.size_bytes == original.binary.size_bytes
        for isa in binary.isas:
            assert binary.images[isa] == original.binary.images[isa]
        assert len(metadata) == len(original.metadata)
        for point_id, point in original.metadata.points.items():
            restored = metadata.point(point_id)
            assert restored.function == point.function
            assert restored.offset == point.offset
            assert restored.live_vars == point.live_vars

    def test_metadata_optional(self):
        original = compiled()
        binary, metadata = read_xelf(write_xelf(original.binary))
        assert len(metadata) == 0
        assert binary.name == original.binary.name

    def test_file_round_trip(self, tmp_path):
        original = compiled("fileapp", loc=900)
        path = tmp_path / "fileapp.xelf"
        size = dump_xelf(path, original.binary, original.metadata)
        assert path.stat().st_size == size
        binary, metadata = load_xelf(path)
        assert binary.name == "fileapp"
        assert len(metadata) == len(original.metadata)

    def test_transformer_works_on_reloaded_metadata(self):
        """The reloaded metadata drives a real state transformation."""
        from repro.popcorn import MachineState, StateTransformer
        from repro.popcorn.migration_points import CType

        original = compiled()
        _binary, metadata = read_xelf(write_xelf(original.binary, original.metadata))
        transformer = StateTransformer(metadata)
        point = metadata.points_in("kernel")[0]
        values = {
            var.name: (1.25 if CType.is_float(var.ctype) else 3)
            for var in point.live_vars
        }
        frame = transformer.build_frame("kernel", point, values, "x86_64")
        state = MachineState(isa="x86_64", frames=[frame])
        back = transformer.transform(transformer.transform(state, "aarch64"), "x86_64")
        assert back.frames[0].registers == frame.registers
        assert back.frames[0].stack == frame.stack

    @given(
        loc=st.integers(min_value=1, max_value=5000),
        n_functions=st.integers(min_value=1, max_value=5),
        name=st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, loc, n_functions, name):
        original = compiled(name, loc, tuple(f"fn{i}" for i in range(n_functions)))
        binary, metadata = read_xelf(write_xelf(original.binary, original.metadata))
        assert binary.name == name
        assert binary.addresses == original.binary.addresses
        assert len(metadata) == len(original.metadata)


class TestCorruption:
    def payload(self):
        original = compiled()
        return write_xelf(original.binary, original.metadata)

    def test_bad_magic_rejected(self):
        data = b"ELF!" + self.payload()[4:]
        with pytest.raises(XELFError, match="magic"):
            read_xelf(data)

    def test_bad_version_rejected(self):
        data = bytearray(self.payload())
        data[4] = 99
        with pytest.raises(XELFError, match="version"):
            read_xelf(bytes(data))

    @pytest.mark.parametrize("cut", [5, 12, 40, -20, -1])
    def test_truncation_rejected(self, cut):
        data = self.payload()
        with pytest.raises(XELFError):
            read_xelf(data[:cut])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(XELFError, match="trailing"):
            read_xelf(self.payload() + b"\x00")

    def test_empty_rejected(self):
        with pytest.raises(XELFError):
            read_xelf(b"")

    def test_simple_manual_binary(self):
        binary = MultiISABinary(
            "manual",
            images={"x86_64": ISAImage("x86_64", 100, 50, 10)},
            symbols=[Symbol("f", SymbolKind.FUNCTION, {"x86_64": 64})],
        )
        restored, metadata = read_xelf(write_xelf(binary, LivenessMetadata([])))
        assert restored.isas == ("x86_64",)
        assert restored.symbols[0].name == "f"
        assert len(metadata) == 0
