"""Unit tests for multi-ISA binary artifacts and symbol alignment."""

import pytest

from repro.popcorn import (
    ISAImage,
    LayoutError,
    MultiISABinary,
    Symbol,
    SymbolKind,
    align_symbols,
)


def sym(name, x86=100, arm=120, kind=SymbolKind.FUNCTION, align=16):
    return Symbol(name, kind, {"x86_64": x86, "aarch64": arm}, align=align)


class TestSymbol:
    def test_max_size(self):
        assert sym("f", x86=100, arm=120).max_size() == 120

    def test_validation(self):
        with pytest.raises(LayoutError):
            Symbol("f", "weird-kind", {"x86_64": 1})
        with pytest.raises(LayoutError):
            Symbol("f", SymbolKind.FUNCTION, {"x86_64": 1}, align=3)
        with pytest.raises(LayoutError):
            Symbol("f", SymbolKind.FUNCTION, {})
        with pytest.raises(LayoutError):
            Symbol("f", SymbolKind.FUNCTION, {"x86_64": -5})


class TestAlignment:
    def test_addresses_respect_alignment(self):
        addresses = align_symbols(
            [sym("a", align=16), sym("b", x86=7, arm=9, align=64), sym("c", align=16)]
        )
        assert addresses["a"] % 16 == 0
        assert addresses["b"] % 64 == 0
        assert addresses["c"] % 16 == 0

    def test_slots_reserve_max_isa_size(self):
        addresses = align_symbols(
            [sym("a", x86=100, arm=200, align=1), sym("b", align=1)],
            base_address=0,
        )
        # b starts after a's largest (ARM) version.
        assert addresses["b"] - addresses["a"] >= 200

    def test_no_overlap(self):
        symbols = [sym(f"s{i}", x86=10 * i + 1, arm=12 * i + 1) for i in range(20)]
        addresses = align_symbols(symbols)
        spans = sorted(
            (addresses[s.name], addresses[s.name] + s.max_size()) for s in symbols
        )
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_duplicate_symbol_rejected(self):
        with pytest.raises(LayoutError):
            align_symbols([sym("dup"), sym("dup")])

    def test_deterministic(self):
        symbols = [sym(f"s{i}") for i in range(10)]
        assert align_symbols(symbols) == align_symbols(symbols)


class TestMultiISABinary:
    def make_binary(self):
        return MultiISABinary(
            "app",
            images={
                "x86_64": ISAImage("x86_64", 1000, 200, 50),
                "aarch64": ISAImage("aarch64", 1100, 200, 50),
            },
            symbols=[sym("main"), sym("kernel")],
        )

    def test_size_is_sum_of_images(self):
        binary = self.make_binary()
        assert binary.size_bytes == (1000 + 200 + 50) + (1100 + 200 + 50)

    def test_addresses_shared_across_isas(self):
        binary = self.make_binary()
        # One address map for all ISAs: the defining property.
        assert binary.address_of("main") == binary.addresses["main"]
        assert binary.supports("x86_64") and binary.supports("aarch64")
        assert not binary.supports("riscv64")

    def test_unknown_symbol_rejected(self):
        with pytest.raises(LayoutError):
            self.make_binary().address_of("ghost")

    def test_image_isa_mismatch_rejected(self):
        with pytest.raises(LayoutError):
            MultiISABinary("app", images={"x86_64": ISAImage("aarch64", 1, 1)})

    def test_empty_images_rejected(self):
        with pytest.raises(LayoutError):
            MultiISABinary("app", images={})

    def test_symbol_missing_isa_size_rejected(self):
        with pytest.raises(LayoutError):
            MultiISABinary(
                "app",
                images={
                    "x86_64": ISAImage("x86_64", 1, 1),
                    "aarch64": ISAImage("aarch64", 1, 1),
                },
                symbols=[Symbol("f", SymbolKind.FUNCTION, {"x86_64": 10})],
            )

    def test_isas_sorted(self):
        assert self.make_binary().isas == ("aarch64", "x86_64")
