"""Tests for the migratable VM: execution migration, end to end.

Programs run under arbitrary migration schedules must produce results
bit-identical to an unmigrated run — the transparency guarantee of the
whole system, exercised at the instruction level.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.popcorn.migration_points import CType
from repro.popcorn.vm import (
    BinOp,
    Branch,
    Call,
    Const,
    Function,
    Jump,
    Load,
    MigratableVM,
    MigrationPointInstr,
    Program,
    Ret,
    Store,
    VMError,
    compile_program,
)

I64 = CType.I64


def sum_to_n_program() -> Program:
    """``sum(n) = 0 + 1 + ... + n`` with a migration point per iteration."""
    body = (
        Const("acc", 0),                       # 0
        Const("i", 0),                         # 1
        # loop:
        MigrationPointInstr("loop-top"),       # 2
        BinOp("gt", "t", "i", "n"),            # 3
        Branch("t", "@8"),                     # 4 -> exit
        BinOp("add", "acc", "acc", "i"),       # 5
        Const("one", 1),                       # 6  (re-set each iter; harmless)
        Jump("@9"),                            # 7 -> increment
        Ret("acc"),                            # 8
        BinOp("add", "i", "i", "one"),         # 9
        Jump("@2"),                            # 10
    )
    fn = Function(
        name="sum_to_n",
        params=("n",),
        variables=(("n", I64), ("acc", I64), ("i", I64), ("t", I64), ("one", I64)),
        body=body,
    )
    return Program(functions={fn.name: fn}, entry="sum_to_n")


def factorial_program() -> Program:
    """Recursive factorial: multi-frame stacks cross the migration."""
    body = (
        MigrationPointInstr("entry"),          # 0
        Const("one", 1),                       # 1
        BinOp("le", "t", "n", "one"),          # 2
        Branch("t", "@8"),                     # 3
        BinOp("sub", "m", "n", "one"),         # 4
        Call("r", "fact", ("m",)),             # 5
        BinOp("mul", "r", "r", "n"),           # 6
        Ret("r"),                              # 7
        Ret("one"),                            # 8
    )
    fn = Function(
        name="fact",
        params=("n",),
        variables=(("n", I64), ("one", I64), ("t", I64), ("m", I64), ("r", I64)),
        body=body,
    )
    return Program(functions={fn.name: fn}, entry="fact")


def heap_sum_program(n_words: int) -> Program:
    """Fill heap[0:n] with squares, then sum them back (Load/Store)."""
    body = (
        Const("i", 0),
        Const("acc", 0),
        Const("one", 1),
        # fill loop @3:
        BinOp("ge", "t", "i", "n"),            # 3
        Branch("t", "@9"),                     # 4
        BinOp("mul", "sq", "i", "i"),          # 5
        Store("sq", "i"),                      # 6
        BinOp("add", "i", "i", "one"),         # 7
        Jump("@3"),                            # 8
        Const("i", 0),                         # 9
        # sum loop @10:
        MigrationPointInstr("sum-top"),        # 10
        BinOp("ge", "t", "i", "n"),            # 11
        Branch("t", "@17"),                    # 12
        Load("v", "i"),                        # 13
        BinOp("add", "acc", "acc", "v"),       # 14
        BinOp("add", "i", "i", "one"),         # 15
        Jump("@10"),                           # 16
        Ret("acc"),                            # 17
    )
    fn = Function(
        name="heap_sum",
        params=("n",),
        variables=(
            ("n", I64), ("i", I64), ("acc", I64), ("one", I64),
            ("t", I64), ("sq", I64), ("v", I64),
        ),
        body=body,
    )
    return Program(functions={fn.name: fn}, entry="heap_sum")


def run(program, *args, hook=None, isa="x86_64"):
    vm = MigratableVM(compile_program(program), isa=isa, migration_hook=hook)
    return vm.run(*args), vm


class TestExecution:
    def test_sum_to_n(self):
        result, _vm = run(sum_to_n_program(), 10)
        assert result == 55

    def test_factorial_recursion(self):
        result, _vm = run(factorial_program(), 10)
        assert result == 3628800

    def test_heap_load_store(self):
        result, _vm = run(heap_sum_program(8), 20)
        assert result == sum(i * i for i in range(20))

    def test_runs_identically_on_both_isas(self):
        for isa in ("x86_64", "aarch64"):
            result, _vm = run(factorial_program(), 8, isa=isa)
            assert result == 40320

    def test_uninitialized_read_rejected(self):
        fn = Function(
            "f", params=(), variables=(("x", I64),), body=(Ret("x"),)
        )
        # Locals are zero-initialized at frame entry, so this returns 0 —
        # but reading an *undeclared* variable is an error.
        result, _vm = run(Program({"f": fn}, "f"))
        assert result == 0
        bad = Function("g", params=(), variables=(("x", I64),), body=(Ret("y"),))
        with pytest.raises(VMError, match="undeclared"):
            run(Program({"g": bad}, "g"))

    def test_division_by_zero(self):
        fn = Function(
            "f",
            params=(),
            variables=(("a", I64), ("b", I64), ("c", I64)),
            body=(Const("a", 1), Const("b", 0), BinOp("div", "c", "a", "b"), Ret("c")),
        )
        with pytest.raises(VMError, match="division"):
            run(Program({"f": fn}, "f"))

    def test_heap_bounds_checked(self):
        program = heap_sum_program(4)
        vm = MigratableVM(compile_program(program), heap_words=4)
        with pytest.raises(VMError, match="out of bounds"):
            vm.run(10)

    def test_step_budget(self):
        fn = Function(
            "spin", params=(), variables=(("x", I64),), body=(Jump("@0"), Ret("x"))
        )
        vm = MigratableVM(compile_program(Program({"spin": fn}, "spin")), max_steps=100)
        with pytest.raises(VMError, match="budget"):
            vm.run()

    def test_missing_ret_detected(self):
        fn = Function("f", params=(), variables=(("x", I64),), body=(Const("x", 1),))
        with pytest.raises(VMError, match="fell off"):
            run(Program({"f": fn}, "f"))

    def test_i32_wraps_like_c(self):
        fn = Function(
            "f",
            params=(),
            variables=(("a", "i32"), ("b", "i32"), ("c", "i32")),
            body=(
                Const("a", 2**31 - 1),
                Const("b", 1),
                BinOp("add", "c", "a", "b"),
                Ret("c"),
            ),
        )
        result, _vm = run(Program({"f": fn}, "f"))
        assert result == -(2**31)


class TestMigration:
    def test_migrate_every_point_same_result(self):
        def ping_pong(vm, _fn, _tag, _point):
            vm.migrate("aarch64" if vm.isa == "x86_64" else "x86_64")

        plain, _ = run(sum_to_n_program(), 100)
        migrated, vm = run(sum_to_n_program(), 100, hook=ping_pong)
        assert migrated == plain == 5050
        assert vm.migrations == 102  # i = 0..100 plus the exit check visit

    def test_migration_with_deep_recursion(self):
        calls = {"n": 0}

        def migrate_at_depth(vm, _fn, _tag, _point):
            calls["n"] += 1
            if calls["n"] % 3 == 0:
                vm.migrate("aarch64" if vm.isa == "x86_64" else "x86_64")

        plain, _ = run(factorial_program(), 12)
        migrated, vm = run(factorial_program(), 12, hook=migrate_at_depth)
        assert migrated == plain == 479001600
        assert vm.migrations >= 2

    def test_heap_survives_migration(self):
        # Heap memory is the DSM-shared part: untouched by the
        # register/stack transformation.
        def migrate_once(vm, _fn, tag, _point):
            if vm.migrations == 0:
                vm.migrate("aarch64")

        plain, _ = run(heap_sum_program(64), 50)
        migrated, vm = run(heap_sum_program(64), 50, hook=migrate_once)
        assert migrated == plain
        assert vm.isa == "aarch64"

    @given(
        n=st.integers(min_value=0, max_value=60),
        schedule=st.lists(st.booleans(), min_size=0, max_size=80),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_migration_schedule_is_transparent(self, n, schedule):
        """Property: a random migrate/stay decision at every migration
        point never changes the program's result."""
        it = iter(schedule)

        def scheduled(vm, _fn, _tag, _point):
            if next(it, False):
                vm.migrate("aarch64" if vm.isa == "x86_64" else "x86_64")

        plain, _ = run(sum_to_n_program(), n)
        migrated, _ = run(sum_to_n_program(), n, hook=scheduled)
        assert migrated == plain == n * (n + 1) // 2

    def test_vm_state_is_transformable_snapshot(self):
        snapshots = []

        def capture(vm, _fn, _tag, point):
            if len(snapshots) == 3:
                state = vm.state
                snapshots.append(
                    vm.transformer.read_live_values(state.frames[-1], vm.isa)
                )
            else:
                snapshots.append(None)

        run(sum_to_n_program(), 10, hook=capture)
        values = snapshots[3]
        assert values is not None
        assert values["i"] == 3  # fourth visit to the loop top
        assert values["acc"] == 0 + 1 + 2


class TestWorkingSetAccounting:
    def test_clean_thread_migrates_no_pages(self):
        def migrate_once(vm, _fn, _tag, _point):
            if vm.migrations == 0:
                vm.migrate("aarch64")

        _result, vm = run(sum_to_n_program(), 20, hook=migrate_once)
        assert vm.pages_migrated == 0  # no Store instructions executed

    def test_dirty_pages_counted_once_per_migration(self):
        def migrate_once(vm, _fn, _tag, _point):
            if vm.migrations == 0:
                vm.migrate("aarch64")

        # heap_sum writes n words before its migration point; n=50
        # words span one 512-word page.
        _result, vm = run(heap_sum_program(64), 50, hook=migrate_once)
        assert vm.pages_migrated == 1

    def test_larger_working_sets_move_more_pages(self):
        def migrate_once(vm, _fn, _tag, _point):
            if vm.migrations == 0:
                vm.migrate("aarch64")

        # 1200 words -> 3 pages of 512 words.
        _result, vm = run(heap_sum_program(2048), 1200, hook=migrate_once)
        assert vm.pages_migrated == 3

    def test_dirty_set_resets_between_migrations(self):
        def ping_pong(vm, _fn, _tag, _point):
            vm.migrate("aarch64" if vm.isa == "x86_64" else "x86_64")

        # All Stores happen before the (single) migration point in the
        # sum loop, so only the first hop moves the page; later hops
        # move nothing new.
        _result, vm = run(heap_sum_program(64), 30, hook=ping_pong)
        assert vm.pages_migrated == 1


class TestProgramValidation:
    def test_duplicate_variables_rejected(self):
        with pytest.raises(VMError, match="duplicate"):
            Function("f", params=(), variables=(("x", I64), ("x", I64)), body=(Ret(),))

    def test_undeclared_param_rejected(self):
        with pytest.raises(VMError, match="params not declared"):
            Function("f", params=("p",), variables=(("x", I64),), body=(Ret(),))

    def test_bad_entry_rejected(self):
        fn = Function("f", params=(), variables=(("x", I64),), body=(Ret(),))
        with pytest.raises(VMError, match="entry"):
            Program({"f": fn}, entry="ghost")

    def test_undefined_named_label_rejected_at_compile(self):
        fn = Function(
            "f", params=(), variables=(("x", I64),), body=(Jump("nowhere"), Ret())
        )
        with pytest.raises(VMError, match="undefined label"):
            compile_program(Program({"f": fn}, "f"))

    def test_wrong_arity_call(self):
        callee = Function("g", params=("a",), variables=(("a", I64),), body=(Ret("a"),))
        caller = Function(
            "f",
            params=(),
            variables=(("r", I64),),
            body=(Call("r", "g", ()), Ret("r")),
        )
        with pytest.raises(VMError, match="expected 1 args"):
            run(Program({"f": caller, "g": callee}, "f"))
