"""Tests for the MiniC front end: parse, compile, run, migrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.popcorn.minic import MiniCError, compile_minic, parse_minic
from repro.popcorn.vm import MigratableVM

FACT = """
// recursive factorial with a migration point on every activation
func fact(n) {
    migrate_point entry;
    if n <= 1 { return 1; }
    return n * fact(n - 1);
}
"""

FIB = """
func fib(n) {
    if n < 2 { return n; }
    return fib(n - 1) + fib(n - 2);
}
"""

GCD = """
func gcd(a, b) {
    while b != 0 {
        migrate_point loop;
        let t = b;
        b = a % b;
        a = t;
    }
    return a;
}
"""

COLLATZ = """
func collatz(n) {
    let steps = 0;
    while n != 1 {
        migrate_point;
        if n % 2 == 0 { n = n / 2; } else { n = 3 * n + 1; }
        steps = steps + 1;
    }
    return steps;
}
"""

HEAP = """
// store squares into the heap, then sum them back
func heap_sum(n) {
    let i = 0;
    while i < n {
        store(i, i * i);
        i = i + 1;
    }
    let acc = 0;
    i = 0;
    while i < n {
        migrate_point;
        acc = acc + load(i);
        i = i + 1;
    }
    return acc;
}
"""


def run_source(source: str, *args, hook=None):
    vm = MigratableVM(compile_minic(source), migration_hook=hook)
    return vm.run(*args), vm


class TestPrograms:
    def test_factorial(self):
        result, _vm = run_source(FACT, 10)
        assert result == 3628800

    def test_fibonacci(self):
        result, _vm = run_source(FIB, 15)
        assert result == 610

    def test_gcd(self):
        assert run_source(GCD, 1071, 462)[0] == 21
        assert run_source(GCD, 17, 5)[0] == 1

    def test_collatz(self):
        assert run_source(COLLATZ, 27)[0] == 111

    def test_heap_program(self):
        result, _vm = run_source(HEAP, 20)
        assert result == sum(i * i for i in range(20))

    def test_unary_minus_and_precedence(self):
        source = """
        func f(a, b) {
            return -a + b * 3 - (a + b) % 5;
        }
        """
        result, _vm = run_source(source, 7, 4)
        assert result == -7 + 4 * 3 - (7 + 4) % 5

    def test_implicit_return_zero(self):
        result, _vm = run_source("func f() { let x = 5; }")
        assert result == 0

    def test_multi_function_entry_is_first(self):
        source = """
        func main(n) { return helper(n) + 1; }
        func helper(n) { return n * 2; }
        """
        result, _vm = run_source(source, 10)
        assert result == 21

    def test_comments_ignored(self):
        result, _vm = run_source("// hi\nfunc f() { return 3; } // bye")
        assert result == 3


class TestMigrationThroughMiniC:
    def test_every_point_migration_preserves_results(self):
        def ping_pong(vm, _fn, _tag, _point):
            vm.migrate("aarch64" if vm.isa == "x86_64" else "x86_64")

        for source, args, expected in (
            (FACT, (11,), 39916800),
            (GCD, (252, 105), 21),
            (COLLATZ, (19,), 20),
            (HEAP, (25,), sum(i * i for i in range(25))),
        ):
            plain, _ = run_source(source, *args)
            migrated, vm = run_source(source, *args, hook=ping_pong)
            assert plain == migrated == expected
            assert vm.migrations > 0

    @given(
        a=st.integers(min_value=1, max_value=500),
        b=st.integers(min_value=1, max_value=500),
        schedule=st.lists(st.booleans(), max_size=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_gcd_under_random_schedules(self, a, b, schedule):
        import math

        it = iter(schedule)

        def scheduled(vm, _fn, _tag, _point):
            if next(it, False):
                vm.migrate("aarch64" if vm.isa == "x86_64" else "x86_64")

        result, _vm = run_source(GCD, a, b, hook=scheduled)
        assert result == math.gcd(a, b)


class TestErrors:
    @pytest.mark.parametrize(
        "source,message",
        [
            ("func f( { }", "bad parameter"),
            ("func f() { return x; }", "undeclared"),
            ("func f() { x = 1; }", "undeclared"),
            ("func f() { let x = 1 }", "expected"),
            ("func f() { } func f() { }", "redefined"),
            ("let x = 1;", "expected 'func'"),
            ("func f() { return g(); }", "undefined function"),
            ("", "no functions"),
            ("func f() { @ }", "lexical error"),
        ],
    )
    def test_bad_programs_rejected(self, source, message):
        with pytest.raises(MiniCError, match=message):
            compile_minic(source)

    def test_parse_only_api(self):
        program = parse_minic(FACT)
        assert program.entry == "fact"
        assert "fact" in program.functions
