"""Property tests pinning batched DSM migration to the per-page protocol.

``DSM.migrate_pages`` coalesces a working-set move into one link
busy-period and O(spans) directory work; ``migrate_pages_reference``
keeps the page-by-page protocol alive as the executable specification.
These tests drive both through identical histories (seeds, faults,
prior migrations) and assert they agree on every ``DSMStats`` counter,
every observable page state, and the migration completion time.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import ETHERNET_1GBPS, Link
from repro.popcorn import DSM, PageState
from repro.sim import Simulator

PAGE = 4096
NODES = ("x86", "arm", "fpga-host")
#: Page universe the generators draw from (page indices).
UNIVERSE = 24

nodes_st = st.sampled_from(NODES)
page_st = st.integers(min_value=0, max_value=UNIVERSE - 1)

#: One setup step: seed a contiguous run, fault a single page, or
#: migrate a working set (so spans exist before the measured call).
setup_op = st.one_of(
    st.tuples(
        st.just("seed"), nodes_st, page_st, st.integers(min_value=1, max_value=8)
    ),
    st.tuples(st.just("read"), nodes_st, page_st),
    st.tuples(st.just("write"), nodes_st, page_st),
    st.tuples(
        st.just("migrate"),
        st.tuples(nodes_st, nodes_st),
        page_st,
        st.integers(min_value=1, max_value=8),
    ),
)

#: The measured address list: contiguous ranges hit the span fast path,
#: raw address sets hit the per-page fallback — both must match.
addrs_st = st.one_of(
    st.tuples(page_st, st.integers(min_value=1, max_value=12)).map(
        lambda t: [(t[0] + i) * PAGE + 17 for i in range(t[1])]
    ),
    st.lists(
        st.integers(min_value=0, max_value=UNIVERSE * PAGE - 1),
        min_size=1,
        max_size=12,
    ),
)


def make_dsm():
    sim = Simulator()
    dsm = DSM(sim, Link(sim, ETHERNET_1GBPS), page_size=PAGE)
    for node in NODES:
        dsm.add_node(node)
    return sim, dsm


def apply_setup(sim, dsm, ops, use_reference):
    for op in ops:
        kind = op[0]
        if kind == "seed":
            _, node, page, npages = op
            npages = min(npages, UNIVERSE - page)
            dsm.seed_pages(node, [(page + i) * PAGE for i in range(npages)])
        elif kind == "read":
            sim.run_until_event(dsm.read(op[1], op[2] * PAGE))
        elif kind == "write":
            sim.run_until_event(dsm.write(op[1], op[2] * PAGE))
        else:
            _, (src, dst), page, npages = op
            npages = min(npages, UNIVERSE - page)
            addrs = [(page + i) * PAGE for i in range(npages)]
            migrate = (
                dsm.migrate_pages_reference if use_reference else dsm.migrate_pages
            )
            sim.run_until_event(migrate(src, dst, addrs))


def same_time(a, b):
    # One N-page transfer and N concurrent single-page transfers drain
    # an uncontended fair-share link at the same instant; the float
    # accumulation differs in the last ulp, so compare to 1e-9 relative.
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)


def observable_state(dsm):
    return {
        (node, page): dsm.page_state(node, page * PAGE)
        for node in NODES
        for page in range(UNIVERSE)
    }


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(setup_op, max_size=8),
    addrs=addrs_st,
    src=nodes_st,
    dst=nodes_st,
)
def test_batched_migration_equals_per_page_reference(ops, addrs, src, dst):
    sim_a, batched = make_dsm()
    sim_b, reference = make_dsm()
    apply_setup(sim_a, batched, ops, use_reference=False)
    apply_setup(sim_b, reference, ops, use_reference=True)
    # Identical histories must leave identical protocol state behind
    # regardless of which migration path ran — the precondition for
    # comparing the measured call.
    assert observable_state(batched) == observable_state(reference)
    assert batched.stats == reference.stats
    assert same_time(sim_a.now, sim_b.now)

    start = sim_a.now
    done_a = batched.migrate_pages(src, dst, addrs)
    done_b = reference.migrate_pages_reference(src, dst, addrs)
    pages_a = sim_a.run_until_event(done_a)
    pages_b = sim_b.run_until_event(done_b)

    assert pages_a == pages_b
    assert observable_state(batched) == observable_state(reference)
    assert batched.stats == reference.stats
    assert same_time(sim_a.now, sim_b.now)
    if batched.stats.page_transfers == 0:
        assert sim_a.now == start  # nothing on the wire -> instantaneous


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(setup_op, max_size=6),
    addrs=addrs_st,
    node=nodes_st,
    probe=page_st,
)
def test_faults_after_span_migration_match_reference(ops, addrs, node, probe):
    """A read/write fault inside a migrated span must behave exactly as
    if the pages had been claimed one by one."""
    sim_a, batched = make_dsm()
    sim_b, reference = make_dsm()
    apply_setup(sim_a, batched, ops, use_reference=False)
    apply_setup(sim_b, reference, ops, use_reference=True)
    sim_a.run_until_event(batched.migrate_pages("x86", "arm", addrs))
    sim_b.run_until_event(reference.migrate_pages_reference("x86", "arm", addrs))

    sim_a.run_until_event(batched.read(node, probe * PAGE))
    sim_b.run_until_event(reference.read(node, probe * PAGE))
    sim_a.run_until_event(batched.write(node, probe * PAGE))
    sim_b.run_until_event(reference.write(node, probe * PAGE))

    assert observable_state(batched) == observable_state(reference)
    assert batched.stats == reference.stats
    assert same_time(sim_a.now, sim_b.now)


def test_contiguous_migration_round_trip_is_span_backed():
    """A working-set round trip leaves one uniform span, not N entries."""
    sim, dsm = make_dsm()
    addrs = [i * PAGE for i in range(4, 16)]
    dsm.seed_pages("x86", addrs)
    assert len(dsm.directory) == 0 and len(dsm._spans) == 1
    sim.run_until_event(dsm.migrate_pages("x86", "arm", addrs))
    sim.run_until_event(dsm.migrate_pages("arm", "x86", addrs))
    assert len(dsm.directory) == 0 and len(dsm._spans) == 1
    assert dsm.page_state("x86", 5 * PAGE) == PageState.MODIFIED
    assert dsm.page_state("arm", 5 * PAGE) == PageState.INVALID
    # 12 pages over the wire each way.
    assert dsm.stats.page_transfers == 24
    assert dsm.stats.bytes_transferred == 24 * PAGE
