"""Overload protection: the brownout ladder's hysteresis, admission
decisions (queue bound, deadline-aware shedding), metric families that
exist only when a guard is configured, and the end-to-end shed path
through both client implementations."""

import pytest

from repro.core import SystemMode, build_system
from repro.core.application import CLIENT_PATH_ENV
from repro.core.server import RequestShed
from repro.faults import (
    SHED_REASONS,
    OverloadConfig,
    OverloadGuard,
    ResilienceConfig,
)
from repro.metrics import MetricsRegistry


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _guard(metrics=None, **overrides):
    clock = Clock()
    kwargs = dict(
        x86_only_enter_load=10.0,
        x86_only_exit_load=5.0,
        shed_enter_load=20.0,
        shed_exit_load=12.0,
    )
    kwargs.update(overrides)
    return clock, OverloadGuard(clock, OverloadConfig(**kwargs), metrics=metrics)


class TestConfigValidation:
    def test_defaults_valid(self):
        config = OverloadConfig()
        assert config.admission_queue_limit >= 1
        assert config.shed_enter_load > config.x86_only_enter_load

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"admission_queue_limit": 0},
            # Empty hysteresis bands.
            {"x86_only_enter_load": 16.0, "x86_only_exit_load": 16.0},
            {"shed_enter_load": 32.0, "shed_exit_load": 32.0},
            # Unordered rungs.
            {"x86_only_enter_load": 50.0, "x86_only_exit_load": 40.0},
            {"deadline_margin_s": -0.1},
            {"deadline_load_cost_s": -0.1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            OverloadConfig(**kwargs)


class TestLadderHysteresis:
    def test_starts_full(self):
        _clock, guard = _guard()
        assert guard.state == OverloadGuard.FULL
        assert not guard.x86_only
        assert not guard.shedding
        assert guard.brownout_level == 0

    def test_enters_and_holds_x86_only(self):
        _clock, guard = _guard()
        assert guard.update(10.0) == OverloadGuard.X86_ONLY
        assert guard.x86_only and not guard.shedding
        # Inside the hysteresis band: the rung holds.
        assert guard.update(7.0) == OverloadGuard.X86_ONLY
        # At the exit threshold: released.
        assert guard.update(5.0) == OverloadGuard.FULL

    def test_escalates_straight_to_shed(self):
        _clock, guard = _guard()
        assert guard.update(25.0) == OverloadGuard.SHED
        assert guard.shedding and guard.x86_only
        assert guard.brownout_level == 2

    def test_shed_releases_to_x86_only_then_full(self):
        _clock, guard = _guard()
        guard.update(25.0)
        # Above the shed exit: still shedding.
        assert guard.update(13.0) == OverloadGuard.SHED
        # Below shed exit but above the x86-only exit: one rung down.
        assert guard.update(8.0) == OverloadGuard.X86_ONLY
        # Below the x86-only exit straight from SHED: all the way down.
        guard.update(25.0)
        assert guard.update(3.0) == OverloadGuard.FULL

    def test_transitions_counted(self):
        _clock, guard = _guard()
        guard.update(10.0)
        guard.update(25.0)
        guard.update(3.0)
        assert guard.transitions == 3


class TestAdmission:
    def test_full_state_admits(self):
        _clock, guard = _guard()
        assert guard.admit(now=0.0) is None

    def test_shed_state_refuses_everything(self):
        _clock, guard = _guard()
        guard.update(25.0)
        assert guard.admit(now=0.0) == "brownout"

    def test_bounded_queue_sheds_at_capacity(self):
        _clock, guard = _guard(admission_queue_limit=2)
        guard.enqueued()
        assert guard.admit(now=0.0) is None
        guard.enqueued()
        assert guard.admit(now=0.0) == "queue_full"
        guard.dequeued()
        assert guard.admit(now=0.0) is None

    def test_deadline_doomed_request_shed(self):
        _clock, guard = _guard()
        # estimate alone forfeits the deadline
        assert guard.admit(now=10.0, deadline_at=10.5, estimate_s=1.0) == "deadline"
        # comfortable headroom admits
        assert guard.admit(now=10.0, deadline_at=12.0, estimate_s=1.0) is None

    def test_deadline_margin_is_additive(self):
        _clock, guard = _guard(deadline_margin_s=5.0)
        assert guard.admit(now=0.0, deadline_at=4.0, estimate_s=0.0) == "deadline"

    def test_load_proportional_estimate(self):
        # Each unit of load adds deadline_load_cost_s to the estimate:
        # the same request is admitted idle and shed under load.
        _clock, guard = _guard(deadline_load_cost_s=0.5)
        guard.update(2.0)  # estimate += 1.0
        assert guard.admit(now=0.0, deadline_at=1.5, estimate_s=0.0) is None
        guard.update(4.0)  # estimate += 2.0
        assert guard.admit(now=0.0, deadline_at=1.5, estimate_s=0.0) == "deadline"

    def test_no_deadline_never_deadline_shed(self):
        _clock, guard = _guard(deadline_load_cost_s=100.0)
        guard.update(10.0)
        # X86_ONLY still admits deadline-free work.
        assert guard.admit(now=0.0, deadline_at=None) is None


class TestMetrics:
    def test_no_registry_no_families(self):
        metrics = MetricsRegistry()
        _clock, _guard_obj = _guard(metrics=None)
        for name in ("shed_total", "brownout_state", "admission_queue_depth"):
            assert metrics.get(name) is None

    def test_families_appear_with_guard(self):
        metrics = MetricsRegistry()
        _clock, guard = _guard(metrics=metrics)
        assert metrics.get("shed_total") is not None
        assert metrics.get("brownout_state") is not None
        assert metrics.get("admission_queue_depth") is not None

    def test_shed_total_labeled_by_reason(self):
        metrics = MetricsRegistry()
        _clock, guard = _guard(metrics=metrics)
        guard.count_shed("brownout")
        guard.count_shed("brownout")
        guard.count_shed("deadline")
        family = metrics.get("shed_total")
        assert family.labels(reason="brownout").value == 2.0
        assert family.labels(reason="deadline").value == 1.0

    def test_shed_reasons_registry_is_closed(self):
        assert set(SHED_REASONS) == {
            "brownout",
            "queue_full",
            "deadline",
            "deadline_expired",
        }

    def test_brownout_gauge_tracks_the_ladder(self):
        metrics = MetricsRegistry()
        clock, guard = _guard(metrics=metrics)
        clock.now = 4.0
        guard.update(25.0)
        clock.now = 8.0
        snap = guard._brownout_snapshot()
        assert snap["value"] == 2.0
        assert snap["min"] == 0.0
        assert snap["max"] == 2.0
        # full (0) for 4 s, shed (2) for 4 s -> mean 1.0
        assert snap["time_weighted_mean"] == pytest.approx(1.0)
        assert snap["updates"] == 1

    def test_queue_depth_gauge_integrates_over_time(self):
        clock, guard = _guard()
        clock.now = 1.0
        guard.enqueued()
        clock.now = 3.0
        snap = guard._queue_snapshot()
        assert snap["value"] == 1.0
        assert snap["max"] == 1.0
        # depth 0 for 1 s, depth 1 for 2 s -> mean 2/3
        assert snap["time_weighted_mean"] == pytest.approx(2.0 / 3.0)

    def test_snapshot_is_the_digest_view(self):
        _clock, guard = _guard()
        guard.update(25.0)
        guard.enqueued()
        assert guard.snapshot() == {"queue_depth": 1.0, "brownout": 2.0}


def _shedding_config(**overload_overrides):
    """A resilience config whose guard sheds from the first request
    (one in-flight client already exceeds the shed rung)."""
    kwargs = dict(
        x86_only_enter_load=0.6,
        x86_only_exit_load=0.3,
        shed_enter_load=0.9,
        shed_exit_load=0.8,
    )
    kwargs.update(overload_overrides)
    return ResilienceConfig(overload=OverloadConfig(**kwargs))


class TestEndToEndShedding:
    @pytest.mark.parametrize("client_path", ["chain", "generator"])
    def test_brownout_shed_ends_the_session_accounted(
        self, monkeypatch, client_path
    ):
        monkeypatch.setenv(CLIENT_PATH_ENV, client_path)
        runtime = build_system(["digit.500"], resilience=_shedding_config())
        record = runtime.platform.sim.run_until_event(
            runtime.launch("digit.500", mode=SystemMode.XAR_TREK)
        )
        assert record.shed_reason == "brownout"
        assert record.calls_completed == 0
        # Shedding is not a fallback: the work was refused, not served.
        assert runtime.resilience.summary()["fallbacks"] == {}
        family = runtime.metrics.get("shed_total")
        assert family.labels(reason="brownout").value == 1.0

    @pytest.mark.parametrize("client_path", ["chain", "generator"])
    def test_deadline_shed_at_admission(self, monkeypatch, client_path):
        monkeypatch.setenv(CLIENT_PATH_ENV, client_path)
        config = ResilienceConfig(
            overload=OverloadConfig(deadline_margin_s=1e6)
        )
        runtime = build_system(["digit.500"], resilience=config)
        record = runtime.platform.sim.run_until_event(
            runtime.launch(
                "digit.500", mode=SystemMode.XAR_TREK, deadline_s=5.0
            )
        )
        assert record.shed_reason == "deadline"
        assert record.calls_completed == 0

    def test_unprotected_server_admits_everything(self):
        runtime = build_system(["digit.500"])
        record = runtime.platform.sim.run_until_event(
            runtime.launch("digit.500", mode=SystemMode.XAR_TREK)
        )
        assert record.shed_reason is None
        assert record.finished
        # No guard: none of the overload families exist.
        for name in ("shed_total", "brownout_state", "admission_queue_depth"):
            assert runtime.metrics.get(name) is None

    def test_raw_server_request_raises_request_shed(self):
        runtime = build_system(["digit.500"], resilience=_shedding_config())
        with pytest.raises(RequestShed) as excinfo:
            runtime.server.request("digit.500")
        assert excinfo.value.reason == "brownout"

    def test_brownout_rung_pins_decisions_to_x86(self):
        # The x86-only rung (entered, not shedding) keeps serving but
        # refuses to steer work at the accelerators.
        config = ResilienceConfig(
            overload=OverloadConfig(
                x86_only_enter_load=0.5,
                x86_only_exit_load=0.2,
                shed_enter_load=1e9,
                shed_exit_load=0.9,
            )
        )
        runtime = build_system(["digit.2000"], resilience=config)
        sim = runtime.platform.sim
        sim.run_until_event(runtime.preload_fpga())
        record = sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        assert record.finished
        from repro.types import Target

        assert set(record.targets) == {Target.X86}
        assert runtime.server.stats.by_rule.get("brownout-x86", 0) > 0
