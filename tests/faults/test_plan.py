"""Fault plans: validation, serialization, and seeded generation."""

import pytest

from repro.faults import FAULT_KINDS, FaultPlan, FaultPlanError, FaultSpec


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(at_s=1.0, kind="gamma_ray")

    def test_negative_strike_time_rejected(self):
        with pytest.raises(FaultPlanError, match="at_s"):
            FaultSpec(at_s=-0.5, kind="device_crash", duration_s=1.0)

    @pytest.mark.parametrize("kind", ["kernel_fault", "reconfig_fault"])
    def test_count_kinds_need_positive_count(self, kind):
        with pytest.raises(FaultPlanError, match="count"):
            FaultSpec(at_s=0.0, kind=kind, target="k", count=0)

    def test_count_must_be_int(self):
        with pytest.raises(FaultPlanError, match="count"):
            FaultSpec(at_s=0.0, kind="kernel_fault", target="k", count=True)

    @pytest.mark.parametrize(
        "kind", ["device_crash", "link_degrade", "server_outage", "server_slow"]
    )
    def test_window_kinds_need_duration(self, kind):
        target = "pcie" if kind == "link_degrade" else ""
        with pytest.raises(FaultPlanError, match="duration_s"):
            FaultSpec(at_s=0.0, kind=kind, target=target, duration_s=0.0)

    def test_kernel_fault_needs_target(self):
        with pytest.raises(FaultPlanError, match="target"):
            FaultSpec(at_s=0.0, kind="kernel_fault")

    def test_link_degrade_target_and_factor(self):
        with pytest.raises(FaultPlanError, match="target"):
            FaultSpec(at_s=0.0, kind="link_degrade", target="usb", duration_s=1.0)
        with pytest.raises(FaultPlanError, match="factor"):
            FaultSpec(
                at_s=0.0, kind="link_degrade", target="pcie",
                duration_s=1.0, factor=0.0,
            )

    def test_server_slow_factor_at_least_one(self):
        with pytest.raises(FaultPlanError, match="factor"):
            FaultSpec(at_s=0.0, kind="server_slow", duration_s=1.0, factor=0.5)

    def test_end_s_covers_the_window(self):
        spec = FaultSpec(at_s=2.0, kind="device_crash", duration_s=3.0)
        assert spec.end_s == 5.0
        armed = FaultSpec(at_s=2.0, kind="reconfig_fault", count=2)
        assert armed.end_s == 2.0


class TestFaultPlan:
    def _plan(self):
        return FaultPlan(
            specs=(
                FaultSpec(at_s=9.0, kind="server_outage", duration_s=2.0),
                FaultSpec(at_s=1.0, kind="kernel_fault", target="k1", count=2),
                FaultSpec(
                    at_s=4.0, kind="link_degrade", target="ethernet",
                    duration_s=5.0, factor=0.5,
                ),
            ),
            seed=7,
        )

    def test_specs_sorted_by_strike_time(self):
        plan = self._plan()
        assert [s.at_s for s in plan.specs] == [1.0, 4.0, 9.0]

    def test_horizon_is_last_effect_end(self):
        assert self._plan().horizon_s == 11.0
        assert FaultPlan.empty().horizon_s == 0.0

    def test_counts_by_kind(self):
        assert self._plan().counts_by_kind() == {
            "kernel_fault": 1,
            "link_degrade": 1,
            "server_outage": 1,
        }

    def test_json_round_trip(self):
        plan = self._plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_file_round_trip(self, tmp_path):
        plan = self._plan()
        path = str(tmp_path / "plan.json")
        plan.to_file(path)
        assert FaultPlan.from_file(path) == plan

    def test_schema_tag_enforced(self):
        with pytest.raises(FaultPlanError, match="schema"):
            FaultPlan.from_json('{"schema": "something-else/9", "specs": []}')

    def test_unknown_spec_fields_rejected(self):
        payload = (
            '{"schema": "xar-trek-fault-plan/1", "specs": '
            '[{"at_s": 1.0, "kind": "server_outage", "duration_s": 2.0, '
            '"blast_radius": 3}]}'
        )
        with pytest.raises(FaultPlanError, match="unknown fields"):
            FaultPlan.from_json(payload)

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_equality_ignores_construction_order(self):
        a = FaultPlan(specs=tuple(self._plan().specs))
        b = FaultPlan(specs=tuple(reversed(self._plan().specs)))
        assert a == b


class TestOutageOverlap:
    def _outage(self, at_s, duration_s, target=""):
        return FaultSpec(
            at_s=at_s, kind="server_outage", duration_s=duration_s, target=target
        )

    def test_overlapping_outages_on_same_target_rejected(self):
        with pytest.raises(FaultPlanError, match="overlap"):
            FaultPlan(
                specs=(self._outage(1.0, 3.0), self._outage(2.0, 1.0))
            )

    def test_overlap_found_regardless_of_construction_order(self):
        with pytest.raises(FaultPlanError, match="overlap"):
            FaultPlan(
                specs=(self._outage(2.0, 1.0), self._outage(1.0, 3.0))
            )

    def test_touching_windows_are_legal(self):
        # [1, 3) then [3, 4): restart at 3.0 and the next window begins.
        plan = FaultPlan(specs=(self._outage(1.0, 2.0), self._outage(3.0, 1.0)))
        assert len(plan) == 2

    def test_different_targets_may_overlap(self):
        plan = FaultPlan(
            specs=(
                self._outage(1.0, 3.0, target="node0"),
                self._outage(2.0, 3.0, target="node1"),
            )
        )
        assert len(plan) == 2

    def test_other_window_kinds_may_overlap(self):
        # Only server_outage windows revive each other's target; crash
        # windows on the device are injector-mediated and may nest.
        plan = FaultPlan(
            specs=(
                FaultSpec(at_s=1.0, kind="device_crash", duration_s=3.0),
                FaultSpec(at_s=2.0, kind="device_crash", duration_s=3.0),
            )
        )
        assert len(plan) == 2

    def test_overlap_caught_at_json_load_too(self):
        # Hand-editing a JSON plan into an overlap is caught at load.
        import json

        doc = json.loads(FaultPlan(specs=(self._outage(1.0, 2.0),)).to_json())
        doc["specs"].append(dict(doc["specs"][0], at_s=2.0))
        with pytest.raises(FaultPlanError, match="overlap"):
            FaultPlan.from_json(json.dumps(doc))


class TestGeneration:
    def test_same_seed_same_plan(self):
        kwargs = dict(horizon_s=30.0, kernels=("k1", "k2"))
        assert FaultPlan.generate(3, **kwargs) == FaultPlan.generate(3, **kwargs)

    def test_different_seed_different_plan(self):
        kwargs = dict(horizon_s=30.0, kernels=("k1", "k2"))
        assert FaultPlan.generate(3, **kwargs) != FaultPlan.generate(4, **kwargs)

    def test_every_kind_represented(self):
        plan = FaultPlan.generate(0, horizon_s=30.0, kernels=("k1",))
        assert set(plan.counts_by_kind()) == set(FAULT_KINDS)

    def test_no_kernels_no_kernel_faults(self):
        plan = FaultPlan.generate(0, horizon_s=30.0)
        assert "kernel_fault" not in plan.counts_by_kind()

    def test_strikes_inside_horizon(self):
        plan = FaultPlan.generate(11, horizon_s=12.5, kernels=("k1",))
        assert all(0.0 <= spec.at_s < 12.5 for spec in plan.specs)

    def test_bad_horizon_rejected(self):
        with pytest.raises(FaultPlanError, match="horizon"):
            FaultPlan.generate(0, horizon_s=0.0)

    def test_generated_plan_survives_serialization(self):
        plan = FaultPlan.generate(5, horizon_s=20.0, kernels=("k1", "k2"))
        assert FaultPlan.from_json(plan.to_json()) == plan
