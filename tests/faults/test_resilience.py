"""Resilience policy state machines: retries, breakers, counters."""

import pytest

from repro.faults import BreakerState, CircuitBreaker, ResilienceConfig, ResiliencePolicy
from repro.metrics import MetricsRegistry


class Clock:
    """A hand-cranked clock for driving breaker cooldowns."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestResilienceConfig:
    def test_defaults_valid(self):
        config = ResilienceConfig()
        assert config.kernel_retry_limit == 2
        assert config.request_timeout_s is not None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kernel_retry_limit": -1},
            {"retry_backoff_s": -0.1},
            {"retry_backoff_factor": 0.5},
            {"breaker_failure_threshold": 0},
            {"breaker_cooldown_s": -1.0},
            {"request_timeout_s": 0.0},
            {"reconfig_retry_limit": -1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)

    def test_timeout_none_disables(self):
        assert ResilienceConfig(request_timeout_s=None).request_timeout_s is None

    def test_backoff_is_exponential(self):
        config = ResilienceConfig(retry_backoff_s=1e-3, retry_backoff_factor=2.0)
        assert config.backoff_s(0) == 1e-3
        assert config.backoff_s(1) == 2e-3
        assert config.backoff_s(2) == 4e-3


class TestBreakerStateMachine:
    def _state(self, clock, threshold=3, cooldown=10.0):
        return BreakerState(clock, threshold=threshold, cooldown_s=cooldown)

    def test_opens_after_threshold_consecutive_failures(self):
        clock = Clock()
        state = self._state(clock)
        assert state.record_failure() is False
        assert state.record_failure() is False
        assert state.record_failure() is True  # the trip
        assert state.state == BreakerState.OPEN

    def test_success_resets_the_failure_run(self):
        clock = Clock()
        state = self._state(clock)
        state.record_failure()
        state.record_failure()
        state.record_success()
        assert state.record_failure() is False  # run restarted at 1
        assert state.state == BreakerState.CLOSED

    def test_open_blocks_until_cooldown(self):
        clock = Clock()
        state = self._state(clock, threshold=1, cooldown=5.0)
        state.record_failure()
        assert not state.allow()
        clock.now = 4.999
        assert not state.allow()
        clock.now = 5.0
        assert state.allow()  # half-open trial
        assert state.state == BreakerState.HALF_OPEN

    def test_half_open_success_closes(self):
        clock = Clock()
        state = self._state(clock, threshold=1, cooldown=1.0)
        state.record_failure()
        clock.now = 2.0
        assert state.allow()
        state.record_success()
        assert state.state == BreakerState.CLOSED
        assert state.allow()

    def test_half_open_failure_reopens_with_fresh_cooldown(self):
        clock = Clock()
        state = self._state(clock, threshold=1, cooldown=5.0)
        state.record_failure()  # open at t=0
        clock.now = 6.0
        assert state.allow()  # half-open
        assert state.record_failure() is True  # straight back open
        clock.now = 10.0  # only 4 s into the fresh cooldown
        assert not state.allow()
        clock.now = 11.0
        assert state.allow()

    def test_failures_while_open_do_not_recount(self):
        clock = Clock()
        state = self._state(clock, threshold=1, cooldown=5.0)
        state.record_failure()
        assert state.record_failure() is False
        assert state.open_count == 1

    def test_snapshot_matches_gauge_sampler_contract(self):
        clock = Clock()
        state = self._state(clock, threshold=1, cooldown=10.0)
        clock.now = 4.0
        state.record_failure()  # open at t=4
        clock.now = 8.0
        snap = state.snapshot()
        assert set(snap) == {"value", "min", "max", "time_weighted_mean", "updates"}
        assert snap["value"] == 1.0
        assert snap["min"] == 0.0
        assert snap["max"] == 1.0
        # closed for 4 s, open for 4 s -> mean 0.5
        assert snap["time_weighted_mean"] == pytest.approx(0.5)
        assert snap["updates"] == 1


class TestCircuitBreaker:
    def test_unknown_key_is_allowed_without_creating_state(self):
        clock = Clock()
        breaker = CircuitBreaker(clock, threshold=1, cooldown_s=1.0)
        assert breaker.allow("kernel:k1")
        assert breaker.states() == {}

    def test_on_open_callback_fires_per_trip(self):
        clock = Clock()
        opened = []
        breaker = CircuitBreaker(
            clock, threshold=1, cooldown_s=1.0, on_open=opened.append
        )
        breaker.record_failure("kernel:k1")
        assert opened == ["kernel:k1"]

    def test_gauge_series_bound_lazily(self):
        clock = Clock()
        metrics = MetricsRegistry(clock=clock)
        breaker = CircuitBreaker(clock, threshold=1, cooldown_s=1.0, metrics=metrics)
        assert metrics.get("circuit_breaker_state") is None
        breaker.record_failure("device:fpga")
        family = metrics.get("circuit_breaker_state")
        assert family is not None
        assert family.labels(target="device:fpga").value == 1.0


class TestResiliencePolicy:
    def _policy(self, **config_kwargs):
        clock = Clock()
        metrics = MetricsRegistry(clock=clock)
        policy = ResiliencePolicy(
            clock, metrics, config=ResilienceConfig(**config_kwargs)
        )
        return clock, metrics, policy

    def test_counters_registered_eagerly(self):
        _clock, metrics, _policy = self._policy()
        for name in ("retries_total", "fallbacks_total", "quarantines_total"):
            assert metrics.get(name) is not None

    def test_quarantine_counted_on_kernel_trip(self):
        _clock, metrics, policy = self._policy(breaker_failure_threshold=2)
        policy.record_kernel_failure("k1")
        policy.record_kernel_failure("k1")
        assert not policy.allow_kernel("k1")
        assert metrics.get("quarantines_total").value == 1

    def test_device_breaker_is_separate_from_kernels(self):
        _clock, _metrics, policy = self._policy(breaker_failure_threshold=1)
        policy.record_device_failure()
        assert not policy.allow_device()
        assert policy.allow_kernel("k1")

    def test_summary_shape(self):
        _clock, _metrics, policy = self._policy(breaker_failure_threshold=1)
        policy.count_retry("k1")
        policy.count_fallback("kernel_fault")
        policy.record_kernel_failure("k1")
        summary = policy.summary()
        assert summary["retries"] == 1
        assert summary["fallbacks"] == {"kernel_fault": 1}
        assert summary["quarantines"] == 1
        assert summary["breaker_states"] == {"kernel:k1": "open"}
        # Zero invocations is a real outcome (everything shed at the
        # gate), so goodput reports 0.0 rather than a vacuous 1.0.
        assert summary["goodput"] == 0.0
