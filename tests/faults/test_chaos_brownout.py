"""Chaos harness in brownout mode: trace-driven legs, shed accounting
(every client completed, shed, or explicitly unaccounted), goodput
floors, SLO scoring, and serial == parallel determinism."""

import pytest

from repro.faults import (
    BrownoutCriteria,
    FaultPlan,
    FaultSpec,
    OverloadConfig,
    ResilienceConfig,
    run_chaos,
)
from repro.traffic import SLOTarget, SpikeWindow, Trace, TrafficSpec, generate_trace

pytestmark = pytest.mark.metrics

_HORIZON_S = 10.0


def _trace(seed=0, rate=1.5):
    return generate_trace(
        TrafficSpec(
            apps=("digit.500", "facedet.320"),
            base_rate_per_s=rate,
            horizon_s=_HORIZON_S,
            diurnal_period_s=_HORIZON_S,
            diurnal_amplitude=0.3,
            spikes=(SpikeWindow(at_s=3.0, duration_s=2.0, factor=6.0),),
            calls_alpha=1.5,
            calls_max=3,
            deadline_s=8.0,
            seed=seed,
        )
    )


def _plan():
    return FaultPlan(
        specs=(FaultSpec(at_s=4.0, kind="device_crash", duration_s=1.5),),
        seed=0,
    )


def _config(**overrides):
    kwargs = dict(
        x86_only_enter_load=70.0,
        x86_only_exit_load=40.0,
        shed_enter_load=120.0,
        shed_exit_load=60.0,
        deadline_load_cost_s=0.25,
    )
    kwargs.update(overrides)
    return ResilienceConfig(overload=OverloadConfig(**kwargs))


class TestCriteria:
    def test_default_floor(self):
        assert BrownoutCriteria().goodput_floor == 0.5

    @pytest.mark.parametrize("floor", [-0.1, 1.1])
    def test_bad_floor_rejected(self, floor):
        with pytest.raises(ValueError):
            BrownoutCriteria(goodput_floor=floor)


class TestAccounting:
    def _report(self, **kwargs):
        defaults = dict(
            plan=_plan(),
            seed=0,
            config=_config(),
            traffic=_trace(),
            background=5,
            brownout=BrownoutCriteria(goodput_floor=0.3),
            slo=(SLOTarget(app="digit.500", p99_latency_s=30.0),),
            horizon_s=_HORIZON_S,
        )
        defaults.update(kwargs)
        return run_chaos(**defaults)

    def test_every_client_accounted(self):
        report = self._report()
        trace = _trace()
        assert report.clients == len(trace)
        assert (
            report.completed + report.shed_total + report.unaccounted
            == report.clients
        )
        assert report.unaccounted == 0
        assert report.ok, report.to_text()

    def _force_shed_config(self):
        """Rungs below one in-flight client: every admission sheds."""
        return _config(
            x86_only_enter_load=0.6,
            x86_only_exit_load=0.3,
            shed_enter_load=0.9,
            shed_exit_load=0.8,
            deadline_load_cost_s=0.0,
        )

    def test_shed_reasons_are_known(self):
        from repro.faults import SHED_REASONS

        report = self._report(config=self._force_shed_config())
        assert report.shed.get("brownout", 0) > 0
        assert set(report.shed) <= set(SHED_REASONS)

    def test_goodput_floor_enforced(self):
        # Mass shedding under a floor the run cannot reach: the report
        # fails on goodput even though every client is accounted.
        report = self._report(
            config=self._force_shed_config(),
            brownout=BrownoutCriteria(goodput_floor=0.9),
        )
        assert report.completion_rate < 0.9
        assert report.unaccounted == 0
        assert not report.ok
        assert report.brownout_floor == 0.9

    def test_report_serializes_brownout_fields(self):
        report = self._report()
        payload = report.to_dict()
        assert payload["shed"] == report.shed
        assert payload["unaccounted"] == 0
        assert payload["brownout_floor"] == 0.3
        assert "digit.500" in payload["slo"]
        score = payload["slo"]["digit.500"]
        assert set(score) >= {
            "clients",
            "completed",
            "shed",
            "goodput",
            "violations",
        }

    def test_text_mentions_brownout_and_slo(self):
        text = self._report().to_text()
        assert "brownout:" in text
        assert "slo digit.500" in text

    def test_replay_is_byte_identical(self):
        first = self._report()
        second = self._report()
        assert first.lines == second.lines
        assert first.shed == second.shed
        assert first.slo == second.slo

    def test_serial_matches_parallel(self):
        serial = self._report(jobs=1).to_dict()
        parallel = self._report(jobs=2).to_dict()
        for volatile in ("wall_s", "baseline_wall_s", "events_per_sec", "mode"):
            serial.pop(volatile, None)
            parallel.pop(volatile, None)
        assert serial == parallel


class TestTraceLegs:
    def test_trace_sets_the_client_count(self):
        trace = _trace()
        report = run_chaos(
            plan=FaultPlan.empty(), seed=0, traffic=trace, background=2
        )
        assert report.clients == len(trace)

    def test_unprotected_trace_run_still_accounts_deadline_exits(self):
        # Without a guard the only shed reason possible is the client's
        # own deadline-expired exit; nothing may vanish unaccounted.
        trace = _trace(rate=3.0)
        report = run_chaos(
            plan=FaultPlan.empty(), seed=0, traffic=trace, background=2
        )
        assert set(report.shed) <= {"deadline_expired"}
        assert report.unaccounted == 0

    def test_empty_trace_is_a_zero_client_run(self):
        empty = Trace(entries=(), seed=0, horizon_s=1.0)
        report = run_chaos(
            plan=FaultPlan.empty(),
            seed=0,
            traffic=empty,
            background=1,
            brownout=BrownoutCriteria(goodput_floor=0.5),
        )
        assert report.clients == 0
        # Zero clients is not vacuous success: completion_rate is 0.0.
        assert report.completion_rate == 0.0
        assert report.shed == {}
        assert report.unaccounted == 0

    def test_fixed_clients_mode_unchanged(self):
        # The historical clients=N mode still works alongside traces.
        report = run_chaos(plan=FaultPlan.empty(), seed=1, clients=5, background=2)
        assert report.clients == 5
        assert report.completion_rate == 1.0
