"""Fault injection against live deployments: the system degrades
gracefully, never wedges, and recovers when faults clear.

Covers the raw device/XRT fault hooks (validation, additive arming),
the application-level retry/fallback/quarantine behaviour, the
scheduler daemon's outage/slow-reply handling, device crash windows,
and link degradation — the mechanisms the chaos harness composes.
"""

import pytest

from repro.core import SystemMode, build_system
from repro.core.server import SchedulerUnavailable
from repro.faults import FaultInjector, FaultPlan, FaultPlanError, FaultSpec, ResilienceConfig
from repro.hardware import ALVEO_U50, FPGADevice
from repro.sim import SimulationError, Simulator
from repro.types import Target
from repro.xrt import XRTError

KERNEL = "KNL_HW_DR200"  # digit.2000's hardware kernel


class FakeImage:
    name = "img"
    size_bytes = 1_000_000
    kernel_names = ("k1",)


class TestDeviceFaults:
    def test_failed_reconfiguration_leaves_device_clean(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        device.inject_reconfig_failures(1)
        done = device.configure(FakeImage())
        done.defused = True
        sim.run()
        assert not done.ok
        assert device.configured_image is None
        assert not device.reconfiguring
        assert device.failed_reconfigurations == 1

    def test_failed_reconfiguration_keeps_old_image_resident(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        sim.run_until_event(device.configure(FakeImage()))
        assert device.has_kernel("k1")

        class OtherImage:
            name = "other"
            size_bytes = 1_000_000
            kernel_names = ("k2",)

        device.inject_reconfig_failures(1)
        done = device.configure(OtherImage())
        done.defused = True
        sim.run()
        # Rollback: the pre-failure image still serves its kernels.
        assert device.has_kernel("k1")
        assert not device.has_kernel("k2")

    def test_retry_after_failure_succeeds(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        device.inject_reconfig_failures(1)
        first = device.configure(FakeImage())
        first.defused = True
        sim.run()
        second = device.configure(FakeImage())
        sim.run_until_event(second)
        assert device.has_kernel("k1")

    def test_negative_injection_rejected(self):
        device = FPGADevice(Simulator(), ALVEO_U50)
        with pytest.raises(SimulationError):
            device.inject_reconfig_failures(-1)

    def test_non_int_injection_rejected_before_mutation(self):
        device = FPGADevice(Simulator(), ALVEO_U50)
        with pytest.raises(SimulationError):
            device.inject_reconfig_failures(1.5)
        with pytest.raises(SimulationError):
            device.inject_reconfig_failures(True)
        assert device.pending_reconfig_failures == 0

    def test_repeated_arming_is_additive(self):
        device = FPGADevice(Simulator(), ALVEO_U50)
        device.inject_reconfig_failures(2)
        device.inject_reconfig_failures(3)
        assert device.pending_reconfig_failures == 5


class TestDeviceCrash:
    def test_crash_loses_image_and_recover_comes_back_unconfigured(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        sim.run_until_event(device.configure(FakeImage()))
        device.crash()
        assert device.crashed
        assert device.available_kernels == ()
        assert device.configured_image is None
        device.recover()
        assert not device.crashed
        sim.run_until_event(device.configure(FakeImage()))
        assert device.has_kernel("k1")

    def test_crash_is_idempotent(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        device.crash()
        device.crash()
        assert device.crash_count == 1

    def test_crash_fails_inflight_reconfiguration(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        done = device.configure(FakeImage())
        done.defused = True
        device.crash()
        assert not done.ok
        assert not device.reconfiguring
        assert device.failed_reconfigurations == 1

    def test_configure_while_crashed_fails_async(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        device.crash()
        done = device.configure(FakeImage())
        done.defused = True
        sim.run()
        assert not done.ok

    def test_crash_fails_inflight_kernel_runs_via_xrt(self):
        runtime = build_system(["digit.2000"])
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        done = runtime.xrt.run_kernel(KERNEL, 1024, 64, duration=1.0)
        done.defused = True
        runtime.platform.sim.call_in(0.1, runtime.platform.fpga.crash)
        runtime.platform.sim.run()
        assert not done.ok
        assert isinstance(done.value, XRTError)
        assert runtime.xrt.active_runs == 0  # no leaked occupancy


class TestXRTRunFaults:
    def test_injected_run_fault_fails_event(self):
        runtime = build_system(["digit.2000"])
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        runtime.xrt.inject_run_failures(KERNEL, 1)
        done = runtime.xrt.run_kernel(KERNEL, 1000, 100, duration=1.0)
        done.defused = True
        runtime.platform.run()
        assert not done.ok
        assert isinstance(done.value, XRTError)
        assert runtime.xrt.failed_runs == 1
        assert runtime.xrt.active_runs == 0  # no leaked occupancy

    def test_next_run_succeeds(self):
        runtime = build_system(["digit.2000"])
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        runtime.xrt.inject_run_failures(KERNEL, 1)
        bad = runtime.xrt.run_kernel(KERNEL, 0, 0, duration=0.5)
        bad.defused = True
        runtime.platform.run()
        good = runtime.xrt.run_kernel(KERNEL, 0, 0, duration=0.5)
        run = runtime.platform.sim.run_until_event(good)
        assert run.kernel_name == KERNEL

    def test_bad_arguments_rejected_before_mutation(self):
        runtime = build_system(["digit.2000"])
        with pytest.raises(XRTError):
            runtime.xrt.inject_run_failures("", 1)
        with pytest.raises(XRTError):
            runtime.xrt.inject_run_failures(KERNEL, 1.5)
        with pytest.raises(XRTError):
            runtime.xrt.inject_run_failures(KERNEL, True)
        with pytest.raises(XRTError):
            runtime.xrt.inject_run_failures(KERNEL, -1)
        assert runtime.xrt.pending_run_failures(KERNEL) == 0

    def test_repeated_arming_is_additive(self):
        runtime = build_system(["digit.2000"])
        runtime.xrt.inject_run_failures(KERNEL, 2)
        runtime.xrt.inject_run_failures(KERNEL, 3)
        assert runtime.xrt.pending_run_failures(KERNEL) == 5


class TestApplicationRetries:
    def test_single_fault_is_retried_and_served_on_fpga(self):
        runtime = build_system(["digit.2000"])
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        runtime.xrt.inject_run_failures(KERNEL, 1)
        record = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK, functional=True)
        )
        assert record.retries == 1
        assert record.fpga_fallbacks == 0
        assert record.targets == [Target.FPGA]
        assert record.verified is True  # results unaffected by the fault

    def test_retry_budget_exhaustion_falls_back_to_x86(self):
        runtime = build_system(["digit.2000"])
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        limit = runtime.resilience.config.kernel_retry_limit
        runtime.xrt.inject_run_failures(KERNEL, limit + 1)
        record = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK, functional=True)
        )
        assert record.retries == limit
        assert record.fpga_fallbacks == 1
        assert record.targets == [Target.X86]
        assert record.verified is True
        fallbacks = runtime.resilience.summary()["fallbacks"]
        assert fallbacks.get("kernel_fault") == 1

    def test_zero_retry_limit_restores_immediate_fallback(self):
        runtime = build_system(
            ["digit.2000"],
            resilience=ResilienceConfig(kernel_retry_limit=0),
        )
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        runtime.xrt.inject_run_failures(KERNEL, 1)
        record = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        assert record.retries == 0
        assert record.fpga_fallbacks == 1
        # The fallback cost: half an aborted kernel + the x86 function.
        assert record.elapsed_s > 3.5

    def test_repeated_faults_never_wedge_the_run(self):
        # A breaker threshold above the fault count isolates the retry
        # arithmetic from quarantine (tested separately below).
        runtime = build_system(
            ["digit.2000"],
            resilience=ResilienceConfig(breaker_failure_threshold=100),
        )
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        runtime.xrt.inject_run_failures(KERNEL, 5)
        records = [
            runtime.platform.sim.run_until_event(
                runtime.launch("digit.2000", seed=i, mode=SystemMode.XAR_TREK)
            )
            for i in range(6)
        ]
        assert all(r.finished for r in records)
        # Run 1 burns faults 1-3 (two retries, then fallback); run 2
        # burns faults 4-5 and succeeds on its second retry.
        assert sum(r.fpga_fallbacks for r in records) == 1
        assert sum(r.retries for r in records) == 4
        # Once the injected faults are exhausted, the FPGA serves again.
        assert records[-1].targets == [Target.FPGA]

    def test_scheduler_survives_reconfig_failure_and_retries(self):
        runtime = build_system(["digit.2000"])
        runtime.platform.fpga.inject_reconfig_failures(1)
        load = runtime.launch_background(30, work_s=60.0)
        # First run: reconfig kicked off (and will fail); app lands on
        # a CPU target while the server's background retry reprograms.
        first = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK, delay_s=0.01)
        )
        assert first.targets[0] in (Target.ARM, Target.X86)
        assert runtime.server.stats.reconfigurations_failed == 1
        second = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        third = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        load.stop()
        assert runtime.server.stats.reconfigurations_started >= 2
        assert Target.FPGA in (*second.targets, *third.targets)


class TestQuarantine:
    def test_kernel_breaker_steers_scheduler_then_recovers(self):
        # The cooldown must outlast the x86 fallback runs (seconds of
        # sim time each) so the open window is observable.
        cooldown_s = 50.0
        config = ResilienceConfig(
            kernel_retry_limit=0,
            breaker_failure_threshold=2,
            breaker_cooldown_s=cooldown_s,
        )
        runtime = build_system(["digit.2000"], resilience=config)
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        runtime.xrt.inject_run_failures(KERNEL, 2)
        key = runtime.resilience.kernel_key(KERNEL)

        first = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        assert first.fpga_fallbacks == 1
        second = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        assert second.fpga_fallbacks == 1
        # Two consecutive failures: quarantined.
        assert runtime.resilience.breaker.state_of(key) == "open"
        assert runtime.resilience.summary()["quarantines"] == 1

        # While open, the scheduler steers to x86 without touching the
        # card (no new fpga_fallbacks — the decision itself avoids it).
        third = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        assert third.targets == [Target.X86]
        assert third.fpga_fallbacks == 0

        # After the cooldown the half-open trial runs on the FPGA and,
        # with the faults exhausted, closes the breaker.
        fourth = runtime.platform.sim.run_until_event(
            runtime.launch(
                "digit.2000", mode=SystemMode.XAR_TREK, delay_s=cooldown_s
            )
        )
        assert fourth.targets == [Target.FPGA]
        assert runtime.resilience.breaker.state_of(key) == "closed"

    def test_breaker_gauge_exported_per_target(self):
        config = ResilienceConfig(kernel_retry_limit=0, breaker_failure_threshold=1)
        runtime = build_system(["digit.2000"], resilience=config)
        assert runtime.metrics.get("circuit_breaker_state") is None
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        runtime.xrt.inject_run_failures(KERNEL, 1)
        runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        family = runtime.metrics.get("circuit_breaker_state")
        assert family is not None
        key = runtime.resilience.kernel_key(KERNEL)
        assert family.labels(target=key).value == 1.0


class TestSchedulerOutage:
    def test_request_when_never_started_raises(self):
        runtime = build_system(["digit.500"])
        runtime.server.stop()
        with pytest.raises(SchedulerUnavailable):
            runtime.server.request("digit.500")

    def test_stop_fails_queued_requests(self):
        runtime = build_system(["digit.500"])
        reply = runtime.server.request("digit.500")
        reply.defused = True
        runtime.server.stop()
        assert reply.triggered and not reply.ok
        assert isinstance(reply.value, SchedulerUnavailable)

    def test_clients_fall_back_locally_during_outage(self):
        runtime = build_system(["digit.2000"])
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        runtime.server.stop()
        record = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        assert record.finished
        assert record.targets == [Target.X86]
        fallbacks = runtime.resilience.summary()["fallbacks"]
        assert fallbacks.get("scheduler_down") == 1

    def test_restart_serves_requests_again(self):
        runtime = build_system(["digit.2000"])
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        runtime.server.stop()
        runtime.server.start()
        record = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        assert record.targets == [Target.FPGA]

    def test_slow_server_times_out_to_local_fallback(self):
        runtime = build_system(["digit.2000"])
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        timeout_s = runtime.resilience.config.request_timeout_s
        # Make one round trip far exceed the client timeout.
        factor = (timeout_s / runtime.server.socket_latency_s) * 10
        runtime.server.set_reply_delay_factor(factor)
        record = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        assert record.finished
        assert record.targets == [Target.X86]
        fallbacks = runtime.resilience.summary()["fallbacks"]
        assert fallbacks.get("scheduler_timeout") == 1
        runtime.server.set_reply_delay_factor(1.0)
        healthy = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        assert healthy.targets == [Target.FPGA]

    def test_bad_delay_factor_rejected(self):
        runtime = build_system(["digit.500"])
        with pytest.raises(ValueError):
            runtime.server.set_reply_delay_factor(0.0)


class TestLinkDegradation:
    def test_degraded_link_slows_transfers_then_recovers(self):
        runtime = build_system(["digit.2000"])
        sim = runtime.platform.sim
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        pcie = runtime.platform.pcie

        start = sim.now
        sim.run_until_event(pcie.transfer(32e9))  # 1 s at full speed
        healthy = sim.now - start

        pcie.set_degradation(0.25)
        start = sim.now
        sim.run_until_event(pcie.transfer(32e9))
        degraded = sim.now - start
        # 4x the bandwidth term; the fixed wire latency is not scaled.
        assert degraded == pytest.approx(healthy * 4, rel=1e-4)

        pcie.set_degradation(1.0)
        start = sim.now
        sim.run_until_event(pcie.transfer(32e9))
        assert sim.now - start == pytest.approx(healthy, rel=1e-6)

    def test_bad_factor_rejected(self):
        runtime = build_system(["digit.500"])
        with pytest.raises(SimulationError):
            runtime.platform.pcie.set_degradation(0.0)
        with pytest.raises(SimulationError):
            runtime.platform.pcie.set_degradation(1.5)


class TestFaultInjector:
    def test_injector_arms_once(self):
        runtime = build_system(["digit.500"])
        injector = FaultInjector(runtime)
        plan = FaultPlan(
            specs=(FaultSpec(at_s=1.0, kind="server_outage", duration_s=0.5),)
        )
        injector.arm(plan)
        with pytest.raises(FaultPlanError, match="already armed"):
            injector.arm(plan)

    def test_window_faults_fire_and_restore(self):
        runtime = build_system(["digit.2000"])
        injector = FaultInjector(runtime)
        injector.arm(
            FaultPlan(
                specs=(
                    FaultSpec(at_s=0.5, kind="device_crash", duration_s=1.0),
                    FaultSpec(
                        at_s=0.5, kind="link_degrade", target="ethernet",
                        duration_s=1.0, factor=0.5,
                    ),
                    FaultSpec(at_s=0.5, kind="server_slow", duration_s=1.0, factor=4.0),
                )
            )
        )
        sim = runtime.platform.sim
        sim.run(until=1.0)
        assert runtime.platform.fpga.crashed
        assert runtime.platform.ethernet.degradation == 0.5
        assert runtime.server._reply_delay_factor == 4.0
        sim.run(until=2.0)
        assert not runtime.platform.fpga.crashed
        assert runtime.platform.ethernet.degradation == 1.0
        assert runtime.server._reply_delay_factor == 1.0
        assert len(injector.fired) == 3
        assert runtime.metrics.get("faults_injected_total").value == 3

    def test_count_faults_arm_countdowns(self):
        runtime = build_system(["digit.2000"])
        injector = FaultInjector(runtime)
        injector.arm(
            FaultPlan(
                specs=(
                    FaultSpec(at_s=0.1, kind="kernel_fault", target=KERNEL, count=2),
                    FaultSpec(at_s=0.1, kind="reconfig_fault", count=1),
                )
            )
        )
        runtime.platform.sim.run(until=0.2)
        assert runtime.xrt.pending_run_failures(KERNEL) == 2
        assert runtime.platform.fpga.pending_reconfig_failures == 1
        assert runtime.metrics.get("faults_injected_total").value == 3


class TestInjectorHorizon:
    def _plan(self, at_s):
        return FaultPlan(
            specs=(FaultSpec(at_s=at_s, kind="server_outage", duration_s=0.5),)
        )

    def test_spec_past_horizon_rejected(self):
        injector = FaultInjector(build_system(["digit.500"]))
        with pytest.raises(FaultPlanError, match="past the"):
            injector.arm(self._plan(at_s=10.0), horizon_s=5.0)

    def test_spec_at_exact_horizon_rejected(self):
        # A fault at t == horizon never fires: arming it is a plan bug.
        injector = FaultInjector(build_system(["digit.500"]))
        with pytest.raises(FaultPlanError, match="past the"):
            injector.arm(self._plan(at_s=5.0), horizon_s=5.0)

    def test_error_names_the_dead_specs(self):
        injector = FaultInjector(build_system(["digit.500"]))
        plan = FaultPlan(
            specs=(
                FaultSpec(at_s=1.0, kind="device_crash", duration_s=0.5),
                FaultSpec(at_s=9.0, kind="server_outage", duration_s=0.5),
                FaultSpec(at_s=11.0, kind="server_slow", duration_s=0.5, factor=2.0),
            )
        )
        with pytest.raises(FaultPlanError) as excinfo:
            injector.arm(plan, horizon_s=8.0)
        message = str(excinfo.value)
        assert "server_outage at t=9.0" in message
        assert "server_slow at t=11.0" in message
        assert "device_crash" not in message

    def test_rejection_leaves_the_injector_reusable(self):
        injector = FaultInjector(build_system(["digit.500"]))
        with pytest.raises(FaultPlanError):
            injector.arm(self._plan(at_s=10.0), horizon_s=5.0)
        injector.arm(self._plan(at_s=1.0), horizon_s=5.0)
        assert injector.plan is not None

    def test_in_horizon_plan_armed(self):
        injector = FaultInjector(build_system(["digit.500"]))
        injector.arm(self._plan(at_s=1.0), horizon_s=5.0)
        assert injector.plan is not None

    def test_no_horizon_trusts_the_plan(self):
        injector = FaultInjector(build_system(["digit.500"]))
        injector.arm(self._plan(at_s=1e9))
        assert injector.plan is not None


class TestDisabledTimeout:
    """request_timeout_s=None: the client has no timeout budget — a
    slow server blocks the call (no local fallback) and a reply that
    fails outright fails the run, instead of degrading silently."""

    def _runtime(self):
        return build_system(
            ["digit.2000"],
            resilience=ResilienceConfig(request_timeout_s=None),
        )

    def test_slow_server_blocks_instead_of_falling_back(self):
        runtime = self._runtime()
        sim = runtime.platform.sim
        sim.run_until_event(runtime.preload_fpga())
        runtime.server.set_reply_delay_factor(1e6)
        done = runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        done.defused = True
        # Run far past any default timeout budget: the client is still
        # parked on the reply, and no timeout fallback was counted.
        sim.run(until=sim.now + 10.0)
        assert not done.triggered
        fallbacks = runtime.resilience.summary()["fallbacks"]
        assert "scheduler_timeout" not in fallbacks
        # The (slow) reply eventually arrives and the run completes
        # with the server's decision — blocked, not broken.
        runtime.server.set_reply_delay_factor(1.0)
        record = sim.run_until_event(done)
        assert record.finished
        assert record.targets[0] == Target.FPGA

    def test_never_started_server_still_fails_fast(self):
        # stop() makes request() raise synchronously; that path is
        # timeout-independent and must keep working when the timeout
        # is disabled (the client cannot wait forever on a daemon that
        # can never reply).
        runtime = self._runtime()
        sim = runtime.platform.sim
        sim.run_until_event(runtime.preload_fpga())
        runtime.server.stop()
        record = sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        assert record.finished
        assert record.targets == [Target.X86]
        fallbacks = runtime.resilience.summary()["fallbacks"]
        assert fallbacks.get("scheduler_down") == 1

    def test_restart_drains_a_request_handed_to_the_stale_loop(self):
        # Generation guard: a request handed to the parked serve loop
        # right before a stop()/start() cycle is re-queued *behind* the
        # stale loop's sentinel and served by the restarted loop — the
        # client (which cannot time out) must still get its reply.
        runtime = self._runtime()
        sim = runtime.platform.sim
        sim.run_until_event(runtime.preload_fpga())
        # The store hands the item straight to the parked getter; the
        # stale loop has it in hand when the daemon cycles.
        reply = runtime.server.request("digit.2000")
        runtime.server.stop()
        runtime.server.start()
        target = sim.run_until_event(reply)
        assert target == Target.FPGA

    @pytest.mark.parametrize("client_path", ["chain", "generator"])
    def test_restart_mid_run_completes_without_timeout(
        self, monkeypatch, client_path
    ):
        monkeypatch.setenv("REPRO_CLIENT_PATH", client_path)
        runtime = self._runtime()
        sim = runtime.platform.sim
        sim.run_until_event(runtime.preload_fpga())
        done = runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        runtime.server.stop()
        runtime.server.start()
        record = sim.run_until_event(done)
        assert record.finished
        assert record.targets == [Target.FPGA]
        fallbacks = runtime.resilience.summary()["fallbacks"]
        assert "scheduler_timeout" not in fallbacks
