"""Chaos harness end-to-end: graceful degradation under fault plans.

Small fleets keep these fast; the full-scale run lives in the
``chaos_stress`` wall-clock bench scenario.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, default_plan, run_chaos
from repro.faults.harness import _record_lines, _run_workload

pytestmark = pytest.mark.metrics

CLIENTS, BACKGROUND = 20, 5


class TestRunChaos:
    def test_default_plan_degrades_gracefully(self):
        report = run_chaos(
            plan=default_plan(0), seed=0, clients=CLIENTS, background=BACKGROUND
        )
        assert report.ok, report.to_text()
        assert report.completion_rate == 1.0
        assert report.faults_injected > 0
        assert report.events > 0
        assert report.sim_seconds > 0.0
        # The report serializes for the CLI's --json mode.
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["plan_faults"] == default_plan(0).counts_by_kind()

    def test_zero_fault_plan_reproduces_fault_free_run(self):
        report = run_chaos(
            plan=FaultPlan.empty(), seed=3, clients=CLIENTS, background=BACKGROUND
        )
        assert report.ok
        assert report.faults_injected == 0
        assert report.retries == 0
        assert report.fallbacks == {}
        assert report.quarantines == 0
        # Record-by-record identity with a fresh fault-free run,
        # including start/end timestamps to 1 ns.
        _rt, records = _run_workload(3, CLIENTS, BACKGROUND, None, None)
        assert report.lines[1:] == _record_lines(records)

    def test_replay_is_deterministic(self):
        kwargs = dict(
            plan=default_plan(7), seed=7, clients=CLIENTS, background=BACKGROUND
        )
        first = run_chaos(**kwargs)
        second = run_chaos(**kwargs)
        assert first.lines == second.lines
        assert first.fallbacks == second.fallbacks
        assert first.retries == second.retries
        assert first.events == second.events

    def test_report_text_mentions_the_verdict(self):
        report = run_chaos(
            plan=FaultPlan.empty(), seed=0, clients=5, background=2
        )
        text = report.to_text()
        assert text.startswith("chaos OK")
        assert "100.0%" in text


class TestChaosProperty:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(plan_seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_any_finite_plan_reaches_full_completion(self, plan_seed):
        """Every client finishes all calls under any seeded fault plan."""
        report = run_chaos(
            plan=default_plan(plan_seed), seed=1, clients=12, background=3
        )
        assert report.completion_rate == 1.0, report.to_text()
        assert not report.mismatches, report.to_text()
