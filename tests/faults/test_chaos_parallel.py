"""Parallel chaos legs == serial chaos legs (the harness differential).

``run_chaos(jobs=2)`` runs its fault-free baseline and chaos legs in
two pool workers; each leg is a pure function of its arguments, so the
report's deterministic payload must match the serial run byte for byte
— only the wall clocks and the execution mode may differ.
"""

import pytest

from repro.faults import default_plan, run_chaos
from repro.faults.harness import _run_leg

_VOLATILE = ("wall_s", "baseline_wall_s", "events_per_sec", "mode")


def _stripped(report):
    payload = report.to_dict()
    for key in _VOLATILE:
        payload.pop(key)
    return payload


class TestParallelChaosLegs:
    def test_parallel_report_matches_serial(self):
        plan = default_plan(3)
        serial = run_chaos(plan=plan, seed=3, clients=8, background=2, jobs=1)
        parallel = run_chaos(plan=plan, seed=3, clients=8, background=2, jobs=2)
        assert serial.mode == "serial"
        assert parallel.mode == "parallel"
        assert serial.ok and parallel.ok
        assert parallel.lines == serial.lines
        assert _stripped(parallel) == _stripped(serial)

    def test_leg_is_pure_function_of_args(self):
        # The worker entry point called twice in-process must reproduce
        # itself exactly (this is what makes pool dispatch safe).
        args = (5, 4, 1, default_plan(5), None)
        first = _run_leg(args)
        second = _run_leg(args)
        assert [r.calls_completed for r in first.records] == [
            r.calls_completed for r in second.records
        ]
        assert first.events == second.events
        assert first.sim_seconds == second.sim_seconds
        assert first.summary == second.summary

    def test_jobs_env_routes_legs_through_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_JOBS", "2")
        report = run_chaos(plan=default_plan(2), seed=2, clients=4, background=1)
        assert report.mode == "parallel"
        assert report.ok
