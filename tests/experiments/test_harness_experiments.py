"""Tests for the experiment harness and cheap experiment runs.

These run the real experiment code at reduced scale (few repeats, small
sets) and assert the *paper's qualitative shapes*, not absolute
numbers — the full-scale versions live in benchmarks/.
"""

import numpy as np
import pytest

from repro.core import SystemMode
from repro.experiments import (
    figure6_throughput,
    figure9_profitability,
    fixed_workload_sweep,
    measure_scenario,
    measure_throughput,
    run_application_set,
    sample_application_set,
    table1_execution_times,
    table2_thresholds,
    table4_bfs,
)
from repro.experiments.periodic import WaveLoad
from repro.core import build_system
from repro.workloads import PAPER_BENCHMARKS, PAPER_TABLE1_MS, PAPER_TABLE2


class TestHarness:
    def test_sampling_is_uniform_over_pool_and_deterministic(self):
        rng = np.random.default_rng(0)
        sets = [sample_application_set(rng, 5) for _ in range(50)]
        names = {name for apps in sets for name in apps}
        assert names <= set(PAPER_BENCHMARKS)
        assert len(names) == len(PAPER_BENCHMARKS)  # all appear eventually
        rng2 = np.random.default_rng(0)
        assert sample_application_set(rng2, 5) == sets[0]

    def test_run_application_set_collects_all_records(self):
        apps = ("digit.500", "facedet.320", "digit.500")
        outcome = run_application_set(apps, SystemMode.VANILLA_X86, seed=1)
        assert len(outcome.records) == 3
        assert outcome.average_s > 0
        assert outcome.max_s >= outcome.average_s
        assert outcome.target_counts() == {"x86": 3}

    def test_same_seed_same_results(self):
        apps = ("digit.500", "cg.A")
        first = run_application_set(apps, SystemMode.XAR_TREK, background=20, seed=3)
        second = run_application_set(apps, SystemMode.XAR_TREK, background=20, seed=3)
        assert first.average_s == pytest.approx(second.average_s)


class TestTable1:
    @pytest.mark.parametrize("name", PAPER_BENCHMARKS)
    def test_all_scenarios_within_2pct_of_paper(self, name):
        paper_x86, paper_fpga, paper_arm = PAPER_TABLE1_MS[name]
        assert measure_scenario(name, "x86") * 1e3 == pytest.approx(paper_x86, rel=0.02)
        assert measure_scenario(name, "fpga") * 1e3 == pytest.approx(paper_fpga, rel=0.02)
        assert measure_scenario(name, "arm") * 1e3 == pytest.approx(paper_arm, rel=0.02)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            measure_scenario("cg.A", "gpu")

    def test_result_table_built(self):
        result = table1_execution_times()
        assert len(result.rows) == 5


class TestTable2Shapes:
    def test_matches_paper_structure(self):
        result = table2_thresholds()
        by_name = {row[0]: row for row in result.rows}
        for name, (_k, paper_fpga, paper_arm) in PAPER_TABLE2.items():
            _, _, fpga, arm, _, _ = by_name[name]
            # Zero exactly where the paper has zero.
            assert (fpga == 0) == (paper_fpga == 0)
            # CG-A is the only benchmark preferring ARM over FPGA.
            assert (arm < fpga) == (paper_arm < paper_fpga)


class TestTable4:
    def test_x86_wins_by_orders_of_magnitude(self):
        result = table4_bfs(node_counts=(1000, 3000, 5000), run_functional=True)
        for row in result.rows:
            _nodes, x86_ms, fpga_ms, _px, _pf, ok = row
            assert fpga_ms > 10 * x86_ms
            assert ok is True


class TestFigureShapes:
    def test_low_load_xar_trek_tracks_x86(self):
        result = fixed_workload_sweep(
            "mini-fig3", set_sizes=(2, 4), total_processes=None,
            modes=(SystemMode.VANILLA_X86, SystemMode.XAR_TREK),
            repeats=3, seed=0,
        )
        for row in result.rows:
            _size, x86_ms, _std1, xar_ms, _std2 = row
            # Xar-Trek rarely migrates at low load: within 2% of x86.
            assert xar_ms == pytest.approx(x86_ms, rel=0.02)

    def test_medium_load_xar_trek_beats_x86(self):
        result = fixed_workload_sweep(
            "mini-fig4", set_sizes=(5, 10), total_processes=60,
            modes=(SystemMode.VANILLA_X86, SystemMode.XAR_TREK),
            repeats=3, seed=0,
        )
        for row in result.rows:
            _size, x86_ms, _std1, xar_ms, _std2 = row
            assert xar_ms < x86_ms

    def test_throughput_gains_appear_beyond_the_threshold(self):
        quiet = measure_throughput(SystemMode.XAR_TREK, background=0, n_images=200, window_s=20.0)
        x86_quiet = measure_throughput(SystemMode.VANILLA_X86, background=0, n_images=200, window_s=20.0)
        busy = measure_throughput(SystemMode.XAR_TREK, background=50, n_images=200, window_s=20.0)
        x86_busy = measure_throughput(SystemMode.VANILLA_X86, background=50, n_images=200, window_s=20.0)
        assert quiet == pytest.approx(x86_quiet, rel=0.05)  # no migration when cool
        assert busy > 2 * x86_busy  # paper: ~4x beyond 25 processes

    def test_figure6_structure(self):
        result = figure6_throughput(background_loads=(0, 30), n_images=100, window_s=10.0)
        assert len(result.rows) == 2
        assert len(result.headers) == 4

    def test_profitability_declines_with_cg_share(self):
        lo = figure9_profitability(percentages=(0,), set_size=4, total_processes=40)
        hi = figure9_profitability(percentages=(100,), set_size=4, total_processes=40)
        gain_lo = lo.rows[0][-1]
        gain_hi = hi.rows[0][-1]
        assert gain_lo > gain_hi

    def test_profitability_validates_percentage(self):
        from repro.experiments import profitability_point

        with pytest.raises(ValueError):
            profitability_point(150)


class TestWaveLoad:
    def test_triangle_targets(self):
        runtime = build_system(["facedet.320"])
        wave = WaveLoad(runtime, low=10, high=110, period_s=100.0, duration_s=100.0)
        assert wave.target_at(0) == 10
        assert wave.target_at(50) == 110
        assert wave.target_at(100) == 10
        assert wave.target_at(25) == 60
        wave.stop()

    def test_wave_actually_modulates_x86_load(self):
        runtime = build_system(["facedet.320"])
        wave = WaveLoad(
            runtime, low=2, high=30, period_s=40.0, duration_s=40.0,
            step_s=2.0, work_s=1.0,
        )
        runtime.platform.sim.run(until=20.0)
        peak_load = runtime.platform.x86_load
        assert peak_load >= 20
        wave.stop()

    def test_bad_bounds_rejected(self):
        runtime = build_system(["facedet.320"])
        with pytest.raises(ValueError):
            WaveLoad(runtime, low=5, high=2, period_s=10, duration_s=10)
