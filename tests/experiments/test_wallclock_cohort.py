"""The cohort_stress bench scenario: replay determinism and its guard.

``cohort_stress`` is the wall-clock proof of the cohort vectorization:
thousands of clients in a handful of simulator events, with the
events/sec headline computed over *logical* client events. These tests
mirror the ``scale_stress`` coverage — same-seed replay must be
byte-identical, the extra payload must expose the shape the scenario
promises — plus the property the scenario exists to defend: the
per-client reference path (``REPRO_COHORT_REFERENCE=1``) produces the
identical checksum, so a vectorization bug can never hide behind the
fast path in a bench run.
"""

import json
from pathlib import Path

from repro.core.cohort import REFERENCE_ENV
from repro.experiments.wallclock import (
    BenchReport,
    ScenarioResult,
    available_scenarios,
    guard_events_per_sec,
    run_scenario,
)


class TestCohortStress:
    def test_scenario_is_registered(self):
        assert "cohort_stress" in available_scenarios()

    def test_quick_run_is_deterministic_and_cohort_shaped(self):
        first = run_scenario("cohort_stress", seed=0, quick=True)
        second = run_scenario("cohort_stress", seed=0, quick=True)
        assert first.checksum == second.checksum
        assert first.events == second.events
        assert first.sim_seconds == second.sim_seconds
        # quick does not shrink this scenario (see the scenario's
        # docstring): the committed full-size rate must stay comparable.
        assert first.extra["clients"] == 10_000
        assert first.extra["cohorts"] >= 2
        assert first.extra["path"] == "vectorized"
        # The decoupling the scenario guards: thousands of logical
        # client events carried by a few dozen simulator events.
        assert first.events >= first.extra["clients"]
        assert first.extra["sim_events"] < first.extra["clients"]
        assert first.extra["fault_fallbacks"] == 0

    def test_different_seeds_differ(self):
        first = run_scenario("cohort_stress", seed=1, quick=True)
        second = run_scenario("cohort_stress", seed=2, quick=True)
        assert first.checksum != second.checksum

    def test_reference_path_matches_vectorized_checksum(self, monkeypatch):
        # The bench-level differential oracle: forcing the per-client
        # path must reproduce the vectorized checksum byte for byte.
        vectorized = run_scenario("cohort_stress", seed=0, quick=True)
        monkeypatch.setenv(REFERENCE_ENV, "1")
        reference = run_scenario("cohort_stress", seed=0, quick=True)
        assert reference.extra["path"] == "reference"
        assert reference.checksum == vectorized.checksum
        assert reference.events == vectorized.events
        assert reference.sim_seconds == vectorized.sim_seconds
        # ...at O(clients) simulator events instead of O(cohorts).
        assert reference.extra["sim_events"] > vectorized.extra["sim_events"]


class TestCohortStressGuard:
    def _report_with_rate(self, events_per_sec):
        report = BenchReport(seed=0, quick=True)
        report.results.append(
            ScenarioResult(
                name="cohort_stress",
                wall_s=1.0,
                events=int(events_per_sec),
                sim_seconds=1.0,
                peak_rss_bytes=0,
                checksum="ab",
            )
        )
        return report

    def _baseline(self, tmp_path, events_per_sec=1_000_000.0):
        path = tmp_path / "committed.json"
        path.write_text(
            json.dumps(
                {
                    "schema": "xar-trek-bench/1",
                    "scenarios": [
                        {
                            "name": "cohort_stress",
                            "wall_s": 1.0,
                            "events_per_sec": events_per_sec,
                        }
                    ],
                }
            )
        )
        return str(path)

    def test_rate_regression_beyond_threshold_fails(self, tmp_path):
        baseline = self._baseline(tmp_path)
        report = self._report_with_rate(500_000.0)  # a 50% drop
        failures = guard_events_per_sec(report, baseline, max_drop=0.30)
        assert len(failures) == 1
        assert "cohort_stress" in failures[0]

    def test_rate_within_threshold_passes(self, tmp_path):
        baseline = self._baseline(tmp_path)
        report = self._report_with_rate(800_000.0)  # a 20% drop
        assert guard_events_per_sec(report, baseline, max_drop=0.30) == []

    def test_live_quick_rate_holds_against_committed_baseline(self, tmp_path):
        # The exact check CI's bench-smoke job performs, in miniature:
        # the quick scenario's measured rate against the committed
        # BENCH_wallclock.json entry with the stock 30% tolerance.
        committed = Path(__file__).resolve().parents[2] / "BENCH_wallclock.json"
        # Warm the compile cache first, as the committed figure and
        # CI's guard invocation (which runs scale_stress, over the
        # same application set, in the same process) both do — the
        # guard checks the steady-state rate, not cold-start compile.
        # The whole run is ~15 ms of wall time, so a single sample is
        # at the mercy of scheduler noise; guard the best of three,
        # which measures capability while still catching regressions.
        run_scenario("cohort_stress", seed=0, quick=True)
        result = max(
            (run_scenario("cohort_stress", seed=0, quick=True) for _ in range(3)),
            key=lambda r: r.events_per_sec,
        )
        report = BenchReport(seed=0, quick=True)
        report.results.append(result)
        failures = guard_events_per_sec(report, str(committed), max_drop=0.30)
        assert failures == []
        # The acceptance floor for the vectorization itself.
        assert result.events_per_sec >= 500_000
