"""Tests for timeline extraction and export."""

import csv
import io
import json

import pytest

from repro.core import SystemMode, build_system
from repro.experiments import extract_timeline


@pytest.fixture()
def traced_runtime():
    runtime = build_system(["digit.2000", "cg.A"], trace=True)
    load = runtime.launch_background(40, work_s=60.0)
    events = [
        runtime.launch(app, seed=i, mode=SystemMode.XAR_TREK, delay_s=0.01)
        for i, app in enumerate(("digit.2000", "cg.A", "digit.2000"))
    ]
    runtime.wait_all(events)
    load.stop()
    return runtime


class TestExtraction:
    def test_spans_and_decisions_present(self, traced_runtime):
        timeline = extract_timeline(traced_runtime)
        assert len(timeline.of_kind("app-start")) == 3
        assert len(timeline.of_kind("app-end")) == 3
        assert len(timeline.of_kind("decision")) == 3
        # Early configuration triggered at least one reconfiguration.
        assert len(timeline.of_kind("reconfig")) >= 1

    def test_events_sorted_by_time(self, traced_runtime):
        timeline = extract_timeline(traced_runtime)
        times = [ev.time_s for ev in timeline.events]
        assert times == sorted(times)

    def test_between_filters(self, traced_runtime):
        timeline = extract_timeline(traced_runtime)
        clipped = timeline.between(0.0, 0.02)
        assert len(clipped) < len(timeline)
        assert all(ev.time_s <= 0.02 for ev in clipped.events)

    def test_until_filters(self, traced_runtime):
        full = extract_timeline(traced_runtime)
        clipped = extract_timeline(traced_runtime, until=0.02)
        assert len(clipped) < len(full)

    def test_decision_counts_by_rule(self, traced_runtime):
        timeline = extract_timeline(traced_runtime)
        counts = timeline.decision_counts()
        assert sum(counts.values()) == 3
        assert all(rule for rule in counts)

    def test_summary_mentions_the_numbers(self, traced_runtime):
        summary = extract_timeline(traced_runtime).summary()
        assert "3 app starts" in summary
        assert "decisions:" in summary


class TestExport:
    def test_csv_round_trip(self, traced_runtime):
        timeline = extract_timeline(traced_runtime)
        rows = list(csv.reader(io.StringIO(timeline.to_csv())))
        assert rows[0] == ["time_s", "kind", "app", "detail"]
        assert len(rows) == len(timeline) + 1
        # Times parse as floats.
        assert all(float(row[0]) >= 0 for row in rows[1:])

    def test_json_round_trip(self, traced_runtime):
        timeline = extract_timeline(traced_runtime)
        decoded = json.loads(timeline.to_json())
        assert len(decoded) == len(timeline)
        assert {"time_s", "kind", "app", "detail"} <= set(decoded[0])

    def test_untracet_runtime_still_exports_spans(self):
        runtime = build_system(["digit.500"])  # trace disabled
        runtime.platform.sim.run_until_event(
            runtime.launch("digit.500", mode=SystemMode.VANILLA_X86)
        )
        timeline = extract_timeline(runtime)
        assert len(timeline.of_kind("app-end")) == 1
        assert timeline.of_kind("decision") == []
