"""The parallel sweep executor: determinism, caching, seed derivation.

The executor's contract is that *how* cells run (serial, process pool,
cache) never changes *what* they produce — these tests pin that down
with byte-level checksums, plus the satellite regressions: seed
collisions, prebuilt-runtime validation, the persistent worker pool
(whose absence once made the bench's parallel leg *slower* than
serial), and the bench baseline schema guard.
"""

import os
import pickle
import time

import pytest

from repro.core import SystemMode, build_system
from repro.experiments import (
    fixed_workload_sweep,
    run_application_set,
    table1_execution_times,
    table3_load_classes,
)
from repro.experiments.sweep import (
    Cell,
    SweepCache,
    cells_for_sets,
    cells_for_throughput,
    derive_seeds,
    parallel_threshold,
    platform_config_hash,
    resolve_jobs,
    results_checksum,
    run_cell,
    run_cells,
    shutdown_pool,
    sweep_metrics,
    warm_pool,
)
from repro.experiments import sweep as sweep_module
from repro.experiments.wallclock import load_report, run_scenario
from repro.metrics import MetricsRegistry

_MODES = (SystemMode.VANILLA_X86, SystemMode.XAR_TREK)


def _mini_cells(repeats=2, background=30, seed=0):
    return cells_for_sets(3, _MODES, background=background, repeats=repeats, seed=seed)


class TestSeedDerivation:
    def test_no_collisions_across_roots_and_indices(self):
        # The old arithmetic (seed * 100 + repeat) collides as soon as
        # repeats >= 100: (0, 100) == (1, 0). SeedSequence.spawn must
        # keep every (root, index) pair distinct.
        seen = set()
        for root in range(4):
            seen.update(derive_seeds(root, 120))
        assert len(seen) == 4 * 120

    def test_deterministic_per_root(self):
        assert derive_seeds(7, 5) == derive_seeds(7, 5)
        assert derive_seeds(7, 5) != derive_seeds(8, 5)

    def test_cells_share_sets_and_seeds_across_modes(self):
        cells = _mini_cells(repeats=3)
        by_repeat = [cells[i : i + len(_MODES)] for i in range(0, len(cells), len(_MODES))]
        for group in by_repeat:
            assert len({c.apps for c in group}) == 1
            assert len({c.seed for c in group}) == 1
            assert {c.mode for c in group} == set(_MODES)


class TestRunApplicationSet:
    def test_prebuilt_runtime_missing_app_raises(self):
        runtime = build_system(["digit.500"], seed=0)
        with pytest.raises(ValueError, match="lacks applications"):
            run_application_set(
                ("digit.500", "cg.A"), SystemMode.VANILLA_X86, runtime=runtime
            )

    def test_prebuilt_runtime_matches_fresh_build(self):
        # With the same seed, passing a prebuilt runtime is documented
        # to be equivalent to letting run_application_set build one.
        apps = ("digit.500", "cg.A")
        fresh = run_application_set(apps, SystemMode.XAR_TREK, background=20, seed=5)
        prebuilt = run_application_set(
            apps, SystemMode.XAR_TREK, background=20, seed=5,
            runtime=build_system(sorted(set(apps)), seed=5),
        )
        assert fresh.average_s == prebuilt.average_s
        assert fresh.metrics == prebuilt.metrics


class TestSerialParallelEquivalence:
    @pytest.fixture(autouse=True)
    def _force_pool(self, monkeypatch):
        # These tests exist to exercise the process-pool path; disable
        # the small-grid serial fallback so the mini grids still go
        # through the pool.
        monkeypatch.setenv("REPRO_SWEEP_MIN_CELLS", "0")

    def test_jobs2_byte_identical_results(self):
        cells = _mini_cells()
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=2)
        assert results_checksum(serial.results) == results_checksum(parallel.results)
        for a, b in zip(serial.results, parallel.results):
            assert a.outcome.average_s == b.outcome.average_s
            assert a.outcome.metrics == b.outcome.metrics

    def test_figure5_shape_identical_under_jobs2(self):
        kwargs = dict(
            set_sizes=(5,), total_processes=120, modes=_MODES, repeats=2, seed=0
        )
        serial = fixed_workload_sweep("mini-fig5", **kwargs, jobs=1)
        parallel = fixed_workload_sweep("mini-fig5", **kwargs, jobs=2)
        assert serial.rows == parallel.rows

    def test_table1_and_table3_identical_under_jobs2(self):
        assert table1_execution_times(jobs=1).rows == table1_execution_times(jobs=2).rows
        assert table3_load_classes().to_text() == table3_load_classes().to_text()

    def test_stats_account_for_every_cell(self):
        cells = _mini_cells()
        outcome = run_cells(cells, jobs=2)
        assert outcome.stats.cells_total == len(cells)
        assert outcome.stats.executed == len(cells)
        assert outcome.stats.jobs == 2
        assert outcome.stats.workers == 2
        assert outcome.stats.mode == "parallel"
        assert 0.0 < outcome.stats.worker_utilization <= 1.0


class TestSerialFallback:
    """A multi-job sweep on a small grid must not pay for the pool.

    The committed bench once recorded parallel_speedup 0.66 — i.e. a
    slowdown — because worker startup dominated a 27-cell grid of
    tens-of-milliseconds cells. Below the cell threshold the executor
    now runs serially and says so in its stats.
    """

    def test_small_grid_falls_back_to_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_MIN_CELLS", raising=False)
        outcome = run_cells(_mini_cells(), jobs=2)
        assert outcome.stats.mode == "serial"
        assert outcome.stats.jobs == 2  # requested, not used
        assert outcome.stats.workers == 1
        assert outcome.stats.executed == outcome.stats.cells_total

    def test_fallback_is_byte_identical_to_pool(self, monkeypatch):
        cells = _mini_cells()
        monkeypatch.delenv("REPRO_SWEEP_MIN_CELLS", raising=False)
        fallback = run_cells(cells, jobs=2)
        monkeypatch.setenv("REPRO_SWEEP_MIN_CELLS", "0")
        pooled = run_cells(cells, jobs=2)
        assert fallback.stats.mode == "serial"
        assert pooled.stats.mode == "parallel"
        assert results_checksum(fallback.results) == results_checksum(pooled.results)

    def test_env_override_controls_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_MIN_CELLS", raising=False)
        assert parallel_threshold(4) == 64
        monkeypatch.setenv("REPRO_SWEEP_MIN_CELLS", "3")
        assert parallel_threshold(4) == 3
        outcome = run_cells(_mini_cells(), jobs=2)  # 4 cells >= 3
        assert outcome.stats.mode == "parallel"

    def test_mode_lands_in_sweep_metrics(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_MIN_CELLS", raising=False)
        registry = MetricsRegistry()
        run_cells(_mini_cells(repeats=1), jobs=2, metrics=registry)
        counts = registry.get("sweep_runs_total").as_dict()
        assert counts == {("serial",): 1}


class TestPersistentPool:
    """The worker pool survives across run_cells calls.

    Spinning up a ProcessPoolExecutor per sweep is what lost to serial
    at 27 cells (parallel_speedup 0.92 in the committed bench): worker
    spawn plus a cold per-worker compile cache cost more than the
    grid. The pool is now module-global — reused, grown on demand,
    pre-warmable before a timed section, and torn down explicitly.
    """

    @pytest.fixture(autouse=True)
    def _clean_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_MIN_CELLS", "0")
        shutdown_pool()
        yield
        shutdown_pool()

    def test_pool_is_reused_across_runs(self):
        cells = _mini_cells(repeats=1)
        run_cells(cells, jobs=2)
        first = sweep_module._POOL
        assert first is not None
        run_cells(cells, jobs=2)
        assert sweep_module._POOL is first

    def test_pool_grows_but_never_shrinks(self):
        cells = _mini_cells(repeats=2)
        run_cells(cells, jobs=2)
        assert sweep_module._POOL_WORKERS == 2
        grown = run_cells(_mini_cells(repeats=3), jobs=3)
        assert sweep_module._POOL_WORKERS == 3
        assert grown.stats.workers == 3
        shrunk_request = run_cells(cells, jobs=2)
        assert sweep_module._POOL_WORKERS == 3  # kept, not rebuilt
        assert shrunk_request.stats.workers == 2

    def test_warm_pool_prespawns_and_reports_workers(self):
        assert sweep_module._POOL is None
        assert warm_pool(2) == 2
        assert sweep_module._POOL is not None
        assert sweep_module._POOL_WORKERS == 2
        # Serial resolutions never pay for a pool.
        shutdown_pool()
        assert warm_pool(1) == 0
        assert sweep_module._POOL is None

    def test_shutdown_is_idempotent(self):
        warm_pool(2)
        shutdown_pool()
        assert sweep_module._POOL is None
        shutdown_pool()
        assert sweep_module._POOL is None

    def test_pooled_results_identical_to_serial(self):
        cells = _mini_cells()
        serial = run_cells(cells, jobs=1)
        warm_pool(2)
        pooled = run_cells(cells, jobs=2)
        assert pooled.stats.mode == "parallel"
        assert results_checksum(serial.results) == results_checksum(pooled.results)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="parallel speedup needs at least 2 cores",
)
class TestParallelSpeedup:
    def test_warm_pool_beats_serial_on_a_real_grid(self, monkeypatch):
        # The regression the persistent pool exists to fix: with the
        # pool pre-spawned and its workers' compile caches warm, a
        # parallel sweep of a bench-sized grid must actually be faster
        # than running the same cells serially.
        monkeypatch.setenv("REPRO_SWEEP_MIN_CELLS", "0")
        cells = _mini_cells(repeats=14)  # 28 cells, ~the bench grid
        serial_start = time.perf_counter()
        serial = run_cells(cells, jobs=1)
        serial_wall = time.perf_counter() - serial_start
        warm_pool(2)
        parallel_start = time.perf_counter()
        parallel = run_cells(cells, jobs=2)
        parallel_wall = time.perf_counter() - parallel_start
        assert parallel.stats.mode == "parallel"
        assert results_checksum(serial.results) == results_checksum(parallel.results)
        assert serial_wall / parallel_wall > 1.0, (
            f"parallel sweep lost to serial again: "
            f"{serial_wall:.3f}s serial vs {parallel_wall:.3f}s parallel"
        )


class TestCache:
    def test_second_run_hits_for_every_cell(self, tmp_path):
        cells = _mini_cells()
        cache = SweepCache(tmp_path)
        cold = run_cells(cells, cache=cache)
        assert cold.stats.cache_hits == 0
        assert cold.stats.cache_misses == len(cells)
        warm = run_cells(cells, cache=cache)
        assert warm.stats.cache_hits == len(cells)
        assert warm.stats.cache_misses == 0
        assert all(r.cached for r in warm.results)
        assert results_checksum(warm.results) == results_checksum(cold.results)

    def test_dirty_fingerprint_misses(self, tmp_path):
        cells = _mini_cells(repeats=1)
        cache = SweepCache(tmp_path)
        run_cells(cells, cache=cache)
        dirty = SweepCache(tmp_path, fingerprint="other-version/other-platform")
        again = run_cells(cells, cache=dirty)
        assert again.stats.cache_hits == 0
        assert again.stats.cache_misses == len(cells)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cells = _mini_cells(repeats=1)
        cache = SweepCache(tmp_path)
        run_cells(cells, cache=cache)
        for path in tmp_path.rglob("*.pkl"):
            path.write_bytes(b"not a pickle")
        recovered = run_cells(cells, cache=cache)
        assert recovered.stats.cache_hits == 0
        # The corrupt entries were rewritten with good payloads.
        assert run_cells(cells, cache=cache).stats.cache_hits == len(cells)

    def test_key_covers_spec_version_and_platform(self, tmp_path):
        cache = SweepCache(tmp_path)
        cell = _mini_cells(repeats=1)[0]
        other_mode = Cell(**{**cell.__dict__, "mode": SystemMode.ALWAYS_FPGA})
        assert cache.key_for(cell) != cache.key_for(other_mode)
        assert len(platform_config_hash()) == 16
        assert "/" in SweepCache.default_fingerprint()


class TestCellPrimitives:
    def test_cells_are_picklable(self):
        for cell in _mini_cells(repeats=1) + cells_for_throughput(
            "facedet.320", _MODES, (0,), n_images=10, window_s=2.0
        ):
            clone = pickle.loads(pickle.dumps(cell))
            assert clone == cell

    def test_unknown_kind_rejected(self):
        bad = Cell(kind="nope", apps=("cg.A",), mode=SystemMode.XAR_TREK, seed=0)
        with pytest.raises(ValueError, match="unknown cell kind"):
            run_cell(bad)

    def test_throughput_cell_matches_scalar_window(self):
        cell = cells_for_throughput(
            "facedet.320", (SystemMode.VANILLA_X86,), (0,), n_images=50, window_s=5.0
        )[0]
        result = run_cell(cell)
        assert result.value > 0
        assert result.events > 0
        assert result.sim_seconds > 0


class TestJobsResolution:
    def test_explicit_and_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs("4") == 4
        assert resolve_jobs("auto") >= 1
        assert resolve_jobs(0) >= 1

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "2")
        assert resolve_jobs(None) == 2
        assert resolve_jobs(1) == 1  # explicit wins


class TestSweepMetrics:
    def test_counters_record_cells_and_cache_traffic(self, tmp_path):
        registry = MetricsRegistry()
        cells = _mini_cells(repeats=1)
        cache = SweepCache(tmp_path)
        run_cells(cells, cache=cache, metrics=registry)
        run_cells(cells, cache=cache, metrics=registry)
        assert registry.get("sweep_cells_total").value == 2 * len(cells)
        assert registry.get("sweep_cache_hits_total").value == len(cells)
        assert registry.get("sweep_cache_misses_total").value == len(cells)
        assert registry.get("sweep_cells_executed_total").value == len(cells)
        assert registry.get("sweep_cell_wall_seconds").count == len(cells)

    def test_global_registry_exists(self):
        assert sweep_metrics() is sweep_metrics()


class TestBenchIntegration:
    def test_report_sweep_scenario_records_all_legs(self):
        result = run_scenario("report_sweep", seed=1, quick=True, jobs=2)
        extra = result.extra
        assert extra["jobs"] == 2
        assert extra["cells"] > 0
        assert extra["serial_wall_s"] > 0
        assert extra["parallel_wall_s"] > 0
        assert extra["warm_cache_wall_s"] > 0
        assert extra["cache_hits_warm"] == extra["cells"]
        assert "extra" in result.to_dict()

    def test_baseline_schema_mismatch_is_a_clear_error(self, tmp_path):
        bad = tmp_path / "old.json"
        bad.write_text('{"schema": "other-bench/9", "scenarios": []}')
        with pytest.raises(ValueError, match="schema 'other-bench/9'"):
            load_report(str(bad))
        missing = tmp_path / "none.json"
        missing.write_text('{"scenarios": []}')
        with pytest.raises(ValueError, match="schema None"):
            load_report(str(missing))
