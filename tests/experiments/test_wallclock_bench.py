"""The wall-clock bench harness: replay determinism and report plumbing."""

import json

import pytest

from repro.experiments.wallclock import (
    BenchReport,
    ScenarioResult,
    available_scenarios,
    load_report,
    run_bench,
    run_scenario,
)


class TestReplayDeterminism:
    @pytest.mark.parametrize("name", available_scenarios())
    def test_same_seed_same_outputs(self, name):
        # The bench exists to prove perf work did not change behaviour,
        # so its own scenarios must be seed-deterministic: two runs of
        # the same seed produce byte-identical output checksums and the
        # same event/simulated-time totals.
        first = run_scenario(name, seed=3, quick=True)
        second = run_scenario(name, seed=3, quick=True)
        assert first.checksum == second.checksum
        assert first.events == second.events
        assert first.sim_seconds == second.sim_seconds

    def test_different_seeds_differ(self):
        first = run_scenario("fig5_high_load", seed=1, quick=True)
        second = run_scenario("fig5_high_load", seed=2, quick=True)
        assert first.checksum != second.checksum

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown bench scenario"):
            run_scenario("fig99_nope")


class TestReportPlumbing:
    def test_report_round_trips_through_json(self, tmp_path):
        report = run_bench(scenarios=["fig3_low_load"], seed=0, quick=True)
        payload = report.to_dict()
        assert payload["schema"] == "xar-trek-bench/1"
        assert [s["name"] for s in payload["scenarios"]] == ["fig3_low_load"]
        path = tmp_path / "bench.json"
        path.write_text(report.to_json())
        assert load_report(str(path)) == {
            "fig3_low_load": payload["scenarios"][0]["wall_s"]
        }

    def test_speedups_against_baseline(self, tmp_path):
        baseline = {
            "schema": "xar-trek-bench/1",
            "scenarios": [{"name": "figX", "wall_s": 2.0}],
        }
        path = tmp_path / "base.json"
        path.write_text(json.dumps(baseline))
        report = BenchReport(seed=0, quick=True)
        report.baseline_wall_s = load_report(str(path))
        report.results.append(
            ScenarioResult(
                name="figX",
                wall_s=0.5,
                events=100,
                sim_seconds=1.0,
                peak_rss_bytes=0,
                checksum="ab",
            )
        )
        assert report.speedups() == {"figX": pytest.approx(4.0)}
        assert report.to_dict()["speedup_vs_baseline"] == {"figX": 4.0}
        assert "4.00x vs baseline" in report.to_text()

    def test_scenario_metrics_are_populated(self):
        result = run_scenario("fig3_low_load", seed=0, quick=True)
        assert result.events > 0
        assert result.sim_seconds > 0
        assert result.wall_s > 0
        assert result.events_per_sec > 0
        assert len(result.checksum) == 16
