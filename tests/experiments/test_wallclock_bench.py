"""The wall-clock bench harness: replay determinism and report plumbing."""

import json

import pytest

from repro.experiments.wallclock import (
    BenchReport,
    ScenarioResult,
    available_scenarios,
    guard_events_per_sec,
    load_report,
    load_report_entries,
    run_bench,
    run_scenario,
)


def _result(name, wall_s=0.5, events=100):
    return ScenarioResult(
        name=name,
        wall_s=wall_s,
        events=events,
        sim_seconds=1.0,
        peak_rss_bytes=0,
        checksum="ab",
    )


class TestReplayDeterminism:
    @pytest.mark.parametrize("name", available_scenarios())
    def test_same_seed_same_outputs(self, name):
        # The bench exists to prove perf work did not change behaviour,
        # so its own scenarios must be seed-deterministic: two runs of
        # the same seed produce byte-identical output checksums and the
        # same event/simulated-time totals.
        first = run_scenario(name, seed=3, quick=True)
        second = run_scenario(name, seed=3, quick=True)
        assert first.checksum == second.checksum
        assert first.events == second.events
        assert first.sim_seconds == second.sim_seconds

    def test_different_seeds_differ(self):
        first = run_scenario("fig5_high_load", seed=1, quick=True)
        second = run_scenario("fig5_high_load", seed=2, quick=True)
        assert first.checksum != second.checksum

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown bench scenario"):
            run_scenario("fig99_nope")


class TestReportPlumbing:
    def test_report_round_trips_through_json(self, tmp_path):
        report = run_bench(scenarios=["fig3_low_load"], seed=0, quick=True)
        payload = report.to_dict()
        assert payload["schema"] == "xar-trek-bench/1"
        assert [s["name"] for s in payload["scenarios"]] == ["fig3_low_load"]
        path = tmp_path / "bench.json"
        path.write_text(report.to_json())
        assert load_report(str(path)) == {
            "fig3_low_load": payload["scenarios"][0]["wall_s"]
        }

    def test_speedups_against_baseline(self, tmp_path):
        baseline = {
            "schema": "xar-trek-bench/1",
            "scenarios": [{"name": "figX", "wall_s": 2.0}],
        }
        path = tmp_path / "base.json"
        path.write_text(json.dumps(baseline))
        report = BenchReport(seed=0, quick=True)
        report.baseline_wall_s = load_report(str(path))
        report.results.append(
            ScenarioResult(
                name="figX",
                wall_s=0.5,
                events=100,
                sim_seconds=1.0,
                peak_rss_bytes=0,
                checksum="ab",
            )
        )
        assert report.speedups() == {"figX": pytest.approx(4.0)}
        assert report.to_dict()["speedup_vs_baseline"] == {"figX": 4.0}
        assert "4.00x vs baseline" in report.to_text()

    def test_scenario_metrics_are_populated(self):
        result = run_scenario("fig3_low_load", seed=0, quick=True)
        assert result.events > 0
        assert result.sim_seconds > 0
        assert result.wall_s > 0
        assert result.events_per_sec > 0
        assert len(result.checksum) == 16

    def test_scenario_missing_from_baseline_is_reported_new(self, tmp_path):
        # A scenario added after the baseline was committed must show
        # up as "new", not silently vanish from the comparison.
        baseline = {
            "schema": "xar-trek-bench/1",
            "scenarios": [{"name": "figX", "wall_s": 2.0}],
        }
        path = tmp_path / "base.json"
        path.write_text(json.dumps(baseline))
        report = BenchReport(seed=0, quick=True)
        report.baseline_wall_s = load_report(str(path))
        report.results.append(_result("figX"))
        report.results.append(_result("brand_new"))
        assert report.new_scenarios() == ["brand_new"]
        payload = report.to_dict()
        assert payload["new_vs_baseline"] == ["brand_new"]
        assert "brand_new" not in payload["speedup_vs_baseline"]
        assert "brand_new: new scenario (not in baseline)" in report.to_text()

    def test_no_new_scenarios_key_without_baseline(self):
        report = BenchReport(seed=0, quick=True)
        report.results.append(_result("figX"))
        assert report.new_scenarios() == []
        assert "new_vs_baseline" not in report.to_dict()


class TestEventsPerSecGuard:
    def _baseline(self, tmp_path, entries):
        path = tmp_path / "committed.json"
        path.write_text(
            json.dumps({"schema": "xar-trek-bench/1", "scenarios": entries})
        )
        return str(path)

    def test_drop_beyond_threshold_fails(self, tmp_path):
        path = self._baseline(
            tmp_path,
            [{"name": "figX", "wall_s": 1.0, "events_per_sec": 1000.0}],
        )
        report = BenchReport(seed=0, quick=True)
        # 100 events in 0.5 s = 200 events/sec, an 80% drop.
        report.results.append(_result("figX", wall_s=0.5, events=100))
        failures = guard_events_per_sec(report, path, max_drop=0.30)
        assert len(failures) == 1
        assert "figX" in failures[0]
        # The same rate passes with a permissive-enough threshold.
        assert guard_events_per_sec(report, path, max_drop=0.90) == []

    def test_within_threshold_passes(self, tmp_path):
        path = self._baseline(
            tmp_path,
            [{"name": "figX", "wall_s": 1.0, "events_per_sec": 1000.0}],
        )
        report = BenchReport(seed=0, quick=True)
        report.results.append(_result("figX", wall_s=0.125, events=100))  # 800/s
        assert guard_events_per_sec(report, path, max_drop=0.30) == []

    def test_unknown_scenario_is_skipped(self, tmp_path):
        path = self._baseline(
            tmp_path, [{"name": "other", "wall_s": 1.0, "events_per_sec": 1000.0}]
        )
        report = BenchReport(seed=0, quick=True)
        report.results.append(_result("figX", wall_s=1.0, events=1))
        assert guard_events_per_sec(report, path, max_drop=0.30) == []

    def test_entries_loader_validates_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/1", "scenarios": []}')
        with pytest.raises(ValueError, match="schema 'other/1'"):
            load_report_entries(str(bad))


class TestScaleStress:
    def test_quick_run_is_deterministic_and_migration_heavy(self):
        # The 100x-scale scenario: replaying the same seed must give
        # the same checksum and counters, and the workload must really
        # exercise the batched-DSM/migration hot paths it guards.
        first = run_scenario("scale_stress", seed=0, quick=True)
        second = run_scenario("scale_stress", seed=0, quick=True)
        assert first.checksum == second.checksum
        assert first.events == second.events
        assert first.sim_seconds == second.sim_seconds
        assert first.extra["clients"] == 250
        assert first.extra["migrations"] > 0
        assert first.extra["dsm_page_transfers"] > 0
        assert first.extra["x86_max_load"] >= first.extra["background"]
        assert first.extra["x86_mean_load"] > 0


class TestProfileSmoke:
    def test_profiled_run_attaches_attribution_table(self):
        result = run_scenario("fig3_low_load", seed=3, quick=True, profile=True)
        rows = result.extra["profile"]
        assert rows, "profiled run produced an empty attribution table"
        for row in rows:
            assert set(row) == {"function", "ncalls", "tottime_s", "cumtime_s"}
            assert row["ncalls"] >= 1
        # Rows arrive sorted by cumulative time, hottest first.
        cumtimes = [row["cumtime_s"] for row in rows]
        assert cumtimes == sorted(cumtimes, reverse=True)

    def test_profiled_run_keeps_the_checksum(self):
        # Profiling is observation only: the instrumented run must
        # replay the exact same workload as the plain one.
        plain = run_scenario("fig3_low_load", seed=3, quick=True)
        profiled = run_scenario("fig3_low_load", seed=3, quick=True, profile=True)
        assert profiled.checksum == plain.checksum
        assert profiled.events == plain.events

    def test_profile_out_dumps_loadable_pstats(self, tmp_path):
        import pstats

        result = run_scenario(
            "fig3_low_load", seed=3, quick=True,
            profile=True, profile_out=str(tmp_path),
        )
        path = result.extra["profile_stats_path"]
        assert path == str(tmp_path / "fig3_low_load.pstats")
        stats = pstats.Stats(path)
        assert stats.total_calls > 0

    def test_cli_refuses_profile_with_guard(self, tmp_path, capsys):
        from repro.cli import main

        baseline = tmp_path / "baseline.json"
        report = run_bench(scenarios=["fig3_low_load"], seed=0, quick=True)
        baseline.write_text(report.to_json())
        code = main([
            "bench", "--quick", "--scenarios", "fig3_low_load",
            "--profile", "--guard", str(baseline), "--json", "-",
        ])
        assert code == 2
        assert "refusing" in capsys.readouterr().out

    def test_cli_refuses_profile_out_without_profile(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "bench", "--quick", "--scenarios", "fig3_low_load",
            "--profile-out", str(tmp_path), "--json", "-",
        ])
        assert code == 2
        assert "--profile-out requires --profile" in capsys.readouterr().out
