"""Unit tests for result rendering and Table 3's load classes."""

import pytest

from repro.experiments import (
    ExperimentResult,
    LoadClass,
    classify_load,
    format_table,
    percent_gain,
    table3_load_classes,
)


class TestFormatting:
    def test_format_table_aligns_columns(self):
        text = format_table(["name", "value"], [["a", 1.234], ["longer", 10]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "1.23" in lines[2]

    def test_empty_rows(self):
        text = format_table(["only", "headers"], [])
        assert "only" in text

    def test_percent_gain(self):
        assert percent_gain(100.0, 50.0) == pytest.approx(50.0)
        assert percent_gain(100.0, 120.0) == pytest.approx(-20.0)
        assert percent_gain(0.0, 5.0) == 0.0


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            name="Test",
            headers=["key", "a", "b"],
            rows=[[1, 10.0, 20.0], [2, 30.0, 40.0]],
            notes="some notes",
        )

    def test_to_text_includes_everything(self):
        text = self.make().to_text()
        assert "== Test ==" in text
        assert "some notes" in text
        assert "30.00" in text

    def test_column_extraction(self):
        result = self.make()
        assert result.column("a") == [10.0, 30.0]
        with pytest.raises(KeyError):
            result.column("ghost")

    def test_row_lookup(self):
        result = self.make()
        assert result.row_for(2) == [2, 30.0, 40.0]
        with pytest.raises(KeyError):
            result.row_for(99)


class TestLoadClasses:
    def test_paper_boundaries(self):
        # 6 x86 + 96 ARM cores (102 total).
        assert classify_load(0) == LoadClass.LOW
        assert classify_load(5) == LoadClass.LOW
        assert classify_load(6) == LoadClass.MEDIUM
        assert classify_load(60) == LoadClass.MEDIUM
        assert classify_load(102) == LoadClass.MEDIUM
        assert classify_load(103) == LoadClass.HIGH
        assert classify_load(120) == LoadClass.HIGH

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            classify_load(-1)

    def test_table3_text(self):
        result = table3_load_classes()
        assert len(result.rows) == 3
        assert "102" in result.notes
