"""Queue-implementation differential and allocation-reuse regression.

``DEFAULT_QUEUE`` is an *evaluated* default: the calendar queue is a
drop-in alternative that must pop in identical ``(at, seq)`` order, so
every bench scenario has to produce byte-identical checksums under
either implementation. The scale_stress scenario re-runs the
head-to-head on every full bench (the ``queue_eval`` extra payload);
these tests pin the equivalence across the whole scenario matrix and
the free-list effectiveness the zero-allocation defer path promises.
"""

import pytest

from repro.experiments.wallclock import (
    _queue_eval,
    _scale_workload,
    available_scenarios,
    run_scenario,
)
from repro.sim.engine import DEFAULT_QUEUE, QUEUE_ENV


class TestQueueDifferential:
    @pytest.mark.parametrize("name", available_scenarios())
    def test_scenario_checksums_identical_under_either_queue(
        self, name, monkeypatch
    ):
        monkeypatch.setenv(QUEUE_ENV, "heap")
        heap = run_scenario(name, seed=5, quick=True)
        monkeypatch.setenv(QUEUE_ENV, "calendar")
        calendar = run_scenario(name, seed=5, quick=True)
        assert heap.checksum == calendar.checksum
        assert heap.events == calendar.events
        assert heap.sim_seconds == calendar.sim_seconds

    def test_default_queue_is_the_evaluated_winner_shape(self):
        # The head-to-head the full bench records in scale_stress's
        # extra: both queues must agree byte-for-byte, and the payload
        # must name the configured default so a drifting eval is
        # visible in the committed BENCH file.
        payload = _queue_eval(seed=5, n_clients=40, background=5)
        assert payload["identical_outcomes"] is True
        assert payload["default"] == DEFAULT_QUEUE
        assert payload["winner"] in ("heap", "calendar")
        assert payload["heap_wall_s"] > 0 and payload["calendar_wall_s"] > 0


class TestAllocationReuse:
    def test_scale_quick_mostly_recycles_deferred_records(self):
        # The zero-allocation contract on the real workload (the quick
        # scale_stress shape): steady-state defer traffic must be
        # served overwhelmingly from the free list, not the allocator.
        runtime, records = _scale_workload(seed=0, n_clients=250, background=25)
        sim = runtime.platform.sim
        assert all(rec.finished for rec in records)
        assert sim.deferred_reuses > 0
        total = sim.deferred_reuses + sim.deferred_allocations
        assert sim.deferred_reuses / total > 0.95, (
            f"free list served only {sim.deferred_reuses}/{total} defers"
        )

    def test_recycling_disabled_allocates_every_record(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_RECYCLE", "0")
        runtime, _records = _scale_workload(seed=0, n_clients=40, background=5)
        sim = runtime.platform.sim
        assert sim.deferred_reuses == 0
        assert sim.deferred_allocations > 0
