"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.popcorn import load_xelf


class TestList:
    def test_lists_all_paper_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("cg.A", "facedet.320", "digit.2000", "mg.B", "bfs.1000"):
            assert name in out
        assert "KNL_HW_CG_A" in out


class TestTables:
    def test_table_2(self, capsys):
        assert main(["table", "2"]) == 0
        out = capsys.readouterr().out
        assert "FPGA_THR" in out and "KNL_HW_FD320" in out

    def test_table_3(self, capsys):
        assert main(["table", "3"]) == 0
        assert "102" in capsys.readouterr().out

    def test_invalid_table_number(self, capsys):
        with pytest.raises(SystemExit):
            main(["table", "7"])


class TestFigures:
    def test_figure_10(self, capsys):
        assert main(["figure", "10"]) == 0
        out = capsys.readouterr().out
        assert "Popcorn" in out and "Xar-Trek" in out

    def test_figure_3_with_repeats(self, capsys):
        assert main(["figure", "3", "--repeats", "2"]) == 0
        assert "Vanilla Linux/ARM" in capsys.readouterr().out


class TestRun:
    def test_run_vanilla(self, capsys):
        assert main(["run", "digit.500", "--mode", "x86"]) == 0
        out = capsys.readouterr().out
        assert "883" in out  # Table 1's vanilla time
        assert "targets     : x86" in out

    def test_run_with_background_and_verification(self, capsys):
        code = main(
            ["run", "digit.2000", "--mode", "xar-trek", "--background", "40",
             "--functional"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verified    : True" in out

    def test_run_throughput_window(self, capsys):
        assert main(
            ["run", "facedet.320", "--mode", "fpga", "--calls", "50",
             "--deadline", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "calls" in out

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            main(["run", "nonsense.app"])


class TestCompile:
    def test_compile_prints_artifacts(self, capsys):
        assert main(["compile", "--apps", "digit.500", "cg.A"]) == 0
        out = capsys.readouterr().out
        assert "multi-ISA binary" in out
        assert "xclbin" in out

    def test_compile_dumps_loadable_xelf(self, capsys, tmp_path):
        assert main(
            ["compile", "--apps", "digit.500", "--output-dir", str(tmp_path)]
        ) == 0
        binary, metadata = load_xelf(tmp_path / "digit.500.xelf")
        assert binary.name == "digit.500"
        assert len(metadata) == 3

    def test_compile_with_replication(self, capsys):
        assert main(["compile", "--apps", "digit.500", "--replicate-cus"]) == 0
        out = capsys.readouterr().out
        assert "compute units" in out
        assert "4" in out  # replicated


class TestTimelineExport:
    def test_run_writes_csv_timeline(self, capsys, tmp_path):
        path = tmp_path / "run.csv"
        assert main(
            ["run", "digit.500", "--mode", "xar-trek", "--timeline", str(path)]
        ) == 0
        content = path.read_text()
        assert content.startswith("time_s,kind,app,detail")
        assert "app-end" in content

    def test_run_writes_json_timeline(self, capsys, tmp_path):
        import json

        path = tmp_path / "run.json"
        assert main(
            ["run", "digit.500", "--mode", "x86", "--timeline", str(path)]
        ) == 0
        decoded = json.loads(path.read_text())
        assert any(ev["kind"] == "app-end" for ev in decoded)


class TestReport:
    def test_quick_report_prints_all_tables_and_most_figures(self, capsys):
        assert main(["report", "--quick"]) == 0
        out = capsys.readouterr().out
        for heading in ("Table 1", "Table 2", "Table 3", "Table 4",
                        "Figure 3", "Figure 6", "Figure 9", "Figure 10"):
            assert heading in out
        assert "Figure 7" not in out  # skipped in quick mode


class TestThresholds:
    def test_thresholds_text(self, capsys):
        assert main(["thresholds", "--apps", "digit.2000", "cg.A"]) == 0
        out = capsys.readouterr().out
        assert "digit.2000" in out and "cg.A" in out
