"""Unit tests for threshold estimation (step G) and the full pipeline."""

import math

import pytest

from repro.compiler import (
    XarTrekCompiler,
    estimate_thresholds,
    simulate_x86_time_under_load,
    x86_time_under_load,
)
from repro.core.runtime import spec_for
from repro.thresholds import ThresholdTable
from repro.types import Target
from repro.workloads import PAPER_BENCHMARKS, PAPER_TABLE2, profile_for


class TestLoadModel:
    def test_analytic_matches_simulated_measurement(self):
        profile = profile_for("digit.2000")
        for load in (1, 3, 6, 7, 17, 60, 120):
            analytic = x86_time_under_load(profile, load)
            simulated = simulate_x86_time_under_load(profile, load)
            assert analytic == pytest.approx(simulated, rel=1e-9)

    def test_no_dilation_below_core_count(self):
        profile = profile_for("cg.A")
        assert x86_time_under_load(profile, 6) == pytest.approx(
            profile.vanilla_x86_s
        )

    def test_linear_dilation_above(self):
        profile = profile_for("cg.A")
        assert x86_time_under_load(profile, 12) == pytest.approx(
            2 * profile.vanilla_x86_s
        )

    def test_bad_load_rejected(self):
        profile = profile_for("cg.A")
        with pytest.raises(ValueError):
            x86_time_under_load(profile, 0)
        with pytest.raises(ValueError):
            simulate_x86_time_under_load(profile, 0)


class TestEstimation:
    @pytest.fixture(scope="class")
    def table(self):
        return estimate_thresholds([profile_for(n) for n in PAPER_BENCHMARKS])

    def test_zero_thresholds_where_fpga_beats_idle_x86(self, table):
        # Table 2: FaceDet640, Digit500, Digit2000 have FPGA_THR = 0.
        for name in ("facedet.640", "digit.500", "digit.2000"):
            assert table.entry(name).fpga_threshold == 0

    def test_cg_prefers_arm_over_fpga(self, table):
        entry = table.entry("cg.A")
        assert entry.arm_threshold < entry.fpga_threshold

    def test_thresholds_close_to_paper(self, table):
        # Within a few processes of Table 2 (measurement-method noise).
        for name, (_kernel, paper_fpga, paper_arm) in PAPER_TABLE2.items():
            entry = table.entry(name)
            assert abs(entry.fpga_threshold - paper_fpga) <= 8
            assert abs(entry.arm_threshold - paper_arm) <= 8

    def test_observed_seeds_match_isolated_times(self, table):
        entry = table.entry("digit.2000")
        profile = profile_for("digit.2000")
        assert entry.observed(Target.X86) == pytest.approx(profile.vanilla_x86_s)
        assert entry.observed(Target.FPGA) == pytest.approx(profile.x86_fpga_s)
        assert entry.observed(Target.ARM) == pytest.approx(profile.x86_arm_s)

    def test_incapable_targets_get_capped_thresholds(self):
        table = estimate_thresholds([profile_for("mg.B")], max_load=99)
        entry = table.entry("mg.B")
        assert entry.fpga_threshold == 99
        assert entry.arm_threshold == 99
        assert math.isinf(entry.observed(Target.FPGA))

    def test_bfs_never_profitable_on_fpga(self):
        # Table 4: x86 wins by orders of magnitude, so the threshold hits
        # the sweep cap and the scheduler will effectively never migrate.
        table = estimate_thresholds([profile_for("bfs.1000")], max_load=128)
        assert table.entry("bfs.1000").fpga_threshold > 100


class TestPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        return XarTrekCompiler().compile(spec_for(PAPER_BENCHMARKS))

    def test_all_applications_compiled(self, result):
        assert set(result.applications) == set(PAPER_BENCHMARKS)

    def test_every_kernel_hosted_by_an_image(self, result):
        for name in PAPER_BENCHMARKS:
            kernel = result.application(name).profile.kernel_name
            image = result.xclbin_for(kernel)
            assert kernel in image.kernel_names
            assert result.application(name).kernel_images[kernel] == image.name

    def test_binaries_are_multi_isa(self, result):
        for app in result.applications.values():
            assert set(app.compiled.binary.images) == {"x86_64", "aarch64"}
            assert app.binary_size_bytes > 0

    def test_thresholds_included(self, result):
        assert len(result.thresholds) == len(PAPER_BENCHMARKS)

    def test_unknown_lookups_rejected(self, result):
        with pytest.raises(KeyError):
            result.application("ghost")
        with pytest.raises(KeyError):
            result.xclbin_for("KNL_GHOST")


class TestThresholdTableSerialization:
    def test_round_trip(self):
        table = estimate_thresholds([profile_for(n) for n in PAPER_BENCHMARKS])
        parsed = ThresholdTable.parse(table.to_text())
        for name in PAPER_BENCHMARKS:
            assert parsed.entry(name).fpga_threshold == table.entry(name).fpga_threshold
            assert parsed.entry(name).arm_threshold == table.entry(name).arm_threshold
