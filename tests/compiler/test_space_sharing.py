"""Tests for the space-sharing extension (compute-unit replication)."""

import pytest

from repro.compiler import XarTrekCompiler, partition
from repro.compiler.xclbin import MAX_COMPUTE_UNITS, generate_xclbin
from repro.core import SystemMode, build_system
from repro.core.runtime import spec_for
from repro.hardware import ALVEO_U50
from repro.workloads import PAPER_BENCHMARKS
from tests.compiler.test_partition_xclbin import SMALL_DEVICE, xo


class TestReplication:
    def test_default_is_one_cu_per_kernel(self):
        plan = partition([xo("a"), xo("b")], ALVEO_U50)[0]
        image = generate_xclbin(plan, ALVEO_U50)
        assert image.compute_units("a") == 1
        assert image.compute_units("b") == 1

    def test_replication_fills_leftover_area(self):
        plan = partition([xo("a", lut=50_000)], ALVEO_U50)[0]
        image = generate_xclbin(plan, ALVEO_U50, replicate=True)
        assert image.compute_units("a") > 1
        assert image.compute_units("a") <= MAX_COMPUTE_UNITS
        assert image.resources.fits_in(ALVEO_U50.usable_resources)

    def test_replication_respects_area(self):
        # Two kernels that nearly fill the small device: no room for CUs.
        objects = [xo("a", lut=95_000), xo("b", lut=95_000)]
        plan = partition(objects, SMALL_DEVICE)[0]
        image = generate_xclbin(plan, SMALL_DEVICE, replicate=True)
        assert image.compute_units("a") == 1
        assert image.compute_units("b") == 1

    def test_replicated_image_is_larger(self):
        plan = partition([xo("a", lut=50_000)], ALVEO_U50)[0]
        single = generate_xclbin(plan, ALVEO_U50, replicate=False)
        multi = generate_xclbin(plan, ALVEO_U50, replicate=True)
        assert multi.size_bytes > single.size_bytes

    def test_pipeline_flag_propagates(self):
        result = XarTrekCompiler(replicate_compute_units=True).compile(
            spec_for(["digit.2000"])
        )
        image = result.xclbin_for("KNL_HW_DR200")
        assert image.compute_units("KNL_HW_DR200") > 1


class TestDeviceConcurrency:
    def test_replicated_kernels_run_concurrently(self):
        runtime = build_system(["digit.2000"], replicate_compute_units=True)
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        start = runtime.platform.now
        first = runtime.xrt.run_kernel("KNL_HW_DR200", 0, 0, duration=1.0)
        second = runtime.xrt.run_kernel("KNL_HW_DR200", 0, 0, duration=1.0)
        runtime.platform.sim.run_until_event(first)
        runtime.platform.sim.run_until_event(second)
        assert runtime.platform.now - start == pytest.approx(1.0, rel=1e-6)

    def test_unreplicated_kernels_serialize(self):
        runtime = build_system(["digit.2000"], replicate_compute_units=False)
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        start = runtime.platform.now
        first = runtime.xrt.run_kernel("KNL_HW_DR200", 0, 0, duration=1.0)
        second = runtime.xrt.run_kernel("KNL_HW_DR200", 0, 0, duration=1.0)
        runtime.platform.sim.run_until_event(first)
        runtime.platform.sim.run_until_event(second)
        assert runtime.platform.now - start == pytest.approx(2.0, rel=1e-6)

    def test_space_sharing_helps_concurrent_tenants(self):
        """Two tenants calling the same hot kernel finish sooner with
        replicated compute units — the Section 7 motivation."""

        def run(replicate: bool) -> float:
            runtime = build_system(
                PAPER_BENCHMARKS, replicate_compute_units=replicate
            )
            runtime.platform.sim.run_until_event(runtime.preload_fpga())
            load = runtime.launch_background(40, work_s=60.0)
            events = [
                runtime.launch(
                    "digit.2000", seed=i, mode=SystemMode.XAR_TREK, delay_s=0.01
                )
                for i in range(4)
            ]
            records = runtime.wait_all(events)
            load.stop()
            return max(rec.end_s for rec in records)

        assert run(replicate=True) < run(replicate=False)
