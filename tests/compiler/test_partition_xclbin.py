"""Unit + property tests for XCLBIN partitioning (step E) and generation (F)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import PartitionError, partition
from repro.compiler.hls import HLSReport
from repro.compiler.xclbin import generate_xclbin
from repro.compiler.xo import XilinxObject
from repro.hardware import ALVEO_U50
from repro.hardware.fpga import FPGAResources, FPGASpec


def xo(name, lut=50_000, bram=50, dsp=100, uram=0):
    report = HLSReport(
        kernel_name=name,
        resources=FPGAResources(lut=lut, ff=int(lut * 1.5), bram=bram, dsp=dsp, uram=uram),
        latency_cycles=1000,
        clock_mhz=300.0,
        ii=1,
    )
    return XilinxObject(
        kernel_name=name, function_name="f", application="app", report=report
    )


SMALL_DEVICE = FPGASpec(
    name="small",
    resources=FPGAResources(lut=250_000, ff=500_000, bram=400, dsp=800, uram=64),
    hbm_bytes=1 << 30,
)


class TestPartition:
    def test_everything_fits_one_image_when_small(self):
        plans = partition([xo("a"), xo("b"), xo("c")], ALVEO_U50)
        assert len(plans) == 1
        assert set(plans[0].kernel_names) == {"a", "b", "c"}

    def test_splits_when_area_exhausted(self):
        # Each kernel uses ~100k of the small device's 200k usable LUTs.
        objects = [xo(f"k{i}", lut=100_000) for i in range(4)]
        plans = partition(objects, SMALL_DEVICE)
        assert len(plans) == 2
        placed = [k for plan in plans for k in plan.kernel_names]
        assert sorted(placed) == ["k0", "k1", "k2", "k3"]

    def test_kernel_larger_than_device_rejected(self):
        with pytest.raises(PartitionError, match="alone exceeds"):
            partition([xo("huge", lut=10_000_000)], ALVEO_U50)

    def test_duplicate_kernel_rejected(self):
        with pytest.raises(PartitionError, match="duplicate"):
            partition([xo("a"), xo("a")], ALVEO_U50)

    def test_manual_groups_pin_kernels_together(self):
        objects = [xo("a"), xo("b"), xo("c")]
        plans = partition(
            objects, ALVEO_U50, manual_groups={"a": "g1", "c": "g1"}
        )
        (manual,) = [p for p in plans if p.name == "xclbin_g1"]
        assert set(manual.kernel_names) >= {"a", "c"}

    def test_manual_group_too_big_rejected(self):
        objects = [xo("a", lut=120_000), xo("b", lut=120_000)]
        with pytest.raises(PartitionError, match="split the group"):
            partition(objects, SMALL_DEVICE, manual_groups={"a": "g", "b": "g"})

    def test_empty_input(self):
        assert partition([], ALVEO_U50) == []

    @given(
        luts=st.lists(st.integers(min_value=1_000, max_value=180_000), min_size=1, max_size=20)
    )
    @settings(max_examples=50, deadline=None)
    def test_every_kernel_placed_exactly_once_and_plans_fit(self, luts):
        objects = [xo(f"k{i}", lut=lut, bram=lut // 1000, dsp=lut // 500) for i, lut in enumerate(luts)]
        plans = partition(objects, SMALL_DEVICE)
        placed = [k for plan in plans for k in plan.kernel_names]
        assert sorted(placed) == sorted(o.kernel_name for o in objects)
        for plan in plans:
            assert plan.fits(SMALL_DEVICE)


class TestXCLBIN:
    def test_generated_image_protocol(self):
        plans = partition([xo("a"), xo("b")], ALVEO_U50)
        image = generate_xclbin(plans[0], ALVEO_U50)
        assert set(image.kernel_names) == {"a", "b"}
        assert image.size_bytes > 1_800_000  # shell + kernels
        assert image.kernel("a").kernel_name == "a"
        with pytest.raises(KeyError):
            image.kernel("ghost")

    def test_size_grows_with_area(self):
        small = generate_xclbin(partition([xo("a", lut=10_000)], ALVEO_U50)[0], ALVEO_U50)
        large = generate_xclbin(partition([xo("a", lut=300_000)], ALVEO_U50)[0], ALVEO_U50)
        assert large.size_bytes > small.size_bytes

    def test_oversized_plan_rejected(self):
        plan = partition([xo("a")], ALVEO_U50)[0]
        plan.objects.append(xo("b", lut=10_000_000))
        with pytest.raises(ValueError):
            generate_xclbin(plan, ALVEO_U50)
