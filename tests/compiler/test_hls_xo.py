"""Unit tests for the HLS estimation model (step D) and XO generation."""

import pytest

from repro.compiler import HLSError, KernelIR, OpCounts, estimate, generate_xo, kernel_ir_for
from repro.compiler.profiling import SelectedFunction
from repro.hardware import ALVEO_U50
from repro.hardware.fpga import FPGAResources, FPGASpec


def ir(**overrides):
    base = dict(
        name="k",
        ops=OpCounts(int_add=4, load_store=2),
        trip_count=10_000,
    )
    base.update(overrides)
    return KernelIR(**base)


class TestEstimation:
    def test_more_ops_cost_more_area(self):
        small = estimate(ir(ops=OpCounts(int_add=2)))
        big = estimate(ir(ops=OpCounts(int_add=20)))
        assert big.resources.lut > small.resources.lut

    def test_unrolling_trades_area_for_latency(self):
        serial = estimate(ir(unroll=1))
        parallel = estimate(ir(unroll=8))
        assert parallel.resources.lut > serial.resources.lut
        assert parallel.latency_cycles < serial.latency_cycles

    def test_float_ops_consume_dsps(self):
        report = estimate(ir(ops=OpCounts(float_mul=4, float_add=2)))
        assert report.resources.dsp == 4 * 3 + 2 * 2

    def test_buffers_consume_memory_blocks(self):
        none = estimate(ir(buffer_bytes=0))
        big = estimate(ir(buffer_bytes=10_000_000))
        assert big.resources.uram > none.resources.uram or big.resources.bram > none.resources.bram

    def test_irregular_access_inflates_ii(self):
        regular = estimate(ir())
        irregular = estimate(ir(irregular_access=True))
        assert irregular.ii > regular.ii
        assert irregular.latency_cycles > regular.latency_cycles

    def test_latency_seconds_conversion(self):
        report = estimate(ir())
        assert report.latency_seconds == pytest.approx(
            report.latency_cycles / (report.clock_mhz * 1e6)
        )

    def test_kernel_exceeding_device_rejected(self):
        tiny_device = FPGASpec(
            name="tiny",
            resources=FPGAResources(lut=10_000, ff=20_000, bram=16, dsp=8, uram=0),
            hbm_bytes=1 << 20,
        )
        with pytest.raises(HLSError):
            estimate(ir(ops=OpCounts(int_mul=100), unroll=8), tiny_device)

    def test_ir_validation(self):
        with pytest.raises(HLSError):
            ir(trip_count=0)
        with pytest.raises(HLSError):
            ir(unroll=0)
        with pytest.raises(HLSError):
            ir(pipeline_ii=0)


class TestPaperKernels:
    def test_all_paper_kernels_have_irs(self):
        for kernel in (
            "KNL_HW_CG_A",
            "KNL_HW_FD320",
            "KNL_HW_FD640",
            "KNL_HW_DR500",
            "KNL_HW_DR200",
        ):
            report = estimate(kernel_ir_for(kernel), ALVEO_U50)
            assert report.resources.fits_in(ALVEO_U50.usable_resources)

    def test_cg_is_irregular(self):
        assert kernel_ir_for("KNL_HW_CG_A").irregular_access
        assert not kernel_ir_for("KNL_HW_DR500").irregular_access

    def test_bfs_kernels_derived_from_node_count(self):
        small = estimate(kernel_ir_for("KNL_HW_BFS1000"))
        large = estimate(kernel_ir_for("KNL_HW_BFS5000"))
        assert large.resources.bram + large.resources.uram >= (
            small.resources.bram + small.resources.uram
        )
        assert large.latency_cycles > small.latency_cycles

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            kernel_ir_for("KNL_HW_NOPE")
        with pytest.raises(KeyError):
            kernel_ir_for("KNL_HW_BFSxyz")


class TestXO:
    def test_generate_xo_carries_report(self):
        xo = generate_xo(
            "digit.2000", SelectedFunction("classify", "KNL_HW_DR200"), ALVEO_U50
        )
        assert xo.kernel_name == "KNL_HW_DR200"
        assert xo.application == "digit.2000"
        assert xo.size_bytes > 200_000
        assert xo.kernel_latency_s > 0

    def test_custom_ir_override(self):
        custom = ir(name="custom")
        xo = generate_xo(
            "app", SelectedFunction("f", "whatever"), ALVEO_U50, ir=custom
        )
        assert xo.report.kernel_name == "custom"

    def test_bigger_kernels_make_bigger_xos(self):
        fd = generate_xo("a", SelectedFunction("f", "KNL_HW_FD320"), ALVEO_U50)
        dr = generate_xo("b", SelectedFunction("g", "KNL_HW_DR200"), ALVEO_U50)
        assert (dr.size_bytes > fd.size_bytes) == (
            dr.resources.lut > fd.resources.lut
        )
