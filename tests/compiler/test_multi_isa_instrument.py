"""Unit tests for multi-ISA generation (step C) and instrumentation (B)."""

import pytest

from repro.compiler import CodeModel, compile_multi_isa, instrument
from repro.compiler.instrument import CallSiteKind
from repro.compiler.profiling import ApplicationSpec, SelectedFunction
from repro.compiler.sizes import single_isa_size, size_breakdown
from repro.popcorn import StateTransformer


def app_spec(name="app", functions=("kernel",)):
    return ApplicationSpec(
        name, tuple(SelectedFunction(f, f"KNL_{f.upper()}") for f in functions)
    )


class TestInstrumentation:
    def test_inserted_sites_cover_the_contract(self):
        inst = instrument(app_spec(functions=("f1", "f2")))
        kinds = [site.kind for site in inst.call_sites]
        # Registration and configuration first, unregistration last.
        assert kinds[0] == CallSiteKind.SCHEDULER_REGISTER
        assert kinds[1] == CallSiteKind.FPGA_CONFIGURE
        assert kinds[-1] == CallSiteKind.SCHEDULER_UNREGISTER
        # One dispatch + one threshold update per selected function.
        assert len(inst.sites_of(CallSiteKind.DISPATCH)) == 2
        assert len(inst.sites_of(CallSiteKind.THRESHOLD_UPDATE)) == 2

    def test_dispatch_follows_update_per_function(self):
        inst = instrument(app_spec(functions=("f1",)))
        kinds = [s.kind for s in inst.call_sites]
        dispatch = kinds.index(CallSiteKind.DISPATCH)
        update = kinds.index(CallSiteKind.THRESHOLD_UPDATE)
        assert dispatch < update

    def test_kernel_lookup(self):
        inst = instrument(app_spec(functions=("f1",)))
        assert inst.kernel_for("f1") == "KNL_F1"
        with pytest.raises(KeyError):
            inst.kernel_for("ghost")


class TestMultiISA:
    def test_images_for_both_isas(self):
        compiled = compile_multi_isa(CodeModel("app", 500, ("kernel",)))
        assert set(compiled.binary.images) == {"x86_64", "aarch64"}
        # AArch64 text is larger (fixed-width encoding).
        assert (
            compiled.binary.images["aarch64"].text_bytes
            > compiled.binary.images["x86_64"].text_bytes
        )

    def test_symbols_aligned_for_main_kernel_and_globals(self):
        compiled = compile_multi_isa(CodeModel("app", 500, ("kernel",)))
        for name in ("main", "kernel", "__global_data"):
            assert compiled.binary.address_of(name) >= 0x400000

    def test_migration_points_at_call_and_return(self):
        compiled = compile_multi_isa(CodeModel("app", 500, ("kernel",)))
        points = compiled.metadata.points_in("kernel")
        assert len(points) == 2
        assert {p.offset for p in points} == {0x10, 0x400}
        assert compiled.metadata.points_in("main")  # entry point too

    def test_metadata_is_usable_by_the_transformer(self):
        compiled = compile_multi_isa(CodeModel("app", 500, ("kernel",)))
        transformer = StateTransformer(compiled.metadata)
        point = compiled.metadata.points_in("kernel")[0]
        values = {var.name: 1 for var in point.live_vars}
        # Floats need float values.
        for var in point.live_vars:
            if var.ctype in ("f32", "f64"):
                values[var.name] = 1.0
        frame = transformer.build_frame("kernel", point, values, "x86_64")
        assert transformer.read_live_values(frame, "x86_64") == values

    def test_loc_scales_size(self):
        small = compile_multi_isa(CodeModel("s", 300, ("k",)))
        large = compile_multi_isa(CodeModel("l", 900, ("k",)))
        assert large.size_bytes > small.size_bytes

    def test_deterministic(self):
        a = compile_multi_isa(CodeModel("app", 500, ("kernel",)))
        b = compile_multi_isa(CodeModel("app", 500, ("kernel",)))
        assert a.size_bytes == b.size_bytes
        assert a.binary.addresses == b.binary.addresses

    def test_bad_loc_rejected(self):
        with pytest.raises(ValueError):
            CodeModel("app", 0, ("k",))


class TestSizes:
    class FakeXCLBIN:
        size_bytes = 2_500_000

    def test_xar_trek_subsumes_both_baselines(self):
        code = CodeModel("app", 500, ("kernel",))
        breakdown = size_breakdown(code, self.FakeXCLBIN())
        assert breakdown.xar_trek > breakdown.x86_fpga
        assert breakdown.xar_trek > breakdown.popcorn
        assert breakdown.increase_vs_x86_fpga > 0
        assert breakdown.increase_vs_popcorn > 0

    def test_multi_isa_larger_than_single(self):
        code = CodeModel("app", 500, ("kernel",))
        assert compile_multi_isa(code).size_bytes > single_isa_size(code)

    def test_cg_popcorn_binary_visibly_larger(self):
        # Figure 10's observation: 900 LOC CG-A vs 300-500 LOC others.
        cg = size_breakdown(CodeModel("cg.A", 900, ("k",)), self.FakeXCLBIN())
        fd = size_breakdown(CodeModel("facedet.320", 330, ("k",)), self.FakeXCLBIN())
        assert cg.popcorn > fd.popcorn * 1.1
