"""Unit tests for the profiling spec (step A)."""

import pytest

from repro.compiler import ProfilingSpec, SpecError
from repro.compiler.profiling import ApplicationSpec, SelectedFunction

GOOD = """\
# comment
platform alveo-u50

application cg.A
    function conj_grad kernel=KNL_HW_CG_A
application facedet.320
    function detect_faces kernel=KNL_HW_FD320 xclbin=vision
"""


class TestParse:
    def test_parses_platform_and_applications(self):
        spec = ProfilingSpec.parse(GOOD)
        assert spec.platform == "alveo-u50"
        assert [app.name for app in spec.applications] == ["cg.A", "facedet.320"]

    def test_function_options(self):
        spec = ProfilingSpec.parse(GOOD)
        fn = spec.application("facedet.320").functions[0]
        assert fn.name == "detect_faces"
        assert fn.kernel_name == "KNL_HW_FD320"
        assert fn.xclbin_group == "vision"
        assert spec.application("cg.A").functions[0].xclbin_group is None

    def test_round_trip(self):
        spec = ProfilingSpec.parse(GOOD)
        assert ProfilingSpec.parse(spec.to_text()) == spec

    def test_all_functions_in_order(self):
        spec = ProfilingSpec.parse(GOOD)
        assert [(a, f.name) for a, f in spec.all_functions()] == [
            ("cg.A", "conj_grad"),
            ("facedet.320", "detect_faces"),
        ]

    @pytest.mark.parametrize(
        "text,msg",
        [
            ("application foo\n  function f kernel=K\n", "no platform"),
            ("platform p\nplatform q\n", "duplicate platform"),
            ("platform p\nfunction f kernel=K\n", "outside application"),
            ("platform p\napplication a\n  function f\n", "kernel"),
            ("platform p\napplication a\n  function f bad\n", "bad option"),
            ("platform p\napplication a\n  function f weird=1 kernel=K\n", "unknown option"),
            ("platform p\nbogus line\n", "unknown keyword"),
            ("platform p q\n", "one name"),
            ("platform p\napplication a\n", "selects no functions"),
        ],
    )
    def test_malformed_specs_rejected(self, text, msg):
        with pytest.raises(SpecError, match=msg):
            ProfilingSpec.parse(text)

    def test_unknown_application_lookup(self):
        spec = ProfilingSpec.parse(GOOD)
        with pytest.raises(SpecError):
            spec.application("nope")


class TestValidation:
    def test_duplicate_function_in_app_rejected(self):
        with pytest.raises(SpecError):
            ApplicationSpec(
                "a",
                (
                    SelectedFunction("f", "K1"),
                    SelectedFunction("f", "K2"),
                ),
            )

    def test_duplicate_applications_rejected(self):
        app = ApplicationSpec("a", (SelectedFunction("f", "K"),))
        with pytest.raises(SpecError):
            ProfilingSpec(platform="p", applications=(app, app))
