"""Unit tests for the metrics primitives (counters, gauges, histograms,
registry, exporters)."""

import json

import pytest

from repro.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricError,
    MetricsRegistry,
    flatten,
    to_csv,
    to_json,
)
from repro.sim import RandomStreams

pytestmark = pytest.mark.metrics


@pytest.fixture
def clock():
    """A settable fake simulation clock."""
    holder = [0.0]

    def read() -> float:
        return holder[0]

    read.set = lambda t: holder.__setitem__(0, t)
    return read


class TestCounter:
    def test_counts_and_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_labeled_series_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("decisions", labelnames=("target",))
        c.labels(target="fpga").inc()
        c.labels(target="x86").inc(2)
        assert c.labels(target="fpga").value == 1
        assert c.value == 3  # family value aggregates
        assert c.as_dict() == {("fpga",): 1.0, ("x86",): 2.0}

    def test_labeled_family_rejects_direct_inc_and_bad_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("decisions", labelnames=("target",))
        with pytest.raises(MetricError):
            c.inc()
        with pytest.raises(MetricError):
            c.labels(wrong="x")
        with pytest.raises(MetricError):
            reg.counter("plain").labels(target="x")


class TestGauge:
    def test_min_max_last(self, clock):
        reg = MetricsRegistry(clock=clock)
        g = reg.gauge("load")
        g.set(4)
        g.set(1)
        g.set(9)
        assert (g.value, g._min, g._max) == (9, 1, 9)

    def test_time_weighted_mean_is_exact_for_step_signal(self, clock):
        reg = MetricsRegistry(clock=clock)
        g = reg.gauge("load")
        g.set(2)  # value 2 over [0, 4)
        clock.set(4.0)
        g.set(6)  # value 6 over [4, 8)
        clock.set(8.0)
        assert g.time_weighted_mean() == pytest.approx(4.0)

    def test_inc_dec(self, clock):
        reg = MetricsRegistry(clock=clock)
        g = reg.gauge("runs")
        g.inc()
        g.inc()
        g.dec()
        assert g.value == 1

    def test_unset_gauge_mean_is_zero(self):
        assert MetricsRegistry().gauge("idle").time_weighted_mean() == 0.0


class TestHistogram:
    def test_exact_percentiles_below_reservoir_size(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in range(1, 101):
            h.observe(v / 1000.0)
        assert h.percentile(50) == pytest.approx(0.050)
        assert h.percentile(95) == pytest.approx(0.095)
        assert h.percentile(99) == pytest.approx(0.099)
        assert h.count == 100
        assert h.sum == pytest.approx(sum(range(1, 101)) / 1000.0)

    def test_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()["series"][0]
        assert snap["buckets"] == [[0.01, 1], [0.1, 2], [1.0, 3], ["+Inf", 4]]

    def test_reservoir_overflow_is_deterministic(self):
        def fill(reg):
            h = reg.histogram("lat", reservoir_size=32)
            for v in range(1000):
                h.observe(float(v))
            return h

        h1 = fill(MetricsRegistry())
        h2 = fill(MetricsRegistry())
        assert h1._reservoir == h2._reservoir
        assert len(h1._reservoir) == 32
        assert h1.count == 1000  # buckets/sum still exact
        assert h1.sum == pytest.approx(sum(range(1000)))

    def test_reservoir_uses_registry_rng_streams(self):
        h1 = MetricsRegistry(rng=RandomStreams(7)).histogram("x", reservoir_size=8)
        h2 = MetricsRegistry(rng=RandomStreams(7)).histogram("x", reservoir_size=8)
        h3 = MetricsRegistry(rng=RandomStreams(8)).histogram("x", reservoir_size=8)
        for v in range(200):
            h1.observe(float(v))
            h2.observe(float(v))
            h3.observe(float(v))
        assert h1._reservoir == h2._reservoir
        assert h1._reservoir != h3._reservoir

    def test_empty_histogram_percentile_is_zero(self):
        h = MetricsRegistry().histogram("lat")
        assert h.percentile(99) == 0.0
        with pytest.raises(MetricError):
            h.percentile(101)

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistry:
    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_type_or_label_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(MetricError):
            reg.gauge("a")
        with pytest.raises(MetricError):
            reg.counter("a", labelnames=("x",))

    def test_snapshot_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zeta")
        reg.counter("alpha")
        names = [fam["name"] for fam in reg.snapshot()["metrics"]]
        assert names == ["alpha", "zeta"]

    def test_bind_clock_reaches_existing_children(self, clock):
        reg = MetricsRegistry()
        g = reg.gauge("load", labelnames=("cluster",))
        child = g.labels(cluster="x86")
        reg.bind_clock(clock)
        child.set(5)
        clock.set(2.0)
        child.set(1)
        assert child.time_weighted_mean() == pytest.approx(5.0)


class TestExport:
    def _populated(self):
        reg = MetricsRegistry()
        c = reg.counter("reqs", labelnames=("target",))
        c.labels(target="fpga").inc(3)
        reg.gauge("load").set(2)
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        return reg

    def test_json_roundtrips_and_is_stable(self):
        reg = self._populated()
        text = to_json(reg)
        assert text == to_json(reg) == to_json(reg.snapshot())
        parsed = json.loads(text)
        assert {f["name"] for f in parsed["metrics"]} == {"reqs", "load", "lat"}

    def test_csv_one_scalar_per_row(self):
        lines = to_csv(self._populated()).splitlines()
        assert lines[0] == "name,type,labels,field,value"
        assert "reqs,counter,target=fpga,value,3.0" in lines
        assert any(line.startswith("lat,histogram,,bucket_le_0.1,") for line in lines)
        assert any(line.startswith("lat,histogram,,p99,") for line in lines)

    def test_flatten_rows_sorted_within_series(self):
        rows = flatten(self._populated())
        assert all(len(row) == 5 for row in rows)
        gauge_fields = [r[3] for r in rows if r[0] == "load"]
        assert gauge_fields == sorted(gauge_fields)
