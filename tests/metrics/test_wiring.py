"""End-to-end tests for the wired-in metrics: every hot layer records,
stats views agree with the counters, and exports are seed-deterministic.

The Figure-5-style acceptance run lives here: a high-load instrumented
experiment must report per-target invocation-latency p50/p95/p99, the
scheduler round-trip histogram, and total reconfiguration time — and
two runs with the same seed must export byte-identical JSON and CSV.
"""

import pytest

from repro.core import SystemMode, build_system
from repro.experiments.observability import high_load_metrics, metrics_experiment
from repro.types import Target

pytestmark = pytest.mark.metrics


def _family(snapshot: dict, name: str) -> dict:
    for fam in snapshot["metrics"]:
        if fam["name"] == name:
            return fam
    raise AssertionError(f"metric {name!r} missing from snapshot")


def _series(family: dict, **labels: str) -> dict:
    for series in family["series"]:
        if series["labels"] == labels:
            return series
    raise AssertionError(f"{family['name']} has no series {labels}")


class TestRuntimeWiring:
    @pytest.fixture(scope="class")
    def loaded_run(self):
        """One digit run over background load, metrics captured."""
        runtime = build_system(["digit.2000"], seed=7)
        load = runtime.launch_background(20)
        done = runtime.launch("digit.2000", mode=SystemMode.XAR_TREK, delay_s=0.05)
        runtime.platform.sim.run_until_event(done)
        load.stop()
        return runtime

    def test_scheduler_roundtrip_recorded(self, loaded_run):
        fam = _family(loaded_run.metrics.snapshot(), "scheduler_roundtrip_seconds")
        series = _series(fam)
        assert series["count"] == loaded_run.server.stats.requests > 0
        # At minimum two socket crossings per request (allow float dust).
        floor = 2 * loaded_run.server.socket_latency_s
        assert series["min"] == pytest.approx(floor) or series["min"] > floor

    def test_cpu_load_gauge_tracks_background(self, loaded_run):
        fam = _family(loaded_run.metrics.snapshot(), "cpu_load")
        x86 = _series(fam, cluster="x86")
        assert x86["max"] >= 20  # the 20 background generators
        assert x86["time_weighted_mean"] > 0

    def test_invocation_latency_labeled_by_serving_target(self, loaded_run):
        fam = _family(loaded_run.metrics.snapshot(), "invocation_latency_seconds")
        counted = {tuple(s["labels"].values()): s["count"] for s in fam["series"]}
        record = loaded_run.records[0]
        for target in set(record.targets):
            assert counted[(str(target),)] > 0

    def test_reconfiguration_time_and_overlap_accounted(self, loaded_run):
        snap = loaded_run.metrics.snapshot()
        total = _series(_family(snap, "fpga_reconfiguration_seconds_total"))["value"]
        hist = _series(_family(snap, "fpga_reconfiguration_seconds"))
        assert hist["count"] >= 1
        assert total == pytest.approx(hist["sum"])
        # The early-configure path hides programming behind busy CPUs:
        # with 20 background spinners the full window overlaps work.
        overlap = _series(
            _family(snap, "fpga_reconfig_overlap_core_seconds_total")
        )["value"]
        assert overlap > 0

    def test_stats_views_match_metrics_counters(self, loaded_run):
        stats = loaded_run.server.stats
        snap = loaded_run.metrics.snapshot()
        requests = _series(_family(snap, "scheduler_requests_total"))["value"]
        assert stats.requests == requests
        decisions = _family(snap, "scheduler_decisions_total")
        for series in decisions["series"]:
            target = next(t for t in Target if str(t) == series["labels"]["target"])
            assert stats.by_target[target] == series["value"]
        assert sum(stats.by_target.values()) == stats.requests
        assert sum(stats.by_rule.values()) == stats.requests


class TestFigure5StyleAcceptance:
    @pytest.fixture(scope="class")
    def run(self):
        return high_load_metrics(set_size=10, total_processes=120, seed=0)

    def test_per_target_latency_percentiles_present(self, run):
        fam = _family(run.snapshot, "invocation_latency_seconds")
        assert fam["series"], "no invocations recorded"
        for series in fam["series"]:
            for key in ("p50", "p95", "p99"):
                assert series["percentiles"][key] > 0

    def test_roundtrip_histogram_and_reconfig_total_present(self, run):
        roundtrip = _series(_family(run.snapshot, "scheduler_roundtrip_seconds"))
        assert roundtrip["count"] > 0
        total = _series(_family(run.snapshot, "fpga_reconfiguration_seconds_total"))
        assert total["value"] >= 0

    def test_report_renders_the_required_rows(self, run):
        text = run.report().to_text()
        assert "invocation_latency_seconds" in text
        assert "scheduler_roundtrip_seconds" in text
        assert "fpga_reconfiguration_seconds_total" in text
        assert "p50" in run.report().headers[4]

    def test_same_seed_exports_are_byte_identical(self):
        a = high_load_metrics(set_size=5, total_processes=110, seed=3)
        b = high_load_metrics(set_size=5, total_processes=110, seed=3)
        assert a.to_json() == b.to_json()
        assert a.to_csv() == b.to_csv()

    def test_different_seed_changes_the_export(self):
        a = high_load_metrics(set_size=5, total_processes=110, seed=3)
        b = high_load_metrics(set_size=5, total_processes=110, seed=4)
        assert a.to_json() != b.to_json()


class TestMetricsExperiment:
    def test_explicit_app_list(self):
        run = metrics_experiment(["cg.A", "digit.500"], background=4, seed=2)
        fam = _family(run.snapshot, "invocations_total")
        apps = {series["labels"]["app"] for series in fam["series"]}
        assert apps == {"cg.A", "digit.500"}
        assert run.outcome.metrics is run.snapshot
