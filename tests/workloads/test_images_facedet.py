"""Unit + property tests for PGM images and the face detector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.workloads.face_detection import (
    Detection,
    detect_faces,
    integral_image,
    match_detections,
)
from repro.workloads.images import (
    FACE_SIZE,
    PGMError,
    decode_pgm,
    encode_pgm,
    face_template,
    generate_face_image,
)


class TestPGM:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        image = rng.integers(0, 256, size=(17, 23), dtype=np.uint8)
        assert np.array_equal(decode_pgm(encode_pgm(image)), image)

    @given(
        hnp.arrays(
            dtype=np.uint8,
            shape=st.tuples(
                st.integers(min_value=1, max_value=40),
                st.integers(min_value=1, max_value=40),
            ),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, image):
        assert np.array_equal(decode_pgm(encode_pgm(image)), image)

    def test_comments_in_header(self):
        image = np.zeros((2, 3), dtype=np.uint8)
        data = encode_pgm(image)
        commented = data.replace(b"P5\n", b"P5\n# a comment\n")
        assert np.array_equal(decode_pgm(commented), image)

    @pytest.mark.parametrize(
        "corrupt",
        [b"P6\n2 2\n255\n" + b"\x00" * 4, b"P5\n2 2\n65535\n" + b"\x00" * 4,
         b"P5\n2 2\n255\n\x00\x00", b"P5\n2"],
    )
    def test_malformed_rejected(self, corrupt):
        with pytest.raises(PGMError):
            decode_pgm(corrupt)

    def test_encode_validates_input(self):
        with pytest.raises(PGMError):
            encode_pgm(np.zeros((2, 2, 3), dtype=np.uint8))
        with pytest.raises(PGMError):
            encode_pgm(np.zeros((2, 2), dtype=np.float64))


class TestIntegralImage:
    def test_matches_naive_sums(self):
        rng = np.random.default_rng(1)
        image = rng.integers(0, 256, size=(12, 9)).astype(np.uint8)
        sat = integral_image(image)
        for y0, y1, x0, x1 in [(0, 5, 0, 5), (2, 9, 3, 8), (0, 12, 0, 9)]:
            naive = image[y0:y1, x0:x1].sum()
            via_sat = sat[y1, x1] - sat[y0, x1] - sat[y1, x0] + sat[y0, x0]
            assert via_sat == naive

    @given(
        hnp.arrays(
            dtype=np.uint8,
            shape=st.tuples(
                st.integers(min_value=2, max_value=30),
                st.integers(min_value=2, max_value=30),
            ),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_total_sum_property(self, image):
        sat = integral_image(image)
        assert sat[-1, -1] == image.sum(dtype=np.float64)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            integral_image(np.zeros((2, 2, 2)))


class TestGenerator:
    def test_truths_within_bounds_and_non_overlapping(self):
        rng = np.random.default_rng(5)
        image, truths = generate_face_image(320, 240, 6, rng, scales=(1.0, 2.0))
        assert image.shape == (240, 320)
        assert len(truths) == 6
        for x, y, size in truths:
            assert 0 <= x <= 320 - size
            assert 0 <= y <= 240 - size
        for i, (x1, y1, s1) in enumerate(truths):
            for x2, y2, s2 in truths[i + 1:]:
                overlap_x = max(0, min(x1 + s1, x2 + s2) - max(x1, x2))
                overlap_y = max(0, min(y1 + s1, y2 + s2) - max(y1, y2))
                assert overlap_x * overlap_y == 0

    def test_template_has_the_cascade_contrasts(self):
        face = face_template().astype(float)
        eyes = face[FACE_SIZE // 4 : FACE_SIZE * 5 // 12].mean()
        cheeks = face[FACE_SIZE * 5 // 12 : FACE_SIZE * 2 // 3].mean()
        forehead = face[: FACE_SIZE // 4].mean()
        assert cheeks - eyes > 45
        assert forehead - eyes > 45


class TestDetector:
    def test_high_recall_zero_false_positives_on_synthetic_set(self):
        rng = np.random.default_rng(42)
        found = planted = false_pos = 0
        for _trial in range(6):
            image, truths = generate_face_image(
                320, 240, 5, rng, scales=(1.0, 1.5, 2.0)
            )
            detections = detect_faces(image)
            matched = match_detections(detections, truths)
            found += matched
            planted += len(truths)
            false_pos += len(detections) - matched
        assert found / planted >= 0.9
        assert false_pos <= 2

    def test_blank_image_yields_nothing(self):
        image = np.full((240, 320), 128, dtype=np.uint8)
        assert detect_faces(image) == []

    def test_noise_image_yields_nothing(self):
        rng = np.random.default_rng(3)
        image = rng.integers(0, 256, size=(240, 320)).astype(np.uint8)
        assert detect_faces(image) == []

    def test_single_planted_face_found_at_position(self):
        rng = np.random.default_rng(9)
        image, truths = generate_face_image(160, 120, 1, rng, noise_std=0.0)
        (detection,) = detect_faces(image)
        x, y, size = truths[0]
        assert abs(detection.x - x) <= 4
        assert abs(detection.y - y) <= 4
        assert detection.size == size

    def test_deterministic(self):
        rng = np.random.default_rng(11)
        image, _ = generate_face_image(320, 240, 4, rng)
        assert detect_faces(image) == detect_faces(image)

    def test_tiny_image_handled(self):
        image = np.zeros((10, 10), dtype=np.uint8)
        assert detect_faces(image) == []

    def test_match_detections_each_truth_used_once(self):
        det = Detection(x=10, y=10, size=24, score=1.0)
        truths = [(10, 10, 24), (12, 12, 24)]
        assert match_detections([det], truths) == 1
