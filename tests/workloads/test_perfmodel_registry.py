"""Unit tests for calibrated profiles and the workload registry."""

import pytest

from repro.workloads import (
    PAPER_BENCHMARKS,
    PAPER_TABLE1_MS,
    PAPER_TABLE2,
    PAPER_TABLE4_MS,
    available_workloads,
    create_workload,
    profile_for,
)
from repro.workloads.perfmodel import CalibrationError, WorkloadProfile


class TestCalibration:
    @pytest.mark.parametrize("name", PAPER_BENCHMARKS)
    def test_profiles_reproduce_table1_exactly(self, name):
        profile = profile_for(name)
        x86_ms, fpga_ms, arm_ms = PAPER_TABLE1_MS[name]
        assert profile.vanilla_x86_s * 1e3 == pytest.approx(x86_ms, rel=1e-9)
        assert profile.x86_fpga_s * 1e3 == pytest.approx(fpga_ms, rel=1e-9)
        assert profile.x86_arm_s * 1e3 == pytest.approx(arm_ms, rel=1e-9)

    @pytest.mark.parametrize("name", PAPER_BENCHMARKS)
    def test_kernel_names_match_table2(self, name):
        assert profile_for(name).kernel_name == PAPER_TABLE2[name][0]

    def test_arm_slowdowns_in_plausible_range(self):
        # ThunderX per-core is 2.5-4x slower on these kernels (Table 1).
        for name in PAPER_BENCHMARKS:
            slowdown = profile_for(name).arm_core_slowdown
            assert 2.0 < slowdown < 4.5

    def test_vanilla_arm_slower_than_x86(self):
        for name in PAPER_BENCHMARKS:
            profile = profile_for(name)
            assert profile.vanilla_arm_s > profile.vanilla_x86_s

    def test_all_decomposed_times_positive(self):
        for name in PAPER_BENCHMARKS:
            profile = profile_for(name)
            assert profile.host_work_s > 0
            assert profile.func_x86_s > 0
            assert profile.func_arm_s > 0
            assert profile.fpga_kernel_s > 0

    def test_with_calls_preserves_single_run_totals(self):
        base = profile_for("facedet.320")
        multi = base.with_calls(1)
        assert multi.vanilla_x86_s == pytest.approx(base.vanilla_x86_s)
        assert multi.x86_fpga_s == pytest.approx(base.x86_fpga_s)
        assert multi.x86_arm_s == pytest.approx(base.x86_arm_s)

    def test_with_calls_scales_linearly(self):
        base = profile_for("facedet.320")
        multi = base.with_calls(10)
        assert multi.vanilla_x86_s == pytest.approx(10 * base.vanilla_x86_s)

    def test_negative_decomposition_rejected(self):
        with pytest.raises(CalibrationError):
            WorkloadProfile(
                name="bad", kernel_name="K", loc=100,
                host_work_s=1.0, per_call_host_s=0.0,
                func_x86_s=-0.1, func_arm_s=1.0, fpga_kernel_s=1.0,
                bytes_to_fpga=0, bytes_from_fpga=0, migration_state_bytes=0,
            )

    def test_incapable_targets_raise(self):
        mg = profile_for("mg.B")
        with pytest.raises(CalibrationError):
            mg.fpga_call_s()
        with pytest.raises(CalibrationError):
            mg.arm_call_s()


class TestBFSProfiles:
    @pytest.mark.parametrize("nodes", sorted(PAPER_TABLE4_MS))
    def test_table4_sizes_reproduced(self, nodes):
        profile = profile_for(f"bfs.{nodes}")
        x86_ms, fpga_ms = PAPER_TABLE4_MS[nodes]
        assert profile.vanilla_x86_s * 1e3 == pytest.approx(x86_ms, rel=1e-6)
        assert profile.x86_fpga_s * 1e3 == pytest.approx(fpga_ms, rel=1e-6)

    def test_interpolated_sizes_grow_superlinearly(self):
        small = profile_for("bfs.1500")
        large = profile_for("bfs.4500")
        assert large.vanilla_x86_s > 3 * small.vanilla_x86_s

    def test_fpga_always_slower(self):
        for nodes in (1000, 2500, 5000):
            profile = profile_for(f"bfs.{nodes}")
            assert profile.x86_fpga_s > profile.vanilla_x86_s


class TestRegistry:
    def test_paper_benchmarks_all_constructible(self):
        for name in PAPER_BENCHMARKS:
            workload = create_workload(name)
            assert workload.name == name
            assert workload.profile.name == name

    def test_every_registered_workload_verifies(self):
        for name in available_workloads():
            workload = create_workload(name)
            inp = workload.generate_input(seed=0)
            output = workload.run_kernel(inp)
            assert workload.verify(inp, output), name

    def test_bfs_dynamic_names(self):
        workload = create_workload("bfs.250")
        assert workload.profile.name == "bfs.250"

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            create_workload("nope")
        with pytest.raises(KeyError):
            create_workload("bfs.xyz")
        with pytest.raises(KeyError):
            profile_for("nope")
        with pytest.raises(KeyError):
            profile_for("bfs.abc")

    def test_kernel_results_are_target_independent(self):
        # The transparent-migration invariant: re-running the pure
        # kernel gives identical output (no hidden global state).
        import numpy as np

        for name in ("digit.500", "facedet.320", "bfs.300"):
            workload = create_workload(name)
            inp = workload.generate_input(seed=1)
            first = workload.run_kernel(inp)
            second = workload.run_kernel(inp)
            if isinstance(first, np.ndarray):
                assert np.array_equal(first, second)
            else:
                assert first == second

    def test_paper_variant_validation(self):
        from repro.workloads import DigitRecognitionWorkload, FaceDetectionWorkload

        with pytest.raises(ValueError):
            FaceDetectionWorkload(100, 100)
        with pytest.raises(ValueError):
            DigitRecognitionWorkload(123)
