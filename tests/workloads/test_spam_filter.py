"""Unit tests for the spam-filter extension workload."""

import numpy as np
import pytest

from repro.core import SystemMode, build_system
from repro.types import Target
from repro.workloads import create_workload, profile_for
from repro.workloads.spam_filter import (
    N_FEATURES,
    accuracy,
    generate_dataset,
    predict,
    sigmoid,
    train_sgd,
)


class TestFunctional:
    def test_sigmoid_properties(self):
        z = np.array([-100.0, -1.0, 0.0, 1.0, 100.0])
        s = sigmoid(z)
        assert np.all((s >= 0) & (s <= 1))
        assert s[2] == pytest.approx(0.5)
        assert np.allclose(s + sigmoid(-z), 1.0)

    def test_training_learns_the_separation(self):
        data = generate_dataset(900, 200, seed=3)
        weights = train_sgd(data.train_x, data.train_y, seed=1)
        test_accuracy = accuracy(predict(weights, data.test_x), data.test_y)
        assert test_accuracy >= 0.9
        # Better than the untrained classifier.
        chance = accuracy(predict(np.zeros(N_FEATURES), data.test_x), data.test_y)
        assert test_accuracy > chance

    def test_deterministic(self):
        data = generate_dataset(100, 50, seed=5)
        a = train_sgd(data.train_x, data.train_y, epochs=2, seed=9)
        b = train_sgd(data.train_x, data.train_y, epochs=2, seed=9)
        assert np.array_equal(a, b)

    def test_validation(self):
        data = generate_dataset(50, 20, seed=0)
        with pytest.raises(ValueError):
            train_sgd(data.train_x, data.train_y, epochs=0)
        with pytest.raises(ValueError):
            accuracy(np.zeros(2), np.zeros(3))

    def test_dataset_shapes(self):
        data = generate_dataset(80, 40, seed=1)
        assert data.train_x.shape == (80, N_FEATURES)
        assert data.bytes_packed == 4 * N_FEATURES * 120


class TestIntegration:
    def test_registered_and_verifiable(self):
        workload = create_workload("spam.1024")
        inp = workload.generate_input(seed=2)
        assert workload.verify(inp, workload.run_kernel(inp))

    def test_profile_is_fpga_friendly(self):
        profile = profile_for("spam.1024")
        assert profile.x86_fpga_s < profile.vanilla_x86_s  # FPGA wins idle
        assert profile.x86_arm_s > profile.vanilla_x86_s

    def test_full_pipeline_and_scheduler_accept_it(self):
        runtime = build_system(["spam.1024"], seed=1)
        entry = runtime.server.thresholds.entry("spam.1024")
        assert entry.fpga_threshold == 0  # FPGA beats idle x86
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        load = runtime.launch_background(30, work_s=30.0)
        record = runtime.platform.sim.run_until_event(
            runtime.launch(
                "spam.1024", mode=SystemMode.XAR_TREK, functional=True, delay_s=0.01
            )
        )
        load.stop()
        assert record.targets == [Target.FPGA]
        assert record.verified is True
