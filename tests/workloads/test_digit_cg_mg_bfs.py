"""Unit tests for digit recognition, NPB CG, NPB MG, and BFS."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.bfs import bfs_benchmark, bfs_levels, make_graph
from repro.workloads.digit_recognition import (
    DIGIT_BITS,
    accuracy,
    classify,
    generate_dataset,
    hamming_distance,
)
from repro.workloads.npb_cg import (
    CLASS_A_SMALL,
    CLASS_S,
    cg_benchmark,
    conj_grad,
    make_matrix,
)
from repro.workloads.npb_mg import CLASS_B_SMALL, MGClass, mg_benchmark, residual, v_cycle


class TestDigitRecognition:
    def test_hamming_distance_matches_naive(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, size=(5, DIGIT_BITS)).astype(np.uint8)
        b = rng.integers(0, 2, size=(7, DIGIT_BITS)).astype(np.uint8)
        distances = hamming_distance(a, b)
        for i in range(5):
            for j in range(7):
                assert distances[i, j] == np.count_nonzero(a[i] != b[j])

    def test_high_accuracy_on_synthetic_data(self):
        data = generate_dataset(1000, 300, seed=2)
        predictions = classify(data.test, data.train, data.train_labels, k=3)
        assert accuracy(predictions, data.test_labels) >= 0.95

    def test_deterministic(self):
        a = generate_dataset(100, 50, seed=4)
        b = generate_dataset(100, 50, seed=4)
        assert np.array_equal(a.train, b.train)
        pred_a = classify(a.test, a.train, a.train_labels)
        pred_b = classify(b.test, b.train, b.train_labels)
        assert np.array_equal(pred_a, pred_b)

    def test_exact_prototype_is_its_own_neighbour(self):
        data = generate_dataset(500, 100, seed=1, noise_bits=0)
        predictions = classify(data.test, data.train, data.train_labels, k=1)
        assert accuracy(predictions, data.test_labels) == 1.0

    def test_k_validation(self):
        data = generate_dataset(10, 5, seed=0)
        with pytest.raises(ValueError):
            classify(data.test, data.train, data.train_labels, k=0)

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(4))
        assert accuracy(np.zeros(0), np.zeros(0)) == 0.0

    @given(st.integers(min_value=0, max_value=60))
    @settings(max_examples=10, deadline=None)
    def test_noise_monotonically_hurts_at_extremes(self, noise):
        # Not strictly monotone per draw, but bounded: any noise level
        # keeps accuracy above chance on this well-separated set.
        data = generate_dataset(300, 60, seed=5, noise_bits=noise)
        predictions = classify(data.test, data.train, data.train_labels)
        assert accuracy(predictions, data.test_labels) > 0.3

    def test_packed_bytes_metric(self):
        data = generate_dataset(100, 50, seed=0)
        assert data.bytes_packed == 32 * 150


class TestCG:
    def test_matrix_is_symmetric_positive_definite(self):
        matrix = make_matrix(CLASS_S, seed=1)
        n = matrix.n
        # Symmetry: A x . y == x . A y for random x, y.
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=n), rng.normal(size=n)
        assert np.dot(matrix.matvec_fast(x), y) == pytest.approx(
            np.dot(x, matrix.matvec_fast(y))
        )
        # Positive definiteness via diagonal dominance: x.Ax > 0.
        for _ in range(5):
            v = rng.normal(size=n)
            assert np.dot(v, matrix.matvec_fast(v)) > 0

    def test_matvec_fast_matches_reference(self):
        matrix = make_matrix(CLASS_S, seed=2)
        x = np.random.default_rng(1).normal(size=matrix.n)
        assert np.allclose(matrix.matvec(x), matrix.matvec_fast(x))

    def test_conj_grad_reduces_residual(self):
        matrix = make_matrix(CLASS_S, seed=3)
        x = np.ones(matrix.n)
        _z, residual_norm = conj_grad(matrix, x, cgitmax=25)
        assert residual_norm < 1e-8 * np.sqrt(matrix.n)

    def test_benchmark_converges(self):
        result = cg_benchmark(CLASS_A_SMALL, seed=314159)
        assert result.iterations == CLASS_A_SMALL.niter
        # zeta is converging: relative drift per outer iteration shrinks
        # well below 0.5% by the end.
        drift = abs(result.zeta_history[-1] - result.zeta_history[-2])
        assert drift / abs(result.zeta) < 5e-3
        assert result.zeta > CLASS_A_SMALL.shift  # shift + positive term

    def test_deterministic(self):
        assert cg_benchmark(CLASS_S, seed=7).zeta == cg_benchmark(CLASS_S, seed=7).zeta

    def test_csr_size_accounting(self):
        matrix = make_matrix(CLASS_S, seed=1)
        assert matrix.bytes_csr == (
            matrix.indptr.nbytes + matrix.indices.nbytes + matrix.data.nbytes
        )


class TestMG:
    def test_v_cycle_reduces_residual(self):
        rng = np.random.default_rng(0)
        v = rng.normal(size=(16, 16, 16))
        v -= v.mean()
        u = np.zeros_like(v)
        r0 = float(np.sqrt(np.mean(residual(u, v) ** 2)))
        u = v_cycle(u, v)
        r1 = float(np.sqrt(np.mean(residual(u, v) ** 2)))
        assert r1 < 0.5 * r0

    def test_benchmark_reaches_deep_reduction(self):
        result = mg_benchmark(CLASS_B_SMALL, seed=271828)
        assert result.reduction < 1e-6
        # Monotone decreasing residual history.
        for a, b in zip(result.history, result.history[1:]):
            assert b <= a * 1.01

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            MGClass("bad", size=17, niter=1)
        with pytest.raises(ValueError):
            MGClass("bad", size=2, niter=1)

    def test_deterministic(self):
        a = mg_benchmark(MGClass("t", 16, 3), seed=9)
        b = mg_benchmark(MGClass("t", 16, 3), seed=9)
        assert a.history == b.history


class TestBFS:
    def test_levels_match_networkx(self):
        graph = make_graph(400, avg_degree=6, seed=3)
        levels = bfs_levels(graph, source=0)
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(graph.n_nodes))
        for v in range(graph.n_nodes):
            for u in graph.neighbors[graph.indptr[v] : graph.indptr[v + 1]]:
                nx_graph.add_edge(v, int(u))
        reference = nx.single_source_shortest_path_length(nx_graph, 0)
        for node, depth in reference.items():
            assert levels[node] == depth

    def test_generator_guarantees_connectivity(self):
        for seed in range(5):
            result = bfs_benchmark(200, seed=seed)
            assert result.reached == 200

    def test_source_validation(self):
        graph = make_graph(10, seed=0)
        with pytest.raises(ValueError):
            bfs_levels(graph, source=10)
        with pytest.raises(ValueError):
            make_graph(1)

    def test_graph_shape(self):
        graph = make_graph(100, avg_degree=8, seed=1)
        assert graph.n_nodes == 100
        assert graph.indptr[0] == 0
        assert graph.indptr[-1] == graph.n_edges
        # Undirected: adjacency is symmetric.
        assert graph.n_edges % 2 == 0
        assert graph.degree(0) >= 2  # ring backbone

    def test_deterministic(self):
        a = bfs_benchmark(300, seed=4)
        b = bfs_benchmark(300, seed=4)
        assert np.array_equal(a.levels, b.levels)
