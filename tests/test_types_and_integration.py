"""Top-level types and cross-subsystem integration scenarios."""

import pytest

from repro import PAPER_BENCHMARKS, SystemMode, Target, build_system
from repro.core.runtime import spec_for
from repro.workloads import profile_for


class TestTarget:
    def test_flag_encoding_matches_paper(self):
        # Section 3.2: 0 = x86, 1 = ARM, 2 = FPGA.
        assert Target.X86 == 0
        assert Target.ARM == 1
        assert Target.FPGA == 2

    def test_isa_mapping(self):
        assert Target.X86.isa == "x86_64"
        assert Target.ARM.isa == "aarch64"
        with pytest.raises(ValueError):
            _ = Target.FPGA.isa

    def test_str(self):
        assert str(Target.FPGA) == "fpga"


class TestSpecFor:
    def test_default_functions(self):
        spec = spec_for(PAPER_BENCHMARKS)
        assert spec.application("cg.A").functions[0].name == "conj_grad"
        assert spec.application("digit.500").functions[0].kernel_name == "KNL_HW_DR500"


class TestEndToEnd:
    def test_full_scenario_reconfigure_then_migrate_to_fpga(self):
        """The paper's core loop: load spike -> ARM while the FPGA
        loads -> FPGA once resident -> back to x86 when the spike ends."""
        runtime = build_system(["digit.2000"], seed=0)
        # 20 background processes: the app's host work (~0.25 s under
        # this load) ends before the ~0.34 s XCLBIN load does, so the
        # first decision sees the kernel absent.
        load = runtime.launch_background(20, work_s=30.0)
        # First app under load: kernel absent -> ARM + background reconfig.
        first = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK, delay_s=0.01)
        )
        assert first.targets == [Target.ARM]
        # Second app: the XCLBIN finished loading during the first run.
        second = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        assert second.targets == [Target.FPGA]
        load.stop()
        runtime.platform.run()
        # Spike over: a fresh run stays on x86... but digit.2000 has
        # FPGA_THR = 0, so with the kernel resident it keeps using it.
        third = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        assert third.targets == [Target.FPGA]
        assert third.elapsed_s < first.elapsed_s

    def test_cg_under_load_prefers_arm_over_fpga(self):
        # Table 2: CG-A's ARM threshold (24-25) is below its FPGA
        # threshold (30-31), so Algorithm 2 lines 25-31 pick ARM even
        # with the kernel resident.
        runtime = build_system(["cg.A"], seed=0)
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        load = runtime.launch_background(60, work_s=60.0)
        record = runtime.platform.sim.run_until_event(
            runtime.launch("cg.A", mode=SystemMode.XAR_TREK, delay_s=0.01)
        )
        load.stop()
        assert record.targets == [Target.ARM]

    def test_mixed_tenants_share_all_three_targets(self):
        runtime = build_system(list(PAPER_BENCHMARKS), seed=0)
        load = runtime.launch_background(50, work_s=120.0)
        events = [
            runtime.launch(name, seed=i, mode=SystemMode.XAR_TREK, delay_s=0.05)
            for i, name in enumerate(PAPER_BENCHMARKS * 2)
        ]
        records = runtime.wait_all(events)
        load.stop()
        used = {t for rec in records for t in rec.targets}
        assert Target.FPGA in used or Target.ARM in used
        # Everything completed and was accounted.
        assert len(runtime.records) == len(records)
        assert runtime.server.stats.requests == len(records)

    def test_migration_transparency_under_full_system(self):
        """Functional outputs are identical whichever system ran the app."""
        outputs = {}
        for mode in (SystemMode.VANILLA_X86, SystemMode.ALWAYS_FPGA, SystemMode.XAR_TREK):
            runtime = build_system(["digit.500"], seed=0)
            record = runtime.platform.sim.run_until_event(
                runtime.launch("digit.500", seed=7, mode=mode, functional=True)
            )
            outputs[mode] = record.verified
        assert all(outputs.values())

    def test_throughput_app_uses_fpga_when_hot(self):
        runtime = build_system(["facedet.320"], seed=0)
        load = runtime.launch_background(40, work_s=60.0)
        record = runtime.platform.sim.run_until_event(
            runtime.launch(
                "facedet.320",
                mode=SystemMode.XAR_TREK,
                calls=100,
                deadline_s=15.0,
                delay_s=0.01,
            )
        )
        load.stop()
        fpga_calls = sum(1 for t in record.targets if t is Target.FPGA)
        assert fpga_calls > record.calls_completed * 0.8

    def test_scheduling_overhead_is_small(self):
        # The client/server hop costs ~100 us per call: invisible at
        # workload scale (paper claims negligible scheduler overhead).
        runtime = build_system(["digit.2000"], seed=0)
        record = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        profile = profile_for("digit.2000")
        # Whatever target served it, the end-to-end time never exceeds
        # the corresponding scenario time by more than the (~100 us)
        # client/server hop plus noise.
        scenario = {
            Target.X86: profile.vanilla_x86_s,
            Target.ARM: profile.x86_arm_s,
            Target.FPGA: profile.x86_fpga_s,
        }[record.targets[0]]
        assert record.elapsed_s < scenario * 1.02
