"""SLO scoring: exact p99, deadline-goodput, violation accounting,
and the memoization that keeps the violations counter honest."""

import math
from dataclasses import dataclass
from typing import Optional

import pytest

from repro.metrics import MetricsRegistry
from repro.traffic import SLOTarget, SLOTracker


@dataclass
class FakeRecord:
    """The slice of RunRecord the tracker reads."""

    app: str
    start_s: float = 0.0
    end_s: float = math.nan
    deadline_s: Optional[float] = None
    shed_reason: Optional[str] = None

    @property
    def elapsed_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def finished(self) -> bool:
        return not math.isnan(self.end_s)


def _completed(app, latency, deadline=None):
    return FakeRecord(app=app, start_s=0.0, end_s=latency, deadline_s=deadline)


class TestTargetValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p99_latency_s": 0.0},
            {"p99_latency_s": -1.0},
            {"goodput_floor": -0.1},
            {"goodput_floor": 1.1},
        ],
    )
    def test_bad_target_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SLOTarget(app="a", **kwargs)

    def test_duplicate_targets_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOTracker([SLOTarget(app="a"), SLOTarget(app="a")])


class TestP99:
    def test_exact_order_statistic(self):
        # 100 completed clients with latencies 1..100: ceil(0.99*100)=99,
        # so p99 is the 99th smallest — exactly 99.0, no interpolation.
        tracker = SLOTracker([SLOTarget(app="a")])
        tracker.observe_all(
            _completed("a", float(i)) for i in range(1, 101)
        )
        assert tracker.score()["a"].p99_latency_s == 99.0

    def test_single_sample_is_its_own_p99(self):
        tracker = SLOTracker([SLOTarget(app="a")])
        tracker.observe(_completed("a", 3.25))
        assert tracker.score()["a"].p99_latency_s == 3.25

    def test_no_completions_p99_is_none(self):
        tracker = SLOTracker([SLOTarget(app="a", p99_latency_s=1.0)])
        report = tracker.score()["a"]
        assert report.p99_latency_s is None
        # No samples cannot violate a latency objective.
        assert report.violations == ()


class TestGoodput:
    def test_shed_clients_count_against_goodput(self):
        tracker = SLOTracker([SLOTarget(app="a", goodput_floor=0.9)])
        tracker.observe(_completed("a", 1.0, deadline=5.0))
        tracker.observe(FakeRecord(app="a", shed_reason="brownout"))
        report = tracker.score()["a"]
        assert report.clients == 2
        assert report.completed == 1
        assert report.shed == 1
        assert report.goodput == 0.5
        assert report.violations == ("deadline_goodput",)

    def test_deadline_miss_is_not_goodput(self):
        tracker = SLOTracker([SLOTarget(app="a")])
        tracker.observe(_completed("a", 6.0, deadline=5.0))  # late
        tracker.observe(_completed("a", 4.0, deadline=5.0))  # on time
        report = tracker.score()["a"]
        assert report.deadline_hits == 1
        assert report.goodput == 0.5

    def test_no_deadline_every_completion_is_good(self):
        tracker = SLOTracker([SLOTarget(app="a")])
        tracker.observe(_completed("a", 100.0))
        assert tracker.score()["a"].goodput == 1.0

    def test_zero_clients_goodput_is_zero(self):
        tracker = SLOTracker([SLOTarget(app="a")])
        report = tracker.score()["a"]
        assert report.clients == 0
        assert report.goodput == 0.0

    def test_unfinished_record_counts_as_denied(self):
        tracker = SLOTracker([SLOTarget(app="a")])
        tracker.observe(FakeRecord(app="a"))  # never finished, not shed
        report = tracker.score()["a"]
        assert report.clients == 1
        assert report.completed == 0
        assert report.goodput == 0.0


class TestScoring:
    def test_untargeted_apps_still_reported(self):
        tracker = SLOTracker([])
        tracker.observe(_completed("b", 1.0))
        report = tracker.score()["b"]
        assert report.clients == 1
        assert report.violations == ()

    def test_p99_violation_flagged(self):
        tracker = SLOTracker([SLOTarget(app="a", p99_latency_s=2.0)])
        tracker.observe(_completed("a", 3.0))
        assert tracker.score()["a"].violations == ("p99_latency",)
        assert not tracker.score()["a"].ok

    def test_both_objectives_can_violate_together(self):
        tracker = SLOTracker(
            [SLOTarget(app="a", p99_latency_s=2.0, goodput_floor=1.0)]
        )
        tracker.observe(_completed("a", 3.0, deadline=2.5))
        assert tracker.score()["a"].violations == (
            "p99_latency",
            "deadline_goodput",
        )

    def test_lines_are_sorted_and_repr_exact(self):
        tracker = SLOTracker([SLOTarget(app="b"), SLOTarget(app="a")])
        tracker.observe(_completed("a", 1.5))
        tracker.observe(_completed("b", 2.5))
        lines = tracker.lines()
        assert lines[0].startswith("slo a ")
        assert lines[1].startswith("slo b ")
        assert "p99=1.5" in lines[0]
        assert lines[0].endswith("ok")


class TestCounterMemoization:
    def _tracker(self):
        metrics = MetricsRegistry()
        tracker = SLOTracker(
            [SLOTarget(app="a", p99_latency_s=1.0)], metrics=metrics
        )
        return metrics, tracker

    def test_violations_counted_once_across_rescoring(self):
        metrics, tracker = self._tracker()
        tracker.observe(_completed("a", 2.0))
        tracker.score()
        tracker.lines()
        tracker.score()
        family = metrics.get("slo_violations_total")
        assert family.labels(app="a").value == 1.0

    def test_new_observation_invalidates_and_recounts(self):
        metrics, tracker = self._tracker()
        tracker.observe(_completed("a", 2.0))
        tracker.score()
        tracker.observe(_completed("a", 2.0))
        tracker.score()
        # Two scoring passes, each finding one violated objective.
        assert metrics.get("slo_violations_total").labels(app="a").value == 2.0

    def test_no_counter_without_registry(self):
        tracker = SLOTracker([SLOTarget(app="a", p99_latency_s=1.0)])
        tracker.observe(_completed("a", 2.0))
        tracker.score()  # must not raise
