"""Trace-driven traffic generation: validation, determinism, round
trips, and the cohort plug-in that replays a trace through the
existing arrival machinery."""

import pytest

from repro.traffic import (
    SpikeWindow,
    Trace,
    TraceEntry,
    TrafficError,
    TrafficSpec,
    generate_trace,
)


def _spec(**overrides):
    kwargs = dict(
        apps=("digit.500", "facedet.320"),
        base_rate_per_s=2.0,
        horizon_s=20.0,
        diurnal_period_s=20.0,
        diurnal_amplitude=0.4,
        spikes=(SpikeWindow(at_s=5.0, duration_s=3.0, factor=8.0),),
        calls_alpha=1.5,
        calls_max=4,
        deadline_s=10.0,
        seed=0,
    )
    kwargs.update(overrides)
    return TrafficSpec(**kwargs)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"apps": ()},
            {"base_rate_per_s": 0.0},
            {"base_rate_per_s": -1.0},
            {"horizon_s": 0.0},
            {"diurnal_period_s": 0.0},
            {"diurnal_amplitude": -0.1},
            {"diurnal_amplitude": 1.0},
            {"calls_alpha": 0.0},
            {"calls_max": 0},
            {"deadline_s": 0.0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(TrafficError):
            _spec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"at_s": -1.0, "duration_s": 1.0, "factor": 2.0},
            {"at_s": 0.0, "duration_s": 0.0, "factor": 2.0},
            {"at_s": 0.0, "duration_s": 1.0, "factor": 0.0},
        ],
    )
    def test_bad_spike_rejected(self, kwargs):
        with pytest.raises(TrafficError):
            SpikeWindow(**kwargs)

    def test_spike_past_horizon_rejected(self):
        with pytest.raises(TrafficError, match="past the"):
            _spec(spikes=(SpikeWindow(at_s=25.0, duration_s=1.0, factor=2.0),))

    def test_rate_function_composes_diurnal_and_spike(self):
        spec = _spec()
        # t=5 is the diurnal peak (sin(2*pi*5/20) = 1) AND inside the spike.
        assert spec.rate_at(5.0) == pytest.approx(2.0 * 1.4 * 8.0)
        # t=15 is the trough, outside the spike.
        assert spec.rate_at(15.0) == pytest.approx(2.0 * 0.6)
        # The envelope bounds the rate everywhere (thinning correctness).
        peak = spec.peak_rate_per_s
        assert all(
            spec.rate_at(t / 10) <= peak + 1e-12 for t in range(0, 200)
        )


class TestGeneration:
    def test_same_spec_same_trace(self):
        assert generate_trace(_spec()) == generate_trace(_spec())

    def test_different_seed_different_trace(self):
        assert generate_trace(_spec(seed=0)) != generate_trace(_spec(seed=1))

    def test_entries_well_formed(self):
        spec = _spec()
        trace = generate_trace(spec)
        assert len(trace) > 0
        arrivals = [e.arrival_s for e in trace]
        assert arrivals == sorted(arrivals)
        for entry in trace:
            assert 0.0 <= entry.arrival_s < spec.horizon_s
            assert entry.app in spec.apps
            assert 1 <= entry.calls <= spec.calls_max
            assert entry.deadline_s == spec.deadline_s

    def test_spike_concentrates_arrivals(self):
        spec = _spec()
        trace = generate_trace(spec)
        window = [e for e in trace if 5.0 <= e.arrival_s < 8.0]
        # 3 s of 8x spike at the diurnal peak: well over half the total
        # arrivals land inside the window even though it is 15% of the
        # horizon — the flash-crowd shape the scenario depends on.
        assert len(window) > len(trace) / 2

    def test_no_deadline_spec_leaves_entries_undeadlined(self):
        trace = generate_trace(_spec(deadline_s=None))
        assert all(e.deadline_s is None for e in trace)


class TestTraceValue:
    def test_unsorted_entries_rejected(self):
        with pytest.raises(TrafficError, match="sorted"):
            Trace(
                entries=(
                    TraceEntry(app="a", arrival_s=2.0, calls=1),
                    TraceEntry(app="a", arrival_s=1.0, calls=1),
                )
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"app": "a", "arrival_s": -0.1, "calls": 1},
            {"app": "a", "arrival_s": 0.0, "calls": 0},
            {"app": "a", "arrival_s": 0.0, "calls": 1, "deadline_s": 0.0},
        ],
    )
    def test_bad_entry_rejected(self, kwargs):
        with pytest.raises(TrafficError):
            TraceEntry(**kwargs)

    def test_totals(self):
        trace = Trace(
            entries=(
                TraceEntry(app="a", arrival_s=0.0, calls=2),
                TraceEntry(app="b", arrival_s=1.0, calls=3),
            )
        )
        assert trace.clients == len(trace) == 2
        assert trace.total_calls == 5

    def test_lines_are_repr_exact(self):
        trace = generate_trace(_spec())
        lines = trace.lines()
        assert lines[0].startswith(f"trace:{trace.clients}:{trace.total_calls}")
        # repr-rendered floats: parsing a line back recovers the exact bits.
        app, arrival, calls, deadline = lines[1].split(",")
        first = trace.entries[0]
        assert app == first.app
        assert float(arrival) == first.arrival_s
        assert int(calls) == first.calls
        assert float(deadline) == first.deadline_s


class TestSerialization:
    def test_json_round_trip_is_identity(self):
        trace = generate_trace(_spec())
        assert Trace.from_json(trace.to_json()) == trace

    def test_file_round_trip(self, tmp_path):
        trace = generate_trace(_spec())
        path = str(tmp_path / "trace.json")
        trace.save(path)
        assert Trace.load(path) == trace

    def test_schema_tag_enforced(self):
        with pytest.raises(TrafficError, match="schema"):
            Trace.from_json('{"schema": "something-else/9", "entries": []}')

    def test_invalid_json_rejected(self):
        with pytest.raises(TrafficError, match="invalid trace JSON"):
            Trace.from_json("{nope")

    def test_malformed_entry_rejected(self):
        payload = (
            '{"schema": "xar-trek-traffic-trace/1", '
            '"entries": [{"app": "a"}]}'
        )
        with pytest.raises(TrafficError, match="malformed trace entry"):
            Trace.from_json(payload)

    def test_missing_file_reported(self, tmp_path):
        with pytest.raises(TrafficError, match="cannot read trace"):
            Trace.load(str(tmp_path / "absent.json"))


class TestCohortPlugIn:
    def test_empty_trace_has_no_cohorts(self):
        with pytest.raises(TrafficError, match="empty trace"):
            Trace(entries=()).to_cohorts()

    def test_groups_preserve_every_arrival(self):
        trace = generate_trace(_spec())
        cohorts = trace.to_cohorts()
        assert sum(c.clients for c in cohorts) == trace.clients
        assert sum(c.clients * c.calls for c in cohorts) == trace.total_calls
        # The explicit arrival laws replay exactly the trace's times.
        times = sorted(
            t for c in cohorts for t in c.arrival.times
        )
        assert times == [e.arrival_s for e in trace]
        for cohort in cohorts:
            assert cohort.arrival.kind == "explicit"
            assert len(cohort.arrival.times) == cohort.clients

    def test_cohorts_drive_the_population_machinery(self):
        from repro.core.cohort import CohortPopulation, sample_arrivals
        from repro.thresholds import ThresholdEntry, ThresholdTable
        from repro.workloads import profile_for

        trace = generate_trace(_spec(base_rate_per_s=0.5, spikes=()))
        cohorts = trace.to_cohorts()
        table = ThresholdTable()
        for app in sorted({c.app for c in cohorts}):
            capable = profile_for(app).fpga_capable
            table.add(
                ThresholdEntry(
                    application=app,
                    kernel_name=f"k_{app}" if capable else "",
                    fpga_threshold=5.0,
                    arm_threshold=15.0,
                )
            )
        assert sorted(
            float(t) for c in cohorts for t in sample_arrivals(c)
        ) == [e.arrival_s for e in trace]
        result = CohortPopulation(cohorts, thresholds=table).run()
        assert result.clients == trace.clients
        assert result.sim_seconds > 0.0
