"""Scheduler-server edge cases (Algorithm 2's guard rails).

Covers the paths a healthy run never exercises: requests before the
daemon starts, threshold entries naming kernels that were never
compiled, reconfiguration attempts while the card is busy, and the
programming-failure -> retry-on-next-request loop.
"""

import pytest

from repro.core import build_system
from repro.types import Target

pytestmark = pytest.mark.metrics


@pytest.fixture
def runtime():
    return build_system(["digit.2000"])


class TestRequestLifecycle:
    def test_request_before_start_raises(self, runtime):
        runtime.server._running = False
        with pytest.raises(RuntimeError, match="not started"):
            runtime.server.request("digit.2000")
        # No request was recorded, and starting again heals the server.
        assert runtime.server.stats.requests == 0
        runtime.server.start()
        reply = runtime.server.request("digit.2000")
        runtime.platform.sim.run_until_event(reply)
        assert runtime.server.stats.requests == 1

    def test_start_is_idempotent(self, runtime):
        runtime.server.start()
        runtime.server.start()
        reply = runtime.server.request("digit.2000")
        assert runtime.platform.sim.run_until_event(reply) in set(Target)


class TestMaybeReconfigure:
    def test_unknown_kernel_is_a_silent_noop(self, runtime):
        runtime.server._maybe_reconfigure("no_such_kernel")
        assert not runtime.xrt.reconfiguring
        assert runtime.server.stats.reconfigurations_started == 0
        assert runtime.server.stats.reconfigurations_skipped == 0

    def test_skipped_while_reconfiguring(self, runtime):
        kernel = runtime.result.thresholds.entry("digit.2000").kernel_name
        runtime.server._maybe_reconfigure(kernel)
        assert runtime.xrt.reconfiguring
        runtime.server._maybe_reconfigure(kernel)
        assert runtime.server.stats.reconfigurations_started == 1
        assert runtime.server.stats.reconfigurations_skipped == 1

    def test_skipped_while_kernels_run(self, runtime):
        kernel = runtime.result.thresholds.entry("digit.2000").kernel_name
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        done = runtime.xrt.run_kernel(kernel, bytes_in=1024, bytes_out=64)
        assert runtime.xrt.active_runs == 1
        # Swapping under a running kernel is impossible: skip + count.
        runtime.xrt.fpga._image = None  # force "kernel absent"
        runtime.server._maybe_reconfigure(kernel)
        assert runtime.server.stats.reconfigurations_started == 0
        assert runtime.server.stats.reconfigurations_skipped == 1
        runtime.xrt.fpga._image = runtime.image_for(kernel)
        runtime.platform.sim.run_until_event(done)

    def test_already_resident_kernel_is_free(self, runtime):
        kernel = runtime.result.thresholds.entry("digit.2000").kernel_name
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        runtime.server._maybe_reconfigure(kernel)
        assert runtime.server.stats.reconfigurations_started == 0


class TestReconfigurationFailure:
    def test_failure_counted_and_retried_in_background(self, runtime):
        runtime.platform.fpga.inject_reconfig_failures(1)
        kernel = runtime.result.thresholds.entry("digit.2000").kernel_name
        runtime.server.preconfigure("digit.2000")
        # Draining the queue runs the failed attempt *and* the server's
        # background retry (no client request needed): the old image
        # rolls back, the retry waits out the backoff, and the second
        # programming pass succeeds.
        runtime.platform.sim.run()
        assert runtime.server.stats.reconfigurations_failed == 1
        assert runtime.server.stats.reconfigurations_started == 2
        assert runtime.xrt.has_kernel(kernel)

    def test_breaker_and_retry_budget_bound_consecutive_failures(self, runtime):
        armed = 8
        runtime.platform.fpga.inject_reconfig_failures(armed)
        runtime.server.preconfigure("digit.2000")
        runtime.platform.sim.run()
        # Consecutive programming failures trip the device breaker at
        # its threshold; the remaining background retries are skipped
        # (quarantine) instead of hammering the card forever.
        threshold = runtime.resilience.config.breaker_failure_threshold
        assert runtime.server.stats.reconfigurations_failed == threshold
        assert runtime.resilience.breaker.state_of("device:fpga") == "open"
        assert (
            runtime.platform.fpga.pending_reconfig_failures == armed - threshold
        )

    def test_failure_does_not_crash_the_simulation(self, runtime):
        runtime.platform.fpga.inject_reconfig_failures(1)
        runtime.server.preconfigure("digit.2000")
        runtime.platform.sim.run()  # would raise if the failure escaped
        failed = runtime.metrics.get("fpga_reconfigurations_failed_total")
        assert failed.value == 1
