"""Chain-path vs generator-path differential oracle.

``ApplicationRun.start`` is backed by two equivalent implementations:
the default precompiled callback chain (``_chain_begin`` and friends)
and the original generator process (``_body``), kept verbatim as the
differential reference and selected with ``REPRO_CLIENT_PATH=generator``.
These tests pin the equivalence contract: for any workload shape, the
two paths must produce byte-identical run records and leave the
threshold table in the same state.
"""

import math

import pytest

from repro.core import SystemMode, build_system
from repro.core.application import CLIENT_PATH_ENV

APPS = ["digit.2000", "facedet.320", "cg.A", "facedet.640"]


def _lines(records):
    return [
        f"{rec.app},{rec.start_s:.9f},{rec.end_s:.9f},{rec.calls_completed},"
        f"{rec.migrations},{','.join(str(t) for t in rec.targets)}"
        for rec in records
    ]


def _run_workload(monkeypatch, path, *, deadline=False, modes=None):
    """One seeded mixed workload under the given client path."""
    monkeypatch.setenv(CLIENT_PATH_ENV, path)
    runtime = build_system(APPS, seed=7)
    load = runtime.launch_background(10)
    handles = []
    modes = modes or [SystemMode.XAR_TREK]
    for index in range(24):
        kwargs = dict(
            seed=300 + index,
            mode=modes[index % len(modes)],
            calls=1 + index % 3,
            delay_s=0.35 * index,
        )
        if deadline and index % 5 == 0:
            kwargs["deadline_s"] = 2.0
            kwargs.pop("calls")
        handles.append(runtime.launch(APPS[index % len(APPS)], **kwargs))
    records = runtime.wait_all(handles)
    load.stop()
    return runtime, records


class TestChainGeneratorEquivalence:
    def test_mixed_workload_records_are_bit_identical(self, monkeypatch):
        _, chain = _run_workload(monkeypatch, "chain")
        _, generator = _run_workload(monkeypatch, "generator")
        assert _lines(chain) == _lines(generator)

    def test_all_system_modes_agree(self, monkeypatch):
        modes = [
            SystemMode.XAR_TREK,
            SystemMode.VANILLA_X86,
            SystemMode.ALWAYS_FPGA,
            SystemMode.VANILLA_ARM,
        ]
        _, chain = _run_workload(monkeypatch, "chain", modes=modes)
        _, generator = _run_workload(monkeypatch, "generator", modes=modes)
        assert _lines(chain) == _lines(generator)

    def test_deadline_runs_agree(self, monkeypatch):
        # Deadline-capped runs exercise the early-exit arcs of the
        # lifecycle state machine (no Algorithm 1 pass at exit).
        _, chain = _run_workload(monkeypatch, "chain", deadline=True)
        _, generator = _run_workload(monkeypatch, "generator", deadline=True)
        assert _lines(chain) == _lines(generator)

    def test_threshold_tables_agree(self, monkeypatch):
        # Algorithm 1 runs at client exit on both paths; the refined
        # table is observable scheduler state and must not diverge.
        chain_rt, _ = _run_workload(monkeypatch, "chain")
        generator_rt, _ = _run_workload(monkeypatch, "generator")
        chain_table = chain_rt.server.thresholds
        generator_table = generator_rt.server.thresholds
        for app in APPS:
            chain_entry = chain_table.entry(app)
            generator_entry = generator_table.entry(app)
            assert math.isclose(
                chain_entry.fpga_threshold, generator_entry.fpga_threshold
            ), app
            assert math.isclose(
                chain_entry.arm_threshold, generator_entry.arm_threshold
            ), app

    def test_chain_is_the_default_path(self, monkeypatch):
        monkeypatch.delenv(CLIENT_PATH_ENV, raising=False)
        runtime = build_system(["digit.500"], seed=1)
        run = runtime.launch("digit.500", seed=1, mode=SystemMode.XAR_TREK, calls=1)
        record = runtime.wait_all([run])[0]
        assert record.finished and record.calls_completed == 1


class TestPathSelection:
    @pytest.mark.parametrize("path", ["chain", "generator"])
    def test_both_paths_complete_every_run(self, monkeypatch, path):
        _, records = _run_workload(monkeypatch, path)
        assert all(rec.finished for rec in records)
        assert all(rec.calls_completed > 0 for rec in records)
