"""Tests for Algorithm 1 (dynamic threshold update) and the threshold table."""

import math

import pytest

from repro.core import ThresholdUpdater, UpdateOutcome
from repro.thresholds import ThresholdEntry, ThresholdError, ThresholdTable
from repro.types import Target


def entry(fpga=16.0, arm=31.0, x86=0.175, fpga_t=0.332, arm_t=0.642):
    e = ThresholdEntry("app", "KNL", fpga_threshold=fpga, arm_threshold=arm)
    e.record(Target.X86, x86)
    e.record(Target.FPGA, fpga_t)
    e.record(Target.ARM, arm_t)
    return e


class TestAlgorithm1:
    def test_lines_4_5_lower_fpga_threshold(self):
        # Ran on x86, slower than the recorded FPGA time, at a load below
        # the current threshold -> the threshold comes down to that load.
        e = entry()
        outcome = ThresholdUpdater().update(e, Target.X86, exec_seconds=0.5, x86_load=10)
        assert outcome == UpdateOutcome.LOWERED_FPGA
        assert e.fpga_threshold == 10
        assert e.observed(Target.X86) == 0.5  # lines 1-2 recorded

    def test_lines_7_8_lower_arm_threshold(self):
        # Slower than ARM but not FPGA -> the elif arm branch.
        e = entry(fpga_t=10.0)  # FPGA time huge: first condition fails
        outcome = ThresholdUpdater().update(e, Target.X86, exec_seconds=0.7, x86_load=20)
        assert outcome == UpdateOutcome.LOWERED_ARM
        assert e.arm_threshold == 20

    def test_lines_4_10_lower_both_thresholds_in_one_pass(self):
        # Regression: lines 4-5 (FPGA) and 7-8 (ARM) are independent
        # statements in Algorithm 1, but the implementation used an
        # elif, so a run slower than BOTH recorded alternatives could
        # only ever lower the FPGA threshold. One pass must lower both.
        e = entry()  # observed: fpga 0.332s, arm 0.642s
        outcome = ThresholdUpdater().update(
            e, Target.X86, exec_seconds=1.0, x86_load=10
        )
        assert outcome == UpdateOutcome.LOWERED_BOTH
        assert e.fpga_threshold == 10
        assert e.arm_threshold == 10

    def test_line_10_just_record(self):
        e = entry()
        outcome = ThresholdUpdater().update(e, Target.X86, exec_seconds=0.1, x86_load=3)
        assert outcome == UpdateOutcome.RECORDED
        assert e.fpga_threshold == 16 and e.arm_threshold == 31
        assert e.observed(Target.X86) == 0.1

    def test_no_lowering_at_or_above_current_threshold(self):
        e = entry()
        ThresholdUpdater().update(e, Target.X86, exec_seconds=0.5, x86_load=16)
        assert e.fpga_threshold == 16  # load not strictly below

    def test_lines_14_17_raise_arm_threshold(self):
        e = entry()
        outcome = ThresholdUpdater(increase_step=2.0).update(
            e, Target.ARM, exec_seconds=0.9, x86_load=40
        )
        assert outcome == UpdateOutcome.RAISED_ARM
        assert e.arm_threshold == 33.0
        assert e.observed(Target.ARM) == 0.9

    def test_lines_19_23_raise_fpga_threshold(self):
        e = entry()
        outcome = ThresholdUpdater().update(e, Target.FPGA, exec_seconds=0.9, x86_load=40)
        assert outcome == UpdateOutcome.RAISED_FPGA
        assert e.fpga_threshold == 17.0

    def test_fast_migrated_run_leaves_thresholds_alone(self):
        e = entry()
        outcome = ThresholdUpdater().update(e, Target.FPGA, exec_seconds=0.05, x86_load=40)
        assert outcome == UpdateOutcome.RECORDED
        assert e.fpga_threshold == 16

    def test_comparison_uses_previous_observation(self):
        # The update compares against the observation *before* recording
        # this run (paper: record happens as the app terminates).
        e = entry(x86=0.2)
        ThresholdUpdater().update(e, Target.ARM, exec_seconds=0.1, x86_load=5)
        assert e.arm_threshold == 31  # 0.1 < 0.2: no raise
        assert e.observed(Target.ARM) == 0.1

    def test_never_observed_target_compares_as_infinite(self):
        e = ThresholdEntry("app", "KNL", fpga_threshold=5, arm_threshold=5)
        assert math.isinf(e.observed(Target.FPGA))
        outcome = ThresholdUpdater().update(e, Target.X86, exec_seconds=99.0, x86_load=2)
        assert outcome == UpdateOutcome.RECORDED  # nothing to compare against

    def test_step_validation(self):
        with pytest.raises(ValueError):
            ThresholdUpdater(increase_step=0)

    def test_negative_time_rejected(self):
        e = entry()
        with pytest.raises(ThresholdError):
            ThresholdUpdater().update(e, Target.X86, exec_seconds=-1.0, x86_load=2)


class TestThresholdTable:
    def test_add_lookup_iterate(self):
        table = ThresholdTable([entry()])
        assert table.has("app")
        assert table.entry("app").kernel_name == "KNL"
        assert len(table) == 1
        assert [e.application for e in table] == ["app"]
        assert table.applications() == ("app",)

    def test_duplicate_rejected(self):
        table = ThresholdTable([entry()])
        with pytest.raises(ThresholdError):
            table.add(entry())

    def test_unknown_lookup_rejected(self):
        with pytest.raises(ThresholdError):
            ThresholdTable().entry("ghost")

    def test_copy_is_deep_for_updates(self):
        table = ThresholdTable([entry()])
        clone = table.copy()
        clone.entry("app").fpga_threshold = 99
        clone.entry("app").record(Target.X86, 123.0)
        assert table.entry("app").fpga_threshold == 16
        assert table.entry("app").observed(Target.X86) == 0.175

    def test_text_round_trip(self):
        table = ThresholdTable(
            [
                ThresholdEntry("a", "K1", 16, 31),
                ThresholdEntry("b", "", 0, 17),
            ]
        )
        parsed = ThresholdTable.parse(table.to_text())
        assert parsed.entry("a").fpga_threshold == 16
        assert parsed.entry("b").kernel_name == ""
        assert parsed.entry("b").arm_threshold == 17

    def test_parse_rejects_malformed(self):
        with pytest.raises(ThresholdError):
            ThresholdTable.parse("only two fields\n")
