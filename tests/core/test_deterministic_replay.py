"""Deterministic replay: the engine's tie-breaking promise, end to end.

`sim/engine.py` breaks timestamp ties with a monotone sequence number,
so two deployments built from the same seed must replay *identically* —
not just the same averages, but the same trace lines, the same metrics
export bytes, and the same scheduler statistics. This is the guarantee
every perf/regression PR diffs against.
"""

import pytest

from repro.core import SystemMode, build_system
from repro.metrics import to_csv, to_json

pytestmark = pytest.mark.metrics

_APPS = ["digit.2000", "cg.A", "facedet.320"]


def _run_scenario(seed: int, background: int = 30):
    """One seeded end-to-end scenario: 3 apps over MG-B background."""
    runtime = build_system(_APPS, seed=seed, trace=True)
    load = runtime.launch_background(background)
    events = [
        runtime.launch(app, seed=seed * 100 + i, mode=SystemMode.XAR_TREK,
                       delay_s=0.05)
        for i, app in enumerate(_APPS)
    ]
    records = runtime.wait_all(events)
    load.stop()
    return runtime, records


def _stats_text(runtime) -> str:
    stats = runtime.server.stats
    return repr((
        stats.requests,
        sorted((str(t), n) for t, n in stats.by_target.items()),
        sorted(stats.by_rule.items()),
        stats.reconfigurations_started,
        stats.reconfigurations_skipped,
        stats.reconfigurations_failed,
    ))


class TestDeterministicReplay:
    @pytest.fixture(scope="class")
    def twin_runs(self):
        return _run_scenario(seed=11), _run_scenario(seed=11)

    def test_traces_are_byte_identical(self, twin_runs):
        (first, _), (second, _) = twin_runs
        assert first.platform.tracer.dump() == second.platform.tracer.dump()
        assert len(first.platform.tracer.records) > 0

    def test_metrics_exports_are_byte_identical(self, twin_runs):
        (first, _), (second, _) = twin_runs
        assert to_json(first.metrics) == to_json(second.metrics)
        assert to_csv(first.metrics) == to_csv(second.metrics)

    def test_server_stats_are_identical(self, twin_runs):
        (first, _), (second, _) = twin_runs
        assert _stats_text(first) == _stats_text(second)
        assert first.server.stats.requests > 0

    def test_run_records_are_identical(self, twin_runs):
        (_, records_a), (_, records_b) = twin_runs
        for a, b in zip(records_a, records_b):
            assert (a.app, a.elapsed_s, a.targets, a.calls_completed,
                    a.migrations) == (
                b.app, b.elapsed_s, b.targets, b.calls_completed, b.migrations)

    def test_different_scenario_diverges(self, twin_runs):
        # Not a tautology: a perturbed scenario must change the export
        # (the byte-equality above isn't comparing empty snapshots).
        (first, _), _ = twin_runs
        other, _records = _run_scenario(seed=11, background=31)
        assert to_json(first.metrics) != to_json(other.metrics)
