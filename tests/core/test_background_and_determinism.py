"""Background-load duty cycles, concurrency, and whole-system determinism."""

import pytest

from repro.core import SystemMode, build_system
from repro.experiments import run_application_set
from repro.types import Target


class TestBackgroundDuty:
    def test_full_duty_keeps_all_processes_runnable(self):
        runtime = build_system(["digit.500"])
        load = runtime.launch_background(10, work_s=5.0, duty=1.0)
        runtime.platform.sim.run(until=1.0)
        assert runtime.platform.x86_load == 10
        load.stop()

    def test_partial_duty_lowers_average_load(self):
        runtime = build_system(["digit.500"])
        load = runtime.launch_background(16, work_s=50.0, duty=0.25)
        runtime.platform.sim.run(until=20.0)
        mean_load = runtime.platform.x86.cpu.mean_load()
        assert mean_load < 16 * 0.5  # well below the resident count
        assert mean_load > 1.0
        load.stop()

    def test_partial_duty_dilates_foreground_less(self):
        def foreground_time(duty: float) -> float:
            runtime = build_system(["digit.2000"])
            load = runtime.launch_background(30, work_s=60.0, duty=duty)
            record = runtime.platform.sim.run_until_event(
                runtime.launch(
                    "digit.2000", mode=SystemMode.VANILLA_X86, delay_s=0.5
                )
            )
            load.stop()
            return record.elapsed_s

        assert foreground_time(0.25) < foreground_time(1.0) * 0.6

    def test_duty_validation(self):
        runtime = build_system(["digit.500"])
        with pytest.raises(ValueError):
            runtime.launch_background(1, duty=0.0)
        with pytest.raises(ValueError):
            runtime.launch_background(1, duty=1.5)

    def test_stop_drains_workers(self):
        runtime = build_system(["digit.500"])
        load = runtime.launch_background(5, work_s=2.0, duty=0.5)
        runtime.platform.sim.run(until=1.0)
        load.stop()
        runtime.platform.run()  # drains without hanging
        assert runtime.platform.x86_load == 0


class TestSchedulerConcurrency:
    def test_simultaneous_requests_all_answered_in_order(self):
        runtime = build_system(["digit.2000", "cg.A"])
        replies = [
            runtime.server.request("digit.2000" if i % 2 else "cg.A")
            for i in range(12)
        ]
        targets = [runtime.platform.sim.run_until_event(r) for r in replies]
        assert len(targets) == 12
        assert all(t in (Target.X86, Target.ARM, Target.FPGA) for t in targets)
        assert runtime.server.stats.requests == 12

    def test_simultaneous_requests_overlap_their_round_trips(self):
        # Regression: the accept loop used to serve requests serially,
        # so M simultaneous clients paid M stacked round trips. With a
        # per-request handler they overlap: all M replies arrive after
        # ~one round trip (2 x socket latency), not M of them.
        runtime = build_system(["cg.A"])
        m = 10
        round_trip = 2 * runtime.server.socket_latency_s
        replies = [runtime.server.request("cg.A") for _ in range(m)]
        runtime.platform.sim.run_until_event(replies[-1])
        assert all(r.processed for r in replies)
        assert runtime.platform.now == pytest.approx(round_trip, rel=0.01)
        assert runtime.platform.now < m * round_trip * 0.5


class TestDeterminism:
    def test_identical_seeds_identical_outcomes(self):
        apps = ("digit.2000", "cg.A", "facedet.320", "digit.500")

        def run():
            outcome = run_application_set(
                apps, SystemMode.XAR_TREK, background=40, seed=13
            )
            return [
                (r.app, round(r.start_s, 9), round(r.end_s, 9), tuple(r.targets))
                for r in outcome.records
            ]

        assert run() == run()

    def test_different_seeds_differ(self):
        apps = ("digit.2000", "cg.A")
        first = run_application_set(apps, SystemMode.XAR_TREK, background=40, seed=1)
        second = run_application_set(apps, SystemMode.XAR_TREK, background=40, seed=2)
        # Same shapes, but the simulations are independent objects.
        assert len(first.records) == len(second.records)
