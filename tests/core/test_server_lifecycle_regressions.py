"""Scheduler-lifecycle regression tests.

Each class pins one fixed bug:

* a background reconfiguration retry armed before :meth:`stop` fired
  into the stopped (or stop/start-cycled) daemon — the retry callback
  now carries the same generation guard as the serve loop;
* the per-kernel background-retry budget was only re-armed by a
  *successful programming pass*, so a kernel that exhausted it while
  the device breaker was open stayed background-retry-disabled forever
  — the budget now also resets when the device breaker closes;
* a stop() racing a request already handed to the parked serve loop
  left a stale ``_STOP`` sentinel in the queue, and the *restarted*
  loop exited on it — sentinels are now generation-tagged, and queued
  requests failed by stop() neither leak reply events nor double-count
  :class:`ServerStats` decisions across the cycle.
"""

import pytest

from repro.core import build_system
from repro.core.server import SchedulerUnavailable
from repro.faults.resilience import ResilienceConfig
from repro.types import Target

pytestmark = pytest.mark.metrics


@pytest.fixture
def runtime():
    return build_system(["digit.2000"])


def _run_until_failed(runtime, n):
    """Advance the shared sim until ``n`` programming failures landed
    (stopping *inside* the retry backoff, before the retry fires)."""
    sim = runtime.platform.sim
    while runtime.server.stats.reconfigurations_failed < n:
        sim.step()


class TestRetryGenerationGuard:
    def test_stop_mid_backoff_suppresses_the_armed_retry(self, runtime):
        runtime.platform.fpga.inject_reconfig_failures(1)
        runtime.server.preconfigure("digit.2000")
        _run_until_failed(runtime, 1)  # retry armed, backoff still pending
        started = runtime.server.stats.reconfigurations_started
        runtime.server.stop()
        runtime.platform.sim.run()  # the backoff elapses into a stopped daemon
        assert runtime.server.stats.reconfigurations_started == started
        assert not runtime.xrt.reconfiguring

    def test_stop_start_cycle_also_suppresses_the_stale_retry(self, runtime):
        runtime.platform.fpga.inject_reconfig_failures(1)
        runtime.server.preconfigure("digit.2000")
        _run_until_failed(runtime, 1)
        started = runtime.server.stats.reconfigurations_started
        runtime.server.stop()
        runtime.server.start()  # new generation: the armed retry is stale
        runtime.platform.sim.run()
        assert runtime.server.stats.reconfigurations_started == started
        # The restarted daemon reconfigures normally on the next call.
        kernel = runtime.result.thresholds.entry("digit.2000").kernel_name
        runtime.server.preconfigure("digit.2000")
        runtime.platform.sim.run()
        assert runtime.xrt.has_kernel(kernel)


class TestRetryBudgetRecovery:
    def test_successful_programming_clears_the_budget(self, runtime):
        runtime.platform.fpga.inject_reconfig_failures(1)
        runtime.server.preconfigure("digit.2000")
        runtime.platform.sim.run()
        # One failure armed one retry; the retry's success wiped every
        # kernel's consecutive-failure streak.
        assert runtime.server.stats.reconfigurations_failed == 1
        assert runtime.server._reconfig_retries == {}

    def test_breaker_close_rearms_background_retries(self):
        config = ResilienceConfig(
            breaker_failure_threshold=3,
            breaker_cooldown_s=1.0,
            reconfig_retry_limit=2,
            reconfig_retry_backoff_s=0.25,
        )
        runtime = build_system(["digit.2000"], resilience=config)
        sim = runtime.platform.sim
        kernel = runtime.result.thresholds.entry("digit.2000").kernel_name
        runtime.platform.fpga.inject_reconfig_failures(3)
        runtime.server.preconfigure("digit.2000")
        sim.run()
        assert runtime.platform.fpga.pending_reconfig_failures == 0
        # Initial attempt + 2 background retries all failed: the budget
        # is exhausted and the third failure tripped the device breaker.
        assert runtime.server.stats.reconfigurations_failed == 3
        assert runtime.server._reconfig_retries[kernel] == 2
        assert runtime.resilience.breaker.state_of("device:fpga") == "open"
        # The card heals: cooldown elapses, the half-open trial
        # succeeds (an external health probe / crash recovery — not a
        # programming pass, so the success branch in the server never
        # runs). The budget must re-arm through the breaker listener.
        sim.run(until=sim.now + config.breaker_cooldown_s + 0.01)
        assert runtime.resilience.allow_device()  # open -> half-open
        runtime.resilience.record_device_success()
        assert runtime.resilience.breaker.state_of("device:fpga") == "closed"
        assert runtime.server._reconfig_retries == {}
        # And background retries actually work again end to end.
        runtime.platform.fpga.inject_reconfig_failures(1)
        runtime.server.preconfigure("digit.2000")
        sim.run()
        assert runtime.xrt.has_kernel(kernel)


class TestStopStartRequestAccounting:
    def test_stop_fails_queued_requests_without_decision_counts(self, runtime):
        runtime.server.start()
        replies = [runtime.server.request("digit.2000") for _ in range(3)]
        runtime.server.stop()
        runtime.platform.sim.run()
        for reply in replies:
            assert reply.triggered and not reply.ok
            assert isinstance(reply.value, SchedulerUnavailable)
        # Failed requests are not decisions: every counter stays zero.
        assert runtime.server.stats.requests == 0
        assert runtime.server.stats.by_target == {}
        assert runtime.server.stats.by_rule == {}

    def test_restart_serves_fresh_requests_exactly_once(self, runtime):
        sim = runtime.platform.sim
        runtime.server.start()
        dead = runtime.server.request("digit.2000")
        runtime.server.stop()
        runtime.server.start()
        reply = runtime.server.request("digit.2000")
        assert sim.run_until_event(reply) in set(Target)
        sim.run()
        assert not dead.ok
        assert runtime.server.stats.requests == 1
        assert sum(runtime.server.stats.by_target.values()) == 1
        assert not runtime.server._requests.items  # nothing leaked

    def test_restart_survives_a_stop_racing_an_in_flight_request(self, runtime):
        # The nasty interleaving: the serve loop is parked on get(), a
        # request is handed straight to the parked getter, and the
        # server stop/start-cycles before the loop resumes. The stale
        # loop re-queues the request behind the stop sentinel; the
        # restarted loop must discard that stale sentinel and serve the
        # request (once), not exit on it and leave a dead daemon.
        sim = runtime.platform.sim
        runtime.server.start()
        sim.run()  # park the serve loop on get()
        inflight = runtime.server.request("digit.2000")
        runtime.server.stop()
        runtime.server.start()
        sim.run()
        assert inflight.ok and inflight.value in set(Target)
        assert runtime.server.stats.requests == 1
        # The restarted daemon is actually alive, not a zombie.
        reply = runtime.server.request("digit.2000")
        assert sim.run_until_event(reply) in set(Target)
        assert runtime.server.stats.requests == 2
        assert sum(runtime.server.stats.by_target.values()) == 2
