"""Exhaustive tests for Algorithm 2 (the scheduling policy)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import decide
from repro.thresholds import ThresholdEntry
from repro.types import Target


def entry(fpga=16.0, arm=31.0, kernel="KNL"):
    return ThresholdEntry(
        application="app", kernel_name=kernel, fpga_threshold=fpga, arm_threshold=arm
    )


class TestAlgorithm2Cases:
    def test_lines_9_13_hot_for_fpga_kernel_absent(self):
        # load in (fpga_thr, arm_thr]: stay on x86 and reconfigure.
        decision = decide(20, entry(fpga=16, arm=31), kernel_available=False)
        assert decision.target is Target.X86
        assert decision.reconfigure
        assert decision.rule == "x86+reconfig"

    def test_lines_14_18_hot_for_both_kernel_absent(self):
        decision = decide(40, entry(fpga=16, arm=31), kernel_available=False)
        assert decision.target is Target.ARM
        assert decision.reconfigure
        assert decision.rule == "arm+reconfig"

    def test_lines_19_21_cool_host(self):
        decision = decide(5, entry(fpga=16, arm=31), kernel_available=True)
        assert decision.target is Target.X86
        assert not decision.reconfigure

    def test_lines_22_24_hot_for_arm_only(self):
        decision = decide(25, entry(fpga=30, arm=20), kernel_available=False)
        assert decision.target is Target.ARM
        assert not decision.reconfigure

    def test_lines_25_31_fpga_resident_smaller_threshold_wins(self):
        fpga_pick = decide(40, entry(fpga=16, arm=31), kernel_available=True)
        assert fpga_pick.target is Target.FPGA
        arm_pick = decide(40, entry(fpga=31, arm=25), kernel_available=True)
        assert arm_pick.target is Target.ARM
        assert arm_pick.rule == "arm-over-fpga"

    def test_boundary_loads_do_not_migrate(self):
        # "<= threshold" keeps the function local at exactly the threshold.
        decision = decide(16, entry(fpga=16, arm=31), kernel_available=True)
        assert decision.target is Target.X86

    def test_zero_threshold_app_migrates_immediately(self):
        # Digit2000-style: FPGA_THR = 0 -> any running process justifies it.
        decision = decide(1, entry(fpga=0, arm=17), kernel_available=True)
        assert decision.target is Target.FPGA

    def test_no_hardware_kernel_never_reconfigures(self):
        decision = decide(50, entry(fpga=16, arm=31, kernel=""), kernel_available=False)
        assert decision.target is Target.ARM
        assert not decision.reconfigure


class TestPolicyProperties:
    @given(
        load=st.integers(min_value=0, max_value=300),
        fpga=st.integers(min_value=0, max_value=128),
        arm=st.integers(min_value=0, max_value=128),
        available=st.booleans(),
    )
    @settings(max_examples=300, deadline=None)
    def test_total_function_exactly_one_rule_fires(self, load, fpga, arm, available):
        decision = decide(load, entry(fpga=fpga, arm=arm), available)
        assert decision.target in (Target.X86, Target.ARM, Target.FPGA)
        # Never picks the FPGA when the kernel is absent.
        if not available:
            assert decision.target is not Target.FPGA
        # Never migrates anywhere when the host is cool on both axes.
        if load <= min(fpga, arm):
            assert decision.target is Target.X86
            assert not decision.reconfigure
        # Reconfiguration is only requested when the FPGA would be
        # attractive but the kernel is missing.
        if decision.reconfigure:
            assert not available
            assert load > fpga

    @given(
        load=st.integers(min_value=0, max_value=300),
        fpga=st.integers(min_value=0, max_value=128),
        arm=st.integers(min_value=0, max_value=128),
    )
    @settings(max_examples=200, deadline=None)
    def test_fpga_only_chosen_when_its_threshold_is_smaller(self, load, fpga, arm):
        decision = decide(load, entry(fpga=fpga, arm=arm), kernel_available=True)
        if decision.target is Target.FPGA:
            assert fpga < arm and load > fpga

    def test_thresholds_must_be_non_negative(self):
        from repro.thresholds import ThresholdError

        with pytest.raises(ThresholdError):
            entry(fpga=-1)
