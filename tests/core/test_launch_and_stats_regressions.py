"""Regression tests: delayed-launch failure propagation and ServerStats wiring."""

import pytest

from repro.core import SystemMode, build_system
from repro.core.application import ApplicationRun
from repro.core.server import ServerStats
from repro.metrics import MetricsRegistry


def _break_x86_run(monkeypatch, client_path):
    """Make the x86-hosted run raise mid-flight on the selected client
    path (chain or generator); both must deliver the failure through
    the launch event, not as a mid-step crash."""
    monkeypatch.setenv("REPRO_CLIENT_PATH", client_path)

    def boom(self, *args):
        raise RuntimeError("injected run failure")

    if client_path == "generator":
        monkeypatch.setattr(ApplicationRun, "_run_with_x86_host", boom)
    else:
        monkeypatch.setattr(ApplicationRun, "_next_call", boom)


@pytest.mark.parametrize("client_path", ["chain", "generator"])
class TestDelayedLaunchFailurePropagation:
    def test_failure_propagates_through_done_event(self, monkeypatch, client_path):
        # Regression: launch(..., delay_s>0) wraps the inner run.start()
        # event but never defused it, so a failing run re-raised out of
        # the inner event's _process and crashed the whole simulation
        # instead of reaching the caller through the returned event.
        _break_x86_run(monkeypatch, client_path)
        runtime = build_system(["digit.500"])
        failed = runtime.launch(
            "digit.500", mode=SystemMode.VANILLA_X86, delay_s=0.25
        )
        with pytest.raises(RuntimeError, match="injected run failure"):
            runtime.platform.sim.run_until_event(failed)
        # The failure arrived *via the returned event*, not as a crash
        # mid-step: the event carries the outcome and the simulation is
        # still usable afterwards.
        assert failed.processed and not failed.ok

    def test_sibling_run_survives_a_delayed_failure(self, monkeypatch, client_path):
        _break_x86_run(monkeypatch, client_path)
        runtime = build_system(["digit.500"])
        failed = runtime.launch(
            "digit.500", mode=SystemMode.VANILLA_X86, delay_s=0.25
        )
        # The ARM path does not go through the patched method; it must
        # complete even though a concurrent delayed launch fails.
        ok = runtime.launch("digit.500", mode=SystemMode.VANILLA_ARM, delay_s=0.1)
        with pytest.raises(RuntimeError, match="injected run failure"):
            runtime.platform.sim.run_until_event(failed)
        record = runtime.platform.sim.run_until_event(ok)
        assert record.finished
        assert record.app == "digit.500"


class TestServerStatsRegistry:
    def test_detached_registry_is_rejected(self):
        # Regression: ServerStats() used to silently build its own
        # MetricsRegistry, so every counter vanished from exports.
        with pytest.raises(TypeError):
            ServerStats()
        with pytest.raises(TypeError, match="explicit MetricsRegistry"):
            ServerStats(None)

    def test_stats_and_registry_share_counters(self):
        metrics = MetricsRegistry()
        stats = ServerStats(metrics)
        stats._requests.inc()
        assert stats.requests == 1
        assert metrics.get("scheduler_requests_total").value == 1

    def test_scheduler_counts_reach_the_platform_registry(self):
        runtime = build_system(["cg.A"])
        reply = runtime.server.request("cg.A")
        runtime.platform.sim.run_until_event(reply)
        counter = runtime.metrics.get("scheduler_requests_total")
        assert counter is not None
        assert counter.value == 1
        assert runtime.server.stats.requests == 1
