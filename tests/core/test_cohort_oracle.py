"""The cohort differential oracle: vectorized == per-client, bit for bit.

:mod:`repro.core.cohort` carries two implementations of the same client
model — one generator process per client (the canonical reference) and
a numpy-vectorized fast path that advances a whole cohort per simulator
event. Their equivalence is a *contract*, not a one-off check: every
property here runs both paths over hypothesis-generated populations
(workload mixes, arrival laws, threshold orderings, fault plans,
cohort split boundaries) and demands identical per-client completion
times, decision targets/rules, serving targets, metrics snapshots, and
checksum lines. "Identical" means byte-identical float64 arrays — the
two paths are required to perform the same IEEE additions in the same
order, so ``tobytes()`` equality is the bar, not ``allclose``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_system
from repro.core.cohort import (
    REFERENCE_ENV,
    RULES,
    ArrivalLaw,
    CohortError,
    CohortPopulation,
    CohortSpec,
    sample_arrivals,
)
from repro.core.policy import decide
from repro.core.server import ServerStats
from repro.faults import FaultPlan, resolve_cohort_faults
from repro.faults.plan import FaultSpec
from repro.metrics import MetricsRegistry
from repro.sim import Simulator
from repro.thresholds import ThresholdEntry, ThresholdTable
from repro.types import Target
from repro.workloads import profile_for

pytestmark = pytest.mark.metrics

#: fpga+arm capable, fpga+arm capable, fpga+arm capable, neither.
_APPS = ("cg.A", "digit.500", "facedet.320", "mg.B")

# Integer-valued thresholds mixed with arbitrary floats: loads are
# integers, so integer thresholds land exactly on the > boundary.
_thresholds = st.one_of(
    st.integers(min_value=0, max_value=50).map(float),
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
)

_times = st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False)


@st.composite
def cohort_specs(draw, app=None, max_clients=8):
    app = app or draw(st.sampled_from(_APPS))
    clients = draw(st.integers(min_value=1, max_value=max_clients))
    calls = draw(st.integers(min_value=1, max_value=3))
    kind = draw(st.sampled_from(("uniform", "staggered", "poisson", "explicit")))
    if kind == "explicit":
        law = ArrivalLaw(
            "explicit",
            times=tuple(
                draw(st.lists(_times, min_size=clients, max_size=clients))
            ),
        )
    else:
        law = ArrivalLaw(
            kind,
            start=draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
            span=draw(st.floats(min_value=0.1, max_value=20.0, allow_nan=False)),
        )
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return CohortSpec(app, clients, calls=calls, arrival=law, seed=seed)


@st.composite
def populations(draw, max_cohorts=4):
    specs = tuple(
        draw(st.lists(cohort_specs(), min_size=1, max_size=max_cohorts))
    )
    background = draw(st.integers(min_value=0, max_value=40))
    table = ThresholdTable()
    for app in sorted({spec.app for spec in specs}):
        kernel = ""
        if profile_for(app).fpga_capable:
            # An empty kernel name exercises the unavailable branch.
            kernel = draw(st.sampled_from(("", f"k_{app}")))
        table.add(
            ThresholdEntry(
                application=app,
                kernel_name=kernel,
                fpga_threshold=draw(_thresholds),
                arm_threshold=draw(_thresholds),
            )
        )
    return specs, background, table


def _table_for(apps, fpga_thr=5.0, arm_thr=15.0):
    table = ThresholdTable()
    for app in sorted(set(apps)):
        capable = profile_for(app).fpga_capable
        table.add(
            ThresholdEntry(
                application=app,
                kernel_name=f"k_{app}" if capable else "",
                fpga_threshold=fpga_thr,
                arm_threshold=arm_thr,
            )
        )
    return table


def _run_both(specs, background, table, fault_targets=None):
    runs, snaps = {}, {}
    for vectorized in (True, False):
        population = CohortPopulation(
            specs,
            background=background,
            thresholds=table,
            fault_targets=fault_targets,
        )
        runs[vectorized] = population.run(vectorized=vectorized)
        snaps[vectorized] = population.metrics.snapshot()
    return runs[True], runs[False], snaps[True], snaps[False]


def _assert_equivalent(vec, ref, vec_snap, ref_snap):
    assert vec.path == "vectorized"
    assert ref.path == "reference"
    for a, b in zip(vec.cohorts, ref.cohorts):
        # Byte equality, not closeness: the contract is bit-identity.
        assert a.completions.tobytes() == b.completions.tobytes()
        assert np.array_equal(a.targets, b.targets)
        assert np.array_equal(a.served, b.served)
        assert np.array_equal(a.rules, b.rules)
        assert a.fault_fallbacks == b.fault_fallbacks
    assert vec.lines() == ref.lines()
    assert vec.decisions_by_target == ref.decisions_by_target
    assert vec.decisions_by_rule == ref.decisions_by_rule
    assert vec.served_by_target() == ref.served_by_target()
    assert vec.fault_fallbacks == ref.fault_fallbacks
    assert vec.logical_events == ref.logical_events
    assert vec.sim_seconds == ref.sim_seconds
    # The completion-time multiset across the whole population.
    assert np.sort(vec.completions()).tobytes() == np.sort(ref.completions()).tobytes()
    # The vectorization must never cost *more* simulator events.
    assert vec.sim_events <= ref.sim_events
    # The metrics snapshots agree on every series except the run
    # counter itself, whose path label is the one intended difference.
    def families(snap):
        return [
            family
            for family in snap["metrics"]
            if family["name"] != "cohort_runs_total"
        ]

    assert families(vec_snap) == families(ref_snap)


class TestDifferentialOracle:
    @settings(deadline=None, max_examples=50)
    @given(population=populations())
    def test_paths_bit_identical(self, population):
        specs, background, table = population
        _assert_equivalent(*_run_both(specs, background, table))

    @settings(deadline=None, max_examples=25)
    @given(
        population=populations(max_cohorts=2),
        raw_faults=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=2),
            ),
            max_size=6,
        ),
    )
    def test_fault_targets_preserve_equivalence(self, population, raw_faults):
        specs, background, table = population
        vec, ref, vec_snap, ref_snap = _run_both(
            specs, background, table, fault_targets=raw_faults
        )
        _assert_equivalent(vec, ref, vec_snap, ref_snap)
        # Every fallback corresponds to a call decided-to-FPGA but
        # served on x86; fault triples aimed elsewhere are no-ops.
        for run in (vec, ref):
            rerouted = sum(
                int(
                    np.count_nonzero(
                        (r.targets == int(Target.FPGA))
                        & (r.served == int(Target.X86))
                    )
                )
                for r in run.cohorts
            )
            assert run.fault_fallbacks == rerouted

    @settings(deadline=None, max_examples=40)
    @given(
        app=st.sampled_from(_APPS),
        times=st.lists(_times, min_size=2, max_size=10),
        data=st.data(),
    )
    def test_split_cohort_preserves_every_client(self, app, times, data):
        # Splitting one explicit cohort at any boundary leaves the
        # global arrival multiset — and therefore the open-loop load
        # function and every per-client result — unchanged.
        split = data.draw(st.integers(min_value=1, max_value=len(times) - 1))
        table = _table_for(
            [app],
            fpga_thr=data.draw(_thresholds),
            arm_thr=data.draw(_thresholds),
        )
        background = data.draw(st.integers(min_value=0, max_value=30))
        calls = data.draw(st.integers(min_value=1, max_value=3))

        def spec(ts):
            return CohortSpec(
                app, len(ts), calls=calls,
                arrival=ArrivalLaw("explicit", times=tuple(ts)),
            )

        merged = CohortPopulation(
            [spec(times)], background=background, thresholds=table
        ).run(vectorized=True)
        parts = CohortPopulation(
            [spec(times[:split]), spec(times[split:])],
            background=background,
            thresholds=table,
        ).run(vectorized=True)
        whole = merged.cohorts[0]
        left, right = parts.cohorts
        assert (
            np.concatenate([left.completions, right.completions]).tobytes()
            == whole.completions.tobytes()
        )
        assert np.array_equal(
            np.vstack([left.targets, right.targets]), whole.targets
        )
        assert np.array_equal(
            np.vstack([left.served, right.served]), whole.served
        )
        assert np.array_equal(np.vstack([left.rules, right.rules]), whole.rules)
        assert merged.decisions_by_rule == parts.decisions_by_rule


class TestDecideMirror:
    @settings(deadline=None, max_examples=100)
    @given(
        fpga_thr=_thresholds,
        arm_thr=_thresholds,
        available=st.booleans(),
        loads=st.lists(
            st.integers(min_value=0, max_value=60), min_size=1, max_size=30
        ),
    )
    def test_vectorized_decide_matches_scalar(
        self, fpga_thr, arm_thr, available, loads
    ):
        # The array mirror of Algorithm 2 against the scalar original,
        # over every threshold ordering (incl. equality) and both
        # kernel-availability states.
        entry = ThresholdEntry("cg.A", "k_cg.A", fpga_thr, arm_thr)
        table = ThresholdTable([entry])
        population = CohortPopulation(
            [CohortSpec("cg.A", 1)],
            thresholds=table,
            resident_kernels=("k_cg.A",) if available else (),
        )
        cohort = population._cohorts[0]
        assert cohort.available is available
        targets, rules = population._decide_array(
            cohort, np.asarray(loads, dtype=np.int64)
        )
        for load, target, rule in zip(loads, targets, rules):
            decision = decide(load, entry, available)
            assert int(decision.target) == target
            assert RULES[rule] == decision.rule


class TestEventAccounting:
    def test_vectorized_is_o_of_cohorts_not_clients(self):
        specs = [
            CohortSpec(
                "digit.500", 200, calls=4,
                arrival=ArrivalLaw("staggered", span=10.0),
            ),
            CohortSpec(
                "cg.A", 200, calls=4,
                arrival=ArrivalLaw("uniform", span=10.0), seed=7,
            ),
        ]
        table = _table_for([s.app for s in specs])
        vec, ref, _, _ = _run_both(specs, 10, table)
        assert vec.logical_events == ref.logical_events == 400 * (4 + 3)
        # One event per (cohort, call) plus one completion flush per
        # cohort — versus hundreds for the per-client processes.
        assert vec.sim_events <= 2 * (4 + 1) + 2
        assert ref.sim_events >= 400
        assert vec.clients == ref.clients == 400

    def test_load_model_scalar_and_array_agree(self):
        specs = [
            CohortSpec(
                "facedet.320", 50, calls=2,
                arrival=ArrivalLaw("poisson", span=5.0), seed=3,
            )
        ]
        population = CohortPopulation(
            specs, background=7, thresholds=_table_for(["facedet.320"])
        )
        times = np.linspace(0.0, 30.0, 200)
        array_loads = population.loads_at(times)
        assert array_loads.tolist() == [population.load_at(float(t)) for t in times]
        # Before anyone arrives the load is background + the requester.
        assert population.load_at(-1.0) == 8


class TestValidation:
    def test_unknown_arrival_kind(self):
        with pytest.raises(CohortError, match="unknown arrival law"):
            ArrivalLaw("burst")

    def test_negative_start(self):
        with pytest.raises(CohortError, match="start must be >= 0"):
            ArrivalLaw("uniform", start=-0.5)

    def test_non_positive_span(self):
        with pytest.raises(CohortError, match="span must be positive"):
            ArrivalLaw("poisson", span=0.0)

    def test_explicit_needs_times(self):
        with pytest.raises(CohortError, match="non-empty"):
            ArrivalLaw("explicit")
        with pytest.raises(CohortError, match=">= 0"):
            ArrivalLaw("explicit", times=(1.0, -2.0))

    def test_explicit_length_mismatch(self):
        spec = CohortSpec(
            "cg.A", 3, arrival=ArrivalLaw("explicit", times=(0.0, 1.0))
        )
        with pytest.raises(CohortError, match="2 times for 3 clients"):
            sample_arrivals(spec)

    def test_spec_bounds(self):
        with pytest.raises(CohortError, match="clients must be >= 1"):
            CohortSpec("cg.A", 0)
        with pytest.raises(CohortError, match="calls must be >= 1"):
            CohortSpec("cg.A", 1, calls=0)

    def test_population_needs_specs_and_thresholds(self):
        with pytest.raises(CohortError, match="at least one cohort"):
            CohortPopulation([], thresholds=_table_for(["cg.A"]))
        with pytest.raises(CohortError, match="ThresholdTable"):
            CohortPopulation([CohortSpec("cg.A", 1)])

    def test_run_must_start_at_time_zero(self):
        population = CohortPopulation(
            [CohortSpec("cg.A", 1)], thresholds=_table_for(["cg.A"])
        )
        sim = Simulator()
        sim.call_at(1.0, lambda: None)
        sim.run()
        assert sim.now == 1.0
        with pytest.raises(CohortError, match="time 0.0"):
            population.run(sim=sim)

    def test_reference_env_forces_per_client_path(self, monkeypatch):
        specs = [CohortSpec("digit.500", 3, calls=1)]
        table = _table_for(["digit.500"])
        monkeypatch.setenv(REFERENCE_ENV, "1")
        assert CohortPopulation(specs, thresholds=table).run().path == "reference"
        monkeypatch.delenv(REFERENCE_ENV)
        assert CohortPopulation(specs, thresholds=table).run().path == "vectorized"


class TestMetricsRecording:
    def test_bulk_record_matches_per_decision_counting(self):
        # record_decisions (the cohort bulk path) must leave the
        # registry exactly as N per-request _count_decision calls
        # would — same series, same label children, same totals.
        entry = ThresholdEntry("cg.A", "k", 5.0, 15.0)
        decisions = [
            decide(load, entry, available)
            for load in (0, 3, 6, 10, 16, 40)
            for available in (True, False)
        ]
        registry_a = MetricsRegistry()
        stats_a = ServerStats(registry_a)
        for decision in decisions:
            stats_a._count_decision(decision)
        by_target: dict = {}
        by_rule: dict = {}
        for decision in decisions:
            by_target[decision.target] = by_target.get(decision.target, 0) + 1
            by_rule[decision.rule] = by_rule.get(decision.rule, 0) + 1
        registry_b = MetricsRegistry()
        ServerStats(registry_b).record_decisions(by_target, by_rule)
        assert registry_a.snapshot() == registry_b.snapshot()

    def test_zero_counts_add_no_series(self):
        registry = MetricsRegistry()
        ServerStats(registry).record_decisions({Target.X86: 0}, {"x86": 0})
        assert registry.get("scheduler_decisions_total").as_dict() == {}
        assert registry.get("scheduler_requests_total").value == 0

    def test_population_counters_populated(self):
        specs = [
            CohortSpec("digit.500", 4, calls=2),
            CohortSpec("mg.B", 2, calls=1),
        ]
        population = CohortPopulation(specs, thresholds=_table_for(_APPS))
        run = population.run()
        registry = population.metrics
        assert registry.get("cohort_clients_total").value == 6
        served_total = sum(
            count for _, count in registry.get("cohort_calls_total").as_dict().items()
        )
        assert served_total == 4 * 2 + 2 * 1
        assert registry.get("cohort_runs_total").as_dict() == {("vectorized",): 1}
        assert (
            registry.get("scheduler_requests_total").value
            == sum(run.decisions_by_target.values())
        )


class TestFaultResolution:
    def _specs(self):
        return [
            CohortSpec(
                "digit.500", 4, calls=2,
                arrival=ArrivalLaw("explicit", times=(0.0, 2.0, 4.0, 6.0)),
            ),
            CohortSpec(
                "mg.B", 2, calls=2,
                arrival=ArrivalLaw("explicit", times=(1.0, 3.0)),
            ),
        ]

    def test_kernel_fault_strikes_first_arrivals_at_or_after(self):
        specs = self._specs()
        table = _table_for([s.app for s in specs])
        plan = FaultPlan(
            specs=(FaultSpec(at_s=2.0, kind="kernel_fault",
                             target="k_digit.500", count=2),)
        )
        targets = resolve_cohort_faults(plan, specs, table)
        # Clients 1 and 2 (arrivals 2.0, 4.0) on their first call; the
        # kernel-less mg.B cohort is untouchable by a kernel fault.
        assert targets == frozenset({(0, 1, 0), (0, 2, 0)})

    def test_device_crash_strikes_window_on_every_call(self):
        specs = self._specs()
        table = _table_for([s.app for s in specs])
        plan = FaultPlan(
            specs=(FaultSpec(at_s=1.5, kind="device_crash", duration_s=3.0),)
        )
        targets = resolve_cohort_faults(plan, specs, table)
        assert targets == frozenset({(0, 1, 0), (0, 1, 1), (0, 2, 0), (0, 2, 1)})

    def test_unmodeled_kinds_resolve_to_nothing(self):
        specs = self._specs()
        table = _table_for([s.app for s in specs])
        plan = FaultPlan(
            specs=(
                FaultSpec(at_s=0.0, kind="server_outage", duration_s=5.0),
                FaultSpec(at_s=0.0, kind="link_degrade",
                          target="ethernet", factor=0.5, duration_s=5.0),
            )
        )
        assert resolve_cohort_faults(plan, specs, table) == frozenset()

    def test_resolution_is_deterministic(self):
        specs = [
            CohortSpec(
                "facedet.320", 20, calls=2,
                arrival=ArrivalLaw("poisson", span=10.0), seed=11,
            )
        ]
        table = _table_for(["facedet.320"])
        plan = FaultPlan(
            specs=(FaultSpec(at_s=1.0, kind="kernel_fault",
                             target="k_facedet.320", count=5),)
        )
        first = resolve_cohort_faults(plan, specs, table)
        second = resolve_cohort_faults(plan, specs, table)
        assert first == second
        assert len(first) == 5


class TestRuntimeIntegration:
    def test_run_cohorts_lands_in_server_metrics(self):
        runtime = build_system(["digit.500", "cg.A"], seed=0)
        before = runtime.server.stats.requests
        result = runtime.run_cohorts(
            [
                CohortSpec("digit.500", 10, calls=2,
                           arrival=ArrivalLaw("staggered", span=5.0)),
                CohortSpec("cg.A", 10, calls=2,
                           arrival=ArrivalLaw("uniform", span=5.0), seed=1),
            ],
            background=20,
        )
        assert result.clients == 20
        assert result.path == "vectorized"
        decided = sum(result.decisions_by_target.values())
        assert decided == 20 * 2
        assert runtime.server.stats.requests == before + decided

    def test_run_cohorts_applies_fault_plan_identically_on_both_paths(self):
        specs = [
            CohortSpec("digit.500", 12, calls=2,
                       arrival=ArrivalLaw("staggered", span=6.0))
        ]
        runtime = build_system(["digit.500"], seed=0)
        kernel = runtime.server.thresholds.entry("digit.500").kernel_name
        plan = FaultPlan(
            specs=(FaultSpec(at_s=0.0, kind="kernel_fault",
                             target=kernel, count=3),)
        )
        vec = runtime.run_cohorts(specs, fault_plan=plan, vectorized=True)
        ref = build_system(["digit.500"], seed=0).run_cohorts(
            specs, fault_plan=plan, vectorized=False
        )
        assert vec.lines() == ref.lines()
        assert vec.fault_fallbacks == ref.fault_fallbacks
