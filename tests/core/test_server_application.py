"""Integration tests for the scheduler server, application runs, and runtime."""

import pytest

from repro.core import SystemMode, build_system
from repro.types import Target
from repro.workloads import PAPER_TABLE1_MS, profile_for


@pytest.fixture(scope="module")
def digit_system():
    return build_system(["digit.2000"])


class TestServer:
    def test_request_before_start_rejected(self):
        runtime = build_system(["digit.500"])
        runtime.server._running = False
        with pytest.raises(RuntimeError):
            runtime.server.request("digit.500")

    def test_decision_counts_requester_in_load(self):
        # An idle host plus the requester itself: load 1. digit.2000 has
        # FPGA threshold 0, so with a resident kernel it picks the FPGA.
        runtime = build_system(["digit.2000"])
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        reply = runtime.server.request("digit.2000")
        target = runtime.platform.sim.run_until_event(reply)
        assert target is Target.FPGA

    def test_cool_host_stays_on_x86(self):
        runtime = build_system(["cg.A"])  # thresholds ~30/24
        reply = runtime.server.request("cg.A")
        target = runtime.platform.sim.run_until_event(reply)
        assert target is Target.X86
        assert runtime.server.stats.requests == 1

    def test_request_consumes_socket_latency(self):
        runtime = build_system(["cg.A"])
        reply = runtime.server.request("cg.A")
        runtime.platform.sim.run_until_event(reply)
        assert runtime.platform.now >= 2 * runtime.server.socket_latency_s

    def test_preconfigure_starts_reconfiguration(self):
        runtime = build_system(["digit.2000"])
        runtime.server.preconfigure("digit.2000")
        assert runtime.xrt.reconfiguring
        assert runtime.server.stats.reconfigurations_started == 1
        # Idempotent while in flight.
        runtime.server.preconfigure("digit.2000")
        assert runtime.server.stats.reconfigurations_started == 1

    def test_hot_host_without_kernel_migrates_to_arm_and_reconfigures(self):
        runtime = build_system(["digit.2000"])
        load = runtime.launch_background(40)
        runtime.platform.sim.run(until=0.01)
        reply = runtime.server.request("digit.2000")
        target = runtime.platform.sim.run_until_event(reply)
        assert target is Target.ARM  # kernel not yet resident
        assert runtime.server.stats.by_rule.get("arm+reconfig", 0) == 1
        assert runtime.xrt.reconfiguring
        load.stop()


class TestApplicationModes:
    def test_vanilla_x86_never_leaves_host(self):
        runtime = build_system(["digit.2000"])
        record = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.VANILLA_X86)
        )
        assert record.targets == [Target.X86]
        assert record.migrations == 0
        assert record.elapsed_s * 1e3 == pytest.approx(
            PAPER_TABLE1_MS["digit.2000"][0], rel=0.01
        )

    def test_vanilla_arm_runs_entirely_on_arm(self):
        runtime = build_system(["digit.2000"])
        record = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.VANILLA_ARM)
        )
        assert record.targets == [Target.ARM]
        profile = profile_for("digit.2000")
        assert record.elapsed_s == pytest.approx(profile.vanilla_arm_s, rel=0.01)
        assert runtime.platform.x86.cpu.utilization() == 0.0

    def test_always_fpga_pays_configuration_once(self):
        runtime = build_system(["digit.2000"])
        first = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.ALWAYS_FPGA)
        )
        second = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.ALWAYS_FPGA)
        )
        profile = profile_for("digit.2000")
        # First run pays the synchronous XCLBIN load; second does not.
        assert first.elapsed_s > second.elapsed_s
        assert second.elapsed_s == pytest.approx(profile.x86_fpga_s, rel=0.02)

    def test_xar_trek_low_load_behaves_like_x86(self):
        runtime = build_system(["digit.2000"])
        record = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        # digit.2000 FPGA_THR=0: one process already exceeds it but the
        # kernel is still loading at decision time -> x86 or ARM by
        # Algorithm 2 lines 9-18; with ARM_THR=16 > 1 it stays on x86.
        assert record.targets[0] in (Target.X86, Target.FPGA)

    def test_functional_mode_verifies(self):
        runtime = build_system(["digit.500"])
        record = runtime.platform.sim.run_until_event(
            runtime.launch("digit.500", mode=SystemMode.VANILLA_X86, functional=True)
        )
        assert record.verified is True

    def test_deadline_caps_call_count(self):
        runtime = build_system(["facedet.320"])
        record = runtime.platform.sim.run_until_event(
            runtime.launch(
                "facedet.320",
                mode=SystemMode.VANILLA_X86,
                calls=10_000,
                deadline_s=10.0,
            )
        )
        assert 0 < record.calls_completed < 10_000
        assert record.elapsed_s <= 10.5

    def test_records_collected_by_runtime(self):
        runtime = build_system(["digit.500"])
        runtime.platform.sim.run_until_event(
            runtime.launch("digit.500", mode=SystemMode.VANILLA_X86)
        )
        assert len(runtime.records) == 1
        assert runtime.records[0].finished


class TestMigratedExecution:
    def test_forced_arm_migration_round_trips(self):
        runtime = build_system(["digit.500"])
        entry = runtime.server.thresholds.entry("digit.500")
        entry.arm_threshold = 0.0
        entry.fpga_threshold = float("inf")
        record = runtime.platform.sim.run_until_event(
            runtime.launch("digit.500", mode=SystemMode.XAR_TREK)
        )
        assert record.targets == [Target.ARM]
        assert record.migrations == 2
        assert record.elapsed_s * 1e3 == pytest.approx(
            PAPER_TABLE1_MS["digit.500"][2], rel=0.02
        )

    def test_arm_migration_moves_dsm_pages(self):
        runtime = build_system(["digit.500"])
        entry = runtime.server.thresholds.entry("digit.500")
        entry.arm_threshold = 0.0
        entry.fpga_threshold = float("inf")
        runtime.platform.sim.run_until_event(
            runtime.launch("digit.500", mode=SystemMode.XAR_TREK)
        )
        assert runtime.dsm.stats.page_transfers > 0

    def test_threshold_update_runs_at_termination(self):
        runtime = build_system(["cg.A"])
        load = runtime.launch_background(40)
        record = runtime.platform.sim.run_until_event(
            runtime.launch("cg.A", mode=SystemMode.XAR_TREK, delay_s=0.01)
        )
        load.stop()
        entry = runtime.server.thresholds.entry("cg.A")
        # Whatever target served it, its time was recorded.
        assert entry.observed(record.dominant_target()) == pytest.approx(
            record.elapsed_s
        )


class TestBackgroundLoad:
    def test_background_occupies_x86(self):
        runtime = build_system(["digit.500"])
        load = runtime.launch_background(10, work_s=1.0)
        runtime.platform.sim.run(until=0.5)
        assert runtime.platform.x86_load == 10
        load.stop()
        runtime.platform.run()
        assert runtime.platform.x86_load == 0
        assert load.completed_rounds >= 10


class TestRunRecord:
    def test_dominant_target(self):
        from repro.core.application import RunRecord

        record = RunRecord(app="a", mode=SystemMode.XAR_TREK, seed=0, start_s=0.0)
        assert record.dominant_target() is Target.X86
        record.targets = [Target.FPGA, Target.ARM, Target.FPGA]
        assert record.dominant_target() is Target.FPGA
