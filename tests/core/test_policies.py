"""Unit + integration tests for the alternative scheduling policies."""

import pytest

from repro.core import (
    SystemMode,
    build_system,
    cost_model_policy,
    energy_aware_policy,
)
from repro.hardware import EnergyMeter, PowerModel
from repro.thresholds import ThresholdEntry
from repro.types import Target
from repro.workloads import all_profiles, profile_for


@pytest.fixture(scope="module")
def profiles():
    return all_profiles()


def entry_for(name: str) -> ThresholdEntry:
    profile = profile_for(name)
    return ThresholdEntry(name, profile.kernel_name, fpga_threshold=16, arm_threshold=31)


class TestCostModelPolicy:
    def test_idle_host_keeps_fast_x86_apps_home(self, profiles):
        policy = cost_model_policy(profiles)
        decision = policy(1, entry_for("cg.A"), kernel_available=True)
        assert decision.target is Target.X86

    def test_idle_host_still_offloads_fpga_winners(self, profiles):
        # digit.2000 is faster on the FPGA even from an idle host.
        policy = cost_model_policy(profiles)
        decision = policy(1, entry_for("digit.2000"), kernel_available=True)
        assert decision.target is Target.FPGA

    def test_loaded_host_offloads(self, profiles):
        policy = cost_model_policy(profiles)
        decision = policy(60, entry_for("cg.A"), kernel_available=True)
        assert decision.target is Target.ARM  # CG's best escape

    def test_absent_kernel_triggers_reconfigure_hint(self, profiles):
        policy = cost_model_policy(profiles)
        decision = policy(60, entry_for("digit.2000"), kernel_available=False)
        assert decision.target in (Target.X86, Target.ARM)
        assert decision.reconfigure

    def test_never_picks_absent_kernel(self, profiles):
        policy = cost_model_policy(profiles)
        for load in (1, 20, 60, 120):
            for name in ("cg.A", "digit.2000", "facedet.320"):
                decision = policy(load, entry_for(name), kernel_available=False)
                assert decision.target is not Target.FPGA

    def test_agrees_with_heuristic_in_the_clear_cases(self, profiles):
        """The paper's heuristic approximates the cost model: on the
        unambiguous operating points they agree."""
        from repro.core import decide
        from repro.compiler import estimate_thresholds

        table = estimate_thresholds([profiles[n] for n in profiles if n != "mg.B"])
        policy = cost_model_policy(profiles)
        for name in ("digit.2000", "facedet.640", "cg.A"):
            entry = table.entry(name)
            for load in (1, 60, 120):
                heuristic = decide(load, entry, kernel_available=True)
                model = policy(load, entry, kernel_available=True)
                if load in (1,) or load >= 60:
                    assert heuristic.target == model.target, (name, load)


class TestEnergyAwarePolicy:
    def test_prefers_arm_for_energy(self, profiles):
        # ARM's per-core watts are ~12x below the Xeon's: pure-energy
        # scheduling sends everything there.
        policy = energy_aware_policy(profiles, delay_exponent=0.0)
        for name in ("cg.A", "digit.2000", "facedet.320"):
            decision = policy(1, entry_for(name), kernel_available=True)
            assert decision.target is Target.ARM, name

    def test_higher_delay_exponent_leans_to_performance(self, profiles):
        perf_leaning = energy_aware_policy(profiles, delay_exponent=2.0)
        decision = perf_leaning(60, entry_for("digit.2000"), kernel_available=True)
        assert decision.target is Target.FPGA  # fast enough to win ED^2P

    def test_respects_kernel_availability(self, profiles):
        policy = energy_aware_policy(profiles)
        decision = policy(60, entry_for("digit.2000"), kernel_available=False)
        assert decision.target is not Target.FPGA


class TestPoliciesEndToEnd:
    def test_cost_model_beats_or_matches_heuristic_under_load(self, profiles):
        def run(policy):
            runtime = build_system(["digit.2000"], seed=4, policy=policy)
            load = runtime.launch_background(40, work_s=60.0)
            record = runtime.platform.sim.run_until_event(
                runtime.launch("digit.2000", mode=SystemMode.XAR_TREK, delay_s=0.01)
            )
            load.stop()
            return record.elapsed_s

        heuristic_s = run(None)
        model_s = run(cost_model_policy(profiles))
        assert model_s <= heuristic_s * 1.02

    def test_energy_policy_reduces_joules_at_a_time_cost(self, profiles):
        def run(policy):
            runtime = build_system(["digit.2000"], seed=4, policy=policy)
            runtime.platform.sim.run_until_event(runtime.preload_fpga())
            meter = EnergyMeter(runtime.platform, PowerModel())
            record = runtime.platform.sim.run_until_event(
                runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
            )
            return record, meter.report()

        perf_record, perf_energy = run(cost_model_policy(profiles))
        green_record, green_energy = run(energy_aware_policy(profiles, delay_exponent=0.0))

        def active_j(report):
            # Compare marginal (active) energy; idle power dominates a
            # single-app window and depends only on wall time.
            model = PowerModel()
            idle = report.window_s * (
                model.x86.idle_w + model.arm.idle_w + model.fpga.idle_w
            )
            return report.total_j - idle

        assert active_j(green_energy) < active_j(perf_energy)
        assert green_record.elapsed_s > perf_record.elapsed_s
