"""Unit tests for the XRT-like host runtime."""

import pytest

from repro.hardware import ALVEO_U50, FPGADevice, Link, PCIE_GEN3_X16
from repro.sim import Simulator
from repro.xrt import XRTDevice, XRTError


class FakeKernel:
    kernel_latency_s = 0.25


class FakeImage:
    def __init__(self, name="img", kernels=("k1",), size_bytes=5_000_000):
        self.name = name
        self.size_bytes = size_bytes
        self.kernel_names = tuple(kernels)

    def kernel(self, name):
        if name not in self.kernel_names:
            raise KeyError(name)
        return FakeKernel()


def make_xrt():
    sim = Simulator()
    fpga = FPGADevice(sim, ALVEO_U50)
    pcie = Link(sim, PCIE_GEN3_X16)
    return sim, XRTDevice(sim, fpga, pcie)


class TestConfiguration:
    def test_not_ready_until_loaded(self):
        sim, xrt = make_xrt()
        assert not xrt.ready
        sim.run_until_event(xrt.load_xclbin(FakeImage()))
        assert xrt.ready
        assert xrt.has_kernel("k1")

    def test_reload_same_image_free(self):
        sim, xrt = make_xrt()
        sim.run_until_event(xrt.load_xclbin(FakeImage()))
        before = sim.now
        sim.run_until_event(xrt.load_xclbin(FakeImage()))
        assert sim.now == before


class TestBuffers:
    def test_alloc_and_sync(self):
        sim, xrt = make_xrt()
        buffer = xrt.alloc_buffer(1 << 20)
        assert not buffer.on_device
        sim.run_until_event(xrt.sync_to_device(buffer))
        assert buffer.on_device
        sim.run_until_event(xrt.sync_from_device(buffer))

    def test_sync_from_host_buffer_rejected(self):
        _sim, xrt = make_xrt()
        buffer = xrt.alloc_buffer(100)
        with pytest.raises(XRTError):
            xrt.sync_from_device(buffer)

    def test_negative_size_rejected(self):
        _sim, xrt = make_xrt()
        with pytest.raises(XRTError):
            xrt.alloc_buffer(-1)

    def test_transfer_takes_pcie_time(self):
        sim, xrt = make_xrt()
        buffer = xrt.alloc_buffer(32_000_000_000)  # 1 second at 32 GB/s
        sim.run_until_event(xrt.sync_to_device(buffer))
        assert sim.now == pytest.approx(1.0 + PCIE_GEN3_X16.latency_s)


class TestKernelRuns:
    def test_complete_run_records_timing(self):
        sim, xrt = make_xrt()
        sim.run_until_event(xrt.load_xclbin(FakeImage()))
        start = sim.now
        run = sim.run_until_event(xrt.run_kernel("k1", bytes_in=1 << 20, bytes_out=4096))
        assert run.kernel_name == "k1"
        assert run.duration == pytest.approx(sim.now - start)
        assert sim.now - start > 0.25  # kernel latency + transfers
        assert xrt.completed_runs == [run]
        assert xrt.active_runs == 0

    def test_duration_override(self):
        sim, xrt = make_xrt()
        sim.run_until_event(xrt.load_xclbin(FakeImage()))
        start = sim.now
        sim.run_until_event(xrt.run_kernel("k1", 0, 0, duration=1.5))
        assert sim.now - start == pytest.approx(1.5, rel=1e-6)

    def test_unloaded_kernel_rejected(self):
        _sim, xrt = make_xrt()
        with pytest.raises(XRTError):
            xrt.run_kernel("k1", 0, 0)

    def test_runs_serialize_on_one_compute_unit(self):
        sim, xrt = make_xrt()
        sim.run_until_event(xrt.load_xclbin(FakeImage()))
        start = sim.now
        first = xrt.run_kernel("k1", 0, 0, duration=1.0)
        second = xrt.run_kernel("k1", 0, 0, duration=1.0)
        assert xrt.active_runs == 2
        sim.run_until_event(first)
        sim.run_until_event(second)
        assert sim.now - start == pytest.approx(2.0, rel=1e-6)

    def test_cannot_swap_image_under_running_kernel(self):
        sim, xrt = make_xrt()
        sim.run_until_event(xrt.load_xclbin(FakeImage("a")))
        xrt.run_kernel("k1", 0, 0, duration=5.0)
        with pytest.raises(XRTError):
            xrt.load_xclbin(FakeImage("b", kernels=("k2",)))

    def test_kernel_latency_from_image(self):
        sim, xrt = make_xrt()
        sim.run_until_event(xrt.load_xclbin(FakeImage()))
        assert xrt.kernel_latency("k1") == pytest.approx(0.25)
