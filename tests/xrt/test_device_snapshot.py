"""FPGA occupancy in load snapshots (the gossip bugfix).

``XarTrekRuntime.load_snapshot`` used to report only the two CPU
clusters, so any load-based placement built on it — the fleet gossip
digests above all — was blind to accelerator pressure. These tests pin
the ``fpga`` view: the occupancy-gauge aggregates from the device's
``fpga_active_runs`` accounting plus the ``reconfiguring`` /
``resident_kernels`` extras.
"""

import pytest

from repro.core import build_system

pytestmark = pytest.mark.metrics

GAUGE_KEYS = {"value", "min", "max", "time_weighted_mean", "updates"}


@pytest.fixture
def runtime():
    return build_system(["digit.2000"])


class TestDeviceLoadSnapshot:
    def test_idle_card_shape(self, runtime):
        snapshot = runtime.xrt.load_snapshot()
        assert GAUGE_KEYS | {"reconfiguring", "resident_kernels"} == set(snapshot)
        assert snapshot["value"] == 0.0
        assert snapshot["reconfiguring"] == 0.0
        assert snapshot["resident_kernels"] == 0.0  # nothing programmed yet

    def test_in_flight_runs_are_visible(self, runtime):
        sim = runtime.platform.sim
        kernel = runtime.result.thresholds.entry("digit.2000").kernel_name
        sim.run_until_event(runtime.preload_fpga())
        assert runtime.xrt.load_snapshot()["resident_kernels"] >= 1.0
        done = runtime.xrt.run_kernel(kernel, bytes_in=1024, bytes_out=64)
        assert runtime.xrt.load_snapshot()["value"] == 1.0
        sim.run_until_event(done)
        snapshot = runtime.xrt.load_snapshot()
        assert snapshot["value"] == 0.0
        assert snapshot["max"] == 1.0
        assert snapshot["updates"] >= 2  # start + finish transitions

    def test_reconfiguring_flag_tracks_the_programming_pass(self, runtime):
        sim = runtime.platform.sim
        done = runtime.preload_fpga()
        assert runtime.xrt.load_snapshot()["reconfiguring"] == 1.0
        sim.run_until_event(done)
        assert runtime.xrt.load_snapshot()["reconfiguring"] == 0.0


class TestRuntimeLoadSnapshot:
    def test_reports_all_three_targets(self, runtime):
        snapshot = runtime.load_snapshot()
        assert set(snapshot) == {"x86", "arm", "fpga"}
        for cluster in ("x86", "arm"):
            assert GAUGE_KEYS <= set(snapshot[cluster])
        assert snapshot["fpga"] == runtime.xrt.load_snapshot()

    def test_fpga_pressure_reaches_the_runtime_view(self, runtime):
        sim = runtime.platform.sim
        kernel = runtime.result.thresholds.entry("digit.2000").kernel_name
        sim.run_until_event(runtime.preload_fpga())
        done = runtime.xrt.run_kernel(kernel, bytes_in=1024, bytes_out=64)
        assert runtime.load_snapshot()["fpga"]["value"] == 1.0
        sim.run_until_event(done)
        assert runtime.load_snapshot()["fpga"]["value"] == 0.0
