"""Failure injection: the system degrades gracefully, never wedges.

Faults covered: FPGA programming failures (the scheduler retries on the
next request) and mid-flight kernel-run faults (the application falls
back to x86 and still completes correctly).
"""

import pytest

from repro.core import SystemMode, build_system
from repro.hardware import ALVEO_U50, FPGADevice
from repro.sim import SimulationError, Simulator
from repro.types import Target
from repro.xrt import XRTError


class FakeImage:
    name = "img"
    size_bytes = 1_000_000
    kernel_names = ("k1",)


class TestDeviceFaults:
    def test_failed_reconfiguration_leaves_device_clean(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        device.inject_reconfig_failures(1)
        done = device.configure(FakeImage())
        done.defused = True
        sim.run()
        assert not done.ok
        assert device.configured_image is None
        assert not device.reconfiguring
        assert device.failed_reconfigurations == 1

    def test_retry_after_failure_succeeds(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        device.inject_reconfig_failures(1)
        first = device.configure(FakeImage())
        first.defused = True
        sim.run()
        second = device.configure(FakeImage())
        sim.run_until_event(second)
        assert device.has_kernel("k1")

    def test_negative_injection_rejected(self):
        device = FPGADevice(Simulator(), ALVEO_U50)
        with pytest.raises(SimulationError):
            device.inject_reconfig_failures(-1)


class TestXRTRunFaults:
    def test_injected_run_fault_fails_event(self):
        runtime = build_system(["digit.2000"])
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        runtime.xrt.inject_run_failures("KNL_HW_DR200", 1)
        done = runtime.xrt.run_kernel("KNL_HW_DR200", 1000, 100, duration=1.0)
        done.defused = True
        runtime.platform.run()
        assert not done.ok
        assert isinstance(done.value, XRTError)
        assert runtime.xrt.failed_runs == 1
        assert runtime.xrt.active_runs == 0  # no leaked occupancy

    def test_next_run_succeeds(self):
        runtime = build_system(["digit.2000"])
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        runtime.xrt.inject_run_failures("KNL_HW_DR200", 1)
        bad = runtime.xrt.run_kernel("KNL_HW_DR200", 0, 0, duration=0.5)
        bad.defused = True
        runtime.platform.run()
        good = runtime.xrt.run_kernel("KNL_HW_DR200", 0, 0, duration=0.5)
        run = runtime.platform.sim.run_until_event(good)
        assert run.kernel_name == "KNL_HW_DR200"


class TestApplicationResilience:
    def test_kernel_fault_falls_back_to_x86(self):
        runtime = build_system(["digit.2000"])
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        runtime.xrt.inject_run_failures("KNL_HW_DR200", 1)
        record = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK, functional=True)
        )
        assert record.fpga_fallbacks == 1
        assert record.targets == [Target.X86]
        assert record.verified is True  # results unaffected by the fault
        # The fallback cost: half an aborted kernel + the x86 function.
        assert record.elapsed_s > 3.5

    def test_scheduler_survives_reconfig_failure_and_retries(self):
        runtime = build_system(["digit.2000"])
        runtime.platform.fpga.inject_reconfig_failures(1)
        load = runtime.launch_background(30, work_s=60.0)
        # First run: reconfig kicked off (and will fail); app lands on ARM.
        first = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK, delay_s=0.01)
        )
        assert first.targets[0] in (Target.ARM, Target.X86)
        assert runtime.server.stats.reconfigurations_failed == 1
        # Second run: the retry succeeds and the FPGA serves it (run
        # until the fresh reconfiguration completes).
        second = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        third = runtime.platform.sim.run_until_event(
            runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
        )
        load.stop()
        assert runtime.server.stats.reconfigurations_started >= 2
        assert Target.FPGA in (*second.targets, *third.targets)

    def test_repeated_faults_never_wedge_the_run(self):
        runtime = build_system(["digit.2000"])
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        runtime.xrt.inject_run_failures("KNL_HW_DR200", 5)
        records = [
            runtime.platform.sim.run_until_event(
                runtime.launch("digit.2000", seed=i, mode=SystemMode.XAR_TREK)
            )
            for i in range(6)
        ]
        assert all(r.finished for r in records)
        assert sum(r.fpga_fallbacks for r in records) == 5
        # Once the injected faults are exhausted, the FPGA serves again.
        assert records[-1].targets == [Target.FPGA]
