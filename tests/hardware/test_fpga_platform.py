"""Unit tests for the FPGA device model and the platform."""

import pytest

from repro.hardware import ALVEO_U50, FPGADevice, FPGAResources, paper_testbed
from repro.sim import SimulationError, Simulator
from repro.types import Target


class FakeImage:
    def __init__(self, name="img", kernels=("k1", "k2"), size_bytes=10_000_000):
        self.name = name
        self.size_bytes = size_bytes
        self.kernel_names = tuple(kernels)


class TestFPGAResources:
    def test_addition(self):
        a = FPGAResources(lut=10, ff=20, bram=1, dsp=2, uram=3)
        b = FPGAResources(lut=5, ff=5, bram=5, dsp=5, uram=5)
        total = a + b
        assert (total.lut, total.ff, total.bram, total.dsp, total.uram) == (
            15, 25, 6, 7, 8,
        )

    def test_fits_in_every_axis(self):
        budget = FPGAResources(lut=100, ff=100, bram=10, dsp=10, uram=10)
        assert FPGAResources(lut=100, ff=100, bram=10, dsp=10, uram=10).fits_in(budget)
        assert not FPGAResources(lut=101).fits_in(budget)
        assert not FPGAResources(uram=11).fits_in(budget)

    def test_max_fraction(self):
        budget = FPGAResources(lut=100, ff=100, bram=10, dsp=10, uram=10)
        assert FPGAResources(lut=50, bram=9).max_fraction_of(budget) == pytest.approx(0.9)
        assert FPGAResources().max_fraction_of(budget) == 0.0

    def test_alveo_u50_usable_area_excludes_shell(self):
        usable = ALVEO_U50.usable_resources
        assert usable.lut < ALVEO_U50.resources.lut
        assert usable.lut == int(872_000 * 0.8)


class TestFPGADevice:
    def test_starts_unconfigured(self):
        device = FPGADevice(Simulator(), ALVEO_U50)
        assert device.configured_image is None
        assert device.available_kernels == ()
        assert not device.has_kernel("k1")

    def test_configure_takes_reconfig_time(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        image = FakeImage(size_bytes=50_000_000)
        done = device.configure(image)
        assert device.reconfiguring
        assert device.available_kernels == ()  # not callable mid-load
        sim.run_until_event(done)
        assert sim.now == pytest.approx(ALVEO_U50.reconfig_time(50_000_000))
        assert set(device.available_kernels) == {"k1", "k2"}

    def test_reconfigure_same_image_is_free(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        sim.run_until_event(device.configure(FakeImage()))
        before = sim.now
        sim.run_until_event(device.configure(FakeImage()))
        assert sim.now == before
        assert device.reconfiguration_count == 1

    def test_concurrent_configure_same_image_shares_event(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        first = device.configure(FakeImage("a"))
        second = device.configure(FakeImage("a"))
        assert first is second

    def test_concurrent_configure_different_image_rejected(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        device.configure(FakeImage("a"))
        with pytest.raises(SimulationError):
            device.configure(FakeImage("b"))

    def test_swap_images(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        sim.run_until_event(device.configure(FakeImage("a", kernels=("k1",))))
        sim.run_until_event(device.configure(FakeImage("b", kernels=("k3",))))
        assert device.available_kernels == ("k3",)
        assert not device.has_kernel("k1")

    def test_execute_unloaded_kernel_rejected(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        with pytest.raises(SimulationError):
            device.execute("ghost", 1.0)

    def test_same_kernel_invocations_serialize(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        sim.run_until_event(device.configure(FakeImage()))
        start = sim.now
        done = [device.execute("k1", 1.0) for _ in range(3)]
        sim.run_until_event(done[-1])
        assert sim.now - start == pytest.approx(3.0)

    def test_different_kernels_run_concurrently(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        sim.run_until_event(device.configure(FakeImage()))
        start = sim.now
        first = device.execute("k1", 1.0)
        second = device.execute("k2", 1.0)
        sim.run_until_event(first)
        sim.run_until_event(second)
        assert sim.now - start == pytest.approx(1.0)

    def test_cannot_reconfigure_while_kernel_runs(self):
        sim = Simulator()
        device = FPGADevice(sim, ALVEO_U50)
        sim.run_until_event(device.configure(FakeImage("a")))
        device.execute("k1", 10.0)
        sim.run(until=sim.now + 1.0)
        with pytest.raises(SimulationError):
            device.configure(FakeImage("b"))


class TestPlatform:
    def test_paper_testbed_matches_section4(self):
        platform = paper_testbed()
        assert platform.x86.cpu.cores == 6
        assert platform.arm.cpu.cores == 96
        assert platform.total_cores == 102
        assert platform.fpga.spec.name == "alveo-u50"

    def test_cluster_lookup_by_target(self):
        platform = paper_testbed()
        assert platform.cluster(Target.X86) is platform.x86.cpu
        assert platform.cluster(Target.ARM) is platform.arm.cpu
        with pytest.raises(ValueError):
            platform.cluster(Target.FPGA)

    def test_x86_load_property(self):
        platform = paper_testbed()
        platform.x86.cpu.execute(1.0)
        platform.arm.cpu.execute(1.0)
        assert platform.x86_load == 1
