"""Unit + property tests for the fair-share (processor-sharing) server."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.sharing import FairShareServer
from repro.sim import SimulationError, Simulator


def make_server(capacity=6.0, job_cap=1.0):
    sim = Simulator()
    return sim, FairShareServer(sim, "cpu", capacity=capacity, job_cap=job_cap)


class TestBasics:
    def test_single_job_runs_at_cap(self):
        sim, srv = make_server()
        job = srv.submit(2.0)
        sim.run_until_event(job.done)
        assert sim.now == pytest.approx(2.0)

    def test_jobs_below_capacity_run_independently(self):
        sim, srv = make_server(capacity=6, job_cap=1)
        for _ in range(6):
            srv.submit(1.0)
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_oversubscription_dilates_linearly(self):
        # 12 unit jobs on 6 cores: each runs at rate 0.5 -> done at 2.0.
        sim, srv = make_server()
        jobs = [srv.submit(1.0) for _ in range(12)]
        sim.run()
        assert sim.now == pytest.approx(2.0)
        assert all(j.finish_time == pytest.approx(2.0) for j in jobs)

    def test_uncapped_job_uses_full_capacity(self):
        sim, srv = make_server(capacity=100.0, job_cap=None)
        job = srv.submit(200.0)
        sim.run_until_event(job.done)
        assert sim.now == pytest.approx(2.0)

    def test_zero_work_completes_immediately(self):
        sim, srv = make_server()
        job = srv.submit(0.0)
        assert job.done.triggered
        assert srv.active_jobs == 0

    def test_negative_work_rejected(self):
        _sim, srv = make_server()
        with pytest.raises(SimulationError):
            srv.submit(-1.0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            FairShareServer(Simulator(), "x", capacity=0)


class TestDynamics:
    def test_late_arrival_slows_everyone(self):
        # 1 core. Job A (2s) starts alone; B (1s) arrives at t=1.
        sim, srv = make_server(capacity=1, job_cap=1)
        job_a = srv.submit(2.0, tag="a")
        sim.call_in(1.0, lambda: srv.submit(1.0, tag="b"))
        sim.run()
        # At t=1, A has 1.0 left, B has 1.0; each at rate 0.5 -> both at t=3.
        assert job_a.finish_time == pytest.approx(3.0)
        assert sim.now == pytest.approx(3.0)

    def test_cancel_removes_job_and_speeds_up_rest(self):
        sim, srv = make_server(capacity=1)
        job_a = srv.submit(4.0, tag="a")
        job_b = srv.submit(4.0, tag="b")
        sim.call_in(2.0, lambda: srv.cancel(job_b))
        sim.run()
        # 2s shared (1.0 each done), then A alone finishes remaining 3.0.
        assert job_a.finish_time == pytest.approx(5.0)
        assert not job_b.done.triggered

    def test_remaining_work_tracks_service(self):
        sim, srv = make_server(capacity=1)
        job = srv.submit(4.0)
        srv.submit(4.0)
        sim.run(until=2.0)
        assert srv.remaining_work(job) == pytest.approx(3.0)

    def test_load_metrics(self):
        sim, srv = make_server(capacity=2, job_cap=1)
        srv.submit(1.0)
        srv.submit(1.0)
        sim.run()
        assert srv.utilization() == pytest.approx(1.0)
        assert srv.mean_load() == pytest.approx(2.0)

    def test_rate_per_job_query(self):
        _sim, srv = make_server(capacity=6, job_cap=1)
        assert srv.rate_per_job(3) == 1.0
        assert srv.rate_per_job(12) == 0.5
        assert srv.rate_per_job(0) == 0.0


def _reference_finish_times(arrivals, capacity, job_cap):
    """Per-event processor sharing: O(n) remaining-work rescaling.

    The pre-optimization model the virtual-time server replaced: walk
    membership changes chronologically and drain every active job's
    remaining work at the common rate. Used as ground truth.
    """
    pending = sorted(
        ((t, w, i) for i, (t, w) in enumerate(arrivals)), key=lambda p: (p[0], p[2])
    )
    active = {}  # index -> remaining work
    finish = {}
    now = 0.0
    while pending or active:
        if active:
            n = len(active)
            rate = min(capacity / n, job_cap) if job_cap is not None else capacity / n
            to_completion = min(active.values()) / rate
        else:
            rate = 0.0
            to_completion = math.inf
        to_arrival = pending[0][0] - now if pending else math.inf
        dt = min(to_completion, to_arrival)
        for i in active:
            active[i] -= rate * dt
        now += dt
        if to_arrival <= to_completion:
            t, w, i = pending.pop(0)
            active[i] = w
        else:
            done = [i for i, rem in active.items() if rem <= 1e-12 * max(1.0, now)]
            for i in done:
                finish[i] = now
                del active[i]
    return finish


class TestProperties:
    @given(
        arrivals=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=20.0),
                st.floats(min_value=0.01, max_value=30.0),
            ),
            min_size=1,
            max_size=15,
        ),
        capacity=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_epoch_batched_server_matches_per_event_model(self, arrivals, capacity):
        """The virtual-time (epoch-batched) server must produce the same
        completion times as the per-event O(n)-rescaling model it
        replaced, for arbitrary staggered arrival patterns."""
        sim = Simulator()
        srv = FairShareServer(sim, "cpu", capacity=capacity, job_cap=1.0)
        jobs = {}

        def submit(index, work):
            jobs[index] = srv.submit(work)

        for index, (t, work) in enumerate(arrivals):
            sim.call_in(t, lambda i=index, w=work: submit(i, w))
        sim.run()

        expected = _reference_finish_times(arrivals, float(capacity), 1.0)
        assert set(expected) == set(jobs)
        for index, job in jobs.items():
            assert job.finish_time == pytest.approx(
                expected[index], rel=1e-6, abs=1e-6
            ), f"job {index} (work={arrivals[index][1]})"
    @given(
        works=st.lists(
            st.floats(min_value=0.01, max_value=50.0), min_size=1, max_size=20
        ),
        capacity=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_makespan_matches_ps_theory_for_simultaneous_jobs(self, works, capacity):
        """For jobs all submitted at t=0 on a capped PS server, each job's
        finish time is exactly computable; check the makespan."""
        sim = Simulator()
        srv = FairShareServer(sim, "cpu", capacity=capacity, job_cap=1.0)
        jobs = [srv.submit(w) for w in works]
        sim.run()
        # Work conservation: total service = total work, and the server
        # never idles while jobs remain, so makespan >= both bounds:
        total = sum(works)
        lower = max(max(works), total / capacity)
        assert sim.now >= lower - 1e-6
        # All jobs completed, exactly once.
        assert all(j.done.processed for j in jobs)
        assert srv.active_jobs == 0

    @given(
        works=st.lists(
            st.floats(min_value=0.05, max_value=10.0), min_size=2, max_size=12
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_shorter_jobs_never_finish_after_longer_ones(self, works):
        """PS preserves ordering: with identical start times, a job with
        less work finishes no later than one with more."""
        sim = Simulator()
        srv = FairShareServer(sim, "cpu", capacity=3, job_cap=1.0)
        jobs = [(w, srv.submit(w)) for w in works]
        sim.run()
        finished = sorted(jobs, key=lambda pair: pair[0])
        for (w1, j1), (w2, j2) in zip(finished, finished[1:]):
            assert j1.finish_time <= j2.finish_time + 1e-9

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0),  # arrival
                st.floats(min_value=0.01, max_value=5.0),  # work
            ),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_every_job_eventually_completes(self, arrivals):
        sim = Simulator()
        srv = FairShareServer(sim, "cpu", capacity=2, job_cap=1.0)
        jobs = []

        for at, work in arrivals:
            sim.call_in(at, lambda w=work: jobs.append(srv.submit(w)))
        sim.run()
        assert len(jobs) == len(arrivals)
        assert all(j.done.processed for j in jobs)
        assert srv.active_jobs == 0


def test_no_zeno_loop_with_extreme_rates():
    """Regression: a tiny transfer at link-like rates (32e9/s) late in
    simulated time must not spin on sub-ulp reschedules."""
    sim = Simulator()
    srv = FairShareServer(sim, "pcie", capacity=32e9, job_cap=None)
    # Advance the clock far enough that ulp(now) * rate >> work dust.
    sim.timeout(1e5)
    sim.run()
    job = srv.submit(4096.0)
    other = srv.submit(1e9)
    sim.run_until_event(job.done)
    sim.run_until_event(other.done)
    assert srv.active_jobs == 0
