"""Unit tests for CPU clusters and interconnect links."""

import pytest

from repro.hardware import (
    ETHERNET_1GBPS,
    PCIE_GEN3_X16,
    CPUCluster,
    CPUSpec,
    Link,
    LinkSpec,
    THUNDERX,
    XEON_BRONZE_3104,
)
from repro.sim import SimulationError, Simulator


class TestCPUSpec:
    def test_paper_specs(self):
        assert XEON_BRONZE_3104.cores == 6
        assert XEON_BRONZE_3104.isa == "x86_64"
        assert THUNDERX.cores == 96
        assert THUNDERX.isa == "aarch64"

    def test_validation(self):
        with pytest.raises(ValueError):
            CPUSpec("bad", "x86_64", cores=0, freq_ghz=1.0)
        with pytest.raises(ValueError):
            CPUSpec("bad", "x86_64", cores=1, freq_ghz=0.0)
        with pytest.raises(ValueError):
            CPUSpec("bad", "mips", cores=1, freq_ghz=1.0)


class TestCPUCluster:
    def test_load_counts_active_jobs(self):
        sim = Simulator()
        cluster = CPUCluster(sim, XEON_BRONZE_3104)
        assert cluster.load == 0
        cluster.execute(1.0)
        cluster.execute(1.0)
        assert cluster.load == 2
        sim.run()
        assert cluster.load == 0

    def test_oversubscribed_dilation_matches_paper_arithmetic(self):
        # Table 2's logic: T(L) = T * L / cores when L > cores.
        sim = Simulator()
        cluster = CPUCluster(sim, XEON_BRONZE_3104)
        for _ in range(30):
            cluster.execute(2.182)
        sim.run()
        assert sim.now == pytest.approx(2.182 * 30 / 6)

    def test_predicted_time(self):
        sim = Simulator()
        cluster = CPUCluster(sim, XEON_BRONZE_3104)
        assert cluster.predicted_time(1.0) == pytest.approx(1.0)
        assert cluster.predicted_time(1.0, extra_jobs=11) == pytest.approx(2.0)

    def test_cancellable_job(self):
        sim = Simulator()
        cluster = CPUCluster(sim, XEON_BRONZE_3104)
        job = cluster.execute_job(5.0)
        sim.call_in(1.0, lambda: cluster.cancel(job))
        sim.run()
        assert not job.done.triggered
        assert cluster.load == 0


class TestLink:
    def test_single_transfer_time(self):
        sim = Simulator()
        link = Link(sim, ETHERNET_1GBPS)
        done = link.transfer(125e6)  # 1 second at 1 Gbps
        sim.run_until_event(done)
        assert sim.now == pytest.approx(1.0 + ETHERNET_1GBPS.latency_s)

    def test_concurrent_transfers_share_bandwidth(self):
        sim = Simulator()
        link = Link(sim, ETHERNET_1GBPS)
        link.transfer(125e6)
        link.transfer(125e6)
        sim.run()
        assert sim.now == pytest.approx(2.0 + ETHERNET_1GBPS.latency_s)

    def test_lone_transfer_gets_full_pipe(self):
        sim = Simulator()
        link = Link(sim, PCIE_GEN3_X16)
        done = link.transfer(32e9)
        sim.run_until_event(done)
        assert sim.now == pytest.approx(1.0 + PCIE_GEN3_X16.latency_s)

    def test_ideal_transfer_time(self):
        link = Link(Simulator(), ETHERNET_1GBPS)
        assert link.ideal_transfer_time(125e6) == pytest.approx(
            1.0 + ETHERNET_1GBPS.latency_s
        )

    def test_zero_byte_transfer_is_latency_only(self):
        sim = Simulator()
        link = Link(sim, ETHERNET_1GBPS)
        done = link.transfer(0)
        sim.run_until_event(done)
        assert sim.now == pytest.approx(ETHERNET_1GBPS.latency_s)

    def test_negative_transfer_rejected(self):
        link = Link(Simulator(), ETHERNET_1GBPS)
        with pytest.raises(SimulationError):
            link.transfer(-1)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LinkSpec("bad", bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            LinkSpec("bad", bandwidth_bytes_per_s=1.0, latency_s=-1)

    def test_paper_link_rates(self):
        assert ETHERNET_1GBPS.bandwidth_bytes_per_s == pytest.approx(125e6)
        assert PCIE_GEN3_X16.bandwidth_bytes_per_s == pytest.approx(32e9)
