"""Unit tests for the power model and energy meter."""

import pytest

from repro.hardware import DevicePower, EnergyMeter, PowerModel, paper_testbed
from repro.types import Target


class TestPowerModel:
    def test_target_lookup(self):
        model = PowerModel()
        assert model.for_target(Target.X86) is model.x86
        assert model.for_target(Target.ARM) is model.arm
        assert model.for_target(Target.FPGA) is model.fpga

    def test_marginal_energy(self):
        model = PowerModel()
        assert model.marginal_energy_j(Target.X86, 2.0) == pytest.approx(
            2.0 * model.x86.active_w_per_unit
        )

    def test_arm_is_the_low_power_compute(self):
        # The ThunderX per-core active power is far below the Xeon's —
        # the premise of the paper's energy-oriented future work.
        model = PowerModel()
        assert model.arm.active_w_per_unit < model.x86.active_w_per_unit

    def test_validation(self):
        with pytest.raises(ValueError):
            DevicePower(idle_w=-1, active_w_per_unit=1)


class TestEnergyMeter:
    def test_idle_platform_consumes_idle_power_only(self):
        platform = paper_testbed()
        meter = EnergyMeter(platform)
        platform.sim.timeout(10.0)
        platform.run()
        report = meter.report()
        model = meter.model
        expected_idle = 10.0 * (model.x86.idle_w + model.arm.idle_w + model.fpga.idle_w)
        assert report.total_j == pytest.approx(expected_idle)
        assert report.window_s == pytest.approx(10.0)

    def test_cpu_work_adds_active_energy(self):
        platform = paper_testbed()
        meter = EnergyMeter(platform)
        platform.x86.cpu.execute(5.0)  # 5 core-seconds
        platform.run()
        report = meter.report()
        active = report.x86_j - meter.model.x86.idle_w * report.window_s
        assert active == pytest.approx(5.0 * meter.model.x86.active_w_per_unit)

    def test_fpga_kernel_time_counted(self):
        platform = paper_testbed()

        class Image:
            name = "img"
            size_bytes = 1_000_000
            kernel_names = ("k",)

        platform.sim.run_until_event(platform.fpga.configure(Image()))
        meter = EnergyMeter(platform)
        platform.sim.run_until_event(platform.fpga.execute("k", 2.0))
        report = meter.report()
        active = report.fpga_j - meter.model.fpga.idle_w * report.window_s
        assert active == pytest.approx(2.0 * meter.model.fpga.active_w_per_unit)

    def test_reset_starts_a_new_window(self):
        platform = paper_testbed()
        meter = EnergyMeter(platform)
        platform.x86.cpu.execute(3.0)
        platform.run()
        meter.reset()
        report = meter.report()
        assert report.window_s == 0.0
        assert report.total_j == 0.0

    def test_same_work_cheaper_on_arm(self):
        # Equal compute demand: the ARM run burns fewer joules (and the
        # x86 run is faster) — the energy/performance trade-off.
        model = PowerModel()
        x86_energy = model.marginal_energy_j(Target.X86, 1.0)
        arm_energy = model.marginal_energy_j(Target.ARM, 2.5)  # 2.5x slower
        assert arm_energy < x86_energy

    def test_edp_metric(self):
        platform = paper_testbed()
        meter = EnergyMeter(platform)
        platform.x86.cpu.execute(1.0)
        platform.run()
        report = meter.report()
        assert report.energy_delay_product(2.0) == pytest.approx(report.total_j * 2.0)
        assert report.average_power_w > 0
