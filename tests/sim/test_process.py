"""Unit tests for generator-based processes and event combinators."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, SimulationError, Simulator


def test_process_runs_and_returns_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        return "result"

    proc = sim.spawn(worker())
    sim.run()
    assert proc.processed
    assert proc.value == "result"
    assert sim.now == 3.0


def test_process_receives_event_values():
    sim = Simulator()
    seen = []

    def worker():
        value = yield sim.timeout(1.0, value="hello")
        seen.append(value)

    sim.spawn(worker())
    sim.run()
    assert seen == ["hello"]


def test_waiting_on_process_gets_return_value():
    sim = Simulator()
    out = []

    def child():
        yield sim.timeout(1.0)
        return 42

    def parent():
        value = yield sim.spawn(child())
        out.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert out == [(1.0, 42)]


def test_waiting_on_already_finished_process():
    sim = Simulator()
    out = []

    def child():
        yield sim.timeout(1.0)
        return "early"

    child_proc = sim.spawn(child())

    def parent():
        yield sim.timeout(5.0)
        value = yield child_proc  # already processed
        out.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert out == [(5.0, "early")]


def test_exception_in_process_fails_its_event():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        raise RuntimeError("worker died")

    proc = sim.spawn(worker())
    proc.defused = True
    sim.run()
    assert not proc.ok
    assert isinstance(proc.value, RuntimeError)


def test_failure_propagates_to_waiter():
    sim = Simulator()
    caught = []

    def child():
        yield sim.timeout(1.0)
        raise ValueError("child failed")

    def parent():
        try:
            yield sim.spawn(child())
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(parent())
    sim.run()
    assert caught == ["child failed"]


def test_unhandled_child_failure_crashes_run():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("unhandled")

    def parent():
        yield sim.spawn(child())

    parent_proc = sim.spawn(parent())
    parent_proc.defused = True
    sim.run()
    assert not parent_proc.ok


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def worker():
        yield 12345

    proc = sim.spawn(worker())
    proc.defused = True
    sim.run()
    assert not proc.ok
    assert isinstance(proc.value, SimulationError)


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None)


class TestInterrupt:
    def test_interrupt_delivers_cause(self):
        sim = Simulator()
        caught = []

        def worker():
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                caught.append((sim.now, intr.cause))

        proc = sim.spawn(worker())
        sim.call_in(2.0, lambda: proc.interrupt("preempted"))
        sim.run()
        assert caught == [(2.0, "preempted")]

    def test_interrupted_process_can_continue(self):
        sim = Simulator()
        finished_at = []

        def worker():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            yield sim.timeout(1.0)
            finished_at.append(sim.now)
            return "recovered"

        proc = sim.spawn(worker())
        sim.call_in(2.0, lambda: proc.interrupt())
        sim.run()
        assert proc.value == "recovered"
        # The process resumed at t=2 and finished at t=3; the abandoned
        # 100 s timeout still drains the queue afterwards.
        assert finished_at == [3.0]

    def test_interrupting_dead_process_rejected(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(1.0)

        proc = sim.spawn(worker())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()


class TestCombinators:
    def test_all_of_waits_for_every_event(self):
        sim = Simulator()
        times = []

        def worker():
            yield sim.all_of([sim.timeout(1.0), sim.timeout(3.0), sim.timeout(2.0)])
            times.append(sim.now)

        sim.spawn(worker())
        sim.run()
        assert times == [3.0]

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        times = []

        def worker():
            yield sim.any_of([sim.timeout(5.0), sim.timeout(1.0)])
            times.append(sim.now)

        sim.spawn(worker())
        sim.run()
        assert times == [1.0]

    def test_all_of_collects_values(self):
        sim = Simulator()
        got = {}

        def worker():
            a = sim.timeout(1.0, value="a")
            b = sim.timeout(2.0, value="b")
            result = yield sim.all_of([a, b])
            got.update({ev.value: True for ev in result})

        sim.spawn(worker())
        sim.run()
        assert got == {"a": True, "b": True}

    def test_empty_all_of_fires_immediately(self):
        sim = Simulator()
        times = []

        def worker():
            yield sim.all_of([])
            times.append(sim.now)

        sim.spawn(worker())
        sim.run()
        assert times == [0.0]

    def test_all_of_fails_fast(self):
        sim = Simulator()
        caught = []
        bad = sim.event()
        sim.call_in(1.0, lambda: bad.fail(RuntimeError("nope")))

        def worker():
            try:
                yield sim.all_of([sim.timeout(10.0), bad])
            except RuntimeError:
                caught.append(sim.now)

        sim.spawn(worker())
        sim.run()
        assert caught == [1.0]

    def test_condition_rejects_foreign_events(self):
        sim_a, sim_b = Simulator(), Simulator()
        with pytest.raises(SimulationError):
            AllOf(sim_a, [sim_b.event()])

    def test_any_of_with_already_processed_event(self):
        sim = Simulator()
        ev = sim.timeout(1.0, value="past")
        sim.run()
        combined = AnyOf(sim, [ev, sim.event()])
        sim.run()
        assert combined.processed
