"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Event, SimulationError, Simulator


class TestEventLifecycle:
    def test_fresh_event_is_pending(self):
        sim = Simulator()
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_unavailable_before_trigger(self):
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_succeed_carries_value(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self):
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_failed_event_raises_at_processing(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_defused_failure_does_not_crash_run(self):
        sim = Simulator()
        ev = sim.event()
        ev.defused = True
        ev.fail(ValueError("boom"))
        sim.run()  # no raise
        assert not ev.ok


class TestScheduling:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        sim.timeout(2.5)
        sim.run()
        assert sim.now == 2.5

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_timeout_value_passed_through(self):
        sim = Simulator()
        ev = sim.timeout(1.0, value="payload")
        sim.run()
        assert ev.value == "payload"

    def test_call_in_runs_callback_at_right_time(self):
        sim = Simulator()
        seen = []
        sim.call_in(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_call_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.call_at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_call_at_in_the_past_rejected(self):
        sim = Simulator()
        sim.timeout(10)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(5.0, lambda: None)

    def test_events_process_in_time_order(self):
        sim = Simulator()
        order = []
        sim.call_in(2.0, lambda: order.append("b"))
        sim.call_in(1.0, lambda: order.append("a"))
        sim.call_in(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            sim.call_in(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_callbacks_see_triggered_event(self):
        sim = Simulator()
        ev = sim.timeout(1.0, value=99)
        seen = []
        ev.callbacks.append(lambda e: seen.append(e.value))
        sim.run()
        assert seen == [99]


class TestRunControl:
    def test_run_until_stops_the_clock_exactly(self):
        sim = Simulator()
        sim.timeout(10.0)
        sim.run(until=4.0)
        assert sim.now == 4.0
        sim.run()
        assert sim.now == 10.0

    def test_run_until_in_past_rejected(self):
        sim = Simulator()
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_step_on_empty_queue_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.step()

    def test_peek_reports_next_event_time(self):
        sim = Simulator()
        assert sim.peek() is None
        sim.timeout(7.0)
        assert sim.peek() == 7.0

    def test_run_until_event_returns_value(self):
        sim = Simulator()
        ev = sim.timeout(2.0, value="done")
        assert sim.run_until_event(ev) == "done"
        assert sim.now == 2.0

    def test_run_until_event_raises_failure(self):
        sim = Simulator()
        ev = sim.event()
        sim.call_in(1.0, lambda: ev.fail(RuntimeError("bad")))
        with pytest.raises(RuntimeError, match="bad"):
            sim.run_until_event(ev)

    def test_run_until_event_detects_starvation(self):
        sim = Simulator()
        ev = sim.event()  # never triggered
        with pytest.raises(SimulationError, match="ended before"):
            sim.run_until_event(ev)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run() -> list[tuple[float, str]]:
            sim = Simulator()
            trace = []
            for i in range(50):
                delay = (i * 37 % 11) / 10
                sim.call_in(delay, lambda i=i: trace.append((sim.now, f"ev{i}")))
            sim.run()
            return trace

        assert run() == run()
