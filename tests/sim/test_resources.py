"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Resource, SimulationError, Simulator, Store


class TestResource:
    def test_grants_up_to_capacity_immediately(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        first, second, third = res.request(), res.request(), res.request()
        assert first.triggered and second.triggered
        assert not third.triggered
        assert res.count == 2
        assert res.queue_length == 1

    def test_release_grants_next_in_fifo_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        first = res.request()
        second = res.request()
        third = res.request()
        res.release(first)
        assert second.triggered and not third.triggered
        res.release(second)
        assert third.triggered

    def test_release_of_queued_request_cancels_it(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        first = res.request()
        second = res.request()
        res.release(second)  # cancel while queued
        res.release(first)
        assert not second.triggered
        assert res.count == 0

    def test_double_release_is_noop(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        req = res.request()
        res.release(req)
        res.release(req)
        assert res.count == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)

    def test_with_statement_in_process(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def worker(name, hold):
            with res.request() as req:
                yield req
                order.append((f"{name}-in", sim.now))
                yield sim.timeout(hold)
            order.append((f"{name}-out", sim.now))

        sim.spawn(worker("a", 2.0))
        sim.spawn(worker("b", 1.0))
        sim.run()
        assert order == [("a-in", 0.0), ("a-out", 2.0), ("b-in", 2.0), ("b-out", 3.0)]


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("item")
        got = store.get()
        assert got.triggered
        assert got.value == "item"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = store.get()
        assert not got.triggered
        store.put("late")
        assert got.triggered and got.value == "late"

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.put(i)
        values = [store.get().value for _ in range(5)]
        assert values == [0, 1, 2, 3, 4]

    def test_bounded_store_blocks_put(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        first = store.put("a")
        second = store.put("b")
        assert first.triggered and not second.triggered
        got = store.get()
        assert got.value == "a"
        assert second.triggered  # freed room admits the blocked put

    def test_producer_consumer_processes(self):
        sim = Simulator()
        store = Store(sim)
        consumed = []

        def producer():
            for i in range(3):
                yield sim.timeout(1.0)
                yield store.put(i)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                consumed.append((sim.now, item))

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert consumed == [(1.0, 0), (2.0, 1), (3.0, 2)]

    def test_len_reports_queued_items(self):
        sim = Simulator()
        store = Store(sim)
        assert len(store) == 0
        store.put("x")
        store.put("y")
        assert len(store) == 2
