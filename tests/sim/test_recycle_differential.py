"""Recycled vs allocating defer-path differential.

``Simulator.defer`` recycles spent ``_Deferred`` records through a
free list; ``Simulator(recycle=False)`` (or ``REPRO_EVENT_RECYCLE=0``)
keeps the pre-recycling allocation path alive as the differential
reference. Recycling is pure mechanism: for any schedule — including
same-timestamp ties, re-entrant defers from inside a firing callback,
failed events, and cancelled periodic timers — the two modes must
execute the identical callback sequence at the identical times.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import RECYCLE_ENV, Event, Simulator

#: Delay palette biased toward 0.0 so schedules are dense with
#: same-timestamp ties (ordering then rides entirely on seq).
_DELAYS = st.sampled_from([0.0, 0.0, 0.0, 0.25, 0.5, 1.0, 1.75])

#: One op per initial defer: (delay, fan_out, chain_depth).
_OPS = st.tuples(_DELAYS, st.integers(0, 2), st.integers(0, 3))


def _run_plan(plan, recycle):
    """Execute a schedule drawn by hypothesis; return its trace."""
    sim = Simulator(recycle=recycle)
    trace = []

    def chained(op_index, depth, delay, fan_out):
        def fire():
            trace.append((sim.now, op_index, depth))
            if depth > 0:
                # Re-entrant defers: the record that just fired is on
                # the free list again and may be handed straight back.
                for child in range(fan_out):
                    sim.defer(
                        delay + 0.25 * child,
                        chained(op_index, depth - 1, delay, fan_out),
                    )

        return fire

    for op_index, (delay, fan_out, depth) in enumerate(plan):
        sim.defer(delay, chained(op_index, depth, delay, max(1, fan_out)))

    # A one-shot event with a callback, succeeded from a deferred tick.
    marker = sim.event()
    marker.callbacks.append(lambda ev: trace.append((sim.now, "event", ev.value)))
    sim.defer(0.5, lambda: marker.succeed("ok"))

    # A failing event whose exception is consumed (defused).
    failing = sim.event()
    failing.defused = True
    failing.callbacks.append(lambda ev: trace.append((sim.now, "failed", ev._ok)))
    sim.defer(0.75, lambda: failing.fail(RuntimeError("expected")))

    # A periodic timer cancelled mid-run: the already-armed tick fires
    # as a no-op, exercising the cancelled arc of the recycled path.
    ticker = sim.call_every(0.6, lambda: trace.append((sim.now, "tick")))
    sim.defer(2.0, ticker.cancel)

    sim.run()
    return trace, sim


class TestRecycleDifferential:
    @settings(max_examples=60, deadline=None)
    @given(plan=st.lists(_OPS, min_size=1, max_size=24))
    def test_recycled_trace_matches_allocating_trace(self, plan):
        recycled_trace, recycled_sim = _run_plan(plan, recycle=True)
        reference_trace, reference_sim = _run_plan(plan, recycle=False)
        assert recycled_trace == reference_trace
        assert recycled_sim.now == reference_sim.now
        assert recycled_sim.events_processed == reference_sim.events_processed

    @settings(max_examples=20, deadline=None)
    @given(plan=st.lists(_OPS, min_size=8, max_size=24))
    def test_reference_mode_never_reuses(self, plan):
        _trace, sim = _run_plan(plan, recycle=False)
        assert sim.deferred_reuses == 0
        assert sim.deferred_allocations > 0

    def test_env_gate_disables_recycling(self, monkeypatch):
        monkeypatch.setenv(RECYCLE_ENV, "0")
        sim = Simulator()
        assert sim._recycle is False
        monkeypatch.setenv(RECYCLE_ENV, "1")
        assert Simulator()._recycle is True
        monkeypatch.delenv(RECYCLE_ENV)
        assert Simulator()._recycle is True

    def test_tie_heavy_chain_mostly_reuses(self):
        # Steady-state chained defers should be near-allocation-free:
        # each firing record is recycled into the next defer.
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 500:
                sim.defer(0.0, tick)

        sim.defer(0.0, tick)
        sim.run()
        assert count[0] == 500
        assert sim.deferred_reuses >= 498
        assert sim.deferred_allocations <= 2

    def test_interleaved_event_states_survive_recycling(self):
        # Events triggered from recycled records keep their own
        # identity/state; the free list only ever holds _Deferred
        # records, never Events.
        sim = Simulator()
        events = [sim.event() for _ in range(5)]
        for index, ev in enumerate(events):
            sim.defer(0.1 * index, lambda e=ev, i=index: e.succeed(i))
        sim.run()
        assert [ev.value for ev in events] == list(range(5))
        assert all(ev._state == Event.PROCESSED for ev in events)
