"""Unit tests for seeded RNG streams and the tracer."""

from repro.sim import RandomStreams, Tracer


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(42).stream("jobs").random(10)
        b = RandomStreams(42).stream("jobs").random(10)
        assert (a == b).all()

    def test_different_names_are_independent(self):
        streams = RandomStreams(42)
        a = streams.stream("jobs").random(10)
        b = streams.stream("arrivals").random(10)
        assert not (a == b).all()

    def test_adding_a_stream_does_not_perturb_others(self):
        plain = RandomStreams(7)
        first = plain.stream("a").random(5)

        interleaved = RandomStreams(7)
        interleaved.stream("new-consumer").random(100)  # extra consumer
        second = interleaved.stream("a").random(5)
        assert (first == second).all()

    def test_stream_is_cached(self):
        streams = RandomStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_spawn_children_are_independent(self):
        parent = RandomStreams(3)
        child_a = parent.spawn("a").stream("s").random(5)
        child_b = parent.spawn("b").stream("s").random(5)
        parent_s = parent.stream("s").random(5)
        assert not (child_a == child_b).all()
        assert not (child_a == parent_s).all()


class TestTracer:
    def test_records_with_clock(self):
        clock = [0.0]
        tracer = Tracer(clock=lambda: clock[0])
        tracer.record("cat", "hello", key=1)
        clock[0] = 5.0
        tracer.record("cat", "world", key=2)
        assert [r.time for r in tracer.records] == [0.0, 5.0]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record("cat", "msg")
        assert tracer.records == []

    def test_filter_by_category_and_data(self):
        tracer = Tracer()
        tracer.record("a", "one", node="x")
        tracer.record("b", "two", node="x")
        tracer.record("a", "three", node="y")
        assert [r.message for r in tracer.filter("a")] == ["one", "three"]
        assert [r.message for r in tracer.filter("a", node="x")] == ["one"]
        assert tracer.count(node="x") == 2

    def test_clear_and_dump(self):
        tracer = Tracer()
        tracer.record("cat", "msg")
        assert "msg" in tracer.dump()
        tracer.clear()
        assert tracer.records == []
        assert tracer.dump() == ""

    def test_bind_clock_later(self):
        tracer = Tracer()
        tracer.bind_clock(lambda: 9.0)
        tracer.record("cat", "late")
        assert tracer.records[0].time == 9.0
