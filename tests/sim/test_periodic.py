"""PeriodicCall / Simulator.call_every (the gossip tick primitive)."""

import pytest

from repro.sim import PeriodicCall, SimulationError, Simulator


class TestPeriodicCall:
    def test_ticks_at_fixed_intervals(self):
        sim = Simulator()
        times = []
        timer = sim.call_every(0.5, lambda: times.append(sim.now))
        sim.run(until=2.1)
        timer.cancel()
        assert times == [0.5, 1.0, 1.5, 2.0]
        assert timer.ticks == 4

    def test_first_at_overrides_the_initial_delay(self):
        sim = Simulator()
        times = []
        timer = sim.call_every(1.0, lambda: times.append(sim.now), first_at=0.25)
        sim.run(until=2.5)
        timer.cancel()
        assert times == [0.25, 1.25, 2.25]

    def test_cancel_stops_future_ticks_and_drains(self):
        sim = Simulator()
        times = []
        timer = sim.call_every(1.0, lambda: times.append(sim.now))
        sim.run(until=2.0)
        timer.cancel()
        assert timer.cancelled
        sim.run()  # the already-queued tick must not fire; queue drains
        assert times == [1.0, 2.0]
        assert timer.ticks == 2

    def test_cancel_from_inside_the_callback(self):
        sim = Simulator()
        timer: list[PeriodicCall] = []

        def tick():
            if timer[0].ticks >= 3:
                timer[0].cancel()

        timer.append(sim.call_every(0.1, tick))
        sim.run()  # terminates because the third tick cancels
        assert timer[0].ticks == 3

    def test_non_positive_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_every(0.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.call_every(-1.0, lambda: None)
