"""Calendar queue vs binary heap: the pending-event-set oracle.

The calendar queue (:class:`repro.sim.calendar.CalendarQueue`) is only
admissible as a drop-in simulator queue if it pops in *exactly* the
order the heap does — same-timestamp ties included, where the unique
``seq`` must break them FIFO. The heap is the oracle: hypothesis
generates schedules (including interleaved pushes/pops under the
simulator's time-monotonicity invariant, duplicate timestamps, and
sparse far-apart times that force the dry-year fallback) and every
property demands identical ``(at, seq)`` sequences. A full-simulation
property then runs whole random scenarios under both queues and
requires identical event counts, logs, and final clocks.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CalendarQueue, HeapEventQueue, SimulationError, Simulator
from repro.sim.engine import QUEUE_ENV

pytestmark = pytest.mark.metrics

_times = st.floats(
    min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False
)

# Duplicate-heavy times: a small pool guarantees ties.
_tying_times = st.sampled_from((0.0, 0.5, 0.5, 1.0, 1.0, 1.0, 2.5))


def _drain(queue):
    order = []
    while queue:
        order.append(queue.pop()[:2])
    return order


class TestPopOrderOracle:
    @settings(deadline=None, max_examples=150)
    @given(times=st.lists(st.one_of(_times, _tying_times), max_size=80))
    def test_push_all_pop_all_matches_heap(self, times):
        heap, calendar = HeapEventQueue(), CalendarQueue()
        for seq, at in enumerate(times):
            heap.push(at, seq, f"ev{seq}")
            calendar.push(at, seq, f"ev{seq}")
        assert len(calendar) == len(heap) == len(times)
        assert _drain(calendar) == _drain(heap)

    @settings(deadline=None, max_examples=150)
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.floats(min_value=0.0, max_value=50.0,
                                               allow_nan=False)),
            max_size=80,
        )
    )
    def test_interleaved_ops_match_heap(self, ops):
        # Pushes use now + delay, pops advance now — the simulator's
        # monotonicity invariant, under which the calendar's forward
        # scan is valid. Peek must agree before every pop too.
        heap, calendar = HeapEventQueue(), CalendarQueue()
        seq, now = 0, 0.0
        for is_push, delay in ops:
            if is_push or not heap:
                heap.push(now + delay, seq, None)
                calendar.push(now + delay, seq, None)
                seq += 1
            else:
                assert calendar.peek_time() == heap.peek_time()
                got, want = calendar.pop(), heap.pop()
                assert got[:2] == want[:2]
                now = want[0]
        assert _drain(calendar) == _drain(heap)

    @settings(deadline=None, max_examples=50)
    @given(times=st.lists(_times, min_size=1, max_size=200))
    def test_resize_thresholds_preserve_order(self, times):
        # 200 pushes into an 8-bucket queue force repeated doublings;
        # draining it back forces shrinks. Order must survive both.
        heap, calendar = HeapEventQueue(), CalendarQueue(width=0.5, nbuckets=2)
        for seq, at in enumerate(times):
            heap.push(at, seq, None)
            calendar.push(at, seq, None)
        assert _drain(calendar) == _drain(heap)

    def test_sparse_schedule_uses_dry_year_fallback(self):
        # Times thousands of widths apart: the one-year scan finds
        # nothing and the global-minimum fallback must locate the head.
        calendar = CalendarQueue(width=1.0, nbuckets=4)
        for seq, at in enumerate((0.0, 5000.0, 12345.5, 99999.0)):
            calendar.push(at, seq, None)
        assert calendar.peek_time() == 0.0
        popped = [calendar.pop()[0] for _ in range(4)]
        assert popped == [0.0, 5000.0, 12345.5, 99999.0]

    def test_empty_queue_contract(self):
        calendar = CalendarQueue()
        assert not calendar
        assert len(calendar) == 0
        assert calendar.peek_time() is None
        with pytest.raises(IndexError, match="empty calendar queue"):
            calendar.pop()

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="width must be positive"):
            CalendarQueue(width=0.0)
        with pytest.raises(ValueError, match="at least 2 buckets"):
            CalendarQueue(nbuckets=1)


def _random_scenario(sim, rng_seed, log):
    """A few dozen timeouts/call_ats with nested mid-run scheduling."""
    import numpy as np

    rng = np.random.default_rng(rng_seed)

    def fire(tag):
        log.append((sim.now, tag))

    for index, delay in enumerate(rng.uniform(0.0, 20.0, 30)):
        if index % 3 == 0:
            sim.call_at(float(delay), lambda i=index: fire(i))
        elif index % 3 == 1:
            sim.call_in(float(delay), lambda i=index: (
                fire(i), sim.call_in(0.5, lambda i=i: fire((i, "nested")))
            ))
        else:
            event = sim.timeout(float(delay))
            event.callbacks.append(lambda _ev, i=index: fire(i))


#: Flash-crowd-shaped schedules: a handful of burst instants, each
#: receiving a pile of events at the *same* timestamp (an open-loop
#: arrival spike lands whole cohorts on one tick), over a quiet
#: baseline. This is the adversarial shape for the calendar's adaptive
#: resize: the width estimate is taken from a sample that mixes huge
#: same-bucket clusters with long empty stretches.
_burst_schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),  # burst at
        st.integers(min_value=1, max_value=40),                      # burst size
        st.floats(min_value=0.0, max_value=0.01, allow_nan=False),   # jitter step
    ),
    min_size=1,
    max_size=8,
)


class TestFlashCrowdShapedStreams:
    @settings(deadline=None, max_examples=150)
    @given(bursts=_burst_schedules)
    def test_bursty_push_all_pop_all_matches_heap(self, bursts):
        # Whole bursts at one timestamp (jitter 0.0 -> exact ties) must
        # pop FIFO within the tie, identically under both queues.
        heap, calendar = HeapEventQueue(), CalendarQueue()
        seq = 0
        for at, size, jitter in bursts:
            for k in range(size):
                t = at + k * jitter
                heap.push(t, seq, None)
                calendar.push(t, seq, None)
                seq += 1
        assert len(calendar) == len(heap) == seq
        assert _drain(calendar) == _drain(heap)

    @settings(deadline=None, max_examples=100)
    @given(
        bursts=_burst_schedules,
        drain_between=st.lists(st.integers(min_value=0, max_value=60), max_size=8),
    )
    def test_partial_drain_between_bursts_matches_heap(self, bursts, drain_between):
        # Arrive a burst, serve part of the backlog, repeat — the
        # shed/serve rhythm of an overloaded server. Pops advance time
        # monotonically; pushes always land at or after "now" by
        # clamping each burst to the current clock.
        heap, calendar = HeapEventQueue(), CalendarQueue(width=0.5, nbuckets=2)
        seq, now = 0, 0.0
        pops = iter(drain_between + [0] * len(bursts))
        for at, size, jitter in bursts:
            base = max(at, now)
            for k in range(size):
                t = base + k * jitter
                heap.push(t, seq, None)
                calendar.push(t, seq, None)
                seq += 1
            for _ in range(next(pops)):
                if not heap:
                    break
                assert calendar.peek_time() == heap.peek_time()
                got, want = calendar.pop(), heap.pop()
                assert got[:2] == want[:2]
                now = want[0]
        assert _drain(calendar) == _drain(heap)

    def test_single_instant_crowd(self):
        # Degenerate flash crowd: every event at literally the same
        # time. Tie-break must be pure FIFO by seq.
        heap, calendar = HeapEventQueue(), CalendarQueue(width=1.0, nbuckets=2)
        for seq in range(500):
            heap.push(42.0, seq, None)
            calendar.push(42.0, seq, None)
        order = _drain(calendar)
        assert order == _drain(heap)
        assert [s for _at, s in order] == list(range(500))


class TestFullSimulationEquivalence:
    @settings(deadline=None, max_examples=25)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_same_events_log_and_clock_under_either_queue(self, seed):
        logs, counts, clocks = [], [], []
        for queue in (HeapEventQueue(), CalendarQueue()):
            sim = Simulator(queue=queue)
            log = []
            _random_scenario(sim, seed, log)
            sim.run()
            logs.append(log)
            counts.append(sim.events_processed)
            clocks.append(sim.now)
        assert logs[0] == logs[1]
        assert counts[0] == counts[1]
        assert clocks[0] == clocks[1]

    def test_run_until_is_identical(self):
        for queue in (HeapEventQueue(), CalendarQueue()):
            sim = Simulator(queue=queue)
            log = []
            _random_scenario(sim, 7, log)
            sim.run(until=10.0)
            assert sim.now <= 10.0
            assert all(t <= 10.0 for t, _ in log)


class TestQueueSelection:
    def test_env_selects_calendar(self, monkeypatch):
        monkeypatch.setenv(QUEUE_ENV, "calendar")
        assert isinstance(Simulator()._queue, CalendarQueue)

    def test_env_selects_heap_explicitly_and_by_default(self, monkeypatch):
        monkeypatch.setenv(QUEUE_ENV, "heap")
        assert isinstance(Simulator()._queue, HeapEventQueue)
        monkeypatch.delenv(QUEUE_ENV)
        assert isinstance(Simulator()._queue, HeapEventQueue)

    def test_unknown_queue_name_is_an_error(self, monkeypatch):
        monkeypatch.setenv(QUEUE_ENV, "skiplist")
        with pytest.raises(SimulationError, match="skiplist"):
            Simulator()

    def test_explicit_queue_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(QUEUE_ENV, "calendar")
        queue = HeapEventQueue()
        assert Simulator(queue=queue)._queue is queue
