"""Property-based tests for the simulation kernel.

Random interleavings of the four scheduling primitives (``timeout``,
``call_at``, ``call_in``, manually triggered ``event``), including
callbacks that schedule more work mid-run, must never violate the
engine's contract: events process in timestamp order, ``run(until=...)``
never overshoots, identical schedules replay identically, and triggering
an event twice always raises :class:`SimulationError`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SimulationError, Simulator

pytestmark = pytest.mark.metrics

_KINDS = ("timeout", "call_at", "call_in", "event")

_delays = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)

#: One scheduling op: (primitive, delay, optional nested call_in delay).
_ops = st.tuples(
    st.sampled_from(_KINDS), _delays, st.one_of(st.none(), _delays)
)


def _schedule(sim: Simulator, ops, log):
    """Install every op at t=0; fired ops append (time, op_index)."""
    for index, (kind, delay, nested) in enumerate(ops):

        def fire(index=index, nested=nested):
            log.append((sim.now, index))
            if nested is not None:
                # Work scheduled *from* a callback interleaves too.
                sim.call_in(nested, lambda: log.append((sim.now, index)))

        if kind == "timeout":
            ev = sim.timeout(delay)
            ev.callbacks.append(lambda _ev, fire=fire: fire())
        elif kind == "call_at":
            sim.call_at(delay, fire)  # absolute == relative at t=0
        elif kind == "call_in":
            sim.call_in(delay, fire)
        else:
            ev = sim.event()
            ev.callbacks.append(lambda _ev, fire=fire: fire())
            sim.call_in(delay, lambda ev=ev: ev.succeed())


class TestTimestampOrder:
    @settings(deadline=None, max_examples=200)
    @given(ops=st.lists(_ops, max_size=30))
    def test_events_never_process_out_of_order(self, ops):
        sim = Simulator()
        log: list[tuple[float, int]] = []
        _schedule(sim, ops, log)
        sim.run()
        times = [t for t, _ in log]
        assert times == sorted(times)
        # Everything scheduled actually fired.
        expected = len(ops) + sum(1 for _, _, nested in ops if nested is not None)
        assert len(log) == expected

    @settings(deadline=None, max_examples=100)
    @given(ops=st.lists(_ops, max_size=20))
    def test_identical_schedules_replay_identically(self, ops):
        logs = []
        for _ in range(2):
            sim = Simulator()
            log: list[tuple[float, int]] = []
            _schedule(sim, ops, log)
            sim.run()
            logs.append(log)
        assert logs[0] == logs[1]


class TestRunUntil:
    @settings(deadline=None, max_examples=200)
    @given(ops=st.lists(_ops, max_size=20), until=_delays)
    def test_run_until_never_overshoots(self, ops, until):
        sim = Simulator()
        log: list[tuple[float, int]] = []
        _schedule(sim, ops, log)
        sim.run(until=until)
        assert all(t <= until for t, _ in log)
        # Time lands exactly on the horizon, even if the last event
        # fired earlier, and nothing beyond the horizon was consumed.
        assert sim.now == until
        assert sim.peek() is None or sim.peek() > until

    @settings(deadline=None, max_examples=50)
    @given(ops=st.lists(_ops, max_size=15), until=_delays)
    def test_resuming_after_until_processes_the_rest(self, ops, until):
        sim = Simulator()
        log: list[tuple[float, int]] = []
        _schedule(sim, ops, log)
        sim.run(until=until)
        seen_at_pause = len(log)
        sim.run()
        times = [t for t, _ in log]
        assert times == sorted(times)
        assert all(t > until for t, _ in log[seen_at_pause:])

    def test_run_until_in_the_past_raises(self):
        sim = Simulator()
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)


class TestRetrigger:
    @settings(deadline=None, max_examples=100)
    @given(
        first=st.sampled_from(["succeed", "fail"]),
        second=st.sampled_from(["succeed", "fail"]),
    )
    def test_retriggering_always_raises(self, first, second):
        sim = Simulator()
        ev = sim.event()
        ev.defused = True  # keep a failed value from crashing the queue
        getattr(ev, first)(RuntimeError("x") if first == "fail" else None)
        with pytest.raises(SimulationError):
            getattr(ev, second)(RuntimeError("y") if second == "fail" else None)

    @settings(deadline=None, max_examples=50)
    @given(delay=_delays)
    def test_timeouts_are_born_triggered(self, delay):
        sim = Simulator()
        ev = sim.timeout(delay)
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)
