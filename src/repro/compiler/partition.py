"""Step E — XCLBIN partitioning.

Gathers each XO's resource utilization and the device's usable area
(after the static shell: host interface, reconfiguration control,
memory controllers) and assigns kernels to one or more XCLBIN files.
Automatic mode packs by first-fit-decreasing on the binding-constraint
fraction; manual groups from the profiling spec pin kernels together so
a designer can co-locate high-priority functions (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.xo import XilinxObject
from repro.hardware.fpga import FPGAResources, FPGASpec

__all__ = ["XCLBINPlan", "PartitionError", "partition"]


class PartitionError(Exception):
    """Raised when a kernel set cannot be partitioned onto the device."""


@dataclass
class XCLBINPlan:
    """One planned configuration file: which kernels share an image."""

    name: str
    objects: list[XilinxObject] = field(default_factory=list)

    @property
    def kernel_names(self) -> tuple[str, ...]:
        return tuple(obj.kernel_name for obj in self.objects)

    @property
    def resources(self) -> FPGAResources:
        total = FPGAResources()
        for obj in self.objects:
            total = total + obj.resources
        return total

    def fits(self, device: FPGASpec) -> bool:
        return self.resources.fits_in(device.usable_resources)


def partition(
    objects: list[XilinxObject],
    device: FPGASpec,
    manual_groups: dict[str, str] | None = None,
) -> list[XCLBINPlan]:
    """Assign XOs to XCLBINs under the device's area budget.

    ``manual_groups`` maps kernel name -> group label; all kernels with
    the same label must share one XCLBIN (an error if they cannot fit).
    Ungrouped kernels are packed automatically, first-fit-decreasing.
    Returns plans in creation order; every input object appears exactly
    once.
    """
    if not objects:
        return []
    budget = device.usable_resources
    seen: set[str] = set()
    for obj in objects:
        if obj.kernel_name in seen:
            raise PartitionError(f"duplicate kernel {obj.kernel_name!r}")
        seen.add(obj.kernel_name)
        if not obj.resources.fits_in(budget):
            raise PartitionError(
                f"kernel {obj.kernel_name!r} alone exceeds {device.name}'s "
                f"usable area"
            )

    manual_groups = manual_groups or {}
    plans: list[XCLBINPlan] = []

    # Manual groups first, in first-appearance order.
    group_order: list[str] = []
    grouped: dict[str, list[XilinxObject]] = {}
    auto: list[XilinxObject] = []
    for obj in objects:
        label = manual_groups.get(obj.kernel_name)
        if label is None:
            auto.append(obj)
        else:
            if label not in grouped:
                group_order.append(label)
                grouped[label] = []
            grouped[label].append(obj)
    for label in group_order:
        plan = XCLBINPlan(name=f"xclbin_{label}", objects=grouped[label])
        if not plan.fits(device):
            raise PartitionError(
                f"manual group {label!r} ({plan.kernel_names}) exceeds the "
                f"usable area; split the group"
            )
        plans.append(plan)

    # Auto kernels: first-fit-decreasing by binding fraction, trying
    # manual plans' leftover space first.
    auto_sorted = sorted(
        auto, key=lambda o: -o.resources.max_fraction_of(budget)
    )
    auto_plans: list[XCLBINPlan] = []
    for obj in auto_sorted:
        placed = False
        for plan in plans + auto_plans:
            trial = plan.resources + obj.resources
            if trial.fits_in(budget):
                plan.objects.append(obj)
                placed = True
                break
        if not placed:
            auto_plans.append(
                XCLBINPlan(name=f"xclbin_auto{len(auto_plans)}", objects=[obj])
            )
    return plans + auto_plans
