"""The Xar-Trek compiler framework (Figure 1, steps A-G)."""

from repro.compiler.hls import (
    HLSError,
    HLSReport,
    KernelIR,
    OpCounts,
    estimate,
    kernel_ir_for,
)
from repro.compiler.instrument import (
    CallSite,
    CallSiteKind,
    InstrumentedApplication,
    instrument,
)
from repro.compiler.multi_isa import (
    SUPPORTED_ISAS,
    CodeModel,
    CompiledBinary,
    compile_multi_isa,
)
from repro.compiler.partition import PartitionError, XCLBINPlan, partition
from repro.compiler.pipeline import (
    CompilationResult,
    CompiledApplication,
    XarTrekCompiler,
)
from repro.compiler.profiling import (
    ApplicationSpec,
    ProfilingSpec,
    SelectedFunction,
    SpecError,
)
from repro.compiler.sizes import SizeBreakdown, single_isa_size, size_breakdown
from repro.compiler.threshold_estimation import (
    estimate_thresholds,
    simulate_x86_time_under_load,
    x86_time_under_load,
)
from repro.compiler.xclbin import XCLBIN, generate_xclbin
from repro.compiler.xo import XilinxObject, generate_xo

__all__ = [
    "ApplicationSpec",
    "CallSite",
    "CallSiteKind",
    "CodeModel",
    "CompilationResult",
    "CompiledApplication",
    "CompiledBinary",
    "HLSError",
    "HLSReport",
    "InstrumentedApplication",
    "KernelIR",
    "OpCounts",
    "PartitionError",
    "ProfilingSpec",
    "SUPPORTED_ISAS",
    "SelectedFunction",
    "SizeBreakdown",
    "SpecError",
    "XCLBIN",
    "XCLBINPlan",
    "XarTrekCompiler",
    "XilinxObject",
    "compile_multi_isa",
    "estimate",
    "estimate_thresholds",
    "generate_xclbin",
    "generate_xo",
    "instrument",
    "kernel_ir_for",
    "partition",
    "simulate_x86_time_under_load",
    "single_isa_size",
    "size_breakdown",
    "x86_time_under_load",
]
