"""The full Xar-Trek compiler pipeline (Figure 1, steps A-G).

:class:`XarTrekCompiler` drives the whole flow: parse the profiling
spec (A), instrument each application (B), generate multi-ISA binaries
(C), synthesize one XO per selected function (D), partition XOs into
XCLBINs under the device area (E), generate the XCLBIN images (F), and
estimate per-application migration thresholds (G). The result bundle is
everything the run-time needs to deploy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.compiler.instrument import InstrumentedApplication, instrument
from repro.compiler.multi_isa import CodeModel, CompiledBinary, compile_multi_isa
from repro.compiler.partition import partition
from repro.compiler.profiling import ProfilingSpec
from repro.compiler.threshold_estimation import estimate_thresholds
from repro.compiler.xclbin import XCLBIN, generate_xclbin
from repro.compiler.xo import XilinxObject, generate_xo
from repro.hardware.fpga import ALVEO_U50, FPGASpec
from repro.thresholds import ThresholdTable
from repro.workloads.perfmodel import WorkloadProfile, profile_for

__all__ = ["CompiledApplication", "CompilationResult", "XarTrekCompiler"]


@dataclass(frozen=True)
class CompiledApplication:
    """Everything the pipeline produced for one application."""

    name: str
    instrumented: InstrumentedApplication
    compiled: CompiledBinary
    profile: WorkloadProfile
    #: XCLBIN image name per selected function's kernel.
    kernel_images: dict[str, str] = field(default_factory=dict)

    @property
    def binary_size_bytes(self) -> int:
        return self.compiled.size_bytes


@dataclass
class CompilationResult:
    """The deployable bundle: binaries, images, and the threshold table."""

    applications: dict[str, CompiledApplication]
    xclbins: dict[str, XCLBIN]
    thresholds: ThresholdTable
    device: FPGASpec

    def application(self, name: str) -> CompiledApplication:
        try:
            return self.applications[name]
        except KeyError:
            raise KeyError(f"application {name!r} was not compiled") from None

    def xclbin_for(self, kernel_name: str) -> XCLBIN:
        """The image that hosts a hardware kernel."""
        for image in self.xclbins.values():
            if kernel_name in image.kernel_names:
                return image
        raise KeyError(f"no XCLBIN hosts kernel {kernel_name!r}")


class XarTrekCompiler:
    """Drives steps A-G for a profiling specification.

    ``replicate_compute_units`` enables the space-sharing extension
    (paper Section 7): leftover FPGA area is filled with extra compute
    units so concurrent invocations of the same kernel run in parallel.
    """

    def __init__(
        self, device: FPGASpec = ALVEO_U50, replicate_compute_units: bool = False
    ):
        self.device = device
        self.replicate_compute_units = replicate_compute_units

    def compile(
        self,
        spec: ProfilingSpec,
        profiles: Optional[dict[str, WorkloadProfile]] = None,
        threshold_max_load: int = 256,
    ) -> CompilationResult:
        """Run the full pipeline.

        ``profiles`` overrides the calibrated per-workload profiles
        (keyed by application name); by default they come from the
        workload registry.
        """
        # Step A happened offline: `spec` is its artifact.
        apps: dict[str, CompiledApplication] = {}
        objects: list[XilinxObject] = []
        manual_groups: dict[str, str] = {}
        used_profiles: list[WorkloadProfile] = []

        for app_spec in spec.applications:
            profile = (profiles or {}).get(app_spec.name) or profile_for(app_spec.name)
            used_profiles.append(profile)

            # Step B: instrumentation.
            instrumented = instrument(app_spec)

            # Step C: multi-ISA binary generation (Popcorn).
            code = CodeModel(
                application=app_spec.name,
                loc=profile.loc,
                selected_functions=instrumented.selected_functions,
            )
            compiled = compile_multi_isa(code)

            # Step D: one XO per selected function.
            app_objects = []
            for fn in app_spec.functions:
                xo = generate_xo(app_spec.name, fn, self.device)
                app_objects.append(xo)
                if fn.xclbin_group is not None:
                    manual_groups[fn.kernel_name] = fn.xclbin_group
            objects.extend(app_objects)

            apps[app_spec.name] = CompiledApplication(
                name=app_spec.name,
                instrumented=instrumented,
                compiled=compiled,
                profile=profile,
            )

        # Step E: partition XOs into XCLBIN plans.
        plans = partition(objects, self.device, manual_groups=manual_groups)

        # Step F: generate images.
        xclbins = {
            plan.name: generate_xclbin(
                plan, self.device, replicate=self.replicate_compute_units
            )
            for plan in plans
        }

        # Back-fill each application's kernel -> image mapping.
        kernel_to_image = {
            kernel: image.name
            for image in xclbins.values()
            for kernel in image.kernel_names
        }
        for app_spec in spec.applications:
            app = apps[app_spec.name]
            for fn in app_spec.functions:
                app.kernel_images[fn.kernel_name] = kernel_to_image[fn.kernel_name]

        # Step G: threshold estimation.
        thresholds = estimate_thresholds(used_profiles, max_load=threshold_max_load)

        return CompilationResult(
            applications=apps,
            xclbins=xclbins,
            thresholds=thresholds,
            device=self.device,
        )
