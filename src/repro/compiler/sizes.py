"""Binary-size accounting (Figure 10).

Three development processes, three artifact sets:

* traditional FPGA (``x86+FPGA``): one single-ISA x86 executable plus
  the XCLBIN;
* Popcorn (``x86+ARM``): one multi-ISA executable (both ISA images,
  aligned symbols, liveness metadata), no XCLBIN;
* Xar-Trek: the multi-ISA executable *plus* the XCLBIN — it subsumes
  both baselines, hence Figure 10's "always largest" result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.multi_isa import (
    _RUNTIME_TEXT_BYTES,
    _TEXT_BYTES_PER_LOC,
    CodeModel,
    compile_multi_isa,
)
from repro.compiler.xclbin import XCLBIN

__all__ = ["SizeBreakdown", "single_isa_size", "size_breakdown"]


def single_isa_size(code: CodeModel, isa: str = "x86_64") -> int:
    """A traditional single-ISA, statically linked executable."""
    text = int(code.loc * _TEXT_BYTES_PER_LOC[isa] + _RUNTIME_TEXT_BYTES[isa])
    return text + 64_000 + code.data_bytes


@dataclass(frozen=True)
class SizeBreakdown:
    """Figure 10's three bars for one application, in bytes."""

    application: str
    x86_fpga: int  # traditional FPGA development process
    popcorn: int  # heterogeneous-ISA process (x86+ARM)
    xar_trek: int  # both

    @property
    def increase_vs_x86_fpga(self) -> float:
        """Xar-Trek's relative size increase over the FPGA baseline."""
        return self.xar_trek / self.x86_fpga - 1.0

    @property
    def increase_vs_popcorn(self) -> float:
        return self.xar_trek / self.popcorn - 1.0


def size_breakdown(code: CodeModel, xclbin: XCLBIN) -> SizeBreakdown:
    """Compute Figure 10's bars for one application.

    ``xclbin`` is the image holding this application's kernel (its full
    size counts for both FPGA-including processes, as in the paper —
    the XCLBIN ships with the application even when shared).
    """
    compiled = compile_multi_isa(code)
    multi_isa = compiled.size_bytes
    single = single_isa_size(code)
    return SizeBreakdown(
        application=code.application,
        x86_fpga=single + xclbin.size_bytes,
        popcorn=multi_isa,
        xar_trek=multi_isa + xclbin.size_bytes,
    )
