"""Step D substrate — a Vitis-HLS-like estimation model.

Real Vitis maps a C function to FPGA logic and reports resource use
(LUT/FF/BRAM/DSP/URAM) and latency. This module reproduces that
contract: a :class:`KernelIR` describes the function's compute shape
(operation mix, loop structure, on-chip buffers), and :func:`estimate`
produces an :class:`HLSReport` using documented per-operation cost
formulas in the spirit of HLS resource estimation. The absolute numbers
are model parameters; what matters downstream is that (a) kernels with
more compute demand more area, (b) the partitioner (step E) packs
against these vectors, and (c) on-chip buffer needs bound feasible
problem sizes (Section 4.4's "could not support graphs larger than
5,000 nodes" falls out of the URAM/BRAM bound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.fpga import FPGAResources, FPGASpec

__all__ = ["OpCounts", "KernelIR", "HLSReport", "estimate", "HLSError", "kernel_ir_for"]


class HLSError(Exception):
    """Raised when a kernel cannot be synthesized (e.g. exceeds the die)."""


@dataclass(frozen=True)
class OpCounts:
    """Operation mix of one loop-nest iteration."""

    int_add: int = 0
    int_mul: int = 0
    float_add: int = 0
    float_mul: int = 0
    compare: int = 0
    load_store: int = 0

    @property
    def total(self) -> int:
        return (
            self.int_add + self.int_mul + self.float_add
            + self.float_mul + self.compare + self.load_store
        )


@dataclass(frozen=True)
class KernelIR:
    """The compute shape HLS sees for one self-contained function."""

    name: str
    ops: OpCounts
    trip_count: int  # total loop iterations per invocation
    unroll: int = 1  # spatial parallelism (replicated datapath)
    pipeline_ii: int = 1  # initiation interval of the pipelined loop
    buffer_bytes: int = 0  # on-chip working buffers
    irregular_access: bool = False  # pointer-chasing / data-dependent loads
    streams: int = 1  # AXI stream ports

    def __post_init__(self):
        if self.trip_count < 1:
            raise HLSError(f"{self.name}: trip count must be >= 1")
        if self.unroll < 1 or self.pipeline_ii < 1:
            raise HLSError(f"{self.name}: unroll and II must be >= 1")


@dataclass(frozen=True)
class HLSReport:
    """What Vitis reports after synthesis of one kernel."""

    kernel_name: str
    resources: FPGAResources
    latency_cycles: int
    clock_mhz: float
    ii: int

    @property
    def latency_seconds(self) -> float:
        return self.latency_cycles / (self.clock_mhz * 1e6)


# Per-operation datapath costs (one unrolled lane), in the ballpark of
# Vitis reports for 32/64-bit arithmetic on UltraScale+.
_LUT_PER_OP = {
    "int_add": 64,
    "int_mul": 250,
    "float_add": 400,
    "float_mul": 120,  # mostly in DSPs
    "compare": 32,
    "load_store": 90,
}
_DSP_PER_OP = {"int_mul": 3, "float_add": 2, "float_mul": 3}
_FF_PER_LUT = 1.6
_BRAM_BYTES = 4608  # one BRAM36 holds 36 Kib = 4.5 KiB
_URAM_BYTES = 36864  # one URAM holds 288 Kib
_BASE_LUT = 6000  # AXI/control overhead per kernel
_BASE_BRAM = 8
_CLOCK_MHZ = 300.0
#: Penalty multiplier on the achievable II for data-dependent accesses:
#: pointer chasing defeats pipelining (Section 4.4, [54]).
_IRREGULAR_II_FACTOR = 12


def estimate(ir: KernelIR, device: FPGASpec | None = None) -> HLSReport:
    """Synthesize (estimate) one kernel.

    Raises :class:`HLSError` if the kernel cannot fit the device —
    including its on-chip buffers, which is what limits BFS graph sizes
    on the Alveo U50.
    """
    lanes = ir.unroll
    lut = _BASE_LUT + ir.streams * 1500
    dsp = 0
    for op_name in ("int_add", "int_mul", "float_add", "float_mul", "compare", "load_store"):
        count = getattr(ir.ops, op_name)
        lut += _LUT_PER_OP[op_name] * count * lanes
        dsp += _DSP_PER_OP.get(op_name, 0) * count * lanes
    ff = int(lut * _FF_PER_LUT)

    # Buffers go to URAM first (deeper), remainder to BRAM.
    uram = 0
    bram = _BASE_BRAM
    remaining = ir.buffer_bytes
    if remaining > 2 * _URAM_BYTES:
        uram = min(remaining // _URAM_BYTES, 256)
        remaining -= uram * _URAM_BYTES
    bram += math.ceil(remaining / _BRAM_BYTES)

    resources = FPGAResources(lut=lut, ff=ff, bram=bram, dsp=dsp, uram=uram)
    if device is not None and not resources.fits_in(device.usable_resources):
        raise HLSError(
            f"{ir.name}: kernel needs {resources} which exceeds "
            f"{device.name}'s usable area"
        )

    effective_ii = ir.pipeline_ii * (_IRREGULAR_II_FACTOR if ir.irregular_access else 1)
    latency = math.ceil(ir.trip_count / lanes) * effective_ii + 100  # +ramp-up
    return HLSReport(
        kernel_name=ir.name,
        resources=resources,
        latency_cycles=latency,
        clock_mhz=_CLOCK_MHZ,
        ii=effective_ii,
    )


#: Hand-built IRs for the paper's kernels: op mixes mirror the actual
#: inner loops of the functional implementations in repro.workloads.
_KERNEL_IRS: dict[str, KernelIR] = {
    # CG: sparse mat-vec dominates; gather of x[indices[k]] is irregular.
    "KNL_HW_CG_A": KernelIR(
        name="KNL_HW_CG_A",
        ops=OpCounts(float_add=2, float_mul=2, int_add=2, load_store=4),
        trip_count=2_000_000 * 25 // 100,  # nnz x cgitmax (scaled)
        unroll=2,
        buffer_bytes=14000 * 8 * 4,  # x, z, r, p vectors on-chip
        irregular_access=True,
    ),
    # Face detection: integral-image window scan, dense and regular.
    "KNL_HW_FD320": KernelIR(
        name="KNL_HW_FD320",
        ops=OpCounts(int_add=12, compare=5, load_store=16),
        trip_count=320 * 240,
        unroll=4,
        buffer_bytes=320 * 240 * 4,  # integral image
    ),
    "KNL_HW_FD640": KernelIR(
        name="KNL_HW_FD640",
        ops=OpCounts(int_add=12, compare=5, load_store=16),
        trip_count=640 * 480,
        unroll=4,
        buffer_bytes=640 * 480 * 4,
    ),
    # Digit recognition: XOR-popcount over the training set, very regular.
    "KNL_HW_DR500": KernelIR(
        name="KNL_HW_DR500",
        ops=OpCounts(int_add=8, compare=2, load_store=4),
        trip_count=500 * 2000,
        unroll=8,
        buffer_bytes=18000 * 32,  # packed training set
    ),
    "KNL_HW_DR200": KernelIR(
        name="KNL_HW_DR200",
        ops=OpCounts(int_add=8, compare=2, load_store=4),
        trip_count=2000 * 2000,
        unroll=8,
        buffer_bytes=18000 * 32,
    ),
    # Spam filter (extension workload): SGD dot products + sigmoid —
    # dense float MACs, very HLS-friendly.
    "KNL_HW_SF1024": KernelIR(
        name="KNL_HW_SF1024",
        ops=OpCounts(float_add=2, float_mul=2, load_store=3),
        trip_count=900 * 1024 * 5 // 8,
        unroll=8,
        buffer_bytes=1024 * 8 + 64 * 1024,  # weights + streaming batch
    ),
}


def kernel_ir_for(kernel_name: str) -> KernelIR:
    """The IR for a paper kernel; BFS IRs are derived from the node count."""
    if kernel_name in _KERNEL_IRS:
        return _KERNEL_IRS[kernel_name]
    if kernel_name.startswith("KNL_HW_BFS"):
        try:
            n_nodes = int(kernel_name[len("KNL_HW_BFS"):])
        except ValueError:
            raise KeyError(f"bad BFS kernel name {kernel_name!r}") from None
        # The whole frontier/level arrays and CSR graph must sit on-chip;
        # growth is quadratic-ish in nodes for the naive HLS mapping.
        return KernelIR(
            name=kernel_name,
            ops=OpCounts(int_add=4, compare=3, load_store=6),
            trip_count=n_nodes * n_nodes // 16,
            unroll=1,
            buffer_bytes=n_nodes * 8 * 10,
            irregular_access=True,
        )
    raise KeyError(f"no kernel IR for {kernel_name!r}")
