"""Step C — multi-ISA binary generation (the Popcorn compiler step).

The only pipeline step Xar-Trek inherits unchanged from Popcorn Linux
(Section 3.1): compile the instrumented C source for every target ISA,
align all symbols across images, insert migration points at
cross-ISA-equivalent locations, and emit the liveness metadata the
run-time state transformer needs.

Here "compilation" builds the artifacts from an application's code
model: per-ISA section sizes from a bytes-per-LOC model (Popcorn
binaries are statically linked, hence the large constant), a symbol
table covering main/selected functions/globals, and migration points at
each selected function's call boundary with a deterministic live-
variable set.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.popcorn.binary import ISAImage, MultiISABinary, Symbol, SymbolKind
from repro.popcorn.migration_points import (
    CType,
    LivenessMetadata,
    MigrationPoint,
    allocate_locations,
)

__all__ = ["CodeModel", "CompiledBinary", "compile_multi_isa", "SUPPORTED_ISAS"]

SUPPORTED_ISAS: tuple[str, ...] = ("x86_64", "aarch64")

#: Text bytes per line of C, per ISA (x86 is denser; AArch64 is
#: fixed-width 4-byte instructions and spills more).
_TEXT_BYTES_PER_LOC = {"x86_64": 10.5, "aarch64": 12.0}
#: Statically linked C runtime (Popcorn links musl statically).
_RUNTIME_TEXT_BYTES = {"x86_64": 200_000, "aarch64": 220_000}
_DATA_BYTES_BASE = 64_000
#: Cross-ISA symbol alignment wastes slot space (max-size slots).
_ALIGNMENT_OVERHEAD = 0.08
#: Popcorn's per-call-site liveness/unwind metadata grows with code
#: size; this is what makes the 900-LOC CG binary visibly larger than
#: the 300-500-LOC benchmarks in Figure 10.
_METADATA_BYTES_PER_LOC = 150


@dataclass(frozen=True)
class CodeModel:
    """What the compiler knows about an application's source."""

    application: str
    loc: int
    selected_functions: tuple[str, ...]
    data_bytes: int = 0

    def __post_init__(self):
        if self.loc <= 0:
            raise ValueError(f"{self.application}: loc must be positive")


@dataclass(frozen=True)
class CompiledBinary:
    """Step C's output: the multi-ISA binary plus its liveness metadata."""

    binary: MultiISABinary
    metadata: LivenessMetadata

    @property
    def size_bytes(self) -> int:
        return self.binary.size_bytes


def _live_vars_for(function: str, point_kind: str):
    """A deterministic live-variable set for a function's call boundary.

    Variable count (4-12) and types derive from the function name's
    hash, so different functions exercise different register/stack
    splits while staying reproducible.
    """
    digest = hashlib.sha256(f"{function}/{point_kind}".encode()).digest()
    count = 4 + digest[0] % 9
    types = (CType.I64, CType.I32, CType.PTR, CType.F64, CType.I64)
    variables = [
        (f"{point_kind}_v{i}", types[digest[1 + i % 16] % len(types)])
        for i in range(count)
    ]
    return allocate_locations(variables, isas=SUPPORTED_ISAS)


def _migration_points(code: CodeModel) -> list[MigrationPoint]:
    """Call and return points for every selected function, plus main's."""
    points: list[MigrationPoint] = []
    next_id = 1
    for function in code.selected_functions:
        for kind, offset in (("call", 0x10), ("return", 0x400)):
            points.append(
                MigrationPoint(
                    point_id=next_id,
                    function=function,
                    offset=offset,
                    live_vars=tuple(_live_vars_for(function, kind)),
                )
            )
            next_id += 1
    points.append(
        MigrationPoint(
            point_id=next_id,
            function="main",
            offset=0x20,
            live_vars=tuple(_live_vars_for("main", "entry")),
        )
    )
    return points


def compile_multi_isa(
    code: CodeModel, isas: tuple[str, ...] = SUPPORTED_ISAS
) -> CompiledBinary:
    """Compile one application for all target ISAs."""
    metadata = LivenessMetadata(_migration_points(code))
    data_bytes = _DATA_BYTES_BASE + code.data_bytes

    symbols = [
        Symbol(
            "main",
            SymbolKind.FUNCTION,
            {isa: int(60 * _TEXT_BYTES_PER_LOC[isa]) for isa in isas},
        )
    ]
    per_fn_loc = max(20, code.loc // (2 * max(1, len(code.selected_functions))))
    for function in code.selected_functions:
        symbols.append(
            Symbol(
                function,
                SymbolKind.FUNCTION,
                {isa: int(per_fn_loc * _TEXT_BYTES_PER_LOC[isa]) for isa in isas},
            )
        )
    symbols.append(Symbol("__global_data", SymbolKind.OBJECT, {isa: data_bytes for isa in isas}))

    images = {}
    for isa in isas:
        text = int(
            (code.loc * _TEXT_BYTES_PER_LOC[isa] + _RUNTIME_TEXT_BYTES[isa])
            * (1 + _ALIGNMENT_OVERHEAD)
        )
        images[isa] = ISAImage(
            isa=isa,
            text_bytes=text,
            data_bytes=data_bytes,
            metadata_bytes=metadata.size_bytes()
            + _METADATA_BYTES_PER_LOC * code.loc,
        )
    binary = MultiISABinary(code.application, images=images, symbols=symbols)
    return CompiledBinary(binary=binary, metadata=metadata)
