"""Step G — threshold estimation.

For each application, the estimation tool (Section 3.1) measures total
execution time in isolation for the two migration scenarios (x86-to-ARM
and x86-to-FPGA), *with all migration/communication overhead included*
("in locus"). It then re-runs the application on x86 while raising the
CPU load one process at a time, until the x86 time exceeds each
migrated time; those loads become the FPGA and ARM thresholds
(Table 2's rows).

Two measurement back ends produce identical numbers (a test asserts
it): an analytic processor-sharing formula, and an actual mini-
simulation on the hardware model — the latter is the honest "measure in
locus" reproduction, the former documents why the numbers are what they
are.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.hardware.cpu import CPUCluster, CPUSpec
from repro.hardware.platform import XEON_BRONZE_3104
from repro.sim import Simulator
from repro.thresholds import ThresholdEntry, ThresholdTable
from repro.types import Target
from repro.workloads.perfmodel import WorkloadProfile

__all__ = [
    "x86_time_under_load",
    "simulate_x86_time_under_load",
    "estimate_thresholds",
]


def x86_time_under_load(
    profile: WorkloadProfile, load: int, cores: int = XEON_BRONZE_3104.cores
) -> float:
    """Analytic x86 time with ``load`` total compute processes resident.

    Processor sharing: each of ``load`` identical single-threaded jobs
    on ``cores`` cores progresses at ``min(1, cores/load)``.
    """
    if load < 1:
        raise ValueError(f"load must be >= 1, got {load}")
    return profile.vanilla_x86_s * max(1.0, load / cores)


def simulate_x86_time_under_load(
    profile: WorkloadProfile, load: int, spec: CPUSpec = XEON_BRONZE_3104
) -> float:
    """Measured x86 time: run ``load`` instances on the cluster model."""
    if load < 1:
        raise ValueError(f"load must be >= 1, got {load}")
    sim = Simulator()
    cluster = CPUCluster(sim, spec)
    done = cluster.execute(profile.vanilla_x86_s, tag="measured")
    for _ in range(load - 1):
        cluster.execute(profile.vanilla_x86_s, tag="background")
    sim.run_until_event(done)
    return sim.now


def _search_threshold(
    profile: WorkloadProfile, migrated_s: float, cores: int, max_load: int
) -> int:
    """Smallest load whose x86 time exceeds ``migrated_s`` (paper's sweep).

    A threshold of 0 means migration already wins with an idle host;
    ``max_load`` caps the sweep for never-profitable targets (the tool
    then reports the cap, and the scheduler will effectively never
    migrate — the BFS case of Section 4.4).
    """
    if migrated_s < profile.vanilla_x86_s:
        return 0
    if math.isinf(migrated_s):
        return max_load
    for load in range(1, max_load + 1):
        if x86_time_under_load(profile, load, cores) > migrated_s:
            return load
    return max_load


def estimate_thresholds(
    profiles: Iterable[WorkloadProfile],
    cores: int = XEON_BRONZE_3104.cores,
    max_load: int = 256,
) -> ThresholdTable:
    """Run step G for a set of applications.

    Each entry's observed times are seeded with the isolated
    measurements, exactly what Algorithm 1 starts refining at run-time.
    """
    table = ThresholdTable()
    for profile in profiles:
        fpga_s = profile.x86_fpga_s if profile.fpga_capable else math.inf
        arm_s = profile.x86_arm_s if profile.arm_capable else math.inf
        entry = ThresholdEntry(
            application=profile.name,
            kernel_name=profile.kernel_name,
            fpga_threshold=_search_threshold(profile, fpga_s, cores, max_load),
            arm_threshold=_search_threshold(profile, arm_s, cores, max_load),
        )
        entry.record(Target.X86, profile.vanilla_x86_s)
        if profile.fpga_capable:
            entry.record(Target.FPGA, fpga_s)
        if profile.arm_capable:
            entry.record(Target.ARM, arm_s)
        table.add(entry)
    return table
