"""Step F — XCLBIN generation.

Implements each partition plan as a configuration image: the static
hardware platform (shell) plus the grouped hardware kernels. The
resulting :class:`XCLBIN` satisfies the FPGA device model's
``ConfigImage`` protocol and carries per-kernel latency info the XRT
layer uses at run-time.

Space-sharing extension (paper Section 7): ``replicate=True`` fills the
device's leftover area with extra compute units for the slowest
kernels, so concurrent tenants' invocations of the same function run in
parallel instead of queueing on a single CU (cf. the multi-tenant
key-value store of [28]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.partition import XCLBINPlan
from repro.compiler.xo import XilinxObject
from repro.hardware.fpga import FPGAResources, FPGASpec

__all__ = ["XCLBIN", "generate_xclbin", "MAX_COMPUTE_UNITS"]

#: Size model: shell/platform bytes plus bitstream bytes per used LUT.
_SHELL_BYTES = 1_800_000
_BYTES_PER_LUT = 8

#: Replication cap per kernel (control/interconnect limits).
MAX_COMPUTE_UNITS = 4


@dataclass(frozen=True)
class XCLBIN:
    """A generated configuration image (implements ``ConfigImage``)."""

    name: str
    kernels: dict[str, XilinxObject]
    device_name: str
    #: Compute units per kernel (>= 1); absent kernels default to 1.
    cu_counts: dict[str, int] = field(default_factory=dict)

    @property
    def kernel_names(self) -> tuple[str, ...]:
        return tuple(self.kernels)

    def compute_units(self, kernel_name: str) -> int:
        return self.cu_counts.get(kernel_name, 1)

    @property
    def resources(self) -> FPGAResources:
        total = FPGAResources()
        for name, obj in self.kernels.items():
            for _ in range(self.compute_units(name)):
                total = total + obj.resources
        return total

    @property
    def size_bytes(self) -> int:
        return _SHELL_BYTES + _BYTES_PER_LUT * self.resources.lut

    def kernel(self, kernel_name: str) -> XilinxObject:
        try:
            return self.kernels[kernel_name]
        except KeyError:
            raise KeyError(
                f"{self.name} holds {list(self.kernels)}, not {kernel_name!r}"
            ) from None

    def __repr__(self) -> str:
        return f"XCLBIN({self.name!r}, kernels={list(self.kernels)})"


def generate_xclbin(
    plan: XCLBINPlan, device: FPGASpec, replicate: bool = False
) -> XCLBIN:
    """Implement one partition plan on ``device``.

    With ``replicate`` the generator greedily adds compute units —
    slowest kernel first (it gains the most from parallelism) — until
    the usable area is exhausted or every kernel holds
    :data:`MAX_COMPUTE_UNITS`.
    """
    if not plan.fits(device):
        raise ValueError(f"plan {plan.name!r} does not fit {device.name}")
    cu_counts = {obj.kernel_name: 1 for obj in plan.objects}
    if replicate:
        budget = device.usable_resources
        used = plan.resources
        # Slowest kernels first; deterministic tie-break by name.
        order = sorted(
            plan.objects, key=lambda o: (-o.kernel_latency_s, o.kernel_name)
        )
        progress = True
        while progress:
            progress = False
            for obj in order:
                if cu_counts[obj.kernel_name] >= MAX_COMPUTE_UNITS:
                    continue
                trial = used + obj.resources
                if trial.fits_in(budget):
                    used = trial
                    cu_counts[obj.kernel_name] += 1
                    progress = True
    return XCLBIN(
        name=plan.name,
        kernels={obj.kernel_name: obj for obj in plan.objects},
        device_name=device.name,
        cu_counts=cu_counts,
    )
