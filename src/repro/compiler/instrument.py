"""Step B — instrumentation.

For each application with selected functions, the instrumentation tool
rewrites the source (Section 3.1): it inserts scheduler-client calls at
the start and end of ``main``, an FPGA-configuration call at ``main``'s
start (so hardware kernels are warm before first use — load-bearing for
Figure 6), and replaces each selected function's call site with a
three-way dispatch on the scheduler's migration flag (x86 / ARM /
FPGA).

The output is a description of the inserted call sites that the
run-time's application model executes; tests assert the instrumentation
contract (ordering, completeness) directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.profiling import ApplicationSpec

__all__ = ["CallSiteKind", "CallSite", "InstrumentedApplication", "instrument"]


class CallSiteKind:
    """The kinds of calls the instrumentation step inserts."""

    SCHEDULER_REGISTER = "scheduler_register"  # main() entry
    FPGA_CONFIGURE = "fpga_configure"  # main() entry, right after register
    DISPATCH = "dispatch"  # replaces each selected call
    THRESHOLD_UPDATE = "threshold_update"  # after each selected call returns
    SCHEDULER_UNREGISTER = "scheduler_unregister"  # main() exit

    ORDERED = (
        SCHEDULER_REGISTER,
        FPGA_CONFIGURE,
        DISPATCH,
        THRESHOLD_UPDATE,
        SCHEDULER_UNREGISTER,
    )


@dataclass(frozen=True)
class CallSite:
    """One inserted call."""

    kind: str
    location: str  # e.g. "main:entry", "main:call[detect_faces]"
    function: str = ""  # the selected function, for dispatch/update sites


@dataclass(frozen=True)
class InstrumentedApplication:
    """Step B's output for one application."""

    name: str
    selected_functions: tuple[str, ...]
    kernels: dict[str, str]  # function -> hardware kernel name
    call_sites: tuple[CallSite, ...] = field(default_factory=tuple)

    def sites_of(self, kind: str) -> tuple[CallSite, ...]:
        return tuple(site for site in self.call_sites if site.kind == kind)

    def kernel_for(self, function: str) -> str:
        try:
            return self.kernels[function]
        except KeyError:
            raise KeyError(
                f"{self.name}: {function!r} is not a selected function"
            ) from None


def instrument(app: ApplicationSpec) -> InstrumentedApplication:
    """Insert Xar-Trek's run-time hooks into one application."""
    sites: list[CallSite] = [
        CallSite(CallSiteKind.SCHEDULER_REGISTER, "main:entry"),
        CallSite(CallSiteKind.FPGA_CONFIGURE, "main:entry"),
    ]
    for fn in app.functions:
        sites.append(
            CallSite(CallSiteKind.DISPATCH, f"main:call[{fn.name}]", fn.name)
        )
        sites.append(
            CallSite(CallSiteKind.THRESHOLD_UPDATE, f"main:after[{fn.name}]", fn.name)
        )
    sites.append(CallSite(CallSiteKind.SCHEDULER_UNREGISTER, "main:exit"))
    return InstrumentedApplication(
        name=app.name,
        selected_functions=tuple(fn.name for fn in app.functions),
        kernels={fn.name: fn.kernel_name for fn in app.functions},
        call_sites=tuple(sites),
    )
