"""Step A — the profiling specification.

Profiling is the one manual step in Xar-Trek's pipeline (Section 3.1):
an application designer, aided by gprof/valgrind, writes a text file
naming (1) the hardware platform, (2) the applications, and (3) each
application's selected functions — the self-contained compute kernels
eligible for FPGA implementation. This module defines that file format
(parser + writer) and the in-memory spec the rest of the pipeline
consumes.

Format (``#`` comments, blank lines ignored)::

    platform alveo-u50
    application cg.A
        function conj_grad kernel=KNL_HW_CG_A
    application facedet.320
        function detect_faces kernel=KNL_HW_FD320 xclbin=group0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["SelectedFunction", "ApplicationSpec", "ProfilingSpec", "SpecError"]


class SpecError(Exception):
    """Raised for malformed profiling specifications."""


@dataclass(frozen=True)
class SelectedFunction:
    """One function chosen for hardware implementation."""

    name: str
    kernel_name: str
    #: Optional manual XCLBIN assignment (Section 3.1's iterative
    #: priority grouping); ``None`` means automatic partitioning.
    xclbin_group: Optional[str] = None


@dataclass(frozen=True)
class ApplicationSpec:
    """One application and its selected functions."""

    name: str
    functions: tuple[SelectedFunction, ...]

    def __post_init__(self):
        if not self.functions:
            raise SpecError(f"application {self.name!r} selects no functions")
        names = [fn.name for fn in self.functions]
        if len(names) != len(set(names)):
            raise SpecError(f"application {self.name!r} repeats a function")


@dataclass(frozen=True)
class ProfilingSpec:
    """The parsed profiling file: platform + applications."""

    platform: str
    applications: tuple[ApplicationSpec, ...] = field(default_factory=tuple)

    def __post_init__(self):
        names = [app.name for app in self.applications]
        if len(names) != len(set(names)):
            raise SpecError("duplicate application names in spec")

    def application(self, name: str) -> ApplicationSpec:
        for app in self.applications:
            if app.name == name:
                return app
        raise SpecError(f"no application {name!r} in spec")

    def all_functions(self) -> list[tuple[str, SelectedFunction]]:
        """``(application_name, function)`` pairs in spec order."""
        return [(app.name, fn) for app in self.applications for fn in app.functions]

    # -- serialization -------------------------------------------------------
    def to_text(self) -> str:
        lines = [f"platform {self.platform}"]
        for app in self.applications:
            lines.append(f"application {app.name}")
            for fn in app.functions:
                parts = [f"    function {fn.name}", f"kernel={fn.kernel_name}"]
                if fn.xclbin_group is not None:
                    parts.append(f"xclbin={fn.xclbin_group}")
                lines.append(" ".join(parts))
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, text: str) -> "ProfilingSpec":
        platform: Optional[str] = None
        apps: list[ApplicationSpec] = []
        current_app: Optional[str] = None
        current_fns: list[SelectedFunction] = []

        def flush() -> None:
            nonlocal current_app, current_fns
            if current_app is not None:
                apps.append(ApplicationSpec(current_app, tuple(current_fns)))
            current_app, current_fns = None, []

        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            tokens = line.split()
            keyword = tokens[0]
            if keyword == "platform":
                if platform is not None:
                    raise SpecError(f"line {lineno}: duplicate platform")
                if len(tokens) != 2:
                    raise SpecError(f"line {lineno}: platform needs one name")
                platform = tokens[1]
            elif keyword == "application":
                if len(tokens) != 2:
                    raise SpecError(f"line {lineno}: application needs one name")
                flush()
                current_app = tokens[1]
            elif keyword == "function":
                if current_app is None:
                    raise SpecError(f"line {lineno}: function outside application")
                if len(tokens) < 3:
                    raise SpecError(f"line {lineno}: function needs name and kernel=")
                fn_name = tokens[1]
                kernel: Optional[str] = None
                group: Optional[str] = None
                for opt in tokens[2:]:
                    if "=" not in opt:
                        raise SpecError(f"line {lineno}: bad option {opt!r}")
                    key, value = opt.split("=", 1)
                    if key == "kernel":
                        kernel = value
                    elif key == "xclbin":
                        group = value
                    else:
                        raise SpecError(f"line {lineno}: unknown option {key!r}")
                if not kernel:
                    raise SpecError(f"line {lineno}: function needs kernel=")
                current_fns.append(SelectedFunction(fn_name, kernel, group))
            else:
                raise SpecError(f"line {lineno}: unknown keyword {keyword!r}")
        flush()
        if platform is None:
            raise SpecError("spec has no platform line")
        return cls(platform=platform, applications=tuple(apps))
