"""Step D — Xilinx Object (XO) generation.

For each selected function, the pipeline moves it to its own compilation
unit and invokes the HLS compiler, producing one XO file per function:
the synthesized kernel plus its resource report. The XO's resource
vector is what step E's partitioner packs into XCLBINs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.hls import HLSReport, KernelIR, estimate, kernel_ir_for
from repro.compiler.profiling import SelectedFunction
from repro.hardware.fpga import FPGAResources, FPGASpec

__all__ = ["XilinxObject", "generate_xo"]

#: On-disk size model for an XO: netlist bytes scale with logic area.
_XO_BASE_BYTES = 200_000
_XO_BYTES_PER_LUT = 18


@dataclass(frozen=True)
class XilinxObject:
    """One compiled hardware kernel (a ``.xo`` file)."""

    kernel_name: str
    function_name: str
    application: str
    report: HLSReport

    @property
    def resources(self) -> FPGAResources:
        return self.report.resources

    @property
    def size_bytes(self) -> int:
        return _XO_BASE_BYTES + _XO_BYTES_PER_LUT * self.report.resources.lut

    @property
    def kernel_latency_s(self) -> float:
        return self.report.latency_seconds


def generate_xo(
    application: str,
    function: SelectedFunction,
    device: FPGASpec,
    ir: KernelIR | None = None,
) -> XilinxObject:
    """Synthesize one selected function into an XO.

    ``ir`` overrides the registry lookup (useful for custom kernels);
    by default the kernel's IR comes from :func:`kernel_ir_for`.
    """
    if ir is None:
        ir = kernel_ir_for(function.kernel_name)
    report = estimate(ir, device)
    return XilinxObject(
        kernel_name=function.kernel_name,
        function_name=function.name,
        application=application,
        report=report,
    )
