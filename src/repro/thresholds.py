"""The threshold table (paper Table 2's data structure).

Produced by the compiler's threshold-estimation step (G), consumed by
the scheduler server (Algorithm 2), and updated in place by the
scheduler client (Algorithm 1). One entry per application: the hardware
kernel name and the x86 CPU loads beyond which migration to FPGA / ARM
is estimated to pay off. The entry also carries the observed execution
times per target — the running measurements Algorithm 1 compares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.types import Target

__all__ = ["ThresholdEntry", "ThresholdTable", "ThresholdError"]


class ThresholdError(Exception):
    """Raised for unknown applications or malformed entries."""


@dataclass(slots=True)
class ThresholdEntry:
    """One application's row: thresholds plus last observed times."""

    application: str
    kernel_name: str
    fpga_threshold: float
    arm_threshold: float
    #: Most recent observed end-to-end times per target (seconds);
    #: seeded from step G's isolated measurements, refreshed at run-time.
    observed_s: dict[Target, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.fpga_threshold < 0 or self.arm_threshold < 0:
            raise ThresholdError(
                f"{self.application}: thresholds must be non-negative"
            )

    def observed(self, target: Target) -> float:
        """Last observed time on ``target`` (+inf if never measured)."""
        return self.observed_s.get(target, math.inf)

    def record(self, target: Target, seconds: float) -> None:
        if seconds < 0:
            raise ThresholdError(f"negative execution time {seconds!r}")
        self.observed_s[target] = seconds

    def copy(self) -> "ThresholdEntry":
        return ThresholdEntry(
            application=self.application,
            kernel_name=self.kernel_name,
            fpga_threshold=self.fpga_threshold,
            arm_threshold=self.arm_threshold,
            observed_s=dict(self.observed_s),
        )


class ThresholdTable:
    """All applications' rows; the artifact step G writes out."""

    def __init__(self, entries: Iterable[ThresholdEntry] = ()):
        self._entries: dict[str, ThresholdEntry] = {}
        for entry in entries:
            self.add(entry)

    def add(self, entry: ThresholdEntry) -> None:
        if entry.application in self._entries:
            raise ThresholdError(f"duplicate entry for {entry.application!r}")
        self._entries[entry.application] = entry

    def entry(self, application: str) -> ThresholdEntry:
        # dict.get instead of try/except: this lookup sits on the
        # scheduler's per-request fast path, where the miss is the
        # exceptional case but exception setup is not free.
        found = self._entries.get(application)
        if found is None:
            raise ThresholdError(f"no threshold entry for {application!r}")
        return found

    def has(self, application: str) -> bool:
        return application in self._entries

    def applications(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries.values())

    def copy(self) -> "ThresholdTable":
        return ThresholdTable(entry.copy() for entry in self)

    # -- serialization (the tool's text output, Section 3.1) ----------------
    def to_text(self) -> str:
        lines = ["# application kernel fpga_threshold arm_threshold"]
        for entry in self:
            lines.append(
                f"{entry.application} {entry.kernel_name or '-'} "
                f"{entry.fpga_threshold:g} {entry.arm_threshold:g}"
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, text: str) -> "ThresholdTable":
        table = cls()
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            tokens = line.split()
            if len(tokens) != 4:
                raise ThresholdError(f"line {lineno}: expected 4 fields")
            app, kernel, fpga_thr, arm_thr = tokens
            table.add(
                ThresholdEntry(
                    application=app,
                    kernel_name="" if kernel == "-" else kernel,
                    fpga_threshold=float(fpga_thr),
                    arm_threshold=float(arm_thr),
                )
            )
        return table
