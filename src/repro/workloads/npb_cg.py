"""NPB CG: conjugate-gradient eigenvalue estimation.

A faithful, reduced-scale implementation of the NAS Parallel Benchmarks
CG kernel: estimate the largest eigenvalue of a sparse symmetric
positive-definite matrix with inverse power iteration, where each outer
iteration solves ``A z = x`` approximately with ``cgitmax`` conjugate-
gradient steps. The irregular, pointer-chasing sparse mat-vec is why
CG-A is the paper's example of an FPGA-*unfriendly* workload (Table 1).

The problem class is parameterized; :data:`CLASS_A_SMALL` keeps CG-A's
structure (na=1400 instead of 14000) so tests and experiments run in
milliseconds while the calibrated performance profile supplies the
paper-scale timings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CGClass", "CLASS_A_SMALL", "CLASS_S", "SparseMatrix", "make_matrix", "cg_benchmark", "CGResult"]


@dataclass(frozen=True)
class CGClass:
    """An NPB CG problem class."""

    name: str
    na: int  # matrix order
    nonzer: int  # nonzeros per row (approx)
    niter: int  # outer (power-method) iterations
    shift: float  # diagonal shift lambda
    cgitmax: int = 25  # CG iterations per outer solve


#: NPB class S (the official smallest class).
CLASS_S = CGClass(name="S", na=1400, nonzer=7, niter=15, shift=10.0)

#: CG-A at reduced order: class A's iteration structure (niter=15,
#: shift=20) on a class-S-sized matrix, so the compute *shape* matches
#: the paper's CG-A while remaining laptop-fast.
CLASS_A_SMALL = CGClass(name="A-small", na=1400, nonzer=11, niter=15, shift=20.0)


@dataclass(frozen=True)
class SparseMatrix:
    """CSR storage, built without scipy to keep the kernel explicit."""

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    n: int

    @property
    def nnz(self) -> int:
        return len(self.data)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix-vector product (the benchmark's hot loop)."""
        out = np.empty(self.n, dtype=np.float64)
        indptr, indices, data = self.indptr, self.indices, self.data
        for row in range(self.n):
            lo, hi = indptr[row], indptr[row + 1]
            out[row] = np.dot(data[lo:hi], x[indices[lo:hi]])
        return out

    def matvec_fast(self, x: np.ndarray) -> np.ndarray:
        """Vectorized matvec used by default (identical result)."""
        products = self.data * x[self.indices]
        return np.add.reduceat(products, self.indptr[:-1])

    @property
    def bytes_csr(self) -> int:
        """Wire size of the CSR arrays (for transfer modelling)."""
        return self.indptr.nbytes + self.indices.nbytes + self.data.nbytes


def make_matrix(klass: CGClass, seed: int = 314159) -> SparseMatrix:
    """A random sparse SPD matrix in NPB's style.

    ``A = M + M^T + (shift + margin) I`` with M random sparse, which is
    symmetric and diagonally-dominated enough to be positive definite.
    """
    rng = np.random.default_rng(seed)
    n = klass.na
    rows: dict[int, dict[int, float]] = {i: {} for i in range(n)}
    for i in range(n):
        cols = rng.integers(0, n, size=klass.nonzer)
        vals = rng.uniform(-0.5, 0.5, size=klass.nonzer)
        for j, v in zip(cols, vals):
            if i == j:
                continue
            rows[i][j] = rows[i].get(j, 0.0) + v
            rows[int(j)][i] = rows[int(j)].get(i, 0.0) + v  # symmetrize
    # Diagonal dominance guarantees SPD.
    for i in range(n):
        off_diag = sum(abs(v) for v in rows[i].values())
        rows[i][i] = off_diag + klass.shift

    indptr = np.zeros(n + 1, dtype=np.int64)
    indices_list: list[int] = []
    data_list: list[float] = []
    for i in range(n):
        cols = sorted(rows[i])
        indices_list.extend(cols)
        data_list.extend(rows[i][j] for j in cols)
        indptr[i + 1] = len(indices_list)
    return SparseMatrix(
        indptr=indptr,
        indices=np.asarray(indices_list, dtype=np.int64),
        data=np.asarray(data_list, dtype=np.float64),
        n=n,
    )


@dataclass(frozen=True)
class CGResult:
    """Outcome of the benchmark: the eigenvalue estimate and residuals."""

    zeta: float
    residual_norm: float
    iterations: int
    zeta_history: tuple[float, ...]


def conj_grad(
    matrix: SparseMatrix, x: np.ndarray, cgitmax: int
) -> tuple[np.ndarray, float]:
    """``cgitmax`` CG steps on ``A z = x`` from ``z = 0`` (NPB's conj_grad).

    Returns ``(z, ||r||)`` where ``r = x - A z``.
    """
    z = np.zeros_like(x)
    r = x.copy()
    p = r.copy()
    rho = float(np.dot(r, r))
    for _ in range(cgitmax):
        q = matrix.matvec_fast(p)
        alpha = rho / float(np.dot(p, q))
        z += alpha * p
        r -= alpha * q
        rho_new = float(np.dot(r, r))
        beta = rho_new / rho
        rho = rho_new
        p = r + beta * p
    residual = x - matrix.matvec_fast(z)
    return z, float(np.sqrt(np.dot(residual, residual)))


def cg_benchmark(klass: CGClass, seed: int = 314159) -> CGResult:
    """The full NPB CG driver; the migrated kernel.

    Inverse power iteration: repeatedly solve ``A z = x`` and update
    ``zeta = shift + 1 / (x . z)``; ``x`` is normalized ``z``.
    """
    matrix = make_matrix(klass, seed)
    x = np.ones(klass.na, dtype=np.float64)
    zeta = 0.0
    history: list[float] = []
    residual = 0.0
    for _ in range(klass.niter):
        z, residual = conj_grad(matrix, x, klass.cgitmax)
        xz = float(np.dot(x, z))
        zeta = klass.shift + 1.0 / xz
        history.append(zeta)
        norm = float(np.sqrt(np.dot(z, z)))
        x = z / norm
    return CGResult(
        zeta=zeta,
        residual_norm=residual,
        iterations=klass.niter,
        zeta_history=tuple(history),
    )
