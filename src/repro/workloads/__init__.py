"""The paper's workloads: functional implementations + calibrated profiles.

Rosetta face detection and digit recognition, NPB CG and MG, and BFS —
each a real computation (pure, target-independent kernels) paired with
a performance profile calibrated to the paper's Tables 1 and 4.
"""

from repro.workloads.base import (
    BFSWorkload,
    CGWorkload,
    DigitRecognitionWorkload,
    FaceDetectionWorkload,
    MGWorkload,
    MultiImageFaceDetection,
    SpamFilterWorkload,
    Workload,
)
from repro.workloads.perfmodel import (
    PAPER_TABLE1_MS,
    PAPER_TABLE2,
    PAPER_TABLE4_MS,
    CalibrationError,
    WorkloadProfile,
    all_profiles,
    profile_for,
)
from repro.workloads.registry import (
    PAPER_BENCHMARKS,
    available_workloads,
    create_workload,
)

__all__ = [
    "BFSWorkload",
    "CGWorkload",
    "CalibrationError",
    "DigitRecognitionWorkload",
    "FaceDetectionWorkload",
    "MGWorkload",
    "MultiImageFaceDetection",
    "PAPER_BENCHMARKS",
    "PAPER_TABLE1_MS",
    "PAPER_TABLE2",
    "PAPER_TABLE4_MS",
    "SpamFilterWorkload",
    "Workload",
    "WorkloadProfile",
    "all_profiles",
    "available_workloads",
    "create_workload",
    "profile_for",
]
