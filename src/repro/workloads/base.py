"""Workload abstraction: a functional computation plus a timing profile.

Every benchmark is a :class:`Workload` with (a) a *pure* selected
function (``run_kernel``) whose result is independent of the execution
target — the invariant transparent migration relies on — and (b) a
calibrated :class:`~repro.workloads.perfmodel.WorkloadProfile` the
simulator charges time against. ``generate_input`` is deterministic in
its seed, so experiments replay exactly.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.workloads.perfmodel import WorkloadProfile, profile_for
from repro.workloads import bfs as bfs_mod
from repro.workloads import digit_recognition as digit_mod
from repro.workloads import face_detection as face_mod
from repro.workloads import npb_cg as cg_mod
from repro.workloads import npb_mg as mg_mod
from repro.workloads import spam_filter as spam_mod
from repro.workloads.images import generate_face_image

__all__ = [
    "Workload",
    "FaceDetectionWorkload",
    "MultiImageFaceDetection",
    "DigitRecognitionWorkload",
    "CGWorkload",
    "MGWorkload",
    "BFSWorkload",
    "SpamFilterWorkload",
]


class Workload(abc.ABC):
    """One application: input generation, the selected function, checking."""

    #: Registry name, e.g. ``"facedet.320"``.
    name: str

    @property
    def profile(self) -> WorkloadProfile:
        """The calibrated timing profile for this workload."""
        return profile_for(self.name)

    @property
    def kernel_name(self) -> str:
        """The hardware-kernel name (Table 2)."""
        return self.profile.kernel_name

    @abc.abstractmethod
    def generate_input(self, seed: int = 0) -> Any:
        """Deterministic input for one run."""

    @abc.abstractmethod
    def run_kernel(self, inp: Any) -> Any:
        """The selected function — pure, target-independent."""

    @abc.abstractmethod
    def verify(self, inp: Any, output: Any) -> bool:
        """Check that the kernel output is correct for this input."""


class FaceDetectionWorkload(Workload):
    """Rosetta face detection on a single frame (FaceDet320 / FaceDet640)."""

    def __init__(self, width: int = 320, height: int = 240, n_faces: int = 5):
        if (width, height) not in ((320, 240), (640, 480)):
            raise ValueError("paper variants are 320x240 and 640x480")
        self.width = width
        self.height = height
        self.n_faces = n_faces
        self.name = f"facedet.{width}"

    def generate_input(self, seed: int = 0):
        rng = np.random.default_rng(seed)
        image, truths = generate_face_image(
            self.width, self.height, self.n_faces, rng, scales=(1.0, 1.5, 2.0)
        )
        return {"image": image, "truths": truths}

    def run_kernel(self, inp):
        return face_mod.detect_faces(inp["image"])

    def verify(self, inp, output) -> bool:
        matched = face_mod.match_detections(output, inp["truths"])
        return matched >= max(1, int(0.8 * len(inp["truths"])))


class MultiImageFaceDetection(Workload):
    """The paper's modified throughput app: N images, one kernel call each.

    Section 4.2: images are read from files (PGM) and processed one by
    one; the number of images processed in a 60 s window is the
    throughput metric of Figures 6 and 8.
    """

    def __init__(self, n_images: int = 1000, n_faces: int = 3):
        self.n_images = n_images
        self.n_faces = n_faces
        self.name = "facedet.320"

    @property
    def profile(self) -> WorkloadProfile:
        return profile_for(self.name).with_calls(self.n_images)

    def generate_input(self, seed: int = 0):
        # Generating 1000 images up front is wasteful; experiments use a
        # small representative sample and the timing model for the rest.
        rng = np.random.default_rng(seed)
        image, truths = generate_face_image(
            320, 240, self.n_faces, rng, scales=(1.0, 1.5)
        )
        return {"image": image, "truths": truths, "n_images": self.n_images}

    def run_kernel(self, inp):
        return face_mod.detect_faces(inp["image"])

    def verify(self, inp, output) -> bool:
        matched = face_mod.match_detections(output, inp["truths"])
        return matched >= max(1, int(0.8 * len(inp["truths"])))


class DigitRecognitionWorkload(Workload):
    """Rosetta digit recognition with 500 or 2000 tests."""

    def __init__(self, n_tests: int = 500, n_train: int = 2000):
        if n_tests not in (500, 2000):
            raise ValueError("paper variants are 500 and 2000 tests")
        self.n_tests = n_tests
        self.n_train = n_train
        self.name = f"digit.{n_tests}"

    def generate_input(self, seed: int = 0):
        return digit_mod.generate_dataset(self.n_train, self.n_tests, seed=seed)

    def run_kernel(self, inp: digit_mod.DigitDataset):
        return digit_mod.classify(inp.test, inp.train, inp.train_labels, k=3)

    def verify(self, inp, output) -> bool:
        return digit_mod.accuracy(output, inp.test_labels) >= 0.95


class CGWorkload(Workload):
    """NPB CG-A (reduced order, same structure)."""

    name = "cg.A"

    def __init__(self, klass: cg_mod.CGClass = cg_mod.CLASS_A_SMALL):
        self.klass = klass

    def generate_input(self, seed: int = 0) -> int:
        return 314159 + seed  # the benchmark builds its own matrix

    def run_kernel(self, inp: int) -> cg_mod.CGResult:
        return cg_mod.cg_benchmark(self.klass, seed=inp)

    def verify(self, inp, output: cg_mod.CGResult) -> bool:
        # The power iteration must be converging (relative zeta drift
        # below 0.5% per outer iteration) and the inner CG solves must
        # have driven the residual to solver precision.
        if len(output.zeta_history) < 2 or output.zeta == 0:
            return False
        drift = abs(output.zeta_history[-1] - output.zeta_history[-2])
        return drift / abs(output.zeta) < 5e-3 and output.residual_norm < 1e-8


class MGWorkload(Workload):
    """NPB MG-B (reduced grid), the background load generator."""

    name = "mg.B"

    def __init__(self, klass: mg_mod.MGClass = mg_mod.CLASS_B_SMALL):
        self.klass = klass

    def generate_input(self, seed: int = 0) -> int:
        return 271828 + seed

    def run_kernel(self, inp: int) -> mg_mod.MGResult:
        return mg_mod.mg_benchmark(self.klass, seed=inp)

    def verify(self, inp, output: mg_mod.MGResult) -> bool:
        return output.reduction < 1e-6


class SpamFilterWorkload(Workload):
    """SGD logistic-regression spam filter (extension workload)."""

    name = "spam.1024"

    def __init__(self, n_train: int = 900, n_test: int = 300, epochs: int = 10):
        self.n_train = n_train
        self.n_test = n_test
        self.epochs = epochs

    def generate_input(self, seed: int = 0):
        return spam_mod.generate_dataset(self.n_train, self.n_test, seed=seed)

    def run_kernel(self, inp: "spam_mod.SpamDataset"):
        return spam_mod.train_sgd(
            inp.train_x, inp.train_y, epochs=self.epochs, seed=1
        )

    def verify(self, inp, output) -> bool:
        predictions = spam_mod.predict(output, inp.test_x)
        return spam_mod.accuracy(predictions, inp.test_y) >= 0.9


class BFSWorkload(Workload):
    """Graph BFS (Section 4.4 / Table 4); FPGA-unprofitable."""

    def __init__(self, n_nodes: int = 1000, avg_degree: int = 8):
        if n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        self.n_nodes = n_nodes
        self.avg_degree = avg_degree
        self.name = f"bfs.{n_nodes}"

    def generate_input(self, seed: int = 0) -> bfs_mod.Graph:
        return bfs_mod.make_graph(self.n_nodes, avg_degree=self.avg_degree, seed=seed)

    def run_kernel(self, inp: bfs_mod.Graph):
        return bfs_mod.bfs_levels(inp, source=0)

    def verify(self, inp, output) -> bool:
        # The generator guarantees connectivity: everything reached, and
        # the source is the unique level-0 node.
        return bool(int((output >= 0).sum()) == inp.n_nodes and output[0] == 0)
