"""NPB MG: multigrid V-cycle Poisson solver.

The paper uses NPB MG class B purely as a CPU load generator (Sections
4.1-4.3): ``n`` simultaneous MG-B instances produce the medium/high x86
loads. This is a real (reduced-scale) geometric multigrid solver for
the 3-D Poisson problem ``A u = v`` with periodic boundaries: V-cycles
of weighted-Jacobi smoothing, smoothed-injection restriction, and
trilinear prolongation, as in the NPB reference code's structure.

The operator is the 7-point Laplacian stencil ``A u = sum(faces) - 6u``
(negative semi-definite; the periodic nullspace of constants is handled
by keeping iterates mean-free, and NPB's charge distribution is zero-
mean so the system is consistent).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MGClass", "CLASS_B_SMALL", "mg_benchmark", "MGResult", "v_cycle", "residual"]


@dataclass(frozen=True)
class MGClass:
    """An NPB MG problem class (grid is ``size**3``, periodic)."""

    name: str
    size: int  # grid points per dimension (power of two)
    niter: int  # number of V-cycles

    def __post_init__(self):
        if self.size < 4 or self.size & (self.size - 1):
            raise ValueError(f"grid size must be a power of two >= 4, got {self.size}")


#: MG-B's iteration count (20) on a 32^3 grid instead of 256^3.
CLASS_B_SMALL = MGClass(name="B-small", size=32, niter=20)

_JACOBI_OMEGA = 0.85


def _laplacian(u: np.ndarray) -> np.ndarray:
    """7-point periodic Laplacian stencil: ``sum(face neighbours) - 6u``."""
    faces = (
        np.roll(u, 1, 0) + np.roll(u, -1, 0)
        + np.roll(u, 1, 1) + np.roll(u, -1, 1)
        + np.roll(u, 1, 2) + np.roll(u, -1, 2)
    )
    return faces - 6.0 * u


def residual(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """``r = v - A u``."""
    return v - _laplacian(u)


def _smooth(u: np.ndarray, v: np.ndarray, sweeps: int = 1) -> np.ndarray:
    """Weighted-Jacobi sweeps for ``A u = v`` (diagonal of A is -6)."""
    for _ in range(sweeps):
        u = u - (_JACOBI_OMEGA / 6.0) * residual(u, v)
    return u


def _restrict(fine: np.ndarray) -> np.ndarray:
    """Smoothed injection onto the coarser grid, scaled for the operator.

    Because the same unscaled stencil is used on every level, the
    coarse-grid operator is 4x "weaker" (grid spacing doubles), so the
    restricted residual is scaled by 4 to keep the correction equation
    consistent.
    """
    smoothed = fine
    for axis in range(3):
        smoothed = 0.5 * smoothed + 0.25 * (
            np.roll(smoothed, 1, axis) + np.roll(smoothed, -1, axis)
        )
    return 4.0 * smoothed[::2, ::2, ::2]


def _prolong(coarse: np.ndarray) -> np.ndarray:
    """Trilinear prolongation to the next finer periodic grid."""
    n = coarse.shape[0] * 2
    fine = np.zeros((n, n, n), dtype=coarse.dtype)
    fine[::2, ::2, ::2] = coarse
    for axis in range(3):
        # Midpoints along `axis`, using the already-filled planes.
        shifted = np.roll(fine, -2, axis)
        mid = 0.5 * (fine + shifted)
        dst = [slice(None)] * 3
        dst[axis] = slice(1, None, 2)
        src = [slice(None)] * 3
        src[axis] = slice(0, None, 2)
        fine[tuple(dst)] = mid[tuple(src)]
    return fine


def v_cycle(u: np.ndarray, v: np.ndarray, min_size: int = 4) -> np.ndarray:
    """One multigrid V-cycle for ``A u = v``."""
    if u.shape[0] <= min_size:
        u = _smooth(u, v, sweeps=20)
        return u - u.mean()
    u = _smooth(u, v, sweeps=2)
    r = residual(u, v)
    r_coarse = _restrict(r)
    r_coarse -= r_coarse.mean()  # stay orthogonal to the nullspace
    e_coarse = v_cycle(np.zeros_like(r_coarse), r_coarse, min_size)
    u = u + _prolong(e_coarse)
    u = _smooth(u, v, sweeps=2)
    return u - u.mean()


@dataclass(frozen=True)
class MGResult:
    """Outcome: final residual L2 norm and its per-cycle history."""

    final_residual: float
    initial_residual: float
    history: tuple[float, ...]

    @property
    def reduction(self) -> float:
        if self.initial_residual == 0:
            return 0.0
        return self.final_residual / self.initial_residual


def _charge_distribution(size: int, seed: int) -> np.ndarray:
    """NPB-style +1/-1 point charges at random grid sites, zero mean."""
    rng = np.random.default_rng(seed)
    v = np.zeros((size, size, size), dtype=np.float64)
    n_charges = min(10, size)
    flat = rng.choice(size**3, size=2 * n_charges, replace=False)
    coords = np.unravel_index(flat, (size, size, size))
    v[coords[0][:n_charges], coords[1][:n_charges], coords[2][:n_charges]] = 1.0
    v[coords[0][n_charges:], coords[1][n_charges:], coords[2][n_charges:]] = -1.0
    return v


def mg_benchmark(klass: MGClass = CLASS_B_SMALL, seed: int = 271828) -> MGResult:
    """The full MG driver: ``niter`` V-cycles on the charge problem."""
    v = _charge_distribution(klass.size, seed)
    u = np.zeros_like(v)
    rms = lambda a: float(np.sqrt(np.mean(a**2)))  # noqa: E731
    initial = rms(residual(u, v))
    history: list[float] = []
    for _ in range(klass.niter):
        u = v_cycle(u, v)
        history.append(rms(residual(u, v)))
    return MGResult(
        final_residual=history[-1],
        initial_residual=initial,
        history=tuple(history),
    )
