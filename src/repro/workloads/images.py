"""PGM images and synthetic face-image generation.

The paper's throughput experiments read WIDER-dataset images converted
to PGM (Section 4.2). WIDER is not redistributable here, so we generate
deterministic synthetic grayscale images with planted face patterns the
detector can actually find; only the image *dimensions and count* affect
the timing model, and the functional pipeline (PGM decode -> integral
image -> cascade) is identical.
"""

from __future__ import annotations

import io

import numpy as np

__all__ = [
    "PGMError",
    "encode_pgm",
    "decode_pgm",
    "FACE_SIZE",
    "face_template",
    "generate_face_image",
]


class PGMError(Exception):
    """Raised for malformed PGM data."""


def encode_pgm(image: np.ndarray) -> bytes:
    """Encode a 2-D uint8 array as binary PGM (P5)."""
    if image.ndim != 2:
        raise PGMError(f"PGM images are 2-D, got shape {image.shape}")
    if image.dtype != np.uint8:
        raise PGMError(f"PGM images are uint8, got {image.dtype}")
    height, width = image.shape
    header = f"P5\n{width} {height}\n255\n".encode("ascii")
    return header + image.tobytes()


def decode_pgm(data: bytes) -> np.ndarray:
    """Decode binary PGM (P5) into a 2-D uint8 array."""
    stream = io.BytesIO(data)

    def next_token() -> bytes:
        token = b""
        while True:
            ch = stream.read(1)
            if not ch:
                raise PGMError("truncated PGM header")
            if ch.isspace():
                if token:
                    return token
                continue
            if ch == b"#":  # comment to end of line
                while ch not in (b"\n", b""):
                    ch = stream.read(1)
                continue
            token += ch

    magic = next_token()
    if magic != b"P5":
        raise PGMError(f"not a binary PGM (magic {magic!r})")
    width = int(next_token())
    height = int(next_token())
    maxval = int(next_token())
    if maxval != 255:
        raise PGMError(f"only maxval 255 supported, got {maxval}")
    payload = stream.read(width * height)
    if len(payload) != width * height:
        raise PGMError("truncated PGM payload")
    return np.frombuffer(payload, dtype=np.uint8).reshape(height, width).copy()


#: Base size (pixels) of the face pattern and detector window.
FACE_SIZE = 24


def face_template(size: int = FACE_SIZE) -> np.ndarray:
    """The canonical synthetic face: light skin, dark eye band, dark mouth.

    The detector's Haar-like features (see
    :mod:`repro.workloads.face_detection`) key on exactly these
    contrasts, mirroring how Viola-Jones features key on real faces.
    """
    face = np.full((size, size), 185, dtype=np.uint8)
    rows = np.arange(size)
    eye_band = (rows >= size // 4) & (rows < size * 5 // 12)
    mouth_band = (rows >= size * 2 // 3) & (rows < size * 5 // 6)
    face[eye_band, :] = 55
    face[mouth_band, size // 4 : size * 3 // 4] = 80
    return face


def generate_face_image(
    width: int,
    height: int,
    n_faces: int,
    rng: np.random.Generator,
    noise_std: float = 8.0,
    scales: tuple[float, ...] = (1.0,),
) -> tuple[np.ndarray, list[tuple[int, int, int]]]:
    """A synthetic grayscale image with ``n_faces`` planted faces.

    Returns ``(image, truths)`` where each truth is ``(x, y, size)`` of
    a planted face's top-left corner and side length. Faces never
    overlap; placement, scale, and noise are all drawn from ``rng``.
    """
    image = rng.integers(100, 160, size=(height, width), dtype=np.int64)
    truths: list[tuple[int, int, int]] = []
    occupied = np.zeros((height, width), dtype=bool)
    attempts = 0
    while len(truths) < n_faces and attempts < 200 * max(1, n_faces):
        attempts += 1
        scale = float(rng.choice(scales))
        size = int(round(FACE_SIZE * scale))
        if size >= min(width, height):
            continue
        x = int(rng.integers(0, width - size))
        y = int(rng.integers(0, height - size))
        pad = 4
        y0, y1 = max(0, y - pad), min(height, y + size + pad)
        x0, x1 = max(0, x - pad), min(width, x + size + pad)
        if occupied[y0:y1, x0:x1].any():
            continue
        template = face_template(FACE_SIZE).astype(np.float64)
        if size != FACE_SIZE:
            template = _resize_nearest(template, size)
        image[y : y + size, x : x + size] = template
        occupied[y0:y1, x0:x1] = True
        truths.append((x, y, size))
    if noise_std > 0:
        image = image + rng.normal(0.0, noise_std, size=image.shape)
    return np.clip(image, 0, 255).astype(np.uint8), truths


def _resize_nearest(image: np.ndarray, size: int) -> np.ndarray:
    """Nearest-neighbour resize of a square image to ``size`` pixels."""
    src = image.shape[0]
    idx = np.minimum((np.arange(size) * src) // size, src - 1)
    return image[np.ix_(idx, idx)]
