"""Breadth-first search: the paper's FPGA-unprofitable workload.

Section 4.4 uses BFS as the exemplar pointer-chasing application whose
irregular memory accesses make PCIe-attached FPGAs orders of magnitude
slower than the CPU (Table 4). This is a real level-synchronous BFS over
a CSR adjacency structure, plus the random-graph generator used to build
Table 4's inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Graph", "make_graph", "bfs_levels", "BFSResult", "bfs_benchmark"]


@dataclass(frozen=True)
class Graph:
    """CSR adjacency: ``neighbors[indptr[v]:indptr[v+1]]`` are v's edges."""

    indptr: np.ndarray
    neighbors: np.ndarray
    n_nodes: int

    @property
    def n_edges(self) -> int:
        """Directed edge count (each undirected edge appears twice)."""
        return len(self.neighbors)

    def degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])

    @property
    def bytes_csr(self) -> int:
        return self.indptr.nbytes + self.neighbors.nbytes


def make_graph(n_nodes: int, avg_degree: int = 8, seed: int = 0) -> Graph:
    """A connected undirected random graph in CSR form.

    A Hamiltonian backbone (0-1-2-...-n-1 ring) guarantees
    connectivity; the rest are uniform random edges, deduplicated.
    """
    if n_nodes < 2:
        raise ValueError(f"need >= 2 nodes, got {n_nodes}")
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    for v in range(n_nodes):
        u = (v + 1) % n_nodes
        edges.add((min(v, u), max(v, u)))
    n_random = max(0, n_nodes * avg_degree // 2 - n_nodes)
    endpoints = rng.integers(0, n_nodes, size=(n_random, 2))
    for a, b in endpoints:
        if a != b:
            edges.add((min(int(a), int(b)), max(int(a), int(b))))

    adjacency: list[list[int]] = [[] for _ in range(n_nodes)]
    for a, b in edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    indptr = np.zeros(n_nodes + 1, dtype=np.int64)
    neighbors: list[int] = []
    for v in range(n_nodes):
        adjacency[v].sort()
        neighbors.extend(adjacency[v])
        indptr[v + 1] = len(neighbors)
    return Graph(
        indptr=indptr,
        neighbors=np.asarray(neighbors, dtype=np.int64),
        n_nodes=n_nodes,
    )


def bfs_levels(graph: Graph, source: int = 0) -> np.ndarray:
    """Level-synchronous BFS; the migrated kernel.

    Returns each node's hop distance from ``source`` (-1 if
    unreachable). Frontier expansion uses the CSR arrays directly — the
    data-dependent gather that defeats FPGA acceleration in Table 4.
    """
    if not 0 <= source < graph.n_nodes:
        raise ValueError(f"source {source} out of range")
    levels = np.full(graph.n_nodes, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    depth = 0
    while len(frontier):
        depth += 1
        # Gather all neighbours of the frontier (irregular access).
        starts = graph.indptr[frontier]
        ends = graph.indptr[frontier + 1]
        chunks = [graph.neighbors[s:e] for s, e in zip(starts, ends)]
        if not chunks:
            break
        candidates = np.concatenate(chunks)
        fresh = candidates[levels[candidates] < 0]
        if not len(fresh):
            break
        fresh = np.unique(fresh)
        levels[fresh] = depth
        frontier = fresh
    return levels


@dataclass(frozen=True)
class BFSResult:
    """Outcome: the level array plus summary statistics."""

    levels: np.ndarray
    max_depth: int
    reached: int


def bfs_benchmark(n_nodes: int, avg_degree: int = 8, seed: int = 0) -> BFSResult:
    """Build a Table 4 style graph and traverse it."""
    graph = make_graph(n_nodes, avg_degree=avg_degree, seed=seed)
    levels = bfs_levels(graph, source=0)
    return BFSResult(
        levels=levels,
        max_depth=int(levels.max()),
        reached=int(np.count_nonzero(levels >= 0)),
    )
