"""Workload registry: name -> constructed workload.

The five Table 1 benchmarks plus MG-B and parameterized BFS. Experiment
code draws random application sets from :data:`PAPER_BENCHMARKS`, the
same five-benchmark pool the paper samples from (Section 4.1).
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.base import (
    BFSWorkload,
    CGWorkload,
    DigitRecognitionWorkload,
    FaceDetectionWorkload,
    MGWorkload,
    MultiImageFaceDetection,
    SpamFilterWorkload,
    Workload,
)

__all__ = ["PAPER_BENCHMARKS", "create_workload", "available_workloads"]

#: The paper's five-benchmark evaluation pool (Section 4).
PAPER_BENCHMARKS: tuple[str, ...] = (
    "cg.A",
    "facedet.320",
    "facedet.640",
    "digit.500",
    "digit.2000",
)

_FACTORIES: dict[str, Callable[[], Workload]] = {
    "cg.A": CGWorkload,
    "facedet.320": lambda: FaceDetectionWorkload(320, 240),
    "facedet.640": lambda: FaceDetectionWorkload(640, 480),
    "digit.500": lambda: DigitRecognitionWorkload(500),
    "digit.2000": lambda: DigitRecognitionWorkload(2000),
    "mg.B": MGWorkload,
    "facedet.multi": MultiImageFaceDetection,
    # Extension workload (not in the paper's pool): Rosetta-style spam
    # filter; demonstrates the pipeline generalizes beyond Table 1.
    "spam.1024": SpamFilterWorkload,
}


def create_workload(name: str) -> Workload:
    """Instantiate a workload by registry name (``bfs.<n>`` is dynamic)."""
    if name in _FACTORIES:
        return _FACTORIES[name]()
    if name.startswith("bfs."):
        try:
            n_nodes = int(name.split(".", 1)[1])
        except ValueError:
            raise KeyError(f"bad BFS workload name {name!r}") from None
        return BFSWorkload(n_nodes)
    raise KeyError(f"unknown workload {name!r} (known: {available_workloads()})")


def available_workloads() -> tuple[str, ...]:
    """All fixed registry names (BFS is additionally available as bfs.<n>)."""
    return tuple(_FACTORIES)
