"""Spam filtering: SGD logistic regression (a sixth, extension workload).

Rosetta's spam-filter benchmark trains a logistic-regression classifier
with stochastic gradient descent over 1024-feature email vectors; the
training loop (dot products + sigmoid + vector updates) is the HLS
kernel. The paper evaluates only face detection and digit recognition
from Rosetta; this workload exists to show the reproduction's pipeline
is not hard-coded to the paper's five applications — it plugs into the
registry, the compiler (via its own kernel IR), and the scheduler with
a synthetic-but-plausible profile.

The implementation is a real trainer: deterministic synthetic dataset
(two Gaussian classes over sparse-ish features), minibatch SGD, and a
held-out accuracy check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "N_FEATURES",
    "SpamDataset",
    "generate_dataset",
    "sigmoid",
    "train_sgd",
    "predict",
    "accuracy",
]

#: Feature vector width, as in Rosetta's spam filter.
N_FEATURES = 1024


@dataclass(frozen=True)
class SpamDataset:
    """Training and test splits of feature vectors with 0/1 labels."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    def __post_init__(self):
        for x in (self.train_x, self.test_x):
            if x.ndim != 2 or x.shape[1] != N_FEATURES:
                raise ValueError(f"expected (n, {N_FEATURES}) features")
        if len(self.train_x) != len(self.train_y):
            raise ValueError("train split length mismatch")
        if len(self.test_x) != len(self.test_y):
            raise ValueError("test split length mismatch")

    @property
    def bytes_packed(self) -> int:
        """Wire size with float32 features (Rosetta uses fixed-point)."""
        return 4 * N_FEATURES * (len(self.train_x) + len(self.test_x))


def generate_dataset(
    n_train: int = 900, n_test: int = 300, seed: int = 0, separation: float = 1.2
) -> SpamDataset:
    """Two-class synthetic email features, deterministic in ``seed``.

    Spam and ham differ in the means of a random 10% subset of features
    ("trigger words"); the rest is shared noise, so the problem is
    learnable but not trivial.
    """
    rng = np.random.default_rng(seed)
    trigger = rng.choice(N_FEATURES, size=N_FEATURES // 10, replace=False)
    shift = np.zeros(N_FEATURES)
    shift[trigger] = separation

    def split(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, 2, size=n)
        base = rng.normal(0.0, 1.0, size=(n, N_FEATURES))
        features = base + labels[:, None] * shift[None, :]
        return features.astype(np.float32), labels.astype(np.int64)

    train_x, train_y = split(n_train)
    test_x, test_y = split(n_test)
    return SpamDataset(train_x, train_y, test_x, test_y)


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    ez = np.exp(z[~positive])
    out[~positive] = ez / (1.0 + ez)
    return out


def train_sgd(
    train_x: np.ndarray,
    train_y: np.ndarray,
    epochs: int = 10,
    lr: float = 0.1,
    batch: int = 16,
    l2: float = 0.02,
    seed: int = 0,
) -> np.ndarray:
    """Minibatch SGD for L2-regularized logistic regression; the
    migrated kernel.

    With 1024 features and a few hundred emails the unregularized model
    memorizes noise, so weight decay (``l2``) is part of the kernel.
    Deterministic in its arguments (fixed shuffling stream), so the
    trained weights are target-independent.
    """
    if epochs < 1 or batch < 1:
        raise ValueError("epochs and batch must be >= 1")
    if l2 < 0:
        raise ValueError("l2 must be non-negative")
    rng = np.random.default_rng(seed)
    n = len(train_x)
    # Weights carry an intercept in the last slot (bias feature = 1).
    weights = np.zeros(train_x.shape[1] + 1, dtype=np.float64)
    for _epoch in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch):
            idx = order[start : start + batch]
            x = np.hstack(
                [train_x[idx].astype(np.float64), np.ones((len(idx), 1))]
            )
            y = train_y[idx]
            pred = sigmoid(x @ weights)
            gradient = x.T @ (pred - y) / len(idx) + l2 * weights
            gradient[-1] -= l2 * weights[-1]  # don't decay the intercept
            weights -= lr * gradient
    return weights


def predict(weights: np.ndarray, x: np.ndarray) -> np.ndarray:
    """0/1 predictions; ``weights`` may or may not carry the intercept."""
    x = x.astype(np.float64)
    if len(weights) == x.shape[1] + 1:
        scores = x @ weights[:-1] + weights[-1]
    else:
        scores = x @ weights
    return (sigmoid(scores) >= 0.5).astype(np.int64)


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    if len(predictions) != len(labels):
        raise ValueError("length mismatch")
    if len(labels) == 0:
        return 0.0
    return float(np.mean(predictions == labels))
