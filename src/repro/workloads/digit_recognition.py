"""Digit recognition: K-nearest-neighbours on 196-bit digit bitmaps.

Mirrors Rosetta's digit-recognition benchmark: each handwritten digit is
a 14x14 binary bitmap packed into 196 bits; classification is KNN with
Hamming distance against a labelled training set, majority vote, ties
broken by total distance. The *selected function* is
:func:`classify` — the full KNN over the test set, which Rosetta's HLS
version implements as a single hardware kernel.

MNIST is not shipped here; :func:`generate_dataset` synthesizes a
deterministic dataset from ten structured prototype glyphs with
bit-flip noise, which preserves the kernel's compute shape (distance
computations dominate) and gives a measurable accuracy target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DIGIT_BITS",
    "DigitDataset",
    "generate_dataset",
    "hamming_distance",
    "classify",
    "accuracy",
]

#: Bits per digit bitmap (14 x 14), as in Rosetta.
DIGIT_BITS = 196
_SIDE = 14


@dataclass(frozen=True)
class DigitDataset:
    """Packed training and test sets.

    ``train`` / ``test`` are ``(n, 196)`` uint8 arrays of 0/1 bits;
    labels are ``(n,)`` int arrays in ``0..9``.
    """

    train: np.ndarray
    train_labels: np.ndarray
    test: np.ndarray
    test_labels: np.ndarray

    def __post_init__(self):
        for bits in (self.train, self.test):
            if bits.ndim != 2 or bits.shape[1] != DIGIT_BITS:
                raise ValueError(f"expected (n, {DIGIT_BITS}) bit arrays")
        if len(self.train) != len(self.train_labels):
            raise ValueError("train/labels length mismatch")
        if len(self.test) != len(self.test_labels):
            raise ValueError("test/labels length mismatch")

    @property
    def bytes_packed(self) -> int:
        """Wire size with bitmaps packed to 32 bytes each (as in Rosetta)."""
        return 32 * (len(self.train) + len(self.test))


def _prototype_glyphs(rng: np.random.Generator) -> np.ndarray:
    """Ten distinct 14x14 glyphs built from strokes, not pure noise.

    Each digit gets a unique combination of horizontal/vertical strokes
    and a diagonal, so prototypes differ in >= ~40 bits pairwise.
    """
    glyphs = np.zeros((10, _SIDE, _SIDE), dtype=np.uint8)
    for digit in range(10):
        glyph = glyphs[digit]
        # Vertical strokes at digit-dependent columns.
        glyph[:, 2 + (digit % 4) * 3] = 1
        if digit % 2:
            glyph[:, 11 - (digit % 3) * 2] = 1
        # Horizontal strokes at digit-dependent rows.
        glyph[1 + (digit % 5) * 2, :] = 1
        if digit >= 5:
            glyph[12 - (digit % 4), :] = 1
        # A diagonal for odd structure.
        if digit % 3 == 0:
            idx = np.arange(_SIDE)
            glyph[idx, idx] = 1
        # Sprinkle a few digit-specific pixels for extra separation.
        extra = rng.integers(0, _SIDE, size=(6, 2))
        glyph[extra[:, 0], extra[:, 1]] = 1
    return glyphs.reshape(10, DIGIT_BITS)


def generate_dataset(
    n_train: int,
    n_test: int,
    seed: int = 0,
    noise_bits: int = 12,
) -> DigitDataset:
    """A deterministic synthetic dataset.

    Every sample is a prototype with ``noise_bits`` random bits flipped;
    at 12/196 flips, same-class samples stay far closer than the
    >= ~40-bit prototype separation, so KNN accuracy is high but not
    trivially 100%.
    """
    rng = np.random.default_rng(seed)
    prototypes = _prototype_glyphs(rng)

    def make_split(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, 10, size=n)
        bits = prototypes[labels].copy()
        for i in range(n):
            flips = rng.choice(DIGIT_BITS, size=noise_bits, replace=False)
            bits[i, flips] ^= 1
        return bits.astype(np.uint8), labels.astype(np.int64)

    train, train_labels = make_split(n_train)
    test, test_labels = make_split(n_test)
    return DigitDataset(train, train_labels, test, test_labels)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Hamming distances between bit matrices: ``(len(a), len(b))``."""
    # XOR-popcount via a dot-product identity on 0/1 vectors:
    # d(a,b) = sum(a) + sum(b) - 2 a.b
    a16 = a.astype(np.int16)
    b16 = b.astype(np.int16)
    return a16.sum(axis=1)[:, None] + b16.sum(axis=1)[None, :] - 2 * (a16 @ b16.T)


def classify(
    test: np.ndarray,
    train: np.ndarray,
    train_labels: np.ndarray,
    k: int = 3,
) -> np.ndarray:
    """KNN-classify every test bitmap; the migrated kernel.

    Majority vote over the ``k`` nearest training samples; ties broken
    by the smaller summed distance, then by the smaller digit (fully
    deterministic, target-independent).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    distances = hamming_distance(test, train)
    nearest = np.argsort(distances, axis=1, kind="stable")[:, :k]
    predictions = np.empty(len(test), dtype=np.int64)
    for i in range(len(test)):
        votes = train_labels[nearest[i]]
        dists = distances[i, nearest[i]]
        counts = np.zeros(10, dtype=np.int64)
        dist_sums = np.zeros(10, dtype=np.int64)
        for label, dist in zip(votes, dists):
            counts[label] += 1
            dist_sums[label] += dist
        best = max(
            range(10),
            key=lambda d: (counts[d], -dist_sums[d] if counts[d] else 0, -d),
        )
        predictions[i] = best
    return predictions


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions."""
    if len(predictions) != len(labels):
        raise ValueError("length mismatch")
    if len(labels) == 0:
        return 0.0
    return float(np.mean(predictions == labels))
