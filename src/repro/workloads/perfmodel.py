"""Calibrated per-target performance profiles (paper Tables 1 and 4).

The paper measures each benchmark's end-to-end time in three scenarios
(Table 1): vanilla x86, x86 with the selected function migrated to the
FPGA, and x86 with the function migrated to ARM. Our simulator needs a
finer decomposition — host work vs. function work, kernel time vs.
transfer time — so each profile is *calibrated*: transfer sizes are set
from the real data structures, a small host fraction is assumed, and
the residual function/kernel times are solved so the three uncontended
end-to-end times reproduce Table 1 exactly. A test asserts the
round-trip (profile -> predicted scenario times -> Table 1).

Times are stored in seconds; the paper's tables are milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property, lru_cache

from repro.hardware.interconnect import ETHERNET_1GBPS, PCIE_GEN3_X16, LinkSpec

__all__ = [
    "WorkloadProfile",
    "PAPER_TABLE1_MS",
    "PAPER_TABLE2",
    "PAPER_TABLE4_MS",
    "profile_for",
    "all_profiles",
    "CalibrationError",
]


class CalibrationError(Exception):
    """Raised when Table 1 numbers cannot be decomposed consistently."""


def _link_time(spec: LinkSpec, nbytes: float) -> float:
    return nbytes / spec.bandwidth_bytes_per_s + spec.latency_s


@dataclass(frozen=True)
class WorkloadProfile:
    """Decomposed timing model of one application.

    An application run is: one-time host work (startup, input IO), then
    ``calls_per_run`` invocations of the selected function, each
    preceded by per-call host work. The selected function costs
    ``func_x86_s`` on an x86 core, ``func_arm_s`` on an ARM core, or
    ``fpga_kernel_s`` on the FPGA compute unit plus PCIe transfers.
    Migrating to ARM round-trips the Popcorn state/working set over
    Ethernet.
    """

    name: str
    kernel_name: str
    loc: int
    host_work_s: float
    per_call_host_s: float
    func_x86_s: float
    func_arm_s: float
    fpga_kernel_s: float
    bytes_to_fpga: int
    bytes_from_fpga: int
    migration_state_bytes: int
    calls_per_run: int = 1
    fpga_capable: bool = True
    arm_capable: bool = True

    def __post_init__(self):
        for field_name in (
            "host_work_s",
            "per_call_host_s",
            "func_x86_s",
            "func_arm_s",
            "fpga_kernel_s",
        ):
            if getattr(self, field_name) < 0:
                raise CalibrationError(
                    f"{self.name}: {field_name} is negative "
                    f"({getattr(self, field_name):.6f}); the assumed host "
                    "fraction or transfer sizes are inconsistent with Table 1"
                )
        if self.calls_per_run < 1:
            raise CalibrationError(f"{self.name}: calls_per_run must be >= 1")

    # -- per-call target costs (uncontended) ---------------------------------
    def fpga_call_s(
        self, pcie: LinkSpec = PCIE_GEN3_X16, include_transfers: bool = True
    ) -> float:
        """One function invocation on the FPGA: transfers + kernel."""
        if not self.fpga_capable:
            raise CalibrationError(f"{self.name} has no hardware kernel")
        transfers = 0.0
        if include_transfers:
            transfers = _link_time(pcie, self.bytes_to_fpga) + _link_time(
                pcie, self.bytes_from_fpga
            )
        return transfers + self.fpga_kernel_s

    def arm_call_s(self, ethernet: LinkSpec = ETHERNET_1GBPS) -> float:
        """One invocation migrated to ARM: round-trip migration + function."""
        if not self.arm_capable:
            raise CalibrationError(f"{self.name} cannot migrate to ARM")
        one_way = _link_time(ethernet, self.migration_state_bytes)
        return 2 * one_way + self.func_arm_s

    # -- uncontended end-to-end scenario times (Table 1 columns) ---------------
    # Cached: these are re-read on the scheduling fast path (threshold
    # estimation, per-invocation cost models) and the profile is frozen,
    # so each is computed at most once per instance.
    @cached_property
    def vanilla_x86_s(self) -> float:
        return self.host_work_s + self.calls_per_run * (
            self.per_call_host_s + self.func_x86_s
        )

    @cached_property
    def x86_fpga_s(self) -> float:
        return self.host_work_s + self.calls_per_run * (
            self.per_call_host_s + self.fpga_call_s()
        )

    @cached_property
    def x86_arm_s(self) -> float:
        return self.host_work_s + self.calls_per_run * (
            self.per_call_host_s + self.arm_call_s()
        )

    @cached_property
    def arm_core_slowdown(self) -> float:
        """Per-core ARM/x86 time ratio for this workload's code."""
        if self.func_x86_s == 0:
            return 1.0
        return self.func_arm_s / self.func_x86_s

    @cached_property
    def vanilla_arm_s(self) -> float:
        """The whole application run natively on one ARM core."""
        return self.arm_core_slowdown * self.vanilla_x86_s

    def with_calls(self, calls_per_run: int) -> "WorkloadProfile":
        """The per-call profile of the multi-invocation throughput app.

        The paper's modified face detection reads one image file per
        kernel call (Section 4.2), so the single-run host work (input
        IO) becomes *per-call* host work. The one-call total is
        unchanged: ``with_calls(1)`` has the same end-to-end times.
        """
        return replace(
            self,
            calls_per_run=calls_per_run,
            host_work_s=0.0,
            per_call_host_s=self.per_call_host_s + self.host_work_s,
        )


def _calibrate(
    name: str,
    kernel_name: str,
    loc: int,
    x86_ms: float,
    fpga_ms: float,
    arm_ms: float,
    host_fraction: float,
    bytes_to_fpga: int,
    bytes_from_fpga: int,
    migration_state_bytes: int,
) -> WorkloadProfile:
    """Solve the decomposition so scenario totals reproduce Table 1."""
    x86_s, fpga_s, arm_s = x86_ms / 1e3, fpga_ms / 1e3, arm_ms / 1e3
    host = host_fraction * x86_s
    func_x86 = x86_s - host
    pcie_xfer = _link_time(PCIE_GEN3_X16, bytes_to_fpga) + _link_time(
        PCIE_GEN3_X16, bytes_from_fpga
    )
    fpga_kernel = fpga_s - host - pcie_xfer
    eth_round_trip = 2 * _link_time(ETHERNET_1GBPS, migration_state_bytes)
    func_arm = arm_s - host - eth_round_trip
    return WorkloadProfile(
        name=name,
        kernel_name=kernel_name,
        loc=loc,
        host_work_s=host,
        per_call_host_s=0.0,
        func_x86_s=func_x86,
        func_arm_s=func_arm,
        fpga_kernel_s=fpga_kernel,
        bytes_to_fpga=bytes_to_fpga,
        bytes_from_fpga=bytes_from_fpga,
        migration_state_bytes=migration_state_bytes,
    )


#: Table 1 of the paper, milliseconds: (vanilla x86, x86/FPGA, x86/ARM).
PAPER_TABLE1_MS: dict[str, tuple[float, float, float]] = {
    "cg.A": (2182.0, 10597.0, 8406.0),
    "facedet.320": (175.0, 332.0, 642.0),
    "facedet.640": (885.0, 832.0, 2991.0),
    "digit.500": (883.0, 470.0, 2281.0),
    "digit.2000": (3521.0, 1229.0, 8963.0),
}

#: Table 2 of the paper: kernel name, FPGA threshold, ARM threshold.
PAPER_TABLE2: dict[str, tuple[str, int, int]] = {
    "cg.A": ("KNL_HW_CG_A", 31, 25),
    "facedet.320": ("KNL_HW_FD320", 16, 31),
    "facedet.640": ("KNL_HW_FD640", 0, 23),
    "digit.500": ("KNL_HW_DR500", 0, 18),
    "digit.2000": ("KNL_HW_DR200", 0, 17),
}

#: Table 4 of the paper, milliseconds: BFS node count -> (x86, FPGA).
PAPER_TABLE4_MS: dict[int, tuple[float, float]] = {
    1000: (3.36, 726.50),
    2000: (115.74, 2282.54),
    3000: (256.94, 4981.05),
    4000: (458.04, 8760.80),
    5000: (721.48, 13524.76),
}

# Transfer-size rationale:
#   cg.A         CSR of NPB class A (n=14000, ~2M nnz): values + indices.
#   facedet.*    one grayscale frame in, detection boxes out.
#   digit.*      packed training set (18k x 32 B) + tests in, labels out.
#   migration    Popcorn state + dirty working set pushed over Ethernet.
_PROFILES: dict[str, WorkloadProfile] = {}

for _name, (_x86, _fpga, _arm) in PAPER_TABLE1_MS.items():
    _kernel, _fpga_thr, _arm_thr = PAPER_TABLE2[_name]
    _spec = {
        "cg.A": dict(loc=900, host_fraction=0.05, bytes_to_fpga=24_000_000,
                     bytes_from_fpga=112_000, migration_state_bytes=2_000_000),
        "facedet.320": dict(loc=330, host_fraction=0.06, bytes_to_fpga=76_800,
                            bytes_from_fpga=4_096, migration_state_bytes=262_144),
        "facedet.640": dict(loc=350, host_fraction=0.03, bytes_to_fpga=307_200,
                            bytes_from_fpga=8_192, migration_state_bytes=524_288),
        "digit.500": dict(loc=450, host_fraction=0.03, bytes_to_fpga=592_000,
                          bytes_from_fpga=2_000, migration_state_bytes=1_048_576),
        "digit.2000": dict(loc=470, host_fraction=0.02, bytes_to_fpga=640_000,
                           bytes_from_fpga=8_000, migration_state_bytes=1_048_576),
    }[_name]
    _PROFILES[_name] = _calibrate(
        _name, _kernel, _spec["loc"], _x86, _fpga, _arm,
        _spec["host_fraction"], _spec["bytes_to_fpga"],
        _spec["bytes_from_fpga"], _spec["migration_state_bytes"],
    )

# Spam filter (extension workload, not in the paper's Table 1): SGD
# logistic regression in Rosetta's mold. The profile is synthetic but
# plausible for the testbed: dense float compute that an HLS kernel
# accelerates well, ~3 MB of training data over PCIe, ThunderX ~2.6x
# slower per core.
_PROFILES["spam.1024"] = WorkloadProfile(
    name="spam.1024",
    kernel_name="KNL_HW_SF1024",
    loc=420,
    host_work_s=0.060,
    per_call_host_s=0.0,
    func_x86_s=1.140,
    func_arm_s=2.950,
    fpga_kernel_s=0.300,
    bytes_to_fpga=4_900_000,
    bytes_from_fpga=8_192,
    migration_state_bytes=1_048_576,
)

# MG-B: pure load generator. Runs ~21 s single-threaded on the Xeon; it
# is never a selected function (no hardware kernel, never migrated by
# the scheduler), but the vanilla-ARM baseline still needs its ARM cost.
_PROFILES["mg.B"] = WorkloadProfile(
    name="mg.B",
    kernel_name="",
    loc=1400,
    host_work_s=1.0,
    per_call_host_s=0.0,
    func_x86_s=20.0,
    func_arm_s=50.0,
    fpga_kernel_s=0.0,
    bytes_to_fpga=0,
    bytes_from_fpga=0,
    migration_state_bytes=4_194_304,
    fpga_capable=False,
    arm_capable=False,
)


@lru_cache(maxsize=256)
def _bfs_profile(n_nodes: int) -> WorkloadProfile:
    """BFS profiles from Table 4 (x86 vs FPGA only).

    The FPGA time in Table 4 is dominated by pointer-chasing stalls, not
    transfers; ARM was not measured, so we assume the THUNDERX default
    per-core slowdown (2.5x).
    """
    if n_nodes in PAPER_TABLE4_MS:
        x86_ms, fpga_ms = PAPER_TABLE4_MS[n_nodes]
    else:
        # Interpolate/extrapolate quadratically in node count, matching
        # the superlinear growth visible in Table 4.
        scale = (n_nodes / 5000.0) ** 2
        x86_ms = 721.48 * scale
        fpga_ms = 13524.76 * scale
    graph_bytes = int(n_nodes * 8 * 2 * 8)  # CSR indptr + ~8 neighbours
    x86_s = x86_ms / 1e3
    host = 0.05 * x86_s
    pcie_xfer = _link_time(PCIE_GEN3_X16, graph_bytes) + _link_time(PCIE_GEN3_X16, n_nodes * 8)
    return WorkloadProfile(
        name=f"bfs.{n_nodes}",
        kernel_name=f"KNL_HW_BFS{n_nodes}",
        loc=250,
        host_work_s=host,
        per_call_host_s=0.0,
        func_x86_s=x86_s - host,
        func_arm_s=2.5 * (x86_s - host),
        fpga_kernel_s=fpga_ms / 1e3 - host - pcie_xfer,
        bytes_to_fpga=graph_bytes,
        bytes_from_fpga=n_nodes * 8,
        migration_state_bytes=graph_bytes,
    )


def profile_for(name: str) -> WorkloadProfile:
    """The calibrated profile for a workload name.

    Accepts the five Table 1 names, ``mg.B``, and ``bfs.<n_nodes>``.
    """
    if name in _PROFILES:
        return _PROFILES[name]
    if name.startswith("bfs."):
        try:
            n_nodes = int(name.split(".", 1)[1])
        except ValueError:
            raise KeyError(f"bad BFS profile name {name!r}") from None
        return _bfs_profile(n_nodes)
    raise KeyError(f"no profile for workload {name!r}")


def all_profiles() -> dict[str, WorkloadProfile]:
    """The five Table 1 profiles plus MG-B (a fresh dict)."""
    return dict(_PROFILES)
