"""Face detection: an integral-image cascade in the Rosetta mold.

The Rosetta face-detection benchmark is a Viola-Jones pipeline: integral
image, Haar-like rectangle features, a cascade of classifier stages, and
a sliding window over several scales. This is a faithful small-scale
version of that pipeline, vectorized over all windows per scale, with a
two-stage cascade tuned for the synthetic faces of
:mod:`repro.workloads.images`. The *selected function* that migrates in
Xar-Trek is :func:`detect_faces` — the whole scan, which Vitis would
synthesize as one hardware kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.images import FACE_SIZE

__all__ = ["Detection", "integral_image", "detect_faces", "match_detections"]


@dataclass(frozen=True)
class Detection:
    """One detected face window."""

    x: int
    y: int
    size: int
    score: float


def integral_image(image: np.ndarray) -> np.ndarray:
    """Summed-area table with a zero top row/left column.

    ``sat[y1, x1] - sat[y0, x1] - sat[y1, x0] + sat[y0, x0]`` is the sum
    of pixels in ``[y0:y1, x0:x1]``.
    """
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    sat = np.zeros((image.shape[0] + 1, image.shape[1] + 1), dtype=np.float64)
    np.cumsum(np.cumsum(image, axis=0, dtype=np.float64), axis=1, out=sat[1:, 1:])
    return sat


def _window_band_means(
    sat: np.ndarray,
    xs: np.ndarray,
    ys: np.ndarray,
    size: int,
    row0: float,
    row1: float,
    col0: float = 0.0,
    col1: float = 1.0,
) -> np.ndarray:
    """Mean intensity of a fractional sub-rectangle of every window.

    ``xs``/``ys`` are window top-left grids; the band spans rows
    ``[row0, row1)`` and columns ``[col0, col1)`` as fractions of the
    window size. One vectorized SAT lookup per corner.
    """
    y0 = ys + np.intp(row0 * size)
    y1 = ys + np.intp(row1 * size)
    x0 = xs + np.intp(col0 * size)
    x1 = xs + np.intp(col1 * size)
    area = (y1 - y0) * (x1 - x0)
    total = sat[y1, x1] - sat[y0, x1] - sat[y1, x0] + sat[y0, x0]
    return total / np.maximum(area, 1)


# The two-stage cascade: stage 1 is the cheap eye-band contrast, stage 2
# adds forehead and mouth contrasts. Thresholds are in intensity units
# and were chosen so the synthetic template passes with margin while
# uniform-noise background fails both stages.
_STAGE1_MIN_CONTRAST = 45.0
_STAGE2_MIN_FOREHEAD = 45.0
_STAGE2_MIN_MOUTH = 25.0
_STAGE2_MIN_CHIN = 45.0


def detect_faces(
    image: np.ndarray,
    scales: tuple[float, ...] = (1.0, 1.5, 2.0),
    stride: int = 2,
) -> list[Detection]:
    """Scan ``image`` for faces at several scales; the migrated kernel.

    Pure function of its inputs: running it "on x86", "on ARM", or "on
    the FPGA" in the simulation yields the same detections (tests assert
    this), as required for transparent migration.
    """
    sat = integral_image(image)
    height, width = image.shape
    raw: list[Detection] = []
    for scale in scales:
        size = int(round(FACE_SIZE * scale))
        if size > min(height, width):
            continue
        xs_1d = np.arange(0, width - size + 1, stride, dtype=np.intp)
        ys_1d = np.arange(0, height - size + 1, stride, dtype=np.intp)
        if not len(xs_1d) or not len(ys_1d):
            continue
        xs, ys = np.meshgrid(xs_1d, ys_1d)
        # Band fractions mirror face_template's layout.
        eyes = _window_band_means(sat, xs, ys, size, 0.25, 5 / 12)
        cheeks = _window_band_means(sat, xs, ys, size, 5 / 12, 2 / 3)
        # Stage 1: cheek band must be much brighter than the eye band.
        stage1 = (cheeks - eyes) >= _STAGE1_MIN_CONTRAST
        if not stage1.any():
            continue
        forehead = _window_band_means(sat, xs, ys, size, 0.0, 0.25)
        mouth = _window_band_means(sat, xs, ys, size, 2 / 3, 5 / 6, 0.25, 0.75)
        chin = _window_band_means(sat, xs, ys, size, 5 / 6, 1.0)
        stage2 = (
            stage1
            & ((forehead - eyes) >= _STAGE2_MIN_FOREHEAD)
            & ((cheeks - mouth) >= _STAGE2_MIN_MOUTH)
            & ((chin - eyes) >= _STAGE2_MIN_CHIN)
        )
        # Score by the weakest margin: a misaligned or wrong-scale window
        # may ace one contrast but never all of them, so NMS keeps the
        # best-aligned candidate.
        score = np.minimum(
            np.minimum(cheeks - eyes, forehead - eyes),
            np.minimum((cheeks - mouth) * 2.0, chin - eyes),
        )
        for wy, wx in zip(*np.nonzero(stage2)):
            raw.append(
                Detection(
                    x=int(xs_1d[wx]), y=int(ys_1d[wy]), size=size,
                    score=float(score[wy, wx]),
                )
            )
    return _non_max_suppression(raw)


def _overlaps(a: Detection, b: Detection) -> bool:
    """Same-face test for NMS: IoU above 0.2 or center containment.

    Center containment suppresses the cross-scale artefacts where a
    larger face's interior bands re-trigger a smaller, offset window.
    """
    x0 = max(a.x, b.x)
    y0 = max(a.y, b.y)
    x1 = min(a.x + a.size, b.x + b.size)
    y1 = min(a.y + a.size, b.y + b.size)
    inter = max(0, x1 - x0) * max(0, y1 - y0)
    union = a.size**2 + b.size**2 - inter
    if union > 0 and inter / union > 0.2:
        return True
    for inner, outer in ((a, b), (b, a)):
        cx = inner.x + inner.size / 2
        cy = inner.y + inner.size / 2
        if outer.x <= cx <= outer.x + outer.size and outer.y <= cy <= outer.y + outer.size:
            return True
    return False


def _non_max_suppression(detections: list[Detection]) -> list[Detection]:
    kept: list[Detection] = []
    for det in sorted(detections, key=lambda d: -d.score):
        if not any(_overlaps(det, existing) for existing in kept):
            kept.append(det)
    return sorted(kept, key=lambda d: (d.y, d.x))


def match_detections(
    detections: list[Detection],
    truths: list[tuple[int, int, int]],
    tolerance: int = 6,
) -> int:
    """How many planted faces were found (each truth matched at most once)."""
    remaining = list(detections)
    matched = 0
    for tx, ty, tsize in truths:
        for det in remaining:
            if (
                abs(det.x - tx) <= tolerance
                and abs(det.y - ty) <= tolerance
                and abs(det.size - tsize) <= max(tolerance, tsize // 4)
            ):
                remaining.remove(det)
                matched += 1
                break
    return matched
