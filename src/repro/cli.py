"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the workload registry with calibrated per-target times;
* ``table {1,2,3,4}`` / ``figure {3..10}`` — regenerate one of the
  paper's tables/figures and print it;
* ``run APP`` — one application run on the simulated testbed under a
  chosen system and background load;
* ``compile`` — run the compiler pipeline (steps A-G) over a set of
  applications, print the artifact summary, optionally dump XELF
  binaries to a directory;
* ``thresholds`` — print step G's threshold table (Table 2's format);
* ``metrics`` — run an instrumented application set (Figure-5-style by
  default) and print/export the metrics report (see
  ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.compiler import XarTrekCompiler
from repro.core import SystemMode, build_system
from repro.core.runtime import spec_for
from repro.experiments.report import REPORT_FIGURES as _FIGURES
from repro.experiments.report import REPORT_TABLES as _TABLES
from repro.popcorn.elf import dump_xelf
from repro.workloads import PAPER_BENCHMARKS, available_workloads, profile_for

__all__ = ["main"]

_MODES = {
    "x86": SystemMode.VANILLA_X86,
    "arm": SystemMode.VANILLA_ARM,
    "fpga": SystemMode.ALWAYS_FPGA,
    "xar-trek": SystemMode.XAR_TREK,
}


def _add_sweep_flags(parser: argparse.ArgumentParser) -> None:
    """The parallel-sweep knobs shared by figure/table/report/bench."""
    parser.add_argument("--jobs", default=None, metavar="N",
                        help="worker processes for sweep cells (0 or "
                        "'auto' = all CPUs; default: $REPRO_SWEEP_JOBS or 1)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="content-addressed on-disk result cache for "
                        "sweep cells (reruns only simulate changed cells)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache and always simulate")


def _sweep_options(args: argparse.Namespace):
    """(jobs, cache) from parsed flags; --no-cache wins."""
    cache = None if args.no_cache else args.cache
    return args.jobs, cache


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Xar-Trek reproduction: simulate run-time execution "
        "migration among FPGAs and heterogeneous-ISA CPUs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and their calibrated profiles")

    table = sub.add_parser("table", help="regenerate one of the paper's tables")
    table.add_argument("number", type=int, choices=sorted(_TABLES))
    _add_sweep_flags(table)

    figure = sub.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument("number", type=int, choices=sorted(_FIGURES))
    figure.add_argument("--repeats", type=int, default=10,
                        help="repeats for the randomized-set figures (3-5)")
    figure.add_argument("--seed", type=int, default=0)
    _add_sweep_flags(figure)

    run = sub.add_parser("run", help="run one application on the testbed")
    run.add_argument("app", help="workload name, e.g. digit.2000 or bfs.1000")
    run.add_argument("--mode", choices=sorted(_MODES), default="xar-trek")
    run.add_argument("--background", type=int, default=0,
                     help="MG-B load generators on the x86 host")
    run.add_argument("--calls", type=int, default=None,
                     help="override calls per run (throughput app)")
    run.add_argument("--deadline", type=float, default=None,
                     help="stop issuing calls after this many seconds")
    run.add_argument("--functional", action="store_true",
                     help="also execute the real kernel and verify")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--timeline", default=None, metavar="FILE",
                     help="write a CSV timeline of the run (.json for JSON)")

    report = sub.add_parser(
        "report", help="regenerate every table and figure (EXPERIMENTS.md data)"
    )
    report.add_argument("--repeats", type=int, default=10)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--quick", action="store_true",
                        help="3 repeats and skip the periodic figures")
    _add_sweep_flags(report)

    compile_cmd = sub.add_parser("compile", help="run compiler steps A-G")
    compile_cmd.add_argument("--apps", nargs="+", default=list(PAPER_BENCHMARKS))
    compile_cmd.add_argument("--replicate-cus", action="store_true",
                             help="space-sharing: replicate compute units")
    compile_cmd.add_argument("--output-dir", default=None,
                             help="dump XELF binaries here")

    thresholds = sub.add_parser("thresholds", help="print step G's table")
    thresholds.add_argument("--apps", nargs="+", default=list(PAPER_BENCHMARKS))

    bench = sub.add_parser(
        "bench",
        help="time seeded figure-style scenarios (wall clock, events/sec)",
    )
    bench.add_argument("--scenarios", nargs="+", default=None,
                       help="scenario names (default: all; see --list)")
    bench.add_argument("--list", action="store_true", dest="list_scenarios",
                       help="list available scenarios and exit")
    bench.add_argument("--quick", action="store_true",
                       help="reduced configs for CI smoke runs")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--json", default="BENCH_wallclock.json", metavar="FILE",
                       help="write the report here ('-' to skip)")
    bench.add_argument("--baseline", default=None, metavar="FILE",
                       help="earlier bench JSON to compute speedups against")
    bench.add_argument("--guard", default=None, metavar="FILE",
                       help="committed bench JSON to guard events/sec "
                       "against; exit 1 on a drop beyond --guard-drop")
    bench.add_argument("--guard-drop", type=float, default=0.30,
                       metavar="FRACTION",
                       help="allowed events/sec drop vs --guard "
                       "(default: 0.30)")
    bench.add_argument("--profile", action="store_true",
                       help="run each scenario under cProfile; the top "
                       "cumulative-time functions land in the report's "
                       "per-scenario extra (numbers are for attribution, "
                       "not speed — incompatible with --guard)")
    bench.add_argument("--profile-out", default=None, metavar="DIR",
                       help="with --profile, dump raw <scenario>.pstats "
                       "files here for pstats/snakeviz drill-down")
    _add_sweep_flags(bench)

    chaos = sub.add_parser(
        "chaos",
        help="run the scale_stress workload under a fault plan and "
        "verify graceful degradation",
    )
    chaos.add_argument("--plan", default=None, metavar="FILE",
                       help="fault plan JSON (default: generate from --seed)")
    chaos.add_argument("--quick", action="store_true",
                       help="reduced fleet for CI smoke runs")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--json", default=None, metavar="FILE",
                       help="also write the chaos report as JSON")
    chaos.add_argument("--emit-plan", default=None, metavar="FILE",
                       help="write the (possibly generated) plan here and exit")
    chaos.add_argument("--jobs", default=None, metavar="N",
                       help="run the baseline and chaos legs in N>1 pool "
                       "workers (0 or 'auto' = all CPUs; default: "
                       "REPRO_FLEET_JOBS or serial)")
    chaos.add_argument("--traffic", default=None, metavar="FILE",
                       help="replay this traffic trace JSON (see `repro "
                       "traffic`) instead of the seeded workload")
    chaos.add_argument("--brownout-floor", type=float, default=None,
                       metavar="FRACTION",
                       help="judge by the brownout contract with this "
                       "goodput floor instead of completion_rate == 1.0")
    chaos.add_argument("--slo-p99", type=float, default=None, metavar="SECONDS",
                       help="score every app in the workload against this "
                       "p99 latency target")
    chaos.add_argument("--slo-goodput", type=float, default=None,
                       metavar="FRACTION",
                       help="score every app against this deadline-goodput "
                       "floor")
    chaos.add_argument("--horizon", type=float, default=None, metavar="SECONDS",
                       help="scenario horizon; refuses plans whose faults "
                       "would fire past it")

    traffic = sub.add_parser(
        "traffic",
        help="generate, inspect, or replay a trace-driven open-loop "
        "arrival workload (diurnal + flash-crowd spikes)",
    )
    traffic.add_argument("--load", default=None, metavar="FILE",
                         help="load an existing trace JSON instead of "
                         "generating one")
    traffic.add_argument("--apps", nargs="+", default=None,
                         help="applications the crowd calls (default: the "
                         "interactive benchmarks)")
    traffic.add_argument("--rate", type=float, default=3.0, metavar="PER_S",
                         help="base arrival rate (clients/second)")
    traffic.add_argument("--horizon", type=float, default=30.0,
                         metavar="SECONDS", help="arrivals stop here")
    traffic.add_argument("--diurnal-period", type=float, default=30.0,
                         metavar="SECONDS", help="diurnal cycle length")
    traffic.add_argument("--diurnal-amplitude", type=float, default=0.4,
                         help="diurnal swing in [0, 1); 0 disables it")
    traffic.add_argument("--spike-at", type=float, default=None,
                         metavar="SECONDS", help="flash-crowd spike start")
    traffic.add_argument("--spike-duration", type=float, default=5.0,
                         metavar="SECONDS")
    traffic.add_argument("--spike-factor", type=float, default=10.0,
                         help="rate multiplier while the spike is active")
    traffic.add_argument("--calls-alpha", type=float, default=1.5,
                         help="Pareto tail index for session lengths")
    traffic.add_argument("--calls-max", type=int, default=4,
                         help="session-length cap (calls per client)")
    traffic.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="per-client completion deadline")
    traffic.add_argument("--seed", type=int, default=0)
    traffic.add_argument("--out", default=None, metavar="FILE",
                         help="write the trace as replayable JSON")
    traffic.add_argument("--replay", action="store_true",
                         help="replay the trace through the simulated "
                         "deployment and report per-app SLO scores")
    traffic.add_argument("--background", type=int, default=10,
                         help="resident background processes during replay")
    traffic.add_argument("--slo-p99", type=float, default=None,
                         metavar="SECONDS",
                         help="with --replay: per-app p99 latency target")
    traffic.add_argument("--slo-goodput", type=float, default=None,
                         metavar="FRACTION",
                         help="with --replay: per-app deadline-goodput floor")

    cohort = sub.add_parser(
        "cohort",
        help="run a cohort-vectorized client population (O(cohorts) "
        "events for thousands of clients)",
    )
    cohort.add_argument("--clients", type=int, default=10_000,
                        help="total clients across all cohorts")
    cohort.add_argument("--calls", type=int, default=5,
                        help="scheduler calls per client")
    cohort.add_argument("--apps", nargs="+", default=None,
                        help="applications, one cohort each (default: the "
                        "paper benchmark set)")
    cohort.add_argument("--background", type=int, default=50,
                        help="static background processes on the x86 host")
    cohort.add_argument("--seed", type=int, default=0)
    cohort.add_argument("--reference", action="store_true",
                        help="force the per-client reference path "
                        "(also: REPRO_COHORT_REFERENCE=1)")
    cohort.add_argument("--verify", action="store_true",
                        help="run both paths and assert bit-identical "
                        "per-client results (the differential oracle)")
    cohort.add_argument("--json", default=None, metavar="FILE",
                        help="also write the per-cohort summary as JSON")

    fleet = sub.add_parser(
        "fleet",
        help="shard a client population across a multi-node fleet "
        "(gossip + two-level placement)",
    )
    fleet.add_argument("--nodes", type=int, default=4,
                       help="complete x86+ARM+FPGA nodes in the fleet")
    fleet.add_argument("--clients", type=int, default=10_000,
                       help="total clients across all cohorts")
    fleet.add_argument("--calls", type=int, default=5,
                       help="scheduler calls per client")
    fleet.add_argument("--apps", nargs="+", default=None,
                       help="applications, one cohort each (default: the "
                       "paper benchmark set)")
    fleet.add_argument("--background", type=int, default=20,
                       help="background processes per node")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--gossip-interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="load-digest publication interval (bounds "
                       "placement staleness)")
    fleet.add_argument("--faults", action="store_true",
                       help="generate a per-node fault plan (half the "
                       "nodes) and arm it against the run")
    fleet.add_argument("--jobs", default=None, metavar="N",
                       help="worker processes for the per-node cohort runs "
                       "(0 or 'auto' = all CPUs; default: REPRO_FLEET_JOBS "
                       "or serial; results are byte-identical either way)")
    fleet.add_argument("--json", default=None, metavar="FILE",
                       help="also write the per-node summary as JSON")

    metrics = sub.add_parser(
        "metrics",
        help="run an instrumented application set and report p50/p95/p99",
    )
    metrics.add_argument("--apps", nargs="+", default=None,
                         help="explicit app list (default: sample like Figure 5)")
    metrics.add_argument("--set-size", type=int, default=10,
                         help="sampled set size when --apps is not given")
    metrics.add_argument("--total-processes", type=int, default=120,
                         help="target process count incl. MG-B background")
    metrics.add_argument("--mode", choices=sorted(_MODES), default="xar-trek")
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument("--json", default=None, metavar="FILE",
                         help="also write the snapshot as deterministic JSON")
    metrics.add_argument("--csv", default=None, metavar="FILE",
                         help="also write the snapshot as deterministic CSV")
    return parser


def _cmd_list() -> int:
    from repro.experiments.report import format_table

    rows = []
    # facedet.multi shares facedet.320's profile; skip the alias.
    names = [n for n in available_workloads() if n != "facedet.multi"]
    for name in (*names, "bfs.1000", "bfs.5000"):
        profile = profile_for(name)
        rows.append(
            [
                name,
                profile.kernel_name or "-",
                f"{profile.vanilla_x86_s * 1e3:.1f}",
                f"{profile.x86_fpga_s * 1e3:.1f}" if profile.fpga_capable else "-",
                f"{profile.x86_arm_s * 1e3:.1f}" if profile.arm_capable else "-",
                profile.calls_per_run,
            ]
        )
    print(
        format_table(
            ["workload", "hw kernel", "x86 (ms)", "x86/FPGA (ms)", "x86/ARM (ms)", "calls"],
            rows,
        )
    )
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    import repro.experiments as experiments

    jobs, cache = _sweep_options(args)
    fn = getattr(experiments, _TABLES[args.number])
    if args.number == 1:
        result = fn(jobs=jobs, cache=cache)
    else:
        result = fn()
    print(result.to_text())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    import repro.experiments as experiments

    jobs, cache = _sweep_options(args)
    number = args.number
    fn = getattr(experiments, _FIGURES[number])
    if number in (3, 4, 5):
        result = fn(repeats=args.repeats, seed=args.seed, jobs=jobs, cache=cache)
    elif number == 6:
        result = fn(seed=args.seed, jobs=jobs, cache=cache)
    elif number in (7, 8, 9):
        result = fn(seed=args.seed)
    else:
        result = fn()
    print(result.to_text())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report, sweep_stats_section

    jobs, cache = _sweep_options(args)
    for result in generate_report(
        repeats=args.repeats, seed=args.seed, quick=args.quick,
        jobs=jobs, cache=cache,
    ):
        print(result.to_text())
        print()
    print(sweep_stats_section().to_text())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    mode = _MODES[args.mode]
    trace = bool(args.timeline)
    runtime = build_system([args.app], seed=args.seed, trace=trace)
    load = runtime.launch_background(args.background) if args.background else None
    done = runtime.launch(
        args.app, seed=args.seed, mode=mode, calls=args.calls,
        deadline_s=args.deadline, functional=args.functional, delay_s=0.01,
    )
    record = runtime.platform.sim.run_until_event(done)
    if load is not None:
        load.stop()
    print(f"application : {record.app}")
    print(f"system      : {mode.value}")
    print(f"elapsed     : {record.elapsed_s * 1e3:.1f} ms")
    print(f"calls       : {record.calls_completed}")
    print(f"targets     : {', '.join(str(t) for t in record.targets) or '-'}")
    print(f"migrations  : {record.migrations}")
    if args.functional:
        print(f"verified    : {record.verified}")
    if args.timeline:
        from repro.experiments import extract_timeline

        timeline = extract_timeline(runtime)
        payload = (
            timeline.to_json()
            if args.timeline.endswith(".json")
            else timeline.to_csv()
        )
        with open(args.timeline, "w") as handle:
            handle.write(payload)
        print(f"timeline    : {args.timeline} ({len(timeline)} events)")
    if record.verified is False:
        return 1
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    compiler = XarTrekCompiler(replicate_compute_units=args.replicate_cus)
    result = compiler.compile(spec_for(args.apps))
    for name, app in result.applications.items():
        binary = app.compiled.binary
        print(
            f"{name:14s} multi-ISA binary {binary.size_bytes / 1e6:5.2f} MB "
            f"({len(binary.symbols)} symbols, "
            f"{len(app.compiled.metadata)} migration points)"
        )
    for image_name, image in result.xclbins.items():
        cus = {k: image.compute_units(k) for k in image.kernel_names}
        print(f"{image_name}: {image.size_bytes / 1e6:.2f} MB, compute units {cus}")
    if args.output_dir:
        os.makedirs(args.output_dir, exist_ok=True)
        for name, app in result.applications.items():
            path = os.path.join(args.output_dir, f"{name}.xelf")
            size = dump_xelf(path, app.compiled.binary, app.compiled.metadata)
            print(f"wrote {path} ({size} bytes)")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.experiments.observability import high_load_metrics, metrics_experiment

    mode = _MODES[args.mode]
    if args.apps:
        background = max(0, args.total_processes - len(args.apps))
        run = metrics_experiment(
            args.apps, mode=mode, background=background, seed=args.seed
        )
    else:
        run = high_load_metrics(
            set_size=args.set_size,
            total_processes=args.total_processes,
            mode=mode,
            seed=args.seed,
        )
    print(run.report().to_text())
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(run.to_json())
        print(f"json        : {args.json}")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(run.to_csv())
        print(f"csv         : {args.csv}")
    return 0


def _slo_targets(apps, p99, goodput):
    """Uniform per-app SLO targets from the CLI's two knobs."""
    from repro.traffic import SLOTarget

    if p99 is None and goodput is None:
        return ()
    return tuple(
        SLOTarget(app, p99_latency_s=p99, goodput_floor=goodput)
        for app in sorted(apps)
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.faults import BrownoutCriteria, FaultPlan, default_plan, run_chaos

    if args.plan:
        plan = FaultPlan.from_file(args.plan)
    else:
        plan = default_plan(args.seed)
    if args.emit_plan:
        plan.to_file(args.emit_plan)
        print(f"plan        : {args.emit_plan} ({len(plan)} faults)")
        return 0
    traffic = None
    if args.traffic:
        from repro.traffic import Trace

        traffic = Trace.load(args.traffic)
    brownout = (
        BrownoutCriteria(goodput_floor=args.brownout_floor)
        if args.brownout_floor is not None
        else None
    )
    apps = (
        sorted({entry.app for entry in traffic})
        if traffic is not None
        else sorted(set(PAPER_BENCHMARKS))
    )
    report = run_chaos(
        plan=plan, seed=args.seed, quick=args.quick, jobs=args.jobs,
        traffic=traffic, brownout=brownout,
        slo=_slo_targets(apps, args.slo_p99, args.slo_goodput),
        horizon_s=args.horizon,
    )
    print(f"legs        : {report.mode}")
    print(report.to_text())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"json        : {args.json}")
    return 0 if report.ok else 1


def _cmd_cohort(args: argparse.Namespace) -> int:
    import json

    import numpy as np

    from repro.core.cohort import ArrivalLaw, CohortSpec

    apps = tuple(sorted(set(args.apps or PAPER_BENCHMARKS)))
    laws = ("uniform", "poisson", "staggered")
    rng = np.random.default_rng(args.seed)
    per_app = args.clients // len(apps)
    specs = []
    for index, app in enumerate(apps):
        clients = per_app + (args.clients - per_app * len(apps) if index == 0 else 0)
        specs.append(
            CohortSpec(
                app,
                clients,
                calls=args.calls,
                arrival=ArrivalLaw(
                    laws[index % len(laws)],
                    start=float(rng.uniform(0.0, 5.0)),
                    span=30.0,
                ),
                seed=int(rng.integers(2**32)),
            )
        )

    def run(vectorized):
        runtime = build_system(apps, seed=args.seed)
        return runtime.run_cohorts(
            specs, background=args.background, vectorized=vectorized
        )

    result = run(not args.reference)
    if args.verify:
        reference = run(False if not args.reference else True)
        if reference.lines() != result.lines():
            print("VERIFY FAIL : vectorized and per-client paths diverge")
            return 1
        print("verify      : both paths bit-identical "
              f"({result.clients} clients, {len(result.cohorts)} cohorts)")
    print(f"path        : {result.path}")
    print(f"clients     : {result.clients} in {len(result.cohorts)} cohorts")
    print(f"sim events  : {result.sim_events}")
    print(f"logical     : {result.logical_events} client events")
    print(f"sim seconds : {result.sim_seconds:.3f}")
    for target, count in sorted(result.served_by_target().items()):
        print(f"served {target.name.lower():<5}: {count}")
    if result.fault_fallbacks:
        print(f"fallbacks   : {result.fault_fallbacks}")
    for line in result.lines():
        print(f"  {line}")
    if args.json:
        payload = {
            "path": result.path,
            "clients": result.clients,
            "sim_events": result.sim_events,
            "logical_events": result.logical_events,
            "sim_seconds": result.sim_seconds,
            "decisions_by_target": {
                t.name.lower(): c for t, c in result.decisions_by_target.items()
            },
            "decisions_by_rule": result.decisions_by_rule,
            "fault_fallbacks": result.fault_fallbacks,
            "lines": result.lines(),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"json        : {args.json}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    import numpy as np

    from repro.core.cohort import ArrivalLaw, CohortSpec
    from repro.fleet import FleetConfig, FleetDeployment

    apps = tuple(sorted(set(args.apps or PAPER_BENCHMARKS)))
    laws = ("uniform", "poisson", "staggered")
    rng = np.random.default_rng(args.seed)
    per_app = args.clients // len(apps)
    specs = []
    for index, app in enumerate(apps):
        clients = per_app + (args.clients - per_app * len(apps) if index == 0 else 0)
        specs.append(
            CohortSpec(
                app,
                clients,
                calls=args.calls,
                arrival=ArrivalLaw(
                    laws[index % len(laws)],
                    start=float(rng.uniform(0.0, 5.0)),
                    span=30.0,
                ),
                seed=int(rng.integers(2**32)),
            )
        )

    fleet = FleetDeployment(
        FleetConfig(
            nodes=args.nodes,
            apps=apps,
            seed=args.seed,
            gossip_interval_s=args.gossip_interval,
        )
    )
    fault_plans = None
    if args.faults:
        from repro.faults import FleetFaultPlan

        kernels = sorted(
            {
                profile_for(app).kernel_name
                for app in apps
                if profile_for(app).kernel_name
            }
        )
        fleet_plan = FleetFaultPlan.generate(
            args.seed, args.nodes, horizon_s=40.0, kernels=kernels
        )
        fault_plans = dict(fleet_plan.plans)
        counts = ", ".join(
            f"{kind}={count}" for kind, count in fleet_plan.counts_by_kind().items()
        )
        print(f"fault plan  : {len(fleet_plan)} faults on "
              f"{len(fleet_plan.plans)}/{args.nodes} nodes ({counts})")
    result = fleet.run_cohorts(
        specs, background=args.background, fault_plans=fault_plans,
        jobs=args.jobs,
    )
    fleet.stop()

    print(f"nodes       : {args.nodes}")
    print(f"exec        : {result.mode} ({result.workers} worker"
          f"{'s' if result.workers != 1 else ''})")
    print(f"clients     : {result.clients} in {len(specs)} cohorts")
    print(f"assigned    : {','.join(str(c) for c in result.assigned_per_node)} "
          f"(skew {result.assignment_skew()})")
    print(f"sim events  : {result.sim_events}")
    print(f"logical     : {result.logical_events} client events")
    print(f"sim seconds : {result.sim_seconds:.3f} (slowest node)")
    print(f"gossip      : {fleet.gossip.rounds} rounds every "
          f"{args.gossip_interval:g}s")
    if result.fault_fallbacks:
        print(f"fallbacks   : {result.fault_fallbacks}")
    for index, node_result in result.node_results:
        print(f"  node{index}: {node_result.clients} clients, "
              f"{node_result.logical_events} events, "
              f"{node_result.sim_seconds:.3f}s, path={node_result.path}")
    if args.json:
        payload = {
            "nodes": args.nodes,
            "mode": result.mode,
            "workers": result.workers,
            "clients": result.clients,
            "assigned_per_node": result.assigned_per_node,
            "assignment_skew": result.assignment_skew(),
            "sim_events": result.sim_events,
            "logical_events": result.logical_events,
            "sim_seconds": result.sim_seconds,
            "gossip_rounds": fleet.gossip.rounds,
            "fault_fallbacks": result.fault_fallbacks,
            "per_node": [
                {
                    "node": index,
                    "clients": node_result.clients,
                    "logical_events": node_result.logical_events,
                    "sim_seconds": node_result.sim_seconds,
                    "path": node_result.path,
                }
                for index, node_result in result.node_results
            ],
            "lines": result.lines(),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"json        : {args.json}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.wallclock import (
        available_scenarios,
        guard_events_per_sec,
        run_bench,
    )

    if args.list_scenarios:
        for name in available_scenarios():
            print(name)
        return 0
    if args.profile and args.guard:
        print("bench: --profile inflates wall clocks several-fold; "
              "refusing to apply the events/sec guard to profiled numbers")
        return 2
    if args.profile_out and not args.profile:
        print("bench: --profile-out requires --profile")
        return 2
    jobs, cache = _sweep_options(args)
    report = run_bench(
        scenarios=args.scenarios,
        seed=args.seed,
        quick=args.quick,
        baseline=args.baseline,
        jobs=jobs,
        cache_dir=cache,
        profile=args.profile,
        profile_out=args.profile_out,
    )
    print(report.to_text())
    if args.json and args.json != "-":
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
        print(f"json        : {args.json}")
    if args.guard:
        failures = guard_events_per_sec(report, args.guard, max_drop=args.guard_drop)
        for failure in failures:
            print(f"GUARD FAIL  : {failure}")
        if failures:
            return 1
        print(f"guard       : events/sec within {args.guard_drop:.0%} of {args.guard}")
    return 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    from repro.traffic import SpikeWindow, Trace, TrafficSpec, generate_trace

    if args.load:
        trace = Trace.load(args.load)
        print(f"trace       : {args.load}")
    else:
        spikes = ()
        if args.spike_at is not None:
            spikes = (
                SpikeWindow(
                    at_s=args.spike_at,
                    duration_s=args.spike_duration,
                    factor=args.spike_factor,
                ),
            )
        apps = tuple(sorted(set(
            args.apps or ("digit.500", "facedet.320", "facedet.640")
        )))
        spec = TrafficSpec(
            apps=apps,
            base_rate_per_s=args.rate,
            horizon_s=args.horizon,
            diurnal_period_s=args.diurnal_period,
            diurnal_amplitude=args.diurnal_amplitude,
            spikes=spikes,
            calls_alpha=args.calls_alpha,
            calls_max=args.calls_max,
            deadline_s=args.deadline,
            seed=args.seed,
        )
        trace = generate_trace(spec)
        print(f"peak rate   : {spec.peak_rate_per_s:g} clients/s")
    per_app: dict[str, int] = {}
    for entry in trace:
        per_app[entry.app] = per_app.get(entry.app, 0) + 1
    print(f"clients     : {len(trace)} ({trace.total_calls} calls, "
          f"seed {trace.seed})")
    print(f"horizon     : {trace.horizon_s:g} s")
    for app, count in sorted(per_app.items()):
        print(f"  {app:<14}: {count} clients")
    if args.out:
        trace.save(args.out)
        print(f"json        : {args.out}")
    if args.replay:
        from repro.faults.harness import _run_workload
        from repro.traffic import SLOTracker

        _runtime, records = _run_workload(
            trace.seed, len(trace), args.background, None, None,
            trace, trace.horizon_s or None,
        )
        tracker = SLOTracker(
            _slo_targets(per_app, args.slo_p99, args.slo_goodput)
        )
        tracker.observe_all(records)
        finished = sum(1 for rec in records if rec.finished)
        print(f"replay      : {finished}/{len(records)} clients finished")
        for line in tracker.lines():
            print(f"  {line}")
        if any(report.violations for report in tracker.score().values()):
            return 1
    return 0


def _cmd_thresholds(apps: list[str]) -> int:
    result = XarTrekCompiler().compile(spec_for(apps))
    print(result.thresholds.to_text(), end="")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "table":
        return _cmd_table(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "thresholds":
        return _cmd_thresholds(args.apps)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "traffic":
        return _cmd_traffic(args)
    if args.command == "cohort":
        return _cmd_cohort(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
