"""The instrumented application as a simulation process.

One :class:`ApplicationRun` reproduces the run-time behaviour of one
compiled application instance under one of four systems:

* ``VANILLA_X86`` — everything on the x86 host (the paper's "Vanilla
  Linux/x86" baseline);
* ``VANILLA_ARM`` — everything on the ARM server ("Vanilla Linux/ARM");
* ``ALWAYS_FPGA`` — host code on x86, the selected function always on
  the FPGA, configuring the card synchronously at first use (the
  traditional hardware-acceleration flow, "FPGA" baseline);
* ``XAR_TREK`` — the full system: early FPGA configuration at startup,
  per-call scheduling via the server (Algorithm 2), Popcorn migration
  to ARM or XRT execution on the FPGA, and the client's dynamic
  threshold update (Algorithm 1) at termination.

The run optionally executes the *functional* workload once and verifies
the result — demonstrating that migration is transparent: the kernel's
output does not depend on where it ran.
"""

from __future__ import annotations

import enum
import math
import os
from dataclasses import dataclass, field
from typing import Optional

from repro.compiler.pipeline import CompiledApplication
from repro.core.server import RequestShed, SchedulerUnavailable
from repro.popcorn.migration_points import CType
from repro.popcorn.runtime import PopcornRuntime, PopcornThread
from repro.popcorn.state import MachineState, StateTransformer
from repro.sim import Event, SimulationError
from repro.types import Target
from repro.workloads import create_workload
from repro.xrt import XRTError

__all__ = ["SystemMode", "RunRecord", "ApplicationRun", "CLIENT_PATH_ENV"]

#: Heap base for a migrating thread's dirty working set.
_WORKING_SET_BASE = 0x2000_0000
_PAGE = 4096

#: Environment variable selecting the client-lifecycle implementation:
#: "chain" (default) runs the precompiled callback-chain fast path;
#: "generator" runs the original generator process, kept as the
#: differential reference (the two are held equivalent by
#: tests/core/test_client_path_oracle.py).
CLIENT_PATH_ENV = "REPRO_CLIENT_PATH"


class SystemMode(enum.Enum):
    """Which system executes the application."""

    VANILLA_X86 = "vanilla-x86"
    VANILLA_ARM = "vanilla-arm"
    ALWAYS_FPGA = "always-fpga"
    XAR_TREK = "xar-trek"


@dataclass
class RunRecord:
    """Everything observed about one application run."""

    app: str
    mode: SystemMode
    seed: int
    start_s: float
    end_s: float = math.nan
    calls_completed: int = 0
    targets: list[Target] = field(default_factory=list)
    migrations: int = 0
    fpga_fallbacks: int = 0
    retries: int = 0
    verified: Optional[bool] = None
    #: The session's completion deadline (absolute budget from start),
    #: carried so SLO scoring can compute deadline-goodput per record.
    deadline_s: Optional[float] = None
    #: Why the session was cut short by overload protection (one of
    #: :data:`repro.faults.resilience.SHED_REASONS`), or None for a
    #: fully served run. A shed run still has a valid ``end_s``.
    shed_reason: Optional[str] = None

    @property
    def elapsed_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def finished(self) -> bool:
        return not math.isnan(self.end_s)

    def dominant_target(self) -> Target:
        """The target that served the most calls (x86 if none)."""
        if not self.targets:
            return Target.X86
        counts: dict[Target, int] = {}
        for target in self.targets:
            counts[target] = counts.get(target, 0) + 1
        return max(counts, key=lambda t: (counts[t], -int(t)))


class ApplicationRun:
    """One application instance inside the simulated datacenter."""

    def __init__(
        self,
        runtime,  # XarTrekRuntime; untyped to avoid a circular import
        app: CompiledApplication,
        seed: int = 0,
        mode: SystemMode = SystemMode.XAR_TREK,
        deadline_s: Optional[float] = None,
        functional: bool = False,
        calls: Optional[int] = None,
    ):
        self.runtime = runtime
        self.app = app
        if calls is None:
            self.profile = app.profile
        else:
            # with_calls is a dataclasses.replace under the hood — slow
            # enough to show up at 1000 launches. Profiles are immutable
            # once built and one runtime maps each app name to one
            # CompiledApplication, so derived variants memoize per
            # runtime (CompiledApplication itself is frozen).
            cache = getattr(runtime, "_calls_profile_cache", None)
            if cache is None:
                cache = runtime._calls_profile_cache = {}
            key = (app.name, calls)
            profile = cache.get(key)
            if profile is None:
                profile = cache[key] = app.profile.with_calls(calls)
            self.profile = profile
        self.seed = seed
        self.mode = mode
        self.deadline_s = deadline_s
        self.functional = functional
        self.record = RunRecord(
            app=app.name, mode=mode, seed=seed, start_s=math.nan,
            deadline_s=deadline_s,
        )
        self._thread: Optional[PopcornThread] = None
        #: Working-set page lists keyed by machine-state size; the
        #: payload only depends on the (frozen) profile and that size,
        #: so rebuilding thousands of page addresses per migration is
        #: pure waste.
        self._ws_cache: dict[int, list[int]] = {}
        # Chain-path state (see _chain_begin): one mutable cursor per
        # run instead of a generator frame.
        self._done: Optional[Event] = None
        self._calls_left = 0
        self._call_started = 0.0
        self._arm_call_cost = 0.0
        self._reply_pending: Optional[Event] = None
        self._fpga_attempt = 0
        self._popcorn: Optional[PopcornRuntime] = None
        self._resilience_policy = None
        self._lat_children: dict = {}
        #: End-to-end per-call latency: target selection (scheduler
        #: round-trip under Xar-Trek) + function execution wherever it
        #: ran, labeled by the target that actually served the call.
        #: The registry get-or-create is paid once per runtime, not per
        #: launch (scale_stress starts 1000 runs on one runtime).
        instruments = getattr(runtime, "_run_instruments", None)
        if instruments is None:
            metrics = runtime.metrics
            instruments = runtime._run_instruments = (
                metrics.histogram(
                    "invocation_latency_seconds",
                    "end-to-end per-invocation latency by serving target",
                    labelnames=("target",),
                ),
                metrics.counter(
                    "invocations_total",
                    "function invocations by application and serving target",
                    labelnames=("app", "target"),
                ),
            )
        self._m_latency, self._m_invocations = instruments

    # -- public API ------------------------------------------------------------
    def start(self) -> Event:
        """Launch now; the returned event fires with the final RunRecord.

        Two equivalent implementations back this. The default is a
        precompiled callback chain (``_chain_begin`` and friends): the
        run's lifecycle — host work, per-call decide/dispatch, Algorithm
        1 at exit — is a fixed state machine, so driving it with bound
        continuations skips the generator send/yield trampoline and most
        intermediate events. ``REPRO_CLIENT_PATH=generator`` selects the
        original generator process (``_body``), kept verbatim as the
        differential reference.
        """
        sim = self.runtime.platform.sim
        self._resilience_policy = getattr(self.runtime, "resilience", None)
        if os.environ.get(CLIENT_PATH_ENV, "chain") == "generator":
            return sim.spawn(self._body())
        done = Event(sim)
        self._done = done
        # Same (time, seq) slot as the generator's bootstrap event, so
        # the first instruction of the run executes at the identical
        # point in the global event order under either path.
        sim.defer(0.0, self._chain_begin)
        return done

    # -- the instrumented main() -------------------------------------------------
    def _body(self):
        platform = self.runtime.platform
        profile = self.profile
        self.record.start_s = platform.now

        if self.functional:
            self._run_functional()

        # Inserted call: scheduler registration + early FPGA configure.
        if (
            self.mode is SystemMode.XAR_TREK
            and self.runtime.server is not None
            and getattr(self.runtime, "early_configure", True)
        ):
            self.runtime.server.preconfigure(self.app.name)

        if self.mode is SystemMode.VANILLA_ARM:
            yield from self._run_all_on_arm()
        else:
            yield from self._run_with_x86_host()

        self.record.end_s = platform.now
        if (
            self.mode is SystemMode.XAR_TREK
            and self.deadline_s is None
            and self.runtime.updater is not None
        ):
            # Inserted call: Algorithm 1, "immediately before the
            # application terminates".
            entry = self.runtime.server.thresholds.entry(self.app.name)
            self.runtime.updater.update(
                entry,
                self.record.dominant_target(),
                self.record.elapsed_s,
                platform.x86_load,
            )
        self.runtime._finish(self.record)
        return self.record

    def _run_functional(self) -> None:
        """Execute the real computation once and verify the result."""
        workload = create_workload(self.app.name)
        inp = workload.generate_input(self.seed)
        output = workload.run_kernel(inp)
        self.record.verified = workload.verify(inp, output)

    def _observe_call(self, target: Target, started_at: float) -> None:
        # Label children memoized per target: resolving labels() is a
        # dict build + lookup, paid per call on the hot path otherwise.
        children = self._lat_children.get(target)
        if children is None:
            children = (
                self._m_latency.labels(target=str(target)),
                self._m_invocations.labels(app=self.app.name, target=str(target)),
            )
            self._lat_children[target] = children
        children[0].observe(self.runtime.platform.now - started_at)
        children[1].inc()

    def _deadline_passed(self) -> bool:
        if self.deadline_s is None:
            return False
        return (
            self.runtime.platform.now - self.record.start_s >= self.deadline_s
        )

    def _deadline_at(self) -> Optional[float]:
        """The absolute completion deadline (admission control input)."""
        if self.deadline_s is None:
            return None
        return self.record.start_s + self.deadline_s

    def _mark_deadline_expired(self) -> None:
        """The deadline passed with calls still owed: the session exits
        early and is accounted as shed, not completed."""
        self.record.shed_reason = "deadline_expired"
        resilience = self._resilience()
        guard = (
            getattr(resilience, "overload", None)
            if resilience is not None
            else None
        )
        if guard is not None:
            guard.count_shed("deadline_expired")

    def _run_all_on_arm(self):
        """Vanilla Linux/ARM: the whole process on one ARM core."""
        arm = self.runtime.platform.arm.cpu
        slowdown = self.profile.arm_core_slowdown
        yield arm.execute(self.profile.host_work_s * slowdown, tag=self.app.name)
        for _call in range(self.profile.calls_per_run):
            if self._deadline_passed():
                self._mark_deadline_expired()
                break
            call_cost = (
                self.profile.per_call_host_s + self.profile.func_x86_s
            ) * slowdown
            call_started = self.runtime.platform.now
            yield arm.execute(call_cost, tag=self.app.name)
            self.record.targets.append(Target.ARM)
            self._observe_call(Target.ARM, call_started)
            self.record.calls_completed += 1

    def _run_with_x86_host(self):
        """x86-hosted modes: host work, then the per-call dispatch loop."""
        x86 = self.runtime.platform.x86.cpu
        profile = self.profile
        yield x86.execute(profile.host_work_s, tag=self.app.name)
        for _call in range(profile.calls_per_run):
            if self._deadline_passed():
                self._mark_deadline_expired()
                break
            if profile.per_call_host_s > 0:
                yield x86.execute(profile.per_call_host_s, tag=self.app.name)
            call_started = self.runtime.platform.now
            target = yield from self._choose_target()
            if target is None:
                # Admission control shed this call: the session ends
                # here, explicitly accounted via record.shed_reason.
                break
            yield from self._execute_function(target)
            # The serving target may differ from the decision (FPGA
            # fallback); the record's tail is what actually ran.
            self._observe_call(self.record.targets[-1], call_started)
            self.record.calls_completed += 1

    def _resilience(self):
        policy = self._resilience_policy
        if policy is None:
            policy = self._resilience_policy = getattr(self.runtime, "resilience", None)
        return policy

    def _count_fallback(self, reason: str) -> None:
        resilience = self._resilience()
        if resilience is not None:
            resilience.count_fallback(reason)

    def _choose_target(self):
        if self.mode is SystemMode.VANILLA_X86:
            return Target.X86
        if self.mode is SystemMode.ALWAYS_FPGA:
            return Target.FPGA if self.profile.fpga_capable else Target.X86
        assert self.mode is SystemMode.XAR_TREK
        sim = self.runtime.platform.sim
        resilience = self._resilience()
        timeout_s = (
            resilience.config.request_timeout_s if resilience is not None else None
        )
        try:
            reply = self.runtime.server.request(
                self.app.name, deadline_at=self._deadline_at()
            )
        except RequestShed as exc:
            # Admission control refused the work. No local fallback —
            # shedding means *not* doing the work; the caller ends the
            # session with the reason on the record.
            self.record.shed_reason = exc.reason
            return None
        except SchedulerUnavailable:
            # Daemon down before we could even enqueue: decide locally.
            self._count_fallback("scheduler_down")
            return Target.X86
        if timeout_s is None:
            target = yield reply
            return target
        # We may abandon the reply on timeout; a late failure (server
        # stop during an outage window) must then not crash the run.
        reply.defused = True
        try:
            yield sim.any_of([reply, sim.timeout(timeout_s)])
        except SchedulerUnavailable:
            # The daemon went down with our request queued.
            self._count_fallback("scheduler_down")
            return Target.X86
        if reply.triggered and reply.ok:
            return reply.value
        # No reply within the budget (daemon hung or slow): serve the
        # call locally on x86 — correct, just not accelerated.
        self._count_fallback("scheduler_timeout")
        return Target.X86

    # -- function execution per target -----------------------------------------
    def _execute_function(self, target: Target):
        if target is Target.FPGA:
            yield from self._execute_fpga()
        elif target is Target.ARM:
            yield from self._execute_arm_migrated()
        else:
            yield self.runtime.platform.x86.cpu.execute(
                self.profile.func_x86_s, tag=self.app.name
            )
            self.record.targets.append(Target.X86)

    def _fallback_to_x86(self, reason: str):
        """Serve the call on the x86 host instead of the FPGA.

        The result is identical (migration transparency); only the
        latency differs. ``reason`` labels ``fallbacks_total``.
        """
        self.record.fpga_fallbacks += 1
        self._count_fallback(reason)
        yield self.runtime.platform.x86.cpu.execute(
            self.profile.func_x86_s, tag=self.app.name
        )
        self.record.targets.append(Target.X86)

    def _execute_fpga(self):
        xrt = self.runtime.xrt
        kernel = self.profile.kernel_name
        resilience = self._resilience()
        if resilience is not None and not resilience.allow_kernel(kernel):
            # Quarantined (mostly reachable in ALWAYS_FPGA mode — under
            # Xar-Trek the scheduler already steered away).
            yield from self._fallback_to_x86("quarantined")
            return
        if not xrt.has_kernel(kernel):
            if self.mode is SystemMode.ALWAYS_FPGA and not xrt.reconfiguring:
                # Traditional flow: configure synchronously at first use.
                image = self.runtime.image_for(kernel)
                try:
                    yield xrt.load_xclbin(image)
                except (XRTError, SimulationError):
                    yield from self._fallback_to_x86("configure_failed")
                    return
            elif xrt.reconfiguring:
                # Wait out an in-flight reconfiguration and retry —
                # woken by the settle event, not a poll timer (the old
                # 10 ms poll loop generated thousands of timeout events
                # per reconfiguration under high load).
                while xrt.reconfiguring:
                    yield xrt.wait_reconfigured()
            if not xrt.has_kernel(kernel):
                # Kernel still absent (scheduler race): run on x86.
                yield from self._fallback_to_x86("kernel_absent")
                return
        attempt = 0
        while True:
            try:
                yield xrt.run_kernel(
                    kernel,
                    bytes_in=self.profile.bytes_to_fpga,
                    bytes_out=self.profile.bytes_from_fpga,
                    duration=self.profile.fpga_kernel_s,
                )
            except XRTError:
                if resilience is not None:
                    resilience.record_kernel_failure(kernel)
                    config = resilience.config
                    if (
                        attempt < config.kernel_retry_limit
                        and xrt.has_kernel(kernel)
                        and resilience.allow_kernel(kernel)
                    ):
                        self.record.retries += 1
                        resilience.count_retry(kernel)
                        yield self.runtime.platform.sim.timeout(
                            config.backoff_s(attempt)
                        )
                        attempt += 1
                        # The device may have crashed or been
                        # quarantined during the backoff.
                        if xrt.has_kernel(kernel) and resilience.allow_kernel(kernel):
                            continue
                yield from self._fallback_to_x86("kernel_fault")
                return
            else:
                if resilience is not None:
                    resilience.record_kernel_success(kernel)
                break
        self.record.targets.append(Target.FPGA)

    def _execute_arm_migrated(self):
        """Software migration: Popcorn there, run the function, Popcorn back."""
        popcorn = self.runtime.popcorn_for(self.app.name)
        thread = self._ensure_thread(popcorn)
        self._mark_working_set(thread)
        yield popcorn.migrate(thread, Target.ARM)
        self.record.migrations += 1
        yield self.runtime.platform.arm.cpu.execute(
            self.profile.func_arm_s, tag=self.app.name
        )
        self._mark_working_set(thread)  # results dirtied on the ARM side
        yield popcorn.migrate(thread, Target.X86)
        self.record.migrations += 1
        self.record.targets.append(Target.ARM)

    # -- migration state plumbing -------------------------------------------------
    def _ensure_thread(self, popcorn: PopcornRuntime) -> PopcornThread:
        if self._thread is not None:
            return self._thread
        # The initial machine state is a pure function of the (frozen)
        # application metadata, and states are never mutated on the
        # migration path — so every run of the same app can share one
        # prototype object instead of rebuilding identical frames per
        # client. Sharing also makes the first migration of each thread
        # a transform-memo hit (see PopcornRuntime.migrate).
        cache = getattr(self.runtime, "_proto_state_cache", None)
        if cache is None:
            cache = self.runtime._proto_state_cache = {}
        state = cache.get(self.app.name)
        if state is None:
            metadata = self.app.compiled.metadata
            transformer = StateTransformer(metadata)
            function = self.app.instrumented.selected_functions[0]
            frames = []
            for fn in ("main", function):
                point = metadata.points_in(fn)[0]
                values = {
                    var.name: (float(i) if CType.is_float(var.ctype) else i)
                    for i, var in enumerate(point.live_vars)
                }
                frames.append(
                    transformer.build_frame(fn, point, values, "x86_64", 0x400100)
                )
            state = MachineState(isa="x86_64", frames=frames)
            cache[self.app.name] = state
        self._thread = popcorn.spawn_thread(
            self.app.compiled.binary, state, Target.X86
        )
        if popcorn.dsm is not None:
            popcorn.dsm.seed_pages(str(Target.X86), self._working_set_addrs(state))
        return self._thread

    def _working_set_addrs(self, state: MachineState) -> list[int]:
        size = state.size_bytes()
        addrs = self._ws_cache.get(size)
        if addrs is None:
            # The address list itself is a pure function of (state size,
            # profile), so runs share one immutable prototype and each
            # run takes a C-speed list copy. The copy stays per-run on
            # purpose: migration ships a working set once and then
            # clears this very list object, so sharing it across runs
            # would change what later clients transfer.
            proto_cache = getattr(self.runtime, "_ws_proto_cache", None)
            if proto_cache is None:
                proto_cache = self.runtime._ws_proto_cache = {}
            key = (size, self.profile.migration_state_bytes)
            proto = proto_cache.get(key)
            if proto is None:
                payload = max(0, self.profile.migration_state_bytes - size)
                n_pages = payload // _PAGE
                proto = proto_cache[key] = tuple(
                    _WORKING_SET_BASE + i * _PAGE for i in range(n_pages)
                )
            addrs = list(proto)
            self._ws_cache[size] = addrs
        return addrs

    def _mark_working_set(self, thread: PopcornThread) -> None:
        thread.dirty_addresses = self._working_set_addrs(thread.state)

    # -- precompiled callback chain (the default client path) -------------------
    #
    # Hand-compiled continuation-passing form of _body/_run_with_x86_host/
    # _choose_target/_execute_function above. Every yield point becomes a
    # bound-method continuation invoked from the awaited event's callback
    # list (or directly from a fair-share server's on_complete), so a
    # steady-state call costs no generator frame, no Process event, no
    # AnyOf/Timeout pair, and no per-hop closures. Control flow, metric
    # touch points, and fallback/retry ordering mirror the generator
    # line-for-line; the equivalence is pinned by the differential oracle
    # in tests/core/test_client_path_oracle.py and by the bench scenario
    # checksums, which the chain must reproduce byte-identically.

    def _chain_fail(self, exc: BaseException) -> None:
        done = self._done
        if done._state == Event.PENDING:
            done.fail(exc)
        else:
            raise exc

    def _chain_begin(self) -> None:
        try:
            runtime = self.runtime
            platform = runtime.platform
            profile = self.profile
            self.record.start_s = platform.now
            if self.functional:
                self._run_functional()
            if (
                self.mode is SystemMode.XAR_TREK
                and runtime.server is not None
                and getattr(runtime, "early_configure", True)
            ):
                runtime.server.preconfigure(self.app.name)
            self._calls_left = profile.calls_per_run
            if self.mode is SystemMode.VANILLA_ARM:
                slowdown = profile.arm_core_slowdown
                self._arm_call_cost = (
                    profile.per_call_host_s + profile.func_x86_s
                ) * slowdown
                platform.arm.cpu.execute_job(
                    profile.host_work_s * slowdown,
                    tag=self.app.name,
                    on_complete=self._arm_host_done,
                )
            else:
                platform.x86.cpu.execute_job(
                    profile.host_work_s, tag=self.app.name, on_complete=self._host_done
                )
        except BaseException as exc:
            self._chain_fail(exc)

    # -- vanilla-ARM loop --------------------------------------------------------
    def _arm_host_done(self, _job) -> None:
        try:
            self._arm_next_call()
        except BaseException as exc:
            self._chain_fail(exc)

    def _arm_next_call(self) -> None:
        try:
            if self._calls_left <= 0:
                self._chain_finish()
                return
            if self._deadline_passed():
                self._mark_deadline_expired()
                self._chain_finish()
                return
            self._call_started = self.runtime.platform.now
            self.runtime.platform.arm.cpu.execute_job(
                self._arm_call_cost, tag=self.app.name, on_complete=self._arm_call_done
            )
        except BaseException as exc:
            self._chain_fail(exc)

    def _arm_call_done(self, _job) -> None:
        try:
            self.record.targets.append(Target.ARM)
            self._observe_call(Target.ARM, self._call_started)
            self.record.calls_completed += 1
            self._calls_left -= 1
            self._arm_next_call()
        except BaseException as exc:
            self._chain_fail(exc)

    # -- x86-hosted per-call loop ------------------------------------------------
    def _host_done(self, _job) -> None:
        try:
            self._next_call()
        except BaseException as exc:
            self._chain_fail(exc)

    def _next_call(self) -> None:
        try:
            if self._calls_left <= 0:
                self._chain_finish()
                return
            if self._deadline_passed():
                self._mark_deadline_expired()
                self._chain_finish()
                return
            per_call = self.profile.per_call_host_s
            if per_call > 0:
                self.runtime.platform.x86.cpu.execute_job(
                    per_call, tag=self.app.name, on_complete=self._per_call_host_done
                )
            else:
                self._begin_call()
        except BaseException as exc:
            self._chain_fail(exc)

    def _per_call_host_done(self, _job) -> None:
        try:
            self._begin_call()
        except BaseException as exc:
            self._chain_fail(exc)

    def _begin_call(self) -> None:
        try:
            self._call_started = self.runtime.platform.now
            mode = self.mode
            if mode is SystemMode.VANILLA_X86:
                self._dispatch(Target.X86)
                return
            if mode is SystemMode.ALWAYS_FPGA:
                self._dispatch(
                    Target.FPGA if self.profile.fpga_capable else Target.X86
                )
                return
            # XAR_TREK: ask the scheduler, racing a client-side timeout.
            resilience = self._resilience()
            timeout_s = (
                resilience.config.request_timeout_s if resilience is not None else None
            )
            try:
                reply = self.runtime.server.request(
                    self.app.name, deadline_at=self._deadline_at()
                )
            except RequestShed as exc:
                # Mirrors _choose_target: a shed call ends the session
                # (no local fallback), reason on the record.
                self.record.shed_reason = exc.reason
                self._chain_finish()
                return
            except SchedulerUnavailable:
                self._count_fallback("scheduler_down")
                self._dispatch(Target.X86)
                return
            self._reply_pending = reply
            if timeout_s is None:
                # No timeout budget: a failed reply fails the run, just
                # as it would be thrown into the generator at the yield.
                reply.callbacks.append(self._reply_plain)
                return
            # We may abandon the reply on timeout; a late failure must
            # then not crash the run (mirrors _choose_target).
            reply.defused = True
            reply.callbacks.append(self._reply_event)
            self.runtime.platform.sim.defer(timeout_s, self._reply_timeout, reply)
        except BaseException as exc:
            self._chain_fail(exc)

    def _reply_plain(self, reply: Event) -> None:
        self._reply_pending = None
        try:
            if reply._ok:
                self._dispatch(reply._value)
            else:
                reply.defused = True
                self._chain_fail(reply._value)
        except BaseException as exc:
            self._chain_fail(exc)

    def _reply_event(self, reply: Event) -> None:
        if reply is not self._reply_pending:
            return  # raced by the timeout (or stale from a prior call)
        self._reply_pending = None
        try:
            if reply._ok:
                self._dispatch(reply._value)
            elif isinstance(reply._value, SchedulerUnavailable):
                # The daemon went down with our request queued.
                self._count_fallback("scheduler_down")
                self._dispatch(Target.X86)
            else:
                self._chain_fail(reply._value)
        except BaseException as exc:
            self._chain_fail(exc)

    def _reply_timeout(self, reply: Event) -> None:
        if reply is not self._reply_pending:
            return  # the reply won the race
        self._reply_pending = None
        try:
            self._count_fallback("scheduler_timeout")
            self._dispatch(Target.X86)
        except BaseException as exc:
            self._chain_fail(exc)

    # -- per-target dispatch -----------------------------------------------------
    def _dispatch(self, target: Target) -> None:
        if target is Target.FPGA:
            self._fpga_begin()
        elif target is Target.ARM:
            self._arm_migrate_begin()
        else:
            self.runtime.platform.x86.cpu.execute_job(
                self.profile.func_x86_s, tag=self.app.name,
                on_complete=self._x86_func_done,
            )

    def _x86_func_done(self, _job) -> None:
        try:
            self.record.targets.append(Target.X86)
            self._finish_call()
        except BaseException as exc:
            self._chain_fail(exc)

    def _finish_call(self) -> None:
        # The serving target may differ from the decision (FPGA
        # fallback); the record's tail is what actually ran.
        self._observe_call(self.record.targets[-1], self._call_started)
        self.record.calls_completed += 1
        self._calls_left -= 1
        self._next_call()

    def _chain_fallback(self, reason: str) -> None:
        self.record.fpga_fallbacks += 1
        self._count_fallback(reason)
        self.runtime.platform.x86.cpu.execute_job(
            self.profile.func_x86_s, tag=self.app.name, on_complete=self._x86_func_done
        )

    # -- FPGA path (mirrors _execute_fpga) ---------------------------------------
    def _fpga_begin(self) -> None:
        try:
            xrt = self.runtime.xrt
            kernel = self.profile.kernel_name
            resilience = self._resilience()
            if resilience is not None and not resilience.allow_kernel(kernel):
                self._chain_fallback("quarantined")
                return
            if not xrt.has_kernel(kernel):
                if self.mode is SystemMode.ALWAYS_FPGA and not xrt.reconfiguring:
                    image = self.runtime.image_for(kernel)
                    try:
                        configured = xrt.load_xclbin(image)
                    except (XRTError, SimulationError):
                        self._chain_fallback("configure_failed")
                        return
                    configured.defused = True
                    configured.callbacks.append(self._fpga_configured)
                    return
                if xrt.reconfiguring:
                    xrt.wait_reconfigured().callbacks.append(self._fpga_settled)
                    return
                self._chain_fallback("kernel_absent")
                return
            self._fpga_attempt = 0
            self._fpga_run()
        except BaseException as exc:
            self._chain_fail(exc)

    def _fpga_configured(self, ev: Event) -> None:
        try:
            if not ev._ok:
                if isinstance(ev._value, (XRTError, SimulationError)):
                    self._chain_fallback("configure_failed")
                else:
                    self._chain_fail(ev._value)
                return
            self._fpga_after_wait()
        except BaseException as exc:
            self._chain_fail(exc)

    def _fpga_settled(self, _ev: Event) -> None:
        try:
            xrt = self.runtime.xrt
            if xrt.reconfiguring:  # another reconfiguration started
                xrt.wait_reconfigured().callbacks.append(self._fpga_settled)
                return
            self._fpga_after_wait()
        except BaseException as exc:
            self._chain_fail(exc)

    def _fpga_after_wait(self) -> None:
        # Kernel may still be absent (scheduler race): run on x86.
        if not self.runtime.xrt.has_kernel(self.profile.kernel_name):
            self._chain_fallback("kernel_absent")
            return
        self._fpga_attempt = 0
        self._fpga_run()

    def _fpga_run(self) -> None:
        profile = self.profile
        try:
            running = self.runtime.xrt.run_kernel(
                profile.kernel_name,
                bytes_in=profile.bytes_to_fpga,
                bytes_out=profile.bytes_from_fpga,
                duration=profile.fpga_kernel_s,
            )
        except XRTError:
            self._fpga_run_failed()
            return
        running.defused = True
        running.callbacks.append(self._fpga_run_done)

    def _fpga_run_done(self, ev: Event) -> None:
        try:
            if ev._ok:
                resilience = self._resilience()
                if resilience is not None:
                    resilience.record_kernel_success(self.profile.kernel_name)
                self.record.targets.append(Target.FPGA)
                self._finish_call()
                return
            if not isinstance(ev._value, XRTError):
                self._chain_fail(ev._value)
                return
            self._fpga_run_failed()
        except BaseException as exc:
            self._chain_fail(exc)

    def _fpga_run_failed(self) -> None:
        try:
            kernel = self.profile.kernel_name
            resilience = self._resilience()
            if resilience is not None:
                resilience.record_kernel_failure(kernel)
                config = resilience.config
                xrt = self.runtime.xrt
                if (
                    self._fpga_attempt < config.kernel_retry_limit
                    and xrt.has_kernel(kernel)
                    and resilience.allow_kernel(kernel)
                ):
                    self.record.retries += 1
                    resilience.count_retry(kernel)
                    self.runtime.platform.sim.defer(
                        config.backoff_s(self._fpga_attempt), self._fpga_retry
                    )
                    return
            self._chain_fallback("kernel_fault")
        except BaseException as exc:
            self._chain_fail(exc)

    def _fpga_retry(self) -> None:
        try:
            self._fpga_attempt += 1
            kernel = self.profile.kernel_name
            resilience = self._resilience()
            # The device may have crashed or been quarantined during
            # the backoff.
            if self.runtime.xrt.has_kernel(kernel) and resilience.allow_kernel(kernel):
                self._fpga_run()
            else:
                self._chain_fallback("kernel_fault")
        except BaseException as exc:
            self._chain_fail(exc)

    # -- ARM migration path (mirrors _execute_arm_migrated) ----------------------
    def _arm_migrate_begin(self) -> None:
        try:
            popcorn = self._popcorn
            if popcorn is None:
                popcorn = self._popcorn = self.runtime.popcorn_for(self.app.name)
            thread = self._ensure_thread(popcorn)
            self._mark_working_set(thread)
            popcorn.migrate(thread, Target.ARM).callbacks.append(self._arm_arrived)
        except BaseException as exc:
            self._chain_fail(exc)

    def _arm_arrived(self, _ev: Event) -> None:
        try:
            self.record.migrations += 1
            self.runtime.platform.arm.cpu.execute_job(
                self.profile.func_arm_s, tag=self.app.name,
                on_complete=self._arm_func_done,
            )
        except BaseException as exc:
            self._chain_fail(exc)

    def _arm_func_done(self, _job) -> None:
        try:
            thread = self._thread
            self._mark_working_set(thread)  # results dirtied on the ARM side
            self._popcorn.migrate(thread, Target.X86).callbacks.append(
                self._arm_returned
            )
        except BaseException as exc:
            self._chain_fail(exc)

    def _arm_returned(self, _ev: Event) -> None:
        try:
            self.record.migrations += 1
            self.record.targets.append(Target.ARM)
            self._finish_call()
        except BaseException as exc:
            self._chain_fail(exc)

    # -- termination -------------------------------------------------------------
    def _chain_finish(self) -> None:
        platform = self.runtime.platform
        record = self.record
        record.end_s = platform.now
        if (
            self.mode is SystemMode.XAR_TREK
            and self.deadline_s is None
            and self.runtime.updater is not None
        ):
            # Inserted call: Algorithm 1, "immediately before the
            # application terminates".
            entry = self.runtime.server.thresholds.entry(self.app.name)
            self.runtime.updater.update(
                entry,
                record.dominant_target(),
                record.elapsed_s,
                platform.x86_load,
            )
        self.runtime._finish(record)
        self._done.succeed(record)
