"""The scheduler server (Section 3.2, Algorithm 2).

Runs on the x86 host as a userspace daemon. Clients connect over a
socket; each request names an application, and the reply carries the
migration flag (0 = x86, 1 = ARM, 2 = FPGA). The server reads the
threshold table, samples the x86 CPU load, queries the FPGA's resident
kernels, decides per Algorithm 2, and — when the decision calls for
it — kicks off an FPGA reconfiguration in the background so the
transfer/programming latency hides behind CPU execution.

In the simulation the socket is a :class:`~repro.sim.Store` plus a
round-trip latency; the request/decide/reply path consumes simulated
time exactly like the real client/server pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.policy import Decision, decide
from repro.hardware.platform import HeterogeneousPlatform
from repro.sim import Event, Store, Tracer
from repro.thresholds import ThresholdTable
from repro.types import Target
from repro.xrt import XRTDevice

__all__ = ["SchedulerServer", "ServerStats"]

#: One-way userspace socket latency on the host (localhost TCP).
DEFAULT_SOCKET_LATENCY_S = 50e-6


@dataclass
class ServerStats:
    """Decision counters, by target and by Algorithm 2 rule."""

    requests: int = 0
    by_target: dict[Target, int] = field(default_factory=dict)
    by_rule: dict[str, int] = field(default_factory=dict)
    reconfigurations_started: int = 0
    reconfigurations_skipped: int = 0
    reconfigurations_failed: int = 0


class SchedulerServer:
    """The policy daemon: owns the threshold table and the FPGA images."""

    def __init__(
        self,
        platform: HeterogeneousPlatform,
        xrt: XRTDevice,
        thresholds: ThresholdTable,
        kernel_images: dict[str, object],
        socket_latency_s: float = DEFAULT_SOCKET_LATENCY_S,
        tracer: Optional[Tracer] = None,
        policy=None,
    ):
        """``kernel_images`` maps hardware-kernel name -> XCLBIN image.

        ``policy`` swaps the decision function (default: the paper's
        Algorithm 2, :func:`repro.core.policy.decide`); see
        :mod:`repro.core.policies` for alternatives.
        """
        self.platform = platform
        self.xrt = xrt
        self.thresholds = thresholds
        self.policy = policy or decide
        self.kernel_images = dict(kernel_images)
        self.socket_latency_s = socket_latency_s
        self.tracer = tracer or platform.tracer
        self.stats = ServerStats()
        self._requests: Store = Store(platform.sim)
        self._running = False

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Algorithm 2 lines 1-3: init kernel info, socket, load timer."""
        if self._running:
            return
        self._running = True
        self.platform.sim.spawn(self._serve())

    def _serve(self):
        # Algorithm 2's main loop (lines 4-33).
        while True:
            app_name, reply = yield self._requests.get()
            # Request crosses the socket; decide; reply crosses back.
            yield self.platform.sim.timeout(self.socket_latency_s)
            decision = self._decide(app_name)
            yield self.platform.sim.timeout(self.socket_latency_s)
            reply.succeed(decision.target)

    # -- client API ------------------------------------------------------------
    def request(self, app_name: str) -> Event:
        """Client-side call: fires with the chosen :class:`Target`."""
        if not self._running:
            raise RuntimeError("scheduler server not started")
        reply = self.platform.sim.event()
        self._requests.put((app_name, reply))
        return reply

    def preconfigure(self, app_name: str) -> None:
        """The instrumented main()'s early FPGA-configuration call.

        Requests the application's image non-blockingly at startup so
        the kernel is warm before its first invocation (Section 3.1;
        load-bearing for Figure 6's throughput win over always-FPGA).
        """
        entry = self.thresholds.entry(app_name)
        if entry.kernel_name:
            self._maybe_reconfigure(entry.kernel_name)

    # -- internals ---------------------------------------------------------------
    def _decide(self, app_name: str) -> Decision:
        entry = self.thresholds.entry(app_name)
        # The requesting process is itself runnable on the host while it
        # executes the scheduler-client call, so it counts toward the
        # x86 CPU load even though it holds no compute job right now.
        load = self.platform.x86_load + 1
        available = bool(entry.kernel_name) and self.xrt.has_kernel(entry.kernel_name)
        decision = self.policy(load, entry, available)
        self.stats.requests += 1
        self.stats.by_target[decision.target] = (
            self.stats.by_target.get(decision.target, 0) + 1
        )
        self.stats.by_rule[decision.rule] = self.stats.by_rule.get(decision.rule, 0) + 1
        self.tracer.record(
            "scheduler",
            f"{app_name}: load={load} -> {decision.target} ({decision.rule})",
            app=app_name,
            load=load,
            target=str(decision.target),
            rule=decision.rule,
        )
        if decision.reconfigure:
            self._maybe_reconfigure(entry.kernel_name)
        return decision

    def _maybe_reconfigure(self, kernel_name: str) -> None:
        """Start loading the image that hosts ``kernel_name``, if possible.

        Skipped when the kernel is already resident, a reconfiguration
        is in flight, or kernels are mid-run (swapping under a running
        kernel is impossible); the next request retries.
        """
        if self.xrt.has_kernel(kernel_name):
            return
        image = self.kernel_images.get(kernel_name)
        if image is None:
            return
        if self.xrt.reconfiguring or self.xrt.active_runs:
            self.stats.reconfigurations_skipped += 1
            return
        self.stats.reconfigurations_started += 1
        self.tracer.record(
            "scheduler",
            f"reconfiguring FPGA with {image.name} for {kernel_name}",
            image=image.name,
            kernel=kernel_name,
        )
        done = self.xrt.load_xclbin(image)
        done.defused = True  # a programming failure must not crash the run

        def on_outcome(event) -> None:
            if not event.ok:
                self.stats.reconfigurations_failed += 1
                self.tracer.record(
                    "scheduler",
                    f"reconfiguration with {image.name} failed; will retry "
                    "on the next request",
                    image=image.name,
                )

        done.callbacks.append(on_outcome)
