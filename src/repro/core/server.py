"""The scheduler server (Section 3.2, Algorithm 2).

Runs on the x86 host as a userspace daemon. Clients connect over a
socket; each request names an application, and the reply carries the
migration flag (0 = x86, 1 = ARM, 2 = FPGA). The server reads the
threshold table, samples the x86 CPU load, queries the FPGA's resident
kernels, decides per Algorithm 2, and — when the decision calls for
it — kicks off an FPGA reconfiguration in the background so the
transfer/programming latency hides behind CPU execution.

In the simulation the socket is a :class:`~repro.sim.Store` plus a
round-trip latency; the request/decide/reply path consumes simulated
time exactly like the real client/server pair.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.policy import Decision, decide
from repro.hardware.platform import HeterogeneousPlatform
from repro.metrics import MetricsRegistry
from repro.sim import Event, Store, Tracer
from repro.thresholds import ThresholdTable
from repro.types import Target
from repro.xrt import XRTDevice

__all__ = ["SchedulerServer", "ServerStats"]

#: One-way userspace socket latency on the host (localhost TCP).
DEFAULT_SOCKET_LATENCY_S = 50e-6

_TARGET_BY_NAME = {str(target): target for target in Target}


class ServerStats:
    """Decision counters, by target and by Algorithm 2 rule.

    The counts live in the metrics registry; every attribute here is a
    thin read-only view over those counters, so the stats API and a
    metrics export can never disagree (they are the same numbers).
    """

    def __init__(self, metrics: MetricsRegistry):
        if metrics is None:
            raise TypeError(
                "ServerStats requires an explicit MetricsRegistry; a "
                "detached registry would silently drop the scheduler's "
                "counters from every metrics export"
            )
        self._requests = metrics.counter(
            "scheduler_requests_total", "scheduling requests served"
        )
        self._decisions = metrics.counter(
            "scheduler_decisions_total",
            "scheduling decisions by chosen target",
            labelnames=("target",),
        )
        self._rules = metrics.counter(
            "scheduler_decisions_by_rule_total",
            "scheduling decisions by Algorithm 2 rule",
            labelnames=("rule",),
        )
        self._reconf_started = metrics.counter(
            "fpga_reconfigurations_started_total",
            "background reconfigurations kicked off by the scheduler",
        )
        self._reconf_skipped = metrics.counter(
            "fpga_reconfigurations_skipped_total",
            "reconfigurations skipped (in flight, or kernels running)",
        )
        self._reconf_failed = metrics.counter(
            "fpga_reconfigurations_failed_total",
            "reconfigurations that failed to program the card",
        )
        # Per-decision fast path: resolve each label child once (lazily,
        # so the exported series set is unchanged) instead of going
        # through the labels() validation on every request.
        self._decision_children: dict[Any, Any] = {}
        self._rule_children: dict[str, Any] = {}

    def _count_decision(self, decision) -> None:
        """O(1) per-request accounting (no per-request label resolution)."""
        self._requests.inc()
        target_child = self._decision_children.get(decision.target)
        if target_child is None:
            target_child = self._decisions.labels(target=str(decision.target))
            self._decision_children[decision.target] = target_child
        target_child.inc()
        rule_child = self._rule_children.get(decision.rule)
        if rule_child is None:
            rule_child = self._rules.labels(rule=decision.rule)
            self._rule_children[decision.rule] = rule_child
        rule_child.inc()

    # -- thin views over the counters ------------------------------------
    @property
    def requests(self) -> int:
        return int(self._requests.value)

    @property
    def by_target(self) -> dict[Target, int]:
        return {
            _TARGET_BY_NAME[key[0]]: int(count)
            for key, count in self._decisions.as_dict().items()
        }

    @property
    def by_rule(self) -> dict[str, int]:
        return {key[0]: int(count) for key, count in self._rules.as_dict().items()}

    @property
    def reconfigurations_started(self) -> int:
        return int(self._reconf_started.value)

    @property
    def reconfigurations_skipped(self) -> int:
        return int(self._reconf_skipped.value)

    @property
    def reconfigurations_failed(self) -> int:
        return int(self._reconf_failed.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServerStats(requests={self.requests}, by_target={self.by_target}, "
            f"by_rule={self.by_rule})"
        )


class SchedulerServer:
    """The policy daemon: owns the threshold table and the FPGA images."""

    def __init__(
        self,
        platform: HeterogeneousPlatform,
        xrt: XRTDevice,
        thresholds: ThresholdTable,
        kernel_images: dict[str, object],
        socket_latency_s: float = DEFAULT_SOCKET_LATENCY_S,
        tracer: Optional[Tracer] = None,
        policy=None,
    ):
        """``kernel_images`` maps hardware-kernel name -> XCLBIN image.

        ``policy`` swaps the decision function (default: the paper's
        Algorithm 2, :func:`repro.core.policy.decide`); see
        :mod:`repro.core.policies` for alternatives.
        """
        self.platform = platform
        self.xrt = xrt
        self.thresholds = thresholds
        self.policy = policy or decide
        self.kernel_images = dict(kernel_images)
        self.socket_latency_s = socket_latency_s
        self.tracer = tracer or platform.tracer
        self.metrics = platform.metrics
        self.stats = ServerStats(self.metrics)
        self._roundtrip = self.metrics.histogram(
            "scheduler_roundtrip_seconds",
            "client-observed request->reply latency (socket + queueing + decide)",
        )
        self._requests: Store = Store(platform.sim)
        self._running = False

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Algorithm 2 lines 1-3: init kernel info, socket, load timer."""
        if self._running:
            return
        self._running = True
        self.platform.sim.spawn(self._serve())

    def _serve(self):
        # Algorithm 2's main loop (lines 4-33): accept, then hand each
        # request to its own handler. The daemon must never block the
        # accept loop on one client's round-trip — with the old serial
        # loop, M simultaneous clients saw M x the socket latency.
        while True:
            app_name, reply = yield self._requests.get()
            self._handle(app_name, reply)

    def _handle(self, app_name: str, reply: Event) -> None:
        """One request's handler: socket in, decide, socket out.

        Runs as an independent callback chain per request, so
        concurrent requests overlap their socket latencies instead of
        queuing behind each other.
        """
        sim = self.platform.sim
        latency = self.socket_latency_s

        def decide_and_reply() -> None:
            decision = self._decide(app_name)
            sim.call_in(latency, lambda: reply.succeed(decision.target))

        sim.call_in(latency, decide_and_reply)

    # -- client API ------------------------------------------------------------
    def request(self, app_name: str) -> Event:
        """Client-side call: fires with the chosen :class:`Target`."""
        if not self._running:
            raise RuntimeError("scheduler server not started")
        sim = self.platform.sim
        reply = sim.event()
        enqueued_at = sim.now
        reply.callbacks.append(
            lambda _ev: self._roundtrip.observe(sim.now - enqueued_at)
        )
        self._requests.put((app_name, reply))
        return reply

    def preconfigure(self, app_name: str) -> None:
        """The instrumented main()'s early FPGA-configuration call.

        Requests the application's image non-blockingly at startup so
        the kernel is warm before its first invocation (Section 3.1;
        load-bearing for Figure 6's throughput win over always-FPGA).
        """
        entry = self.thresholds.entry(app_name)
        if entry.kernel_name:
            self._maybe_reconfigure(entry.kernel_name)

    # -- internals ---------------------------------------------------------------
    def _decide(self, app_name: str) -> Decision:
        entry = self.thresholds.entry(app_name)
        # The requesting process is itself runnable on the host while it
        # executes the scheduler-client call, so it counts toward the
        # x86 CPU load even though it holds no compute job right now.
        load = self.platform.x86_load + 1
        available = bool(entry.kernel_name) and self.xrt.has_kernel(entry.kernel_name)
        decision = self.policy(load, entry, available)
        self.stats._count_decision(decision)
        if self.tracer.enabled:
            self.tracer.record(
                "scheduler",
                f"{app_name}: load={load} -> {decision.target} ({decision.rule})",
                app=app_name,
                load=load,
                target=str(decision.target),
                rule=decision.rule,
            )
        if decision.reconfigure:
            self._maybe_reconfigure(entry.kernel_name)
        return decision

    def _maybe_reconfigure(self, kernel_name: str) -> None:
        """Start loading the image that hosts ``kernel_name``, if possible.

        Skipped when the kernel is already resident, a reconfiguration
        is in flight, or kernels are mid-run (swapping under a running
        kernel is impossible); the next request retries.
        """
        if self.xrt.has_kernel(kernel_name):
            return
        image = self.kernel_images.get(kernel_name)
        if image is None:
            return
        if self.xrt.reconfiguring or self.xrt.active_runs:
            self.stats._reconf_skipped.inc()
            return
        self.stats._reconf_started.inc()
        self.tracer.record(
            "scheduler",
            f"reconfiguring FPGA with {image.name} for {kernel_name}",
            image=image.name,
            kernel=kernel_name,
        )
        done = self.xrt.load_xclbin(image)
        done.defused = True  # a programming failure must not crash the run

        def on_outcome(event) -> None:
            if not event.ok:
                self.stats._reconf_failed.inc()
                self.tracer.record(
                    "scheduler",
                    f"reconfiguration with {image.name} failed; will retry "
                    "on the next request",
                    image=image.name,
                )

        done.callbacks.append(on_outcome)
