"""The scheduler server (Section 3.2, Algorithm 2).

Runs on the x86 host as a userspace daemon. Clients connect over a
socket; each request names an application, and the reply carries the
migration flag (0 = x86, 1 = ARM, 2 = FPGA). The server reads the
threshold table, samples the x86 CPU load, queries the FPGA's resident
kernels, decides per Algorithm 2, and — when the decision calls for
it — kicks off an FPGA reconfiguration in the background so the
transfer/programming latency hides behind CPU execution.

In the simulation the socket is a :class:`~repro.sim.Store` plus a
round-trip latency; the request/decide/reply path consumes simulated
time exactly like the real client/server pair.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.policy import Decision, decide
from repro.hardware.platform import HeterogeneousPlatform
from repro.metrics import MetricsRegistry
from repro.sim import Event, Store, Tracer
from repro.thresholds import ThresholdTable
from repro.types import Target
from repro.xrt import XRTDevice

__all__ = ["RequestShed", "SchedulerServer", "SchedulerUnavailable", "ServerStats"]

#: One-way userspace socket latency on the host (localhost TCP).
DEFAULT_SOCKET_LATENCY_S = 50e-6

_TARGET_BY_NAME = {str(target): target for target in Target}

#: Queue sentinel that tells a serve loop to exit (see :meth:`stop`).
_STOP = object()


class SchedulerUnavailable(RuntimeError):
    """The scheduler daemon is not running (never started, stopped, or
    crashed mid-request). Clients catch this and fall back to a local
    x86 decision rather than blocking forever on a reply that will
    never come. Subclasses :class:`RuntimeError` so pre-existing
    callers that caught the old generic error keep working."""


class RequestShed(RuntimeError):
    """The admission controller refused this request (see
    :class:`~repro.faults.resilience.OverloadGuard`). Deliberately NOT
    a :class:`SchedulerUnavailable`: a shed request must not fall back
    to a local x86 run — the whole point of shedding is to refuse the
    work, so clients record the shed reason and terminate the session
    instead."""

    def __init__(self, reason: str):
        super().__init__(f"request shed by overload protection ({reason})")
        self.reason = reason


class ServerStats:
    """Decision counters, by target and by Algorithm 2 rule.

    The counts live in the metrics registry; every attribute here is a
    thin read-only view over those counters, so the stats API and a
    metrics export can never disagree (they are the same numbers).
    """

    def __init__(self, metrics: MetricsRegistry):
        if metrics is None:
            raise TypeError(
                "ServerStats requires an explicit MetricsRegistry; a "
                "detached registry would silently drop the scheduler's "
                "counters from every metrics export"
            )
        self._requests = metrics.counter(
            "scheduler_requests_total", "scheduling requests served"
        )
        self._decisions = metrics.counter(
            "scheduler_decisions_total",
            "scheduling decisions by chosen target",
            labelnames=("target",),
        )
        self._rules = metrics.counter(
            "scheduler_decisions_by_rule_total",
            "scheduling decisions by Algorithm 2 rule",
            labelnames=("rule",),
        )
        self._reconf_started = metrics.counter(
            "fpga_reconfigurations_started_total",
            "background reconfigurations kicked off by the scheduler",
        )
        self._reconf_skipped = metrics.counter(
            "fpga_reconfigurations_skipped_total",
            "reconfigurations skipped (in flight, or kernels running)",
        )
        self._reconf_failed = metrics.counter(
            "fpga_reconfigurations_failed_total",
            "reconfigurations that failed to program the card",
        )
        # Per-decision fast path: resolve each label child once (lazily,
        # so the exported series set is unchanged) instead of going
        # through the labels() validation on every request.
        self._decision_children: dict[Any, Any] = {}
        self._rule_children: dict[str, Any] = {}

    def _count_decision(self, decision) -> None:
        """O(1) per-request accounting (no per-request label resolution)."""
        self._requests.inc()
        target_child = self._decision_children.get(decision.target)
        if target_child is None:
            target_child = self._decisions.labels(target=str(decision.target))
            self._decision_children[decision.target] = target_child
        target_child.inc()
        rule_child = self._rule_children.get(decision.rule)
        if rule_child is None:
            rule_child = self._rules.labels(rule=decision.rule)
            self._rule_children[decision.rule] = rule_child
        rule_child.inc()

    def record_decisions(self, by_target: dict, by_rule: dict) -> None:
        """Bulk accounting for pre-aggregated decision batches.

        The cohort-vectorized client path (:mod:`repro.core.cohort`)
        decides for thousands of clients per array operation and
        reports the aggregate here, so the scheduler's counters end up
        identical to what the per-client reference path would record
        one request at a time. Zero counts are skipped so no label
        child exists that a per-client run would not have created.
        """
        total = 0
        for target in sorted(by_target):
            count = int(by_target[target])
            if not count:
                continue
            child = self._decision_children.get(target)
            if child is None:
                child = self._decisions.labels(target=str(target))
                self._decision_children[target] = child
            child.inc(count)
            total += count
        for rule in sorted(by_rule):
            count = int(by_rule[rule])
            if not count:
                continue
            child = self._rule_children.get(rule)
            if child is None:
                child = self._rules.labels(rule=rule)
                self._rule_children[rule] = child
            child.inc(count)
        self._requests.inc(total)

    # -- thin views over the counters ------------------------------------
    @property
    def requests(self) -> int:
        return int(self._requests.value)

    @property
    def by_target(self) -> dict[Target, int]:
        return {
            _TARGET_BY_NAME[key[0]]: int(count)
            for key, count in self._decisions.as_dict().items()
        }

    @property
    def by_rule(self) -> dict[str, int]:
        return {key[0]: int(count) for key, count in self._rules.as_dict().items()}

    @property
    def reconfigurations_started(self) -> int:
        return int(self._reconf_started.value)

    @property
    def reconfigurations_skipped(self) -> int:
        return int(self._reconf_skipped.value)

    @property
    def reconfigurations_failed(self) -> int:
        return int(self._reconf_failed.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServerStats(requests={self.requests}, by_target={self.by_target}, "
            f"by_rule={self.by_rule})"
        )


class SchedulerServer:
    """The policy daemon: owns the threshold table and the FPGA images."""

    def __init__(
        self,
        platform: HeterogeneousPlatform,
        xrt: XRTDevice,
        thresholds: ThresholdTable,
        kernel_images: dict[str, object],
        socket_latency_s: float = DEFAULT_SOCKET_LATENCY_S,
        tracer: Optional[Tracer] = None,
        policy=None,
        resilience=None,
    ):
        """``kernel_images`` maps hardware-kernel name -> XCLBIN image.

        ``policy`` swaps the decision function (default: the paper's
        Algorithm 2, :func:`repro.core.policy.decide`); see
        :mod:`repro.core.policies` for alternatives. ``resilience`` (a
        :class:`~repro.faults.resilience.ResiliencePolicy`) steers
        decisions away from quarantined targets and bounds background
        reconfiguration retries.
        """
        self.platform = platform
        self.xrt = xrt
        self.thresholds = thresholds
        self.policy = policy or decide
        self.kernel_images = dict(kernel_images)
        self.socket_latency_s = socket_latency_s
        self.tracer = tracer or platform.tracer
        self.metrics = platform.metrics
        self.resilience = resilience
        self.stats = ServerStats(self.metrics)
        self._roundtrip = self.metrics.histogram(
            "scheduler_roundtrip_seconds",
            "client-observed request->reply latency (socket + queueing + decide)",
        )
        self._requests: Store = Store(platform.sim)
        self._running = False
        #: Bumped on every start/stop so a stale serve loop can tell it
        #: has been superseded and exit instead of stealing requests.
        self._generation = 0
        #: Reply-latency multiplier (1.0 healthy; the fault injector
        #: raises it during server_slow windows).
        self._reply_delay_factor = 1.0
        #: Consecutive failed background reconfiguration attempts per
        #: kernel, bounding the retry chain (reset on any successful
        #: programming outcome and on device-breaker recovery).
        self._reconfig_retries: dict[str, int] = {}
        if self.resilience is not None:
            # A kernel that exhausted its background retry budget while
            # the card was sick must get a fresh budget once the device
            # breaker closes again, or it would stay background-retry-
            # disabled for the rest of the run.
            self.resilience.add_device_recovery_listener(
                self._reset_reconfig_retries
            )

    # -- lifecycle -----------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Algorithm 2 lines 1-3: init kernel info, socket, load timer."""
        if self._running:
            return
        self._running = True
        self._generation += 1
        self.platform.sim.spawn(self._serve(self._generation))

    def stop(self) -> None:
        """Take the daemon down (crash/outage model).

        Queued-but-unserved requests fail immediately with
        :class:`SchedulerUnavailable` (their clients fall back
        locally); requests already being handled still get their reply.
        New :meth:`request` calls raise until :meth:`start` runs again.
        """
        if not self._running:
            return
        self._running = False
        stopped_generation = self._generation
        self._generation += 1
        pending = [item for item in self._requests.items if item[0] is not _STOP]
        self._requests.items.clear()
        for _app_name, reply in pending:
            self._fail_reply(reply)
        # Wake the serve loop blocked on get() so it exits promptly. The
        # sentinel is tagged with the generation it targets: a request
        # handed to the parked getter just before this stop() gets
        # re-queued *behind* the sentinel by the stale loop, so a
        # restarted loop will see this sentinel first — it must discard
        # it (and serve the request) rather than exit on it.
        self._requests.put((_STOP, stopped_generation))
        self.tracer.record("scheduler", "server stopped")

    def _fail_reply(self, reply: Event) -> None:
        reply.defused = True  # the client may have already abandoned it
        if not reply.triggered:
            reply.fail(SchedulerUnavailable("scheduler server stopped"))

    def _serve(self, generation: int):
        # Algorithm 2's main loop (lines 4-33): accept, then hand each
        # request to its own handler. The daemon must never block the
        # accept loop on one client's round-trip — with the old serial
        # loop, M simultaneous clients saw M x the socket latency.
        while True:
            item = yield self._requests.get()
            if item[0] is _STOP:
                if item[1] >= generation:
                    return
                # A sentinel left over from an older stop/start cycle
                # (its target loop consumed a re-queued request instead
                # and exited on the generation check below). Exiting
                # here would kill the *live* daemon; discard it.
                continue
            if generation != self._generation:
                # Superseded (stop/start cycled): hand the item to the
                # live loop instead of swallowing it.
                self._requests.put(item)
                return
            app_name, reply = item
            self._handle(app_name, reply)

    def _handle(self, app_name: str, reply: Event) -> None:
        """One request's handler: socket in, decide, socket out.

        Runs as an independent callback chain per request, so
        concurrent requests overlap their socket latencies instead of
        queuing behind each other.
        """
        sim = self.platform.sim
        latency = self.socket_latency_s * self._reply_delay_factor

        def send_reply(decision: Decision) -> None:
            if not reply.triggered:
                reply.succeed(decision.target)

        def decide_and_reply() -> None:
            if not self._running:
                self._fail_reply(reply)
                return
            decision = self._decide(app_name)
            sim.defer(self.socket_latency_s * self._reply_delay_factor, send_reply, decision)

        sim.defer(latency, decide_and_reply)

    # -- client API ------------------------------------------------------------
    def request(self, app_name: str, deadline_at: Optional[float] = None) -> Event:
        """Client-side call: fires with the chosen :class:`Target`.

        Raises :class:`SchedulerUnavailable` when the daemon is not
        running (never started, or stopped), so callers fail fast
        instead of blocking forever on a reply that can never arrive.

        With overload protection configured
        (:class:`~repro.faults.resilience.OverloadConfig`), the request
        first passes admission control and may raise
        :class:`RequestShed` instead: the brownout ladder is at its
        shed rung, the bounded admission queue is full, or —
        ``deadline_at`` given — the estimated queueing delay already
        forfeits the deadline. Without a guard ``deadline_at`` is
        ignored and every request is admitted, exactly as before.
        """
        if not self._running:
            raise SchedulerUnavailable(
                "scheduler server not started (or stopped); clients "
                "should fall back to a local x86 decision"
            )
        sim = self.platform.sim
        guard = self._overload_guard()
        if guard is not None:
            guard.update(self.platform.x86_load + 1)
            # Two socket hops plus one hop of headroom per request
            # already waiting: the admission queue's drain time is what
            # a deadline-doomed request would spend to learn nothing.
            estimate = (
                self.socket_latency_s
                * self._reply_delay_factor
                * (2.0 + guard.depth)
            )
            reason = guard.admit(sim.now, deadline_at, estimate)
            if reason is not None:
                guard.count_shed(reason)
                if self.tracer.enabled:
                    self.tracer.record(
                        "scheduler",
                        f"{app_name}: shed ({reason})",
                        app=app_name,
                        reason=reason,
                    )
                raise RequestShed(reason)
            guard.enqueued()
        reply = sim.event()
        enqueued_at = sim.now

        def observe(ev: Event) -> None:
            if guard is not None:
                guard.dequeued()
            if ev.ok:
                self._roundtrip.observe(sim.now - enqueued_at)

        reply.callbacks.append(observe)
        self._requests.offer((app_name, reply))
        return reply

    def _overload_guard(self):
        """The resilience policy's :class:`OverloadGuard`, if any."""
        if self.resilience is None:
            return None
        return getattr(self.resilience, "overload", None)

    def admission_snapshot(self) -> dict[str, float]:
        """The backpressure view gossiped in a fleet's
        :class:`~repro.fleet.gossip.LoadDigest`: admission queue depth
        plus the brownout rung (0 when unprotected)."""
        guard = self._overload_guard()
        if guard is None:
            return {"queue_depth": 0.0, "brownout": 0.0}
        return guard.snapshot()

    def set_reply_delay_factor(self, factor: float) -> None:
        """Multiply the socket latency by ``factor`` (1.0 restores
        normal speed). The fault injector uses this for server_slow
        windows; in-flight requests pick up the factor per hop."""
        if factor <= 0:
            raise ValueError(f"reply delay factor must be positive, got {factor!r}")
        self._reply_delay_factor = float(factor)

    def preconfigure(self, app_name: str) -> None:
        """The instrumented main()'s early FPGA-configuration call.

        Requests the application's image non-blockingly at startup so
        the kernel is warm before its first invocation (Section 3.1;
        load-bearing for Figure 6's throughput win over always-FPGA).
        """
        entry = self.thresholds.entry(app_name)
        if entry.kernel_name:
            self._maybe_reconfigure(entry.kernel_name)

    # -- internals ---------------------------------------------------------------
    def _decide(self, app_name: str) -> Decision:
        entry = self.thresholds.entry(app_name)
        # The requesting process is itself runnable on the host while it
        # executes the scheduler-client call, so it counts toward the
        # x86 CPU load even though it holds no compute job right now.
        load = self.platform.x86_load + 1
        guard = self._overload_guard()
        if guard is not None:
            guard.update(load)
            if guard.x86_only:
                # Brownout rung 1+: keep serving, but pin everything to
                # the x86 host — accelerator occupancy (FPGA runs, ARM
                # queueing) is what the ladder is protecting, and x86
                # is the one target that can always absorb more load
                # (degraded, not down).
                decision = Decision(
                    target=Target.X86, reconfigure=False, rule="brownout-x86"
                )
                self.stats._count_decision(decision)
                if self.tracer.enabled:
                    self.tracer.record(
                        "scheduler",
                        f"{app_name}: load={load} -> {decision.target} "
                        f"({decision.rule})",
                        app=app_name,
                        load=load,
                        target=str(decision.target),
                        rule=decision.rule,
                    )
                return decision
        available = bool(entry.kernel_name) and self.xrt.has_kernel(entry.kernel_name)
        if available and self.resilience is not None:
            # A quarantined kernel is treated as absent: Algorithm 2
            # steers the call to a CPU target until the breaker's
            # cooldown admits a half-open trial.
            available = self.resilience.allow_kernel(entry.kernel_name)
        decision = self.policy(load, entry, available)
        self.stats._count_decision(decision)
        if self.tracer.enabled:
            self.tracer.record(
                "scheduler",
                f"{app_name}: load={load} -> {decision.target} ({decision.rule})",
                app=app_name,
                load=load,
                target=str(decision.target),
                rule=decision.rule,
            )
        if decision.reconfigure:
            self._maybe_reconfigure(entry.kernel_name)
        return decision

    def _maybe_reconfigure(self, kernel_name: str) -> None:
        """Start loading the image that hosts ``kernel_name``, if possible.

        Skipped when the kernel is already resident, a reconfiguration
        is in flight, or kernels are mid-run (swapping under a running
        kernel is impossible); the next request retries.
        """
        if self.xrt.has_kernel(kernel_name):
            return
        image = self.kernel_images.get(kernel_name)
        if image is None:
            return
        if self.resilience is not None and not self.resilience.allow_device():
            # The card itself is quarantined (crashed / repeatedly
            # failed to program): don't burn a reconfiguration slot.
            self.stats._reconf_skipped.inc()
            return
        if self.xrt.reconfiguring or self.xrt.active_runs:
            self.stats._reconf_skipped.inc()
            return
        self.stats._reconf_started.inc()
        self.tracer.record(
            "scheduler",
            f"reconfiguring FPGA with {image.name} for {kernel_name}",
            image=image.name,
            kernel=kernel_name,
        )
        done = self.xrt.load_xclbin(image)
        done.defused = True  # a programming failure must not crash the run

        def on_outcome(event) -> None:
            if not event.ok:
                self.stats._reconf_failed.inc()
                self.tracer.record(
                    "scheduler",
                    f"reconfiguration with {image.name} failed; will retry "
                    "on the next request",
                    image=image.name,
                )
                if self.resilience is not None:
                    self.resilience.record_device_failure()
                    self._schedule_reconfig_retry(kernel_name)
            else:
                # The card just programmed fine, so every kernel's
                # consecutive-failure streak is over — not only this
                # one's. Clearing all counters re-arms background
                # retries for kernels that previously hit the limit.
                self._reset_reconfig_retries()
                if self.resilience is not None:
                    self.resilience.record_device_success()

        done.callbacks.append(on_outcome)

    def _schedule_reconfig_retry(self, kernel_name: str) -> None:
        """Bounded background retry after a programming failure.

        The old image stayed resident (the device rolls back), so the
        retry is free to wait out the backoff; after
        ``reconfig_retry_limit`` consecutive failures the server stops
        retrying in the background and the next client request (or a
        half-open breaker trial) re-attempts instead.
        """
        config = self.resilience.config
        attempts = self._reconfig_retries.get(kernel_name, 0)
        if attempts >= config.reconfig_retry_limit:
            return
        self._reconfig_retries[kernel_name] = attempts + 1
        generation = self._generation

        def retry() -> None:
            # A retry armed before stop() must not fire into a stopped
            # (or stop/start-cycled) server: it would call
            # _maybe_reconfigure and touch XRT on behalf of a daemon
            # generation that no longer exists. Same guard as _serve.
            if not self._running or generation != self._generation:
                return
            self._maybe_reconfigure(kernel_name)

        self.platform.sim.call_in(config.reconfig_retry_backoff_s, retry)

    def _reset_reconfig_retries(self) -> None:
        """Re-arm background reconfiguration retries for every kernel
        (successful programming, or the device breaker closed)."""
        self._reconfig_retries.clear()
