"""Algorithm 2 — Xar-Trek's scheduling policy, as a pure function.

The policy reads the x86 CPU load, the application's two thresholds,
and whether the application's hardware kernel is currently present on
the FPGA, and returns (a) the execution target and (b) whether the
server should start reconfiguring the FPGA in the background.

The five cases of the paper's pseudocode (lines 9-31) are mutually
exclusive and complete; tests enumerate the full condition space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.thresholds import ThresholdEntry
from repro.types import Target

__all__ = ["Decision", "decide"]


@dataclass(frozen=True)
class Decision:
    """The policy's output for one scheduling request."""

    target: Target
    #: Start loading the application's XCLBIN in the background while
    #: the function runs on a CPU (hides the reconfiguration latency —
    #: Algorithm 2 lines 11-12 and 16-17).
    reconfigure: bool
    #: Which case of Algorithm 2 fired (for traces and tests).
    rule: str


def decide(
    x86_load: float, entry: ThresholdEntry, kernel_available: bool
) -> Decision:
    """One scheduling decision per Algorithm 2.

    ``x86_load`` is the number of processes on the x86 host;
    ``kernel_available`` reports whether ``entry``'s hardware kernel is
    currently loaded and callable on the FPGA.
    """
    fpga_thr = entry.fpga_threshold
    arm_thr = entry.arm_threshold
    has_kernel = bool(entry.kernel_name)

    # Lines 9-13: hot enough for the FPGA but the kernel is absent:
    # keep the function on x86 and reconfigure in the background.
    if x86_load <= arm_thr and x86_load > fpga_thr and not kernel_available:
        return Decision(Target.X86, reconfigure=has_kernel, rule="x86+reconfig")

    # Lines 14-18: hot enough for both; ARM while the FPGA loads.
    if x86_load > arm_thr and x86_load > fpga_thr and not kernel_available:
        return Decision(Target.ARM, reconfigure=has_kernel, rule="arm+reconfig")

    # Lines 19-21: cool host: stay.
    if x86_load <= arm_thr and x86_load <= fpga_thr:
        return Decision(Target.X86, reconfigure=False, rule="x86")

    # Lines 22-24: hot for ARM only.
    if x86_load > arm_thr and x86_load <= fpga_thr:
        return Decision(Target.ARM, reconfigure=False, rule="arm")

    # Lines 25-31: hot for the FPGA and the kernel is resident; the
    # smaller threshold implies the faster target for this function.
    assert x86_load > fpga_thr and kernel_available
    if fpga_thr < arm_thr:
        return Decision(Target.FPGA, reconfigure=False, rule="fpga")
    return Decision(Target.ARM, reconfigure=False, rule="arm-over-fpga")
