"""The deployed Xar-Trek system: platform + compiled bundle + scheduler.

:class:`XarTrekRuntime` wires everything together: the heterogeneous
platform model, the XRT device, one Popcorn runtime per application
(each binary carries its own liveness metadata), the shared DSM, the
scheduler server, and the Algorithm 1 updater. Experiments launch
application runs and background load through it and read back
:class:`~repro.core.application.RunRecord` results.

:func:`build_system` is the one-call entry point: compile the paper's
benchmarks and deploy onto the paper's testbed.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.compiler.pipeline import CompilationResult, XarTrekCompiler
from repro.compiler.profiling import ApplicationSpec, ProfilingSpec, SelectedFunction
from repro.core.application import ApplicationRun, RunRecord, SystemMode
from repro.core.client import ThresholdUpdater
from repro.core.server import SchedulerServer
from repro.faults.resilience import ResilienceConfig, ResiliencePolicy
from repro.hardware.platform import HeterogeneousPlatform, paper_testbed
from repro.popcorn.dsm import DSM
from repro.popcorn.runtime import PopcornRuntime
from repro.sim import Event
from repro.types import Target
from repro.workloads import PAPER_BENCHMARKS, profile_for
from repro.xrt import XRTDevice

__all__ = ["BackgroundLoad", "XarTrekRuntime", "build_system", "spec_for"]

#: Default function/kernel names per application, used by spec_for.
_DEFAULT_FUNCTION = {
    "cg.A": "conj_grad",
    "facedet.320": "detect_faces",
    "facedet.640": "detect_faces",
    "digit.500": "classify",
    "digit.2000": "classify",
    "spam.1024": "train_sgd",
}


def spec_for(app_names: Sequence[str]) -> ProfilingSpec:
    """A profiling spec (step A's artifact) for a set of registry apps."""
    applications = []
    for name in app_names:
        profile = profile_for(name)
        function = _DEFAULT_FUNCTION.get(name, "kernel")
        applications.append(
            ApplicationSpec(
                name=name,
                functions=(SelectedFunction(function, profile.kernel_name),),
            )
        )
    return ProfilingSpec(platform="alveo-u50", applications=tuple(applications))


class BackgroundLoad:
    """A pool of load-generator processes (the paper's MG-B instances).

    ``duty`` models how CPU-bound the generator is: 1.0 is a pure spin
    (every resident process always runnable — ideal processor sharing),
    lower values interleave compute bursts with memory-stall/IO gaps in
    1-second slices, which is closer to how a memory-bound NPB MG-B
    actually loads a host. The duty-cycle sensitivity study shows this
    single knob moves the high-load gains toward the paper's band.
    """

    def __init__(
        self,
        runtime: "XarTrekRuntime",
        n_processes: int,
        work_s: float,
        duty: float = 1.0,
        slice_s: float = 1.0,
    ):
        if not 0.0 < duty <= 1.0:
            raise ValueError(f"duty must be in (0, 1], got {duty}")
        self.runtime = runtime
        self.n_processes = n_processes
        self.work_s = work_s
        self.duty = duty
        self.slice_s = slice_s
        self._stopped = False
        self.completed_rounds = 0
        if duty >= 1.0:
            # Pure spin: the worker is continuously runnable, so slicing
            # the round into 1-second bursts only multiplies the event
            # count — under ideal processor sharing the completion times
            # are identical. Each worker is a self-resubmitting job
            # chain rather than a generator process: one callback per
            # round instead of a process bootstrap plus a resume.
            x86 = runtime.platform.x86.cpu
            work_s = self.work_s

            def spin_round(job=None) -> None:
                if job is not None:
                    self.completed_rounds += 1
                if self._stopped:
                    return
                x86.execute_job(work_s, tag="background", on_complete=spin_round)

            for _index in range(n_processes):
                spin_round()
            return
        for index in range(n_processes):
            runtime.platform.sim.spawn(self._worker(index))

    def _worker(self, index: int):
        sim = self.runtime.platform.sim
        x86 = self.runtime.platform.x86.cpu
        # Stagger the stall phases so the pool's runnable count hovers
        # around n * duty instead of oscillating in lockstep.
        yield sim.timeout((index % 16) * self.slice_s / 16 * (1 - self.duty))
        while not self._stopped:
            remaining = self.work_s
            while remaining > 0 and not self._stopped:
                burst = min(self.slice_s * self.duty, remaining)
                yield x86.execute(burst, tag="background")
                remaining -= burst
                stall = self.slice_s * (1 - self.duty)
                if stall > 0:
                    yield sim.timeout(stall)
            self.completed_rounds += 1

    def stop(self) -> None:
        """Let each worker finish its current slice, then exit."""
        self._stopped = True


class XarTrekRuntime:
    """A running Xar-Trek deployment."""

    def __init__(
        self,
        result: CompilationResult,
        platform: Optional[HeterogeneousPlatform] = None,
        use_dsm: bool = True,
        threshold_increase_step: float = 1.0,
        early_configure: bool = True,
        dynamic_thresholds: bool = True,
        policy=None,
        resilience: Optional[ResilienceConfig] = None,
    ):
        """``early_configure`` and ``dynamic_thresholds`` exist for the
        ablation benchmarks: they disable the instrumented main()'s
        startup FPGA-configuration call and Algorithm 1's run-time
        threshold refinement, respectively. ``policy`` swaps the
        scheduling policy (see :mod:`repro.core.policies`).
        ``resilience`` overrides the retry/breaker/timeout knobs
        (default: :class:`~repro.faults.resilience.ResilienceConfig`,
        which is a no-op until a fault actually fires)."""
        self.result = result
        self.early_configure = early_configure
        self.platform = platform or paper_testbed()
        self.metrics = self.platform.metrics
        self.resilience = ResiliencePolicy(
            clock=lambda: self.platform.sim.now,
            metrics=self.metrics,
            config=resilience,
        )
        self.xrt = XRTDevice(
            self.platform.sim,
            self.platform.fpga,
            self.platform.pcie,
            tracer=self.platform.tracer,
            metrics=self.metrics,
            host_cpu=self.platform.x86.cpu,
        )
        self.dsm: Optional[DSM] = None
        if use_dsm:
            self.dsm = DSM(
                self.platform.sim, self.platform.ethernet, tracer=self.platform.tracer
            )
            self.dsm.add_node(str(Target.X86))
            self.dsm.add_node(str(Target.ARM))
        self._popcorn: dict[str, PopcornRuntime] = {}
        self.updater = (
            ThresholdUpdater(
                increase_step=threshold_increase_step, metrics=self.metrics
            )
            if dynamic_thresholds
            else None
        )
        self.server = SchedulerServer(
            platform=self.platform,
            xrt=self.xrt,
            thresholds=result.thresholds.copy(),
            kernel_images={
                kernel: image
                for image in result.xclbins.values()
                for kernel in image.kernel_names
            },
            tracer=self.platform.tracer,
            policy=policy,
            resilience=self.resilience,
        )
        self.server.start()
        self.records: list[RunRecord] = []

    # -- lookups ------------------------------------------------------------
    def image_for(self, kernel_name: str):
        return self.result.xclbin_for(kernel_name)

    def popcorn_for(self, app_name: str) -> PopcornRuntime:
        if app_name not in self._popcorn:
            app = self.result.application(app_name)
            self._popcorn[app_name] = PopcornRuntime(
                self.platform, app.compiled.metadata, dsm=self.dsm
            )
        return self._popcorn[app_name]

    def preload_fpga(self, kernel_name: Optional[str] = None) -> Event:
        """Load an XCLBIN up front (for measurements that exclude setup).

        The paper's Table 1 x86/FPGA times exclude card configuration —
        the instrumented binary configures at startup, overlapped with
        host work. ``kernel_name`` picks the image to load; by default
        the first generated image.
        """
        if kernel_name is not None:
            image = self.image_for(kernel_name)
        else:
            image = next(iter(self.result.xclbins.values()))
        return self.xrt.load_xclbin(image)

    # -- launching work ------------------------------------------------------
    def launch(
        self,
        app_name: str,
        seed: int = 0,
        mode: SystemMode = SystemMode.XAR_TREK,
        deadline_s: Optional[float] = None,
        functional: bool = False,
        delay_s: float = 0.0,
        calls: Optional[int] = None,
    ) -> Event:
        """Start one application run; the event fires with its RunRecord.

        ``calls`` overrides the profile's calls-per-run (the modified
        multi-image face detection of Section 4.2); ``deadline_s`` stops
        issuing calls after a wall-clock budget (the 60 s throughput
        window).
        """
        app = self.result.application(app_name)
        run = ApplicationRun(
            self, app, seed=seed, mode=mode, deadline_s=deadline_s,
            functional=functional, calls=calls,
        )
        if delay_s <= 0:
            return run.start()
        done = self.platform.sim.event()

        def forward(ev: Event) -> None:
            if ev.ok:
                done.succeed(ev.value)
            else:
                done.fail(ev.value)

        def kick() -> None:
            inner = run.start()
            # The caller only holds `done`; a failed run must propagate
            # through it, not re-raise out of the inner event's
            # _process and crash the whole simulation.
            inner.defused = True
            inner.callbacks.append(forward)

        self.platform.sim.defer(delay_s, kick)
        return done

    def run_cohorts(
        self,
        specs,
        background: int = 0,
        vectorized: Optional[bool] = None,
        fault_plan=None,
        resident_kernels=None,
    ):
        """Run a cohort-vectorized client population against this system.

        The population borrows the deployed server's threshold table,
        socket latency, and metrics registry, so its decision counters
        land next to the per-client scheduler's
        (:meth:`~repro.core.server.ServerStats.record_decisions`). A
        ``fault_plan`` is resolved ahead of time to individual clients
        via :func:`repro.faults.cohort.resolve_cohort_faults`. Returns
        a :class:`~repro.core.cohort.CohortRunResult`; pass
        ``vectorized=False`` for the per-client reference path.
        """
        from repro.core.cohort import CohortPopulation
        from repro.faults.cohort import resolve_cohort_faults

        specs = tuple(specs)
        fault_targets = None
        if fault_plan is not None:
            fault_targets = resolve_cohort_faults(
                fault_plan, specs, self.server.thresholds
            )
        population = CohortPopulation(
            specs,
            background=background,
            server=self.server,
            resident_kernels=resident_kernels,
            fault_targets=fault_targets,
        )
        return population.run(sim=self.platform.sim, vectorized=vectorized)

    def launch_background(
        self, n_processes: int, work_s: Optional[float] = None, duty: float = 1.0
    ) -> BackgroundLoad:
        """Start ``n_processes`` MG-B-style load generators on the x86 host."""
        if work_s is None:
            work_s = profile_for("mg.B").vanilla_x86_s
        return BackgroundLoad(self, n_processes, work_s, duty=duty)

    def wait_all(self, events: Iterable[Event]) -> list[RunRecord]:
        """Run the simulation until every event fires; return the records."""
        results = []
        for event in events:
            results.append(self.platform.sim.run_until_event(event))
        return results

    # -- load accounting -----------------------------------------------------
    def load_snapshot(self) -> dict[str, dict[str, float]]:
        """Per-target load aggregates, read in O(1) from running
        integrals (no walk over active job sets).

        Keys per CPU cluster: ``value`` (current active jobs), ``min`` /
        ``max`` (post-transition extrema), ``time_weighted_mean`` (exact
        over [first submit, now]), ``updates`` (job start/finish
        transitions). The ``fpga`` entry carries the same gauge keys for
        in-flight kernel runs plus ``reconfiguring`` and
        ``resident_kernels`` (see :meth:`repro.xrt.XRTDevice.load_snapshot`),
        so load-based placement — including fleet gossip — sees
        accelerator pressure, not only CPU queues. The scale benchmarks
        report these for thousands of clients without perturbing the hot
        path.
        """
        return {
            "x86": self.platform.x86.cpu.load_snapshot(),
            "arm": self.platform.arm.cpu.load_snapshot(),
            "fpga": self.xrt.load_snapshot(),
        }

    def _finish(self, record: RunRecord) -> None:
        self.records.append(record)


#: Memoized compilation artifacts. The compiler pipeline is fully
#: deterministic in (application set, space-sharing flag) — no RNG, no
#: clock — and every mutable artifact a deployment touches is copied at
#: runtime construction (the threshold table) or read-only (profiles,
#: metadata, XCLBIN images), so experiment sweeps that redeploy the
#: same application mix skip the recompilation entirely.
_COMPILE_CACHE: dict[tuple, CompilationResult] = {}


def build_system(
    app_names: Sequence[str] = PAPER_BENCHMARKS,
    seed: int = 0,
    trace: bool = False,
    platform: Optional[HeterogeneousPlatform] = None,
    use_dsm: bool = True,
    replicate_compute_units: bool = False,
    **runtime_options,
) -> XarTrekRuntime:
    """Compile the given applications and deploy on the paper's testbed.

    ``replicate_compute_units`` turns on the space-sharing extension at
    compile time; extra keyword arguments go to :class:`XarTrekRuntime`
    (e.g. the ablation switches ``early_configure`` /
    ``dynamic_thresholds`` or a custom ``policy``).
    """
    cache_key = (tuple(app_names), replicate_compute_units)
    result = _COMPILE_CACHE.get(cache_key)
    if result is None:
        result = XarTrekCompiler(
            replicate_compute_units=replicate_compute_units
        ).compile(spec_for(app_names))
        _COMPILE_CACHE[cache_key] = result
    platform = platform or paper_testbed(seed=seed, trace=trace)
    return XarTrekRuntime(
        result, platform=platform, use_dsm=use_dsm, **runtime_options
    )
