"""Xar-Trek's core: scheduling policy, dynamic thresholds, and run-time.

The paper's primary contribution: Algorithm 1 (:mod:`client`),
Algorithm 2 (:mod:`policy`), the scheduler server (:mod:`server`), the
instrumented-application model (:mod:`application`), and the deployed
runtime facade (:mod:`runtime`).
"""

from repro.core.application import ApplicationRun, RunRecord, SystemMode
from repro.core.client import ThresholdUpdater, UpdateOutcome
from repro.core.cohort import (
    ArrivalLaw,
    CohortError,
    CohortPopulation,
    CohortResult,
    CohortRunResult,
    CohortSpec,
)
from repro.core.policies import (
    PolicyFn,
    cost_model_policy,
    energy_aware_policy,
    marginal_run_energy,
)
from repro.core.policy import Decision, decide
from repro.core.runtime import BackgroundLoad, XarTrekRuntime, build_system, spec_for
from repro.core.server import SchedulerServer, ServerStats

__all__ = [
    "ApplicationRun",
    "ArrivalLaw",
    "BackgroundLoad",
    "CohortError",
    "CohortPopulation",
    "CohortResult",
    "CohortRunResult",
    "CohortSpec",
    "Decision",
    "PolicyFn",
    "RunRecord",
    "cost_model_policy",
    "energy_aware_policy",
    "marginal_run_energy",
    "SchedulerServer",
    "ServerStats",
    "SystemMode",
    "ThresholdUpdater",
    "UpdateOutcome",
    "XarTrekRuntime",
    "build_system",
    "decide",
    "spec_for",
]
