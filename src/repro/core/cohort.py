"""Cohort-vectorized client simulation (the 1M-events/sec load model).

``scale_stress``-class scenarios drive thousands of statistically
identical clients against the scheduler. Simulating each client as its
own generator process costs O(clients x calls) simulator events; this
module batches clients that share a workload, arrival law, and
threshold profile into a *cohort* backed by numpy arrays and advances
each cohort as a single event per call round — O(cohorts x calls)
events total, with array-valued arrival/decision/completion times.

The model is *open loop*: the x86 load a decision sees is computed
from the population's arrival/departure schedule (a searchsorted over
two presorted arrays), not from feedback of earlier decisions. That
makes the per-client reference path (one generator per client, scalar
:func:`repro.core.policy.decide` per call) and the vectorized path
bit-identical by construction, and the equivalence is enforced as a
continuously-tested contract by ``tests/core/test_cohort_oracle.py``:
identical per-client completion times, decision targets/rules, metrics
snapshots, and checksum lines.

Client lifecycle (both paths, all times float64):

- arrive at ``a`` (sampled once per cohort from the arrival law);
- host setup work ``H`` (``profile.host_work_s``);
- per call: host work ``h`` (``profile.per_call_host_s``), then a
  scheduling decision at ``t = F + h`` using load ``L(t)``, then the
  round trip plus service ``rt + s(target)`` where ``rt`` is two
  socket hops;
- completion time is ``F`` after the last call.

``L(t) = background + |arrivals <= t| - |departures <= t| + 1`` where
departures use the nominal all-x86 window and the ``+ 1`` mirrors the
server counting the requesting process itself
(:meth:`repro.core.server.SchedulerServer._decide`).

Known simplifications versus the full per-client event model in
:mod:`repro.core.application`: thresholds are static (Algorithm 1 does
not refine them mid-run), the FPGA's resident-kernel set is fixed for
the whole run (steady state after warmup), and the decision samples
load at request-issue time rather than one socket hop later. Both
paths share these simplifications, so the differential oracle tests
the vectorization, not the simplifications.

Faults: ``fault_targets`` is a set of ``(cohort, client, call)``
triples (see :func:`repro.faults.cohort.resolve_cohort_faults`). A
faulted call whose decision chose the FPGA runs the failed FPGA
attempt to completion and then re-runs on x86 (service
``s_fpga + s_x86``), is recorded as served by x86, and increments the
fallback counter. Faults on calls decided to a CPU target are no-ops.

Bit-identity requires the run to start at simulated time 0.0 (so that
``0.0 + a == a`` exactly); :meth:`CohortPopulation.run` asserts this.
Set ``REPRO_COHORT_REFERENCE=1`` to force the per-client path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.policy import decide
from repro.core.server import DEFAULT_SOCKET_LATENCY_S, SchedulerServer, ServerStats
from repro.metrics import MetricsRegistry
from repro.sim import Simulator
from repro.thresholds import ThresholdTable
from repro.types import Target
from repro.workloads import profile_for

__all__ = [
    "ArrivalLaw",
    "CohortError",
    "CohortPopulation",
    "CohortResult",
    "CohortRunResult",
    "CohortSpec",
    "RULES",
    "record_cohort_run",
    "sample_arrivals",
]

#: Environment variable that forces the per-client reference path.
REFERENCE_ENV = "REPRO_COHORT_REFERENCE"

#: Algorithm 2 rule names, in the fixed order used for rule codes.
RULES = ("x86", "x86+reconfig", "arm", "arm+reconfig", "fpga", "arm-over-fpga")
_RULE_INDEX = {name: index for index, name in enumerate(RULES)}

_X86 = int(Target.X86)
_ARM = int(Target.ARM)
_FPGA = int(Target.FPGA)

_ARRIVAL_KINDS = ("uniform", "staggered", "poisson", "explicit")


class CohortError(Exception):
    """Raised for malformed cohort specs or misuse of the population."""


@dataclass(frozen=True)
class ArrivalLaw:
    """How a cohort's clients arrive over ``[start, start + span]``.

    ``uniform`` draws i.i.d. uniform offsets, ``staggered`` spaces the
    clients evenly (no RNG), ``poisson`` uses exponential interarrival
    times with mean ``span / clients``, and ``explicit`` takes the
    arrival times verbatim (the hypothesis split/merge strategies use
    this: splitting one explicit cohort into two preserves the global
    arrival multiset, hence every per-client result).
    """

    kind: str = "staggered"
    start: float = 0.0
    span: float = 1.0
    times: Optional[tuple[float, ...]] = None

    def __post_init__(self):
        if self.kind not in _ARRIVAL_KINDS:
            raise CohortError(
                f"unknown arrival law {self.kind!r}; expected one of {_ARRIVAL_KINDS}"
            )
        if self.start < 0:
            raise CohortError(f"arrival start must be >= 0, got {self.start!r}")
        if self.kind != "explicit" and self.span <= 0:
            raise CohortError(f"arrival span must be positive, got {self.span!r}")
        if self.kind == "explicit":
            if not self.times:
                raise CohortError("explicit arrival law needs a non-empty `times`")
            if any(t < 0 for t in self.times):
                raise CohortError("explicit arrival times must be >= 0")

    def sample(self, clients: int, seed: int) -> np.ndarray:
        """The cohort's arrival times: shape ``(clients,)`` float64."""
        if self.kind == "explicit":
            times = np.asarray(self.times, dtype=np.float64)
            if len(times) != clients:
                raise CohortError(
                    f"explicit arrival law has {len(times)} times for "
                    f"{clients} clients"
                )
            return times.copy()
        if self.kind == "staggered":
            return self.start + np.arange(clients, dtype=np.float64) * (
                self.span / clients
            )
        rng = np.random.default_rng(seed)
        if self.kind == "uniform":
            return self.start + rng.uniform(0.0, self.span, clients)
        # poisson
        return self.start + np.cumsum(rng.exponential(self.span / clients, clients))


@dataclass(frozen=True)
class CohortSpec:
    """One cohort: ``clients`` identical clients of one application."""

    app: str
    clients: int
    calls: Optional[int] = None  # None -> the profile's calls_per_run
    arrival: ArrivalLaw = ArrivalLaw()
    seed: int = 0

    def __post_init__(self):
        if self.clients < 1:
            raise CohortError(f"{self.app}: clients must be >= 1, got {self.clients}")
        if self.calls is not None and self.calls < 1:
            raise CohortError(f"{self.app}: calls must be >= 1, got {self.calls}")


def sample_arrivals(spec: CohortSpec) -> np.ndarray:
    """The deterministic arrival times for ``spec``.

    Shared by :class:`CohortPopulation` and the cohort-aware fault
    resolver so both see the same per-client schedule without one
    having to be constructed before the other.
    """
    return spec.arrival.sample(spec.clients, spec.seed)


def _cohort_counters(metrics: MetricsRegistry) -> tuple:
    """The four cohort counter families on ``metrics`` (idempotent).

    Shared by :class:`CohortPopulation` and :func:`record_cohort_run`
    so a run executed in a worker process lands in a parent-side
    registry with exactly the families a local run would create.
    """
    return (
        metrics.counter(
            "cohort_clients_total", "clients simulated through the cohort model"
        ),
        metrics.counter(
            "cohort_calls_total",
            "cohort-model calls by serving target",
            labelnames=("target",),
        ),
        metrics.counter(
            "cohort_fault_fallbacks_total",
            "faulted FPGA calls that re-ran on x86",
        ),
        metrics.counter(
            "cohort_runs_total",
            "population runs by execution path",
            labelnames=("path",),
        ),
    )


def record_cohort_run(
    run: "CohortRunResult",
    server: Optional[SchedulerServer] = None,
    metrics: Optional[MetricsRegistry] = None,
    stats: Optional[ServerStats] = None,
) -> None:
    """Bulk-record a finished run's counters into a registry.

    The cohort executors call this at run end; the parallel fleet path
    calls it in the *parent* for results computed in worker processes
    (whose registries die with them), so a node's metrics snapshot is
    byte-identical whether its population ran locally or in a worker.
    """
    if server is not None:
        metrics = metrics if metrics is not None else server.metrics
        stats = stats if stats is not None else server.stats
    if metrics is None:
        raise CohortError("record_cohort_run needs a server or a registry")
    if stats is None:
        stats = ServerStats(metrics)
    clients_c, calls_c, fallbacks_c, runs_c = _cohort_counters(metrics)
    stats.record_decisions(run.decisions_by_target, run.decisions_by_rule)
    clients_c.inc(run.clients)
    for target, count in sorted(run.served_by_target().items()):
        calls_c.labels(target=str(target)).inc(count)
    if run.fault_fallbacks:
        fallbacks_c.inc(run.fault_fallbacks)
    runs_c.labels(path=run.path).inc()


@dataclass
class _Cohort:
    """Precomputed per-cohort state shared by both execution paths."""

    index: int
    spec: CohortSpec
    entry: object  # ThresholdEntry
    n: int
    calls: int
    arrivals: np.ndarray
    host_s: float
    call_host_s: float
    available: bool
    fpga_thr: float
    arm_thr: float
    #: Round-trip-plus-service delay per decided target (len 3; the
    #: FPGA slot is NaN when the kernel is not resident).
    rts: np.ndarray
    #: Decided target -> serving target (ARM falls back to x86 for
    #: arm-incapable workloads).
    served_map: np.ndarray
    #: Delay for a faulted FPGA call (failed attempt + x86 re-run).
    fault_delay: float
    #: Nominal all-x86 residency window (for the departure schedule).
    window_s: float
    #: ``(client, call)`` pairs targeted by the fault plan.
    faults: frozenset = frozenset()


@dataclass
class CohortResult:
    """One cohort's per-client outcome arrays (identical on both paths)."""

    index: int
    spec: CohortSpec
    calls: int
    arrivals: np.ndarray
    completions: np.ndarray
    #: Decided target per (client, call), Algorithm 2's output.
    targets: np.ndarray
    #: Serving target per (client, call) (after fault/capability fallback).
    served: np.ndarray
    #: Algorithm 2 rule code per (client, call); see :data:`RULES`.
    rules: np.ndarray
    fault_fallbacks: int = 0


@dataclass
class CohortRunResult:
    """A whole population run: per-cohort results plus aggregates."""

    path: str  # "vectorized" | "reference"
    cohorts: list[CohortResult]
    clients: int
    #: Client-visible events the run stands for (arrival + host done +
    #: one per call + termination per client); the bench divides this
    #: by wall time, which is the whole point of the vectorization.
    logical_events: int
    #: Simulator events actually processed (O(cohorts) when vectorized).
    sim_events: int
    sim_seconds: float
    decisions_by_target: dict[Target, int] = field(default_factory=dict)
    decisions_by_rule: dict[str, int] = field(default_factory=dict)
    fault_fallbacks: int = 0

    def completions(self) -> np.ndarray:
        """All clients' completion times, cohort-major."""
        return np.concatenate([r.completions for r in self.cohorts])

    def served_by_target(self) -> dict[Target, int]:
        counts = np.zeros(3, dtype=np.int64)
        for result in self.cohorts:
            counts += np.bincount(result.served.ravel(), minlength=3)
        return {Target(i): int(c) for i, c in enumerate(counts) if c}

    def lines(self) -> list[str]:
        """Deterministic summary lines (the bench checksum input).

        Floats are rendered with ``repr`` so the checksum only matches
        when the two paths are bit-identical, not merely close.
        """
        out = []
        for r in self.cohorts:
            served = np.bincount(r.served.ravel(), minlength=3)
            out.append(
                f"cohort {r.index} app={r.spec.app} n={r.spec.clients} "
                f"calls={r.calls} last={float(r.completions.max())!r} "
                f"sum={float(r.completions.sum())!r} "
                f"x86={int(served[_X86])} arm={int(served[_ARM])} "
                f"fpga={int(served[_FPGA])} faults={r.fault_fallbacks}"
            )
        for rule in sorted(self.decisions_by_rule):
            out.append(f"rule {rule} {self.decisions_by_rule[rule]}")
        return out


class CohortPopulation:
    """All cohorts of one run plus the shared open-loop load model.

    Construct either standalone (pass ``thresholds``) or bound to a
    :class:`~repro.core.server.SchedulerServer` (decision counts then
    land in the server's own metrics, bulk-recorded at run end so the
    scheduler counters agree with what a per-client run would report).
    ``background`` is a static number of extra always-runnable host
    processes (the MG-B pool, open-loop).
    """

    def __init__(
        self,
        specs: Iterable[CohortSpec],
        background: int = 0,
        thresholds: Optional[ThresholdTable] = None,
        server: Optional[SchedulerServer] = None,
        metrics: Optional[MetricsRegistry] = None,
        socket_latency_s: Optional[float] = None,
        resident_kernels: Optional[Iterable[str]] = None,
        fault_targets: Optional[Iterable[tuple[int, int, int]]] = None,
    ):
        specs = tuple(specs)
        if not specs:
            raise CohortError("a population needs at least one cohort spec")
        if server is not None:
            thresholds = thresholds or server.thresholds
            metrics = metrics or server.metrics
            if socket_latency_s is None:
                socket_latency_s = server.socket_latency_s
        if thresholds is None:
            raise CohortError(
                "CohortPopulation needs a ThresholdTable (or a server to "
                "borrow one from)"
            )
        self.specs = specs
        self.background = int(background)
        self.thresholds = thresholds
        self.server = server
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.socket_latency_s = (
            DEFAULT_SOCKET_LATENCY_S if socket_latency_s is None else socket_latency_s
        )
        self._stats = server.stats if server is not None else ServerStats(self.metrics)
        (
            self._clients_counter,
            self._calls_counter,
            self._fallbacks_counter,
            self._runs_counter,
        ) = _cohort_counters(self.metrics)

        faults = frozenset(tuple(t) for t in (fault_targets or ()))
        if resident_kernels is None:
            resident = {
                thresholds.entry(spec.app).kernel_name
                for spec in specs
                if thresholds.entry(spec.app).kernel_name
            }
        else:
            resident = set(resident_kernels)

        rt = 2.0 * self.socket_latency_s
        self._cohorts: list[_Cohort] = []
        for index, spec in enumerate(specs):
            entry = thresholds.entry(spec.app)
            profile = profile_for(spec.app)
            calls = spec.calls if spec.calls is not None else profile.calls_per_run
            arrivals = sample_arrivals(spec)
            available = bool(
                profile.fpga_capable
                and entry.kernel_name
                and entry.kernel_name in resident
            )
            s_x86 = profile.func_x86_s
            s_arm = profile.arm_call_s() if profile.arm_capable else s_x86
            s_fpga = profile.fpga_call_s() if available else float("nan")
            cohort_faults = frozenset(
                (client, call)
                for (c, client, call) in faults
                if c == index and 0 <= client < spec.clients and 0 <= call < calls
            )
            self._cohorts.append(
                _Cohort(
                    index=index,
                    spec=spec,
                    entry=entry,
                    n=spec.clients,
                    calls=calls,
                    arrivals=arrivals,
                    host_s=profile.host_work_s,
                    call_host_s=profile.per_call_host_s,
                    available=available,
                    fpga_thr=entry.fpga_threshold,
                    arm_thr=entry.arm_threshold,
                    rts=np.array(
                        [rt + s_x86, rt + s_arm, rt + s_fpga], dtype=np.float64
                    ),
                    served_map=np.array(
                        [_X86, _ARM if profile.arm_capable else _X86, _FPGA],
                        dtype=np.int8,
                    ),
                    fault_delay=(
                        rt + (s_fpga + s_x86) if available else float("nan")
                    ),
                    window_s=profile.host_work_s
                    + calls * (profile.per_call_host_s + rt + s_x86),
                    faults=cohort_faults,
                )
            )
        # The open-loop load model: presorted global arrival/departure
        # schedules; L(t) is two searchsorted calls away for scalar and
        # array queries alike.
        self._starts = np.sort(
            np.concatenate([c.arrivals for c in self._cohorts])
        )
        self._ends = np.sort(
            np.concatenate([c.arrivals + c.window_s for c in self._cohorts])
        )
        self.clients = int(sum(c.n for c in self._cohorts))
        self.logical_events = int(sum(c.n * (c.calls + 3) for c in self._cohorts))

    # -- load model ---------------------------------------------------------
    def loads_at(self, times: np.ndarray) -> np.ndarray:
        """``L(t)`` for an array of query times (int64 process counts)."""
        present = np.searchsorted(self._starts, times, side="right")
        departed = np.searchsorted(self._ends, times, side="right")
        return present - departed + (self.background + 1)

    def load_at(self, t: float) -> int:
        """``L(t)`` for one query time (the reference path's view)."""
        present = np.searchsorted(self._starts, t, side="right")
        departed = np.searchsorted(self._ends, t, side="right")
        return int(present) - int(departed) + self.background + 1

    # -- execution ----------------------------------------------------------
    def run(
        self,
        sim: Optional[Simulator] = None,
        vectorized: Optional[bool] = None,
    ) -> CohortRunResult:
        """Simulate the whole population; return per-client results.

        ``vectorized=None`` picks the fast path unless
        ``REPRO_COHORT_REFERENCE`` is set in the environment.
        """
        if vectorized is None:
            vectorized = not os.environ.get(REFERENCE_ENV)
        if sim is None:
            sim = Simulator()
        if sim.now != 0.0:
            raise CohortError(
                f"cohort runs must start at simulated time 0.0 (now={sim.now}); "
                "bit-identity between the vectorized and reference paths "
                "relies on arrival times being absolute"
            )
        path = "vectorized" if vectorized else "reference"
        results = [
            CohortResult(
                index=c.index,
                spec=c.spec,
                calls=c.calls,
                arrivals=c.arrivals,
                completions=np.zeros(c.n, dtype=np.float64),
                targets=np.zeros((c.n, c.calls), dtype=np.int8),
                served=np.zeros((c.n, c.calls), dtype=np.int8),
                rules=np.zeros((c.n, c.calls), dtype=np.uint8),
            )
            for c in self._cohorts
        ]
        target_tally = np.zeros(3, dtype=np.int64)
        rule_tally = np.zeros(len(RULES), dtype=np.int64)
        events_before = sim.events_processed
        if vectorized:
            for cohort, result in zip(self._cohorts, results):
                self._start_vectorized(sim, cohort, result, target_tally, rule_tally)
        else:
            for cohort, result in zip(self._cohorts, results):
                for client in range(cohort.n):
                    sim.spawn(
                        self._client(
                            sim, cohort, client, result, target_tally, rule_tally
                        )
                    )
        sim.run()
        run_result = CohortRunResult(
            path=path,
            cohorts=results,
            clients=self.clients,
            logical_events=self.logical_events,
            sim_events=sim.events_processed - events_before,
            sim_seconds=sim.now,
            decisions_by_target={
                Target(i): int(c) for i, c in enumerate(target_tally) if c
            },
            decisions_by_rule={
                RULES[i]: int(c) for i, c in enumerate(rule_tally) if c
            },
            fault_fallbacks=int(sum(r.fault_fallbacks for r in results)),
        )
        self._record_metrics(run_result)
        return run_result

    def _record_metrics(self, run: CohortRunResult) -> None:
        record_cohort_run(run, metrics=self.metrics, stats=self._stats)

    # -- the vectorized path ------------------------------------------------
    def _start_vectorized(self, sim, cohort, result, target_tally, rule_tally):
        finish = cohort.arrivals + cohort.host_s
        sim.call_at(
            float(np.max(finish + cohort.call_host_s)),
            lambda: self._vectorized_call(
                sim, cohort, 0, finish, result, target_tally, rule_tally
            ),
        )

    def _vectorized_call(self, sim, cohort, call, finish, result, target_tally, rule_tally):
        """Advance every client in ``cohort`` through call ``call``."""
        decide_at = finish + cohort.call_host_s
        loads = self.loads_at(decide_at)
        targets, rules = self._decide_array(cohort, loads)
        delays = cohort.rts[targets]
        served = cohort.served_map[targets]
        for client, faulted_call in cohort.faults:
            if faulted_call == call and targets[client] == _FPGA:
                delays[client] = cohort.fault_delay
                served[client] = _X86
                result.fault_fallbacks += 1
        result.targets[:, call] = targets
        result.served[:, call] = served
        result.rules[:, call] = rules
        target_tally += np.bincount(targets, minlength=3)
        rule_tally += np.bincount(rules, minlength=len(RULES))
        finish = decide_at + delays
        if call + 1 < cohort.calls:
            sim.call_at(
                float(np.max(finish + cohort.call_host_s)),
                lambda: self._vectorized_call(
                    sim, cohort, call + 1, finish, result, target_tally, rule_tally
                ),
            )
        else:
            completions = finish

            def done() -> None:
                result.completions[:] = completions

            sim.call_at(float(np.max(finish)), done)

    def _decide_array(self, cohort, loads):
        """Algorithm 2 over a load array; mirrors :func:`.policy.decide`.

        The branch structure is the scalar function's, re-expressed as
        masks; ``tests/core/test_cohort_oracle.py`` pins the mirror to
        the scalar implementation over the full condition space.
        """
        gt_fpga = loads > cohort.fpga_thr
        gt_arm = loads > cohort.arm_thr
        if not cohort.available:
            # Lines 9-24: the kernel is absent; ARM iff hot for ARM.
            targets = np.where(gt_arm, _ARM, _X86).astype(np.int8)
            rules = (2 * gt_arm + gt_fpga).astype(np.uint8)
            return targets, rules
        # Kernel resident: below the FPGA threshold it is the plain
        # x86/arm split; above it, the smaller threshold wins.
        hot_target = _FPGA if cohort.fpga_thr < cohort.arm_thr else _ARM
        hot_rule = (
            _RULE_INDEX["fpga"]
            if cohort.fpga_thr < cohort.arm_thr
            else _RULE_INDEX["arm-over-fpga"]
        )
        targets = np.where(
            gt_fpga, hot_target, np.where(gt_arm, _ARM, _X86)
        ).astype(np.int8)
        rules = np.where(gt_fpga, hot_rule, 2 * gt_arm).astype(np.uint8)
        return targets, rules

    # -- the per-client reference path --------------------------------------
    def _client(self, sim, cohort, client, result, target_tally, rule_tally):
        """One client as a generator process: the canonical model.

        Every addition to simulated time happens in the same order as
        the vectorized path's array arithmetic, so the two paths agree
        bit for bit, not approximately.
        """
        yield sim.timeout(float(cohort.arrivals[client]))
        yield sim.timeout(cohort.host_s)
        for call in range(cohort.calls):
            yield sim.timeout(cohort.call_host_s)
            load = self.load_at(sim.now)
            decision = decide(load, cohort.entry, cohort.available)
            target = int(decision.target)
            result.targets[client, call] = target
            result.rules[client, call] = _RULE_INDEX[decision.rule]
            target_tally[target] += 1
            rule_tally[_RULE_INDEX[decision.rule]] += 1
            if target == _FPGA and (client, call) in cohort.faults:
                delay = cohort.fault_delay
                served = _X86
                result.fault_fallbacks += 1
            else:
                delay = float(cohort.rts[target])
                served = int(cohort.served_map[target])
            result.served[client, call] = served
            yield sim.timeout(delay)
        result.completions[client] = sim.now
