"""Alternative scheduling policies (paper Sections 5 and 7).

The paper's heuristic (Algorithm 2, :func:`repro.core.policy.decide`)
compares the observed load against two static-then-refined thresholds.
Two natural alternatives it hints at:

* :func:`cost_model_policy` — predict each target's end-to-end time
  under the *current* load with the processor-sharing relation and the
  calibrated profiles, and take the argmin. An informed upper bound on
  what threshold scheduling can achieve (the ablation bench compares).
* :func:`energy_aware_policy` — pick the target minimizing the
  energy-delay product (EDP, the metric the paper cites for its
  power-aware extension), trading some performance for joules.

Both return the same :class:`~repro.core.policy.Decision` type and plug
into :class:`~repro.core.server.SchedulerServer` unchanged.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.policy import Decision
from repro.hardware.power import PowerModel
from repro.thresholds import ThresholdEntry
from repro.types import Target
from repro.workloads.perfmodel import WorkloadProfile

__all__ = [
    "PolicyFn",
    "cost_model_policy",
    "energy_aware_policy",
    "marginal_run_energy",
]


def marginal_run_energy(
    profile: WorkloadProfile,
    target: Target,
    power: PowerModel | None = None,
    calls: int = 1,
) -> float:
    """Joules attributable to one application run placed on ``target``.

    Host work always burns x86 watts; the function portion burns the
    target's. This is the *marginal* energy (background/idle excluded),
    the quantity the energy-aware policy minimizes and the fair way to
    compare placements without conflating experiment window lengths.
    """
    power = power or PowerModel()
    host_j = power.x86.active_w_per_unit * (
        profile.host_work_s + calls * profile.per_call_host_s
    )
    if target is Target.X86:
        func_j = power.x86.active_w_per_unit * profile.func_x86_s
    elif target is Target.ARM:
        func_j = power.arm.active_w_per_unit * profile.func_arm_s
    else:
        func_j = power.fpga.active_w_per_unit * profile.fpga_kernel_s
    return host_j + calls * func_j

#: The policy contract: (x86 load, table entry, kernel resident?) -> Decision.
PolicyFn = Callable[[float, ThresholdEntry, bool], Decision]


def _predicted_times(
    profile: WorkloadProfile, x86_load: float, cores: int
) -> dict[Target, float]:
    """Per-target end-to-end predictions under the current x86 load.

    The host portion always runs on x86 and dilates with its load; the
    function portion runs on the chosen target (ARM and the FPGA are
    treated as uncontended, which is exact when migrations are the only
    off-host work — the model's documented assumption).
    """
    dilation = max(1.0, x86_load / cores)
    host = profile.host_work_s * dilation + profile.per_call_host_s * dilation
    times = {Target.X86: host + profile.func_x86_s * dilation}
    if profile.arm_capable:
        times[Target.ARM] = host + profile.arm_call_s()
    if profile.fpga_capable:
        times[Target.FPGA] = host + profile.fpga_call_s()
    return times


def cost_model_policy(
    profiles: Mapping[str, WorkloadProfile], cores: int = 6
) -> PolicyFn:
    """A policy that minimizes predicted execution time."""

    def policy(
        x86_load: float, entry: ThresholdEntry, kernel_available: bool
    ) -> Decision:
        profile = profiles[entry.application]
        times = _predicted_times(profile, x86_load, cores)
        if not kernel_available:
            fpga_time = times.pop(Target.FPGA, None)
        else:
            fpga_time = None
        best = min(times, key=times.get)
        # If the (absent) FPGA would have won, reconfigure for next time
        # while executing on the best available target now — the same
        # latency-hiding move as Algorithm 2 lines 9-18.
        wants_fpga = (
            fpga_time is not None
            and bool(entry.kernel_name)
            and fpga_time < times[best]
        )
        return Decision(best, reconfigure=wants_fpga, rule=f"cost-model:{best}")

    return policy


def energy_aware_policy(
    profiles: Mapping[str, WorkloadProfile],
    power: PowerModel | None = None,
    cores: int = 6,
    delay_exponent: float = 1.0,
) -> PolicyFn:
    """A policy that minimizes energy-delay product.

    ``delay_exponent`` generalizes EDP: 0 = pure energy, 1 = classic
    EDP, 2 = ED^2P (performance-leaning).
    """
    power = power or PowerModel()

    def policy(
        x86_load: float, entry: ThresholdEntry, kernel_available: bool
    ) -> Decision:
        profile = profiles[entry.application]
        times = _predicted_times(profile, x86_load, cores)
        if not kernel_available:
            times.pop(Target.FPGA, None)
        scores = {
            target: marginal_run_energy(profile, target, power)
            * (time_s**delay_exponent)
            for target, time_s in times.items()
        }
        best = min(scores, key=scores.get)
        return Decision(best, reconfigure=False, rule=f"edp:{best}")

    return policy
