"""Algorithm 1 — the scheduler client's dynamic threshold update.

A client instance is linked into every application binary
(Section 3.2). Each time the application terminates, it records the
observed execution time and the x86 CPU load at that moment, and
refines the threshold table that step G estimated statically:

* ran on x86 and was slower than the recorded FPGA (resp. ARM) time at
  a load *below* the current threshold -> lower that threshold to the
  observed load (migration would already have paid off here);
* ran on ARM/FPGA and was slower than the recorded x86 time -> raise
  that target's threshold (migration was premature).
"""

from __future__ import annotations

from typing import Optional

from repro.metrics import MetricsRegistry
from repro.thresholds import ThresholdEntry
from repro.types import Target

__all__ = ["ThresholdUpdater", "UpdateOutcome"]


class UpdateOutcome:
    """What an update did (for traces and tests)."""

    LOWERED_FPGA = "lowered_fpga"
    LOWERED_ARM = "lowered_arm"
    LOWERED_BOTH = "lowered_both"
    RAISED_FPGA = "raised_fpga"
    RAISED_ARM = "raised_arm"
    RECORDED = "recorded"


class ThresholdUpdater:
    """Executes Algorithm 1 against a shared threshold table entry."""

    def __init__(
        self,
        increase_step: float = 1.0,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if increase_step <= 0:
            raise ValueError(f"increase_step must be positive, got {increase_step}")
        self.increase_step = increase_step
        self._outcomes = None
        #: outcome -> bound counter child; one Algorithm 1 pass runs per
        #: completed call, so the label lookup is memoized.
        self._outcome_children: dict[str, object] = {}
        if metrics is not None:
            self._outcomes = metrics.counter(
                "threshold_updates_total",
                "Algorithm 1 passes by outcome",
                labelnames=("outcome",),
            )

    def update(
        self,
        entry: ThresholdEntry,
        target: Target,
        exec_seconds: float,
        x86_load: float,
    ) -> str:
        """One Algorithm 1 pass; mutates ``entry``, returns the outcome."""
        outcome = UpdateOutcome.RECORDED
        if target is Target.X86:
            # Lines 4-10: the FPGA check (4-5) and the ARM check (7-8)
            # are independent statements, not an either/or — a run that
            # was slower than both recorded alternatives lowers both
            # thresholds in the same pass.
            lowered_fpga = (
                exec_seconds > entry.observed(Target.FPGA)
                and x86_load < entry.fpga_threshold
            )
            if lowered_fpga:
                entry.fpga_threshold = x86_load
                outcome = UpdateOutcome.LOWERED_FPGA
            if (
                exec_seconds > entry.observed(Target.ARM)
                and x86_load < entry.arm_threshold
            ):
                entry.arm_threshold = x86_load
                outcome = (
                    UpdateOutcome.LOWERED_BOTH
                    if lowered_fpga
                    else UpdateOutcome.LOWERED_ARM
                )
        elif target is Target.ARM:
            # Lines 14-17.
            if exec_seconds > entry.observed(Target.X86):
                entry.arm_threshold += self.increase_step
                outcome = UpdateOutcome.RAISED_ARM
        elif target is Target.FPGA:
            # Lines 19-23.
            if exec_seconds > entry.observed(Target.X86):
                entry.fpga_threshold += self.increase_step
                outcome = UpdateOutcome.RAISED_FPGA
        # Lines 1-2: the record itself (kept last so the comparisons
        # above used the *previous* observation, as in the paper).
        entry.record(target, exec_seconds)
        if self._outcomes is not None:
            child = self._outcome_children.get(outcome)
            if child is None:
                child = self._outcome_children[outcome] = self._outcomes.labels(
                    outcome=outcome
                )
            child.inc()
        return outcome
