"""A calendar-queue pending-event set (R. Brown, CACM 1988).

The default simulator queue is a binary heap: O(log n) per operation.
A calendar queue buckets events by time modulo a "year" of ``nbuckets``
bucket-widths and dequeues by scanning the current year's buckets in
window order, which is amortized O(1) when the bucket width tracks the
event-time density. This module exists as much for its differential
test as for speed: :class:`CalendarQueue` must pop in *exactly* the
same ``(at, seq)`` order as :class:`~repro.sim.engine.HeapEventQueue`
(same-timestamp ties included), and ``tests/sim/test_event_queue.py``
holds the two against each other over hypothesis-generated schedules.

Correctness notes:

* Entries are ``(at, seq, event)`` tuples with a unique ``seq``, so
  tuple comparison always resolves at ``(at, seq)`` and never reaches
  the event object. Buckets are kept sorted with ``bisect.insort``.
* A bucket is "current" when its head's *window index*
  ``int(at / width)`` equals the scan window — the identical integer
  computation that assigned the bucket in :meth:`push`, so window
  membership can never disagree between enqueue and dequeue (a naive
  ``at < bucket_top`` comparison can, from rounding in the
  ``(window + 1) * width`` product).
* Events with equal timestamps share a window, hence a bucket, where
  ``seq`` orders them — ties cannot straddle buckets.
* The dequeue scan assumes time monotonicity: the simulator never
  enqueues earlier than the last dequeued timestamp (it enqueues at
  ``now + delay`` with ``delay >= 0``). Under that invariant the scan
  window only moves forward, and a whole fruitless year falls back to
  a direct minimum search over bucket heads (the sparse case).

Select it for a whole process with ``REPRO_EVENT_QUEUE=calendar`` or
per simulator with ``Simulator(queue=CalendarQueue())``.
"""

from __future__ import annotations

from bisect import insort
from typing import Optional

__all__ = ["CalendarQueue"]

#: Smallest admissible bucket width; keeps window indices finite and
#: protects against degenerate all-equal-timestamp resizes.
_MIN_WIDTH = 1e-9


class CalendarQueue:
    """Bucketed pending-event set, pop-order-identical to the heap."""

    __slots__ = (
        "_width",
        "_nbuckets",
        "_buckets",
        "_size",
        "_window",
        "_grow_at",
        "_shrink_at",
    )

    def __init__(self, width: float = 1.0, nbuckets: int = 8):
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width!r}")
        if nbuckets < 2:
            raise ValueError(f"need at least 2 buckets, got {nbuckets!r}")
        self._setup(max(width, _MIN_WIDTH), nbuckets, 0.0)

    def _setup(self, width: float, nbuckets: int, start: float) -> None:
        self._width = width
        self._nbuckets = nbuckets
        self._buckets: list[list] = [[] for _ in range(nbuckets)]
        self._size = 0
        #: Absolute window index the dequeue scan resumes from.
        self._window = int(start / width)
        # Brown's load thresholds: resizing keeps ~O(1) items/bucket.
        self._grow_at = 2 * nbuckets
        self._shrink_at = nbuckets // 2 - 2

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # -- the queue interface (see HeapEventQueue) ---------------------------
    def push(self, at: float, seq: int, event) -> None:
        insort(self._buckets[int(at / self._width) % self._nbuckets], (at, seq, event))
        self._size += 1
        if self._size > self._grow_at:
            self._resize(2 * self._nbuckets)

    def pop(self) -> tuple:
        if not self._size:
            raise IndexError("pop from an empty calendar queue")
        window = self._find()
        item = self._buckets[window % self._nbuckets].pop(0)
        self._size -= 1
        self._window = window
        if self._size < self._shrink_at:
            self._resize(self._nbuckets // 2)
        return item

    def peek_time(self) -> Optional[float]:
        if not self._size:
            return None
        window = self._find()
        return self._buckets[window % self._nbuckets][0][0]

    # -- internals ----------------------------------------------------------
    def _find(self) -> int:
        """Window index of the earliest pending item (size > 0)."""
        width = self._width
        nbuckets = self._nbuckets
        buckets = self._buckets
        window = self._window
        for _ in range(nbuckets):
            items = buckets[window % nbuckets]
            if items and int(items[0][0] / width) == window:
                return window
            window += 1
        # A whole dry year: the queue is sparse relative to the current
        # width — locate the global minimum head directly.
        best = None
        for items in buckets:
            if items and (best is None or items[0] < best):
                best = items[0]
        return int(best[0] / width)

    def _resize(self, nbuckets: int) -> None:
        nbuckets = max(2, nbuckets)
        if nbuckets == self._nbuckets:
            return
        items = [item for bucket in self._buckets for item in bucket]
        if items:
            ats = [item[0] for item in items]
            low, span = min(ats), max(ats) - min(ats)
            # Aim for a few items per bucket-width; an all-equal span
            # keeps the current width.
            width = max(span * 3.0 / len(items), _MIN_WIDTH) if span > 0 else self._width
            start = min(low, self._window * self._width)
        else:
            width = self._width
            start = self._window * self._width
        self._setup(width, nbuckets, start)
        for item in items:
            insort(self._buckets[int(item[0] / self._width) % self._nbuckets], item)
        self._size = len(items)
