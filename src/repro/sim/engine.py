"""Deterministic discrete-event simulation kernel.

The engine is a small, dependency-free event loop in the spirit of SimPy:
a :class:`Simulator` owns a priority queue of timestamped events, and
generator-based processes (see :mod:`repro.sim.process`) advance by
yielding events. Determinism is guaranteed by breaking timestamp ties
with a monotonically increasing sequence number, so two simulations with
the same seed replay identically.
"""

from __future__ import annotations

import heapq
import itertools
import os
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "Event",
    "HeapEventQueue",
    "Interrupt",
    "PeriodicCall",
    "SimulationError",
    "Simulator",
]

#: Environment variable selecting the event-queue implementation for
#: simulators constructed without an explicit ``queue`` ("heap" or
#: "calendar"; see :mod:`repro.sim.calendar`).
QUEUE_ENV = "REPRO_EVENT_QUEUE"

#: Default queue when ``REPRO_EVENT_QUEUE`` is unset. The heap wins the
#: head-to-head evaluation the ``scale_stress`` bench scenario runs on
#: every full bench (see ``queue_eval`` in its extra payload): the
#: calendar queue's insort/scan constants sit above heapq's C
#: implementation at this workload's queue depths, so it stays the
#: evaluated alternative rather than the default.
DEFAULT_QUEUE = "heap"

#: Environment variable disabling deferred-record recycling ("0" turns
#: the free list off; every :meth:`Simulator.defer` then allocates a
#: fresh record — the pre-recycling allocation path kept for
#: differential testing).
RECYCLE_ENV = "REPRO_EVENT_RECYCLE"


class HeapEventQueue(list):
    """The default pending-event queue: a binary heap of
    ``(at, seq, event)`` tuples.

    Subclasses ``list`` so the simulator's hot loop keeps native
    truthiness/len checks; the three-method interface (``push``,
    ``pop``, ``peek_time``) is what any alternative queue — e.g. the
    calendar queue in :mod:`repro.sim.calendar` — must provide, and
    both must pop in identical ``(at, seq)`` order (a tested contract).
    """

    __slots__ = ()

    def push(self, at: float, seq: int, event: "Event") -> None:
        heapq.heappush(self, (at, seq, event))

    def pop(self) -> tuple:
        return heapq.heappop(self)

    def peek_time(self) -> Optional[float]:
        return self[0][0] if self else None


def _default_queue():
    choice = os.environ.get(QUEUE_ENV, DEFAULT_QUEUE)
    if choice == "calendar":
        from repro.sim.calendar import CalendarQueue

        return CalendarQueue()
    if choice in ("", "heap"):
        return HeapEventQueue()
    raise SimulationError(
        f"unknown {QUEUE_ENV} value {choice!r}; expected 'heap' or 'calendar'"
    )


def _default_recycle() -> bool:
    return os.environ.get(RECYCLE_ENV, "1") != "0"


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. re-triggering)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* once :meth:`succeed`
    or :meth:`fail` is called, and is *processed* after the simulator has
    run its callbacks. Processes wait on events by yielding them.
    """

    PENDING = "pending"
    TRIGGERED = "triggered"
    PROCESSED = "processed"

    __slots__ = ("sim", "callbacks", "_state", "_value", "_ok", "defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._state = Event.PENDING
        self._value: Any = None
        self._ok = True
        #: A failed event whose exception was consumed (e.g. by a waiting
        #: process or an AnyOf) is "defused" and will not crash the run.
        self.defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state != Event.PENDING

    @property
    def processed(self) -> bool:
        return self._state == Event.PROCESSED

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        The trigger/enqueue/push chain is inlined for the default heap
        queue — one frame instead of four on a path the profile shows
        runs once per event the simulation ever schedules.
        """
        if self._state != Event.PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = Event.TRIGGERED
        sim = self.sim
        queue = sim._queue
        if type(queue) is HeapEventQueue:
            heapq.heappush(queue, (sim.now, next(sim._seq), self))
        else:
            queue.push(sim.now, next(sim._seq), self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._trigger(False, exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._state != Event.PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = ok
        self._value = value
        self._state = Event.TRIGGERED
        self.sim._enqueue(self.sim.now, self)

    def _process(self) -> None:
        self._state = Event.PROCESSED
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for callback in callbacks:
                callback(self)
        if not self._ok and not self.defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self._state} at {id(self):#x}>"


class _Timeout(Event):
    """An event that triggers itself after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self._ok = True
        self._value = value
        self._state = Event.TRIGGERED
        sim._enqueue(sim.now + delay, self)


class _Call(Event):
    """A pre-triggered event that invokes ``fn`` when processed.

    The cheap backbone of :meth:`Simulator.call_in` /
    :meth:`Simulator.call_at` and of process resumption: one heap entry
    and one attribute instead of an extra event plus a closure appended
    to its callback list.
    """

    __slots__ = ("_fn",)

    def __init__(self, sim: "Simulator", delay: float, fn: Callable[[], Any]):
        if delay < 0:
            raise SimulationError(f"negative call delay {delay!r}")
        super().__init__(sim)
        self._ok = True
        self._state = Event.TRIGGERED
        self._fn = fn
        sim._enqueue(sim.now + delay, self)

    def _process(self) -> None:
        self._state = Event.PROCESSED
        self._fn()
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for callback in callbacks:
                callback(self)


#: Sentinel distinguishing "no argument" from an explicit ``None`` in
#: :meth:`Simulator.defer`.
_NO_ARG = object()


class _Deferred:
    """A recyclable scheduled-call record — the zero-allocation backbone
    of :meth:`Simulator.defer`.

    Unlike :class:`_Call` this is *not* an :class:`Event`: ``defer()``
    returns no handle, so nothing outside the kernel can hold a
    reference to a record, wait on it, or observe it after it fires.
    That guarantee is what makes recycling safe — once ``_process``
    runs, the record goes straight back on the simulator's free list
    and the next ``defer()`` reuses it instead of allocating.

    Duck-types the only part of the event protocol the run loops touch
    (``_process``); the queue never compares records because the
    ``(at, seq)`` tuple prefix is unique.
    """

    __slots__ = ("sim", "_fn", "_arg")

    def _process(self) -> None:
        fn = self._fn
        arg = self._arg
        # Detach before invoking: fn may re-defer and legitimately grab
        # this very record back off the free list.
        self._fn = None
        self._arg = None
        sim = self.sim
        if sim._recycle:
            sim._free.append(self)
        if arg is _NO_ARG:
            fn()
        else:
            fn(arg)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_Deferred fn={self._fn!r} at {id(self):#x}>"


class PeriodicCall:
    """A self-rescheduling timer: ``fn()`` every ``interval`` seconds
    until :meth:`cancel`.

    Each tick arms exactly one :class:`_Call` for the next one, so a
    live timer keeps the queue non-empty — callers that own one must
    :meth:`cancel` it before expecting :meth:`Simulator.run` to drain
    (e.g. a fleet's gossip tick is cancelled by ``stop()``).
    ``fn`` runs *before* the next tick is armed; if it raises, the chain
    stops (nothing is rescheduled).
    """

    __slots__ = ("sim", "interval", "fn", "ticks", "_cancelled")

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        fn: Callable[[], Any],
        first_at: Optional[float] = None,
    ):
        if interval <= 0:
            raise SimulationError(f"non-positive period {interval!r}")
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.ticks = 0
        self._cancelled = False
        start = sim.now + interval if first_at is None else first_at
        sim.call_at(start, self._tick)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Stop ticking. The already-armed next tick becomes a no-op
        (its heap entry fires but does nothing)."""
        self._cancelled = True

    def _tick(self) -> None:
        if self._cancelled:
            return
        self.ticks += 1
        self.fn()
        if not self._cancelled:  # fn() may have cancelled us
            self.sim.defer(self.interval, self._tick)


class Simulator:
    """The event loop: owns simulated time and the pending-event queue."""

    __slots__ = (
        "now",
        "_queue",
        "_seq",
        "_active_process",
        "events_processed",
        "_free",
        "_recycle",
        "deferred_allocations",
        "deferred_reuses",
    )

    def __init__(self, queue=None, recycle: Optional[bool] = None):
        """``queue`` swaps the pending-event container (default: a
        :class:`HeapEventQueue`, or what ``REPRO_EVENT_QUEUE`` names).
        ``recycle`` toggles the :meth:`defer` free list (default: on,
        unless ``REPRO_EVENT_RECYCLE=0``)."""
        self.now: float = 0.0
        self._queue = queue if queue is not None else _default_queue()
        self._seq = itertools.count()
        self._active_process = None  # set by Process while running
        #: Events processed so far; the wall-clock bench harness divides
        #: this by elapsed real time to report events/sec.
        self.events_processed: int = 0
        #: Free list of spent :class:`_Deferred` records plus counters
        #: exposing its effectiveness (tested: a long run must mostly
        #: reuse rather than allocate).
        self._free: list = []
        self._recycle = _default_recycle() if recycle is None else recycle
        self.deferred_allocations: int = 0
        self.deferred_reuses: int = 0

    # -- scheduling primitives ----------------------------------------------
    def _enqueue(self, at: float, event: Event) -> None:
        self._queue.push(at, next(self._seq), event)

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` simulated seconds from now."""
        return _Timeout(self, delay, value)

    def call_at(self, when: float, fn: Callable[[], Any]) -> Event:
        """Run ``fn`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(f"call_at({when}) is in the past (now={self.now})")
        return _Call(self, when - self.now, fn)

    def call_in(self, delay: float, fn: Callable[[], Any]) -> Event:
        """Run ``fn`` after ``delay`` simulated seconds."""
        return _Call(self, delay, fn)

    def defer(self, delay: float, fn: Callable, arg: Any = _NO_ARG) -> None:
        """Run ``fn`` (or ``fn(arg)``) after ``delay`` simulated seconds,
        returning no handle.

        The fire-and-forget sibling of :meth:`call_in` for the kernel's
        hot paths: because the caller gets nothing back, the scheduled
        record can be recycled through a free list the moment it fires,
        so a steady-state simulation stops allocating for timer-driven
        work entirely. Prefer this over ``call_in(delay, lambda: ...)``
        whenever the returned event is unused — it also saves the
        closure by passing ``arg`` through.
        """
        if delay < 0:
            raise SimulationError(f"negative defer delay {delay!r}")
        free = self._free
        if free:
            record = free.pop()
            self.deferred_reuses += 1
        else:
            record = _Deferred.__new__(_Deferred)
            record.sim = self
            self.deferred_allocations += 1
        record._fn = fn
        record._arg = arg
        queue = self._queue
        if type(queue) is HeapEventQueue:
            heapq.heappush(queue, (self.now + delay, next(self._seq), record))
        else:
            queue.push(self.now + delay, next(self._seq), record)

    def call_every(
        self,
        interval: float,
        fn: Callable[[], Any],
        first_at: Optional[float] = None,
    ) -> PeriodicCall:
        """Run ``fn`` every ``interval`` seconds (first tick at
        ``first_at``, default ``now + interval``) until the returned
        :class:`PeriodicCall` is cancelled."""
        return PeriodicCall(self, interval, fn, first_at=first_at)

    def spawn(self, generator) -> "Process":
        """Start a new process from a generator (see :mod:`.process`)."""
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.process import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.process import AnyOf

        return AnyOf(self, list(events))

    # -- execution -----------------------------------------------------------
    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or ``None`` if queue empty."""
        return self._queue.peek_time()

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty queue")
        at, _seq, event = self._queue.pop()
        self.now = at
        self.events_processed += 1
        event._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, or until simulated time ``until``.

        When ``until`` is given, time is advanced to exactly ``until``
        even if the last event fires earlier.

        The drain loop is specialised for the default heap queue:
        ``heappop`` is called directly on the list subclass instead of
        going through ``step()``'s method dispatch, which is worth ~15%
        of kernel time on event-dense scenarios.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"run(until={until}) is in the past (now={self.now})")
        queue = self._queue
        if type(queue) is HeapEventQueue:
            pop = heapq.heappop
            processed = 0
            try:
                if until is None:
                    while queue:
                        at, _seq, event = pop(queue)
                        self.now = at
                        processed += 1
                        event._process()
                else:
                    while queue and queue[0][0] <= until:
                        at, _seq, event = pop(queue)
                        self.now = at
                        processed += 1
                        event._process()
            finally:
                self.events_processed += processed
        else:
            while queue:
                if until is not None and queue.peek_time() > until:
                    break
                self.step()
        if until is not None:
            self.now = max(self.now, until)

    def run_until_event(self, event: Event) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises the event's exception if it failed, or
        :class:`SimulationError` if the queue drains first.
        """
        event.defused = True
        queue = self._queue
        if type(queue) is HeapEventQueue:
            pop = heapq.heappop
            processed = 0
            try:
                while event._state != Event.PROCESSED:
                    if not queue:
                        raise SimulationError("simulation ended before event triggered")
                    at, _seq, pending = pop(queue)
                    self.now = at
                    processed += 1
                    pending._process()
            finally:
                self.events_processed += processed
        else:
            while not event.processed:
                if not queue:
                    raise SimulationError("simulation ended before event triggered")
                self.step()
        if not event._ok:
            raise event._value
        return event._value
