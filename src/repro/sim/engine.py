"""Deterministic discrete-event simulation kernel.

The engine is a small, dependency-free event loop in the spirit of SimPy:
a :class:`Simulator` owns a priority queue of timestamped events, and
generator-based processes (see :mod:`repro.sim.process`) advance by
yielding events. Determinism is guaranteed by breaking timestamp ties
with a monotonically increasing sequence number, so two simulations with
the same seed replay identically.
"""

from __future__ import annotations

import heapq
import itertools
import os
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "Event",
    "HeapEventQueue",
    "Interrupt",
    "PeriodicCall",
    "SimulationError",
    "Simulator",
]

#: Environment variable selecting the event-queue implementation for
#: simulators constructed without an explicit ``queue`` ("heap" or
#: "calendar"; see :mod:`repro.sim.calendar`).
QUEUE_ENV = "REPRO_EVENT_QUEUE"


class HeapEventQueue(list):
    """The default pending-event queue: a binary heap of
    ``(at, seq, event)`` tuples.

    Subclasses ``list`` so the simulator's hot loop keeps native
    truthiness/len checks; the three-method interface (``push``,
    ``pop``, ``peek_time``) is what any alternative queue — e.g. the
    calendar queue in :mod:`repro.sim.calendar` — must provide, and
    both must pop in identical ``(at, seq)`` order (a tested contract).
    """

    __slots__ = ()

    def push(self, at: float, seq: int, event: "Event") -> None:
        heapq.heappush(self, (at, seq, event))

    def pop(self) -> tuple:
        return heapq.heappop(self)

    def peek_time(self) -> Optional[float]:
        return self[0][0] if self else None


def _default_queue():
    choice = os.environ.get(QUEUE_ENV, "heap")
    if choice == "calendar":
        from repro.sim.calendar import CalendarQueue

        return CalendarQueue()
    if choice in ("", "heap"):
        return HeapEventQueue()
    raise SimulationError(
        f"unknown {QUEUE_ENV} value {choice!r}; expected 'heap' or 'calendar'"
    )


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. re-triggering)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* once :meth:`succeed`
    or :meth:`fail` is called, and is *processed* after the simulator has
    run its callbacks. Processes wait on events by yielding them.
    """

    PENDING = "pending"
    TRIGGERED = "triggered"
    PROCESSED = "processed"

    __slots__ = ("sim", "callbacks", "_state", "_value", "_ok", "defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._state = Event.PENDING
        self._value: Any = None
        self._ok = True
        #: A failed event whose exception was consumed (e.g. by a waiting
        #: process or an AnyOf) is "defused" and will not crash the run.
        self.defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state != Event.PENDING

    @property
    def processed(self) -> bool:
        return self._state == Event.PROCESSED

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        self._trigger(True, value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._trigger(False, exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = ok
        self._value = value
        self._state = Event.TRIGGERED
        self.sim._enqueue(self.sim.now, self)

    def _process(self) -> None:
        self._state = Event.PROCESSED
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for callback in callbacks:
                callback(self)
        if not self._ok and not self.defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self._state} at {id(self):#x}>"


class _Timeout(Event):
    """An event that triggers itself after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self._ok = True
        self._value = value
        self._state = Event.TRIGGERED
        sim._enqueue(sim.now + delay, self)


class _Call(Event):
    """A pre-triggered event that invokes ``fn`` when processed.

    The cheap backbone of :meth:`Simulator.call_in` /
    :meth:`Simulator.call_at` and of process resumption: one heap entry
    and one attribute instead of an extra event plus a closure appended
    to its callback list.
    """

    __slots__ = ("_fn",)

    def __init__(self, sim: "Simulator", delay: float, fn: Callable[[], Any]):
        if delay < 0:
            raise SimulationError(f"negative call delay {delay!r}")
        super().__init__(sim)
        self._ok = True
        self._state = Event.TRIGGERED
        self._fn = fn
        sim._enqueue(sim.now + delay, self)

    def _process(self) -> None:
        self._state = Event.PROCESSED
        self._fn()
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for callback in callbacks:
                callback(self)


class PeriodicCall:
    """A self-rescheduling timer: ``fn()`` every ``interval`` seconds
    until :meth:`cancel`.

    Each tick arms exactly one :class:`_Call` for the next one, so a
    live timer keeps the queue non-empty — callers that own one must
    :meth:`cancel` it before expecting :meth:`Simulator.run` to drain
    (e.g. a fleet's gossip tick is cancelled by ``stop()``).
    ``fn`` runs *before* the next tick is armed; if it raises, the chain
    stops (nothing is rescheduled).
    """

    __slots__ = ("sim", "interval", "fn", "ticks", "_cancelled")

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        fn: Callable[[], Any],
        first_at: Optional[float] = None,
    ):
        if interval <= 0:
            raise SimulationError(f"non-positive period {interval!r}")
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.ticks = 0
        self._cancelled = False
        start = sim.now + interval if first_at is None else first_at
        sim.call_at(start, self._tick)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Stop ticking. The already-armed next tick becomes a no-op
        (its heap entry fires but does nothing)."""
        self._cancelled = True

    def _tick(self) -> None:
        if self._cancelled:
            return
        self.ticks += 1
        self.fn()
        if not self._cancelled:  # fn() may have cancelled us
            self.sim.call_in(self.interval, self._tick)


class Simulator:
    """The event loop: owns simulated time and the pending-event queue."""

    __slots__ = ("now", "_queue", "_seq", "_active_process", "events_processed")

    def __init__(self, queue=None):
        """``queue`` swaps the pending-event container (default: a
        :class:`HeapEventQueue`, or what ``REPRO_EVENT_QUEUE`` names)."""
        self.now: float = 0.0
        self._queue = queue if queue is not None else _default_queue()
        self._seq = itertools.count()
        self._active_process = None  # set by Process while running
        #: Events processed so far; the wall-clock bench harness divides
        #: this by elapsed real time to report events/sec.
        self.events_processed: int = 0

    # -- scheduling primitives ----------------------------------------------
    def _enqueue(self, at: float, event: Event) -> None:
        self._queue.push(at, next(self._seq), event)

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` simulated seconds from now."""
        return _Timeout(self, delay, value)

    def call_at(self, when: float, fn: Callable[[], Any]) -> Event:
        """Run ``fn`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(f"call_at({when}) is in the past (now={self.now})")
        return _Call(self, when - self.now, fn)

    def call_in(self, delay: float, fn: Callable[[], Any]) -> Event:
        """Run ``fn`` after ``delay`` simulated seconds."""
        return _Call(self, delay, fn)

    def call_every(
        self,
        interval: float,
        fn: Callable[[], Any],
        first_at: Optional[float] = None,
    ) -> PeriodicCall:
        """Run ``fn`` every ``interval`` seconds (first tick at
        ``first_at``, default ``now + interval``) until the returned
        :class:`PeriodicCall` is cancelled."""
        return PeriodicCall(self, interval, fn, first_at=first_at)

    def spawn(self, generator) -> "Process":
        """Start a new process from a generator (see :mod:`.process`)."""
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.process import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.process import AnyOf

        return AnyOf(self, list(events))

    # -- execution -----------------------------------------------------------
    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or ``None`` if queue empty."""
        return self._queue.peek_time()

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty queue")
        at, _seq, event = self._queue.pop()
        self.now = at
        self.events_processed += 1
        event._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, or until simulated time ``until``.

        When ``until`` is given, time is advanced to exactly ``until``
        even if the last event fires earlier.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"run(until={until}) is in the past (now={self.now})")
        queue = self._queue
        while queue:
            if until is not None and queue.peek_time() > until:
                break
            self.step()
        if until is not None:
            self.now = max(self.now, until)

    def run_until_event(self, event: Event) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises the event's exception if it failed, or
        :class:`SimulationError` if the queue drains first.
        """
        event.defused = True
        while not event.processed:
            if not self._queue:
                raise SimulationError("simulation ended before event triggered")
            self.step()
        if not event.ok:
            raise event.value
        return event.value
