"""Generator-based simulation processes and event combinators.

A process is an ordinary Python generator that yields
:class:`~repro.sim.engine.Event` objects; the process resumes when the
yielded event triggers, receiving the event's value at the yield point
(or the event's exception thrown in, if it failed).
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.sim.engine import Event, Interrupt, SimulationError, Simulator

__all__ = ["Process", "AllOf", "AnyOf"]


class Process(Event):
    """A running simulation process; also an event that fires on exit.

    The process-as-event value is the generator's return value, so other
    processes can wait for completion with ``result = yield proc``.
    """

    __slots__ = ("generator", "_waiting_on")

    def __init__(self, sim: Simulator, generator: Generator[Event, Any, Any]):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"Process needs a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        self._waiting_on: Event | None = None
        # Bootstrap: resume for the first time at the current instant.
        sim.defer(0.0, self._boot)

    def _boot(self) -> None:
        self._step(None, as_exception=False)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        that is waiting on an event detaches it from that event first.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self._waiting_on is not None:
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        self.sim.defer(0.0, self._throw_interrupt, cause)

    def _throw_interrupt(self, cause: Any) -> None:
        self._step(Interrupt(cause), as_exception=True)

    # -- internal stepping ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._ok:
            self._step(event._value, as_exception=False)
        else:
            event.defused = True
            self._step(event._value, as_exception=True)

    def _step(self, value: Any, as_exception: bool) -> None:
        if self._state != Event.PENDING:
            # A stale callback after the process already finished
            # (e.g. interrupted right as its event fired).
            return
        prev, self.sim._active_process = self.sim._active_process, self
        try:
            if as_exception:
                target = self.generator.throw(value)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            self.sim._active_process = prev

        if not isinstance(target, Event):
            exc = SimulationError(f"process yielded a non-event: {target!r}")
            self.sim.call_in(0, lambda: self._step(exc, as_exception=True))
            return
        if target._state == Event.PROCESSED:
            # Already-processed events resume the process immediately
            # (at the current instant, preserving event ordering).
            self.sim.defer(0.0, self._resume, target)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf: waits on a set of events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: Simulator, events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("events from different simulators")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if self.triggered:
                # Fast path: an already-processed event decided the
                # condition (AnyOf success, or a fail-fast); don't
                # register dead callbacks on the remaining events.
                break
            if ev.processed:
                self._on_event(ev)
            else:
                ev.callbacks.append(self._on_event)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}

    def _on_event(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every event has triggered; fails fast on failure."""

    __slots__ = ()

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers as soon as one event triggers (or fails)."""

    __slots__ = ()

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self.succeed(self._collect())
