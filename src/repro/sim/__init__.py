"""Deterministic discrete-event simulation kernel.

Provides the event loop (:class:`Simulator`), generator-based processes
(:class:`Process`), resource primitives (:class:`Resource`,
:class:`Store`), seeded RNG streams (:class:`RandomStreams`), and
structured tracing (:class:`Tracer`).
"""

from repro.sim.calendar import CalendarQueue
from repro.sim.engine import (
    Event,
    HeapEventQueue,
    Interrupt,
    PeriodicCall,
    SimulationError,
    Simulator,
)
from repro.sim.process import AllOf, AnyOf, Process
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomStreams
from repro.sim.tracing import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Event",
    "HeapEventQueue",
    "Interrupt",
    "PeriodicCall",
    "Process",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "TraceRecord",
    "Tracer",
]
