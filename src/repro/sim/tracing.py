"""Structured event tracing for simulations.

Components record ``TraceRecord`` entries (timestamped, categorized)
through a shared :class:`Tracer`; experiments and tests query the trace
to assert *why* something happened (e.g. "the scheduler migrated this
function to the FPGA at t=12.5 because load exceeded the threshold").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    message: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.time:12.6f}] {self.category:<12} {self.message}"


class Tracer:
    """Collects trace records; cheap no-op when disabled."""

    def __init__(self, enabled: bool = True, clock: Optional[Callable[[], float]] = None):
        self.enabled = enabled
        self.records: list[TraceRecord] = []
        self._clock = clock or (lambda: 0.0)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulator clock used to timestamp records."""
        self._clock = clock

    def record(self, category: str, message: str, **data: Any) -> None:
        if not self.enabled:
            return
        self.records.append(TraceRecord(self._clock(), category, message, data))

    def filter(self, category: Optional[str] = None, **data: Any) -> Iterator[TraceRecord]:
        """Iterate records matching a category and/or data fields."""
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if any(rec.data.get(k) != v for k, v in data.items()):
                continue
            yield rec

    def count(self, category: Optional[str] = None, **data: Any) -> int:
        return sum(1 for _ in self.filter(category, **data))

    def clear(self) -> None:
        self.records.clear()

    def dump(self) -> str:
        """The whole trace as a printable string (for debugging)."""
        return "\n".join(str(rec) for rec in self.records)
