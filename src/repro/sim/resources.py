"""Shared-resource primitives for simulation processes.

:class:`Resource` is a counted semaphore with FIFO queuing (e.g. FPGA
compute units); :class:`Store` is a FIFO object queue used for
message-passing between processes (e.g. the scheduler's socket).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["Resource", "Store"]


class _Request(Event):
    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource

    # Support `with resource.request() as req:` inside process generators.
    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)


class Resource:
    """A counted, FIFO-fair resource with ``capacity`` concurrent users."""

    __slots__ = ("sim", "capacity", "_users", "_waiting")

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._users: list[_Request] = []
        self._waiting: deque[_Request] = deque()

    @property
    def count(self) -> int:
        """Number of current users."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> _Request:
        """Return an event that triggers once the resource is acquired."""
        req = _Request(self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: _Request) -> None:
        """Release a previously granted (or still-queued) request."""
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            try:
                self._waiting.remove(request)
            except ValueError:
                pass  # releasing twice is a harmless no-op

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            req = self._waiting.popleft()
            self._users.append(req)
            req.succeed(req)


class Store:
    """Unbounded (or bounded) FIFO queue of Python objects.

    Invariant (restored by every operation): there is never both a
    waiting getter and a buffered item. The fast paths below exploit it
    for O(1) handoff without touching the deques.
    """

    __slots__ = ("sim", "capacity", "items", "_getters", "_putters")

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        self.sim = sim
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Return an event that triggers once ``item`` is enqueued."""
        ev = Event(self.sim)
        if not self._putters and len(self.items) < self.capacity:
            # Room available: admit now, and hand straight to a waiting
            # getter (if any) without a deque round-trip.
            ev.succeed()
            if self._getters:
                self._getters.popleft().succeed(item)
            else:
                self.items.append(item)
            return ev
        self._putters.append((ev, item))
        self._balance()
        return ev

    def offer(self, item: Any) -> None:
        """Enqueue ``item`` without a completion event.

        Identical admission semantics to :meth:`put`, but callers that
        never wait on the put event (the common case for an unbounded
        store) skip allocating and triggering one — on the uncontended
        fast path this touches nothing but the handoff itself.
        """
        if not self._putters and len(self.items) < self.capacity:
            if self._getters:
                self._getters.popleft().succeed(item)
            else:
                self.items.append(item)
            return
        self.put(item)

    def get(self) -> Event:
        """Return an event whose value is the next item."""
        ev = Event(self.sim)
        if self.items:
            # Items buffered implies no getters are waiting.
            ev.succeed(self.items.popleft())
            if self._putters:
                self._balance()  # a blocked put may fit now
            return ev
        self._getters.append(ev)
        if self._putters:
            self._balance()
        return ev

    def _balance(self) -> None:
        # Admit pending puts while there is room.
        while self._putters and len(self.items) < self.capacity:
            ev, item = self._putters.popleft()
            self.items.append(item)
            ev.succeed()
        # Serve pending gets while there are items.
        while self._getters and self.items:
            getter = self._getters.popleft()
            getter.succeed(self.items.popleft())
            # Serving a get may free room for a blocked put.
            while self._putters and len(self.items) < self.capacity:
                put_ev, item = self._putters.popleft()
                self.items.append(item)
                put_ev.succeed()
