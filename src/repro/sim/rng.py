"""Seeded, named random-number streams for reproducible experiments.

Each named stream is an independent ``numpy`` generator derived from the
root seed, so adding a new consumer of randomness does not perturb the
draws seen by existing consumers (a classic simulation-reproducibility
pitfall).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of independent, deterministically derived RNG streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """A child family, independent of this one and of other children."""
        digest = hashlib.sha256(f"{self.seed}//{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "little"))
