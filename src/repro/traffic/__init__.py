"""Open-loop traffic: trace generation and SLO scoring.

See :mod:`repro.traffic.generator` for the seeded trace generator
(diurnal cycles, flash-crowd spikes, heavy-tailed session lengths)
and :mod:`repro.traffic.slo` for the per-app SLO tracker. Traces plug
into the cohort machinery (:meth:`Trace.to_cohorts`) and into the
chaos harness's trace mode (:func:`repro.faults.harness.run_chaos`).
"""

from repro.traffic.generator import (
    TRACE_SCHEMA,
    SpikeWindow,
    Trace,
    TraceEntry,
    TrafficError,
    TrafficSpec,
    generate_trace,
)
from repro.traffic.slo import SLOReport, SLOTarget, SLOTracker

__all__ = [
    "SLOReport",
    "SLOTarget",
    "SLOTracker",
    "SpikeWindow",
    "TRACE_SCHEMA",
    "Trace",
    "TraceEntry",
    "TrafficError",
    "TrafficSpec",
    "generate_trace",
]
