"""Trace-driven open-loop traffic generation (flash crowds, diurnals).

Everything before this module drove the scheduler with *closed-loop*
or gently staggered load: a fixed client population whose arrival
times were chosen to keep the system comfortable. Real serving fleets
are hit by *open-loop* arrival processes — demand does not slow down
because the servers are melting — and the interesting robustness
questions (shedding, brownout, SLO violations) only appear under that
model.

This module generates such arrival processes as replayable traces:

- a seeded non-homogeneous Poisson process whose rate function is a
  diurnal sinusoid times a set of flash-crowd spike windows, sampled
  by Lewis-Shedler thinning (exact, and trivially deterministic given
  the numpy ``default_rng`` stream);
- heavy-tailed per-session lengths (bounded Pareto call counts), the
  classic "most sessions are short, the tail is very long" shape;
- a frozen :class:`Trace` value that serialises to versioned JSON and
  converts losslessly into the existing cohort machinery via
  ``ArrivalLaw(kind="explicit")``, so every downstream consumer (the
  chaos harness, the bench, the CLI) replays the *same* arrivals bit
  for bit.

The generator never looks at the simulated clock: a trace is pure
data, computed once and replayed everywhere, which is what makes the
serial and parallel chaos legs (and any number of re-runs) byte
identical.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

import numpy as np

from repro.core.cohort import ArrivalLaw, CohortSpec

__all__ = [
    "SpikeWindow",
    "Trace",
    "TraceEntry",
    "TrafficError",
    "TrafficSpec",
    "TRACE_SCHEMA",
    "generate_trace",
]

#: Version tag carried by serialised traces.
TRACE_SCHEMA = "xar-trek-traffic-trace/1"


class TrafficError(Exception):
    """Raised for malformed traffic specs or trace files."""


@dataclass(frozen=True)
class SpikeWindow:
    """A flash-crowd window: rate multiplied by ``factor`` over it."""

    at_s: float
    duration_s: float
    factor: float

    def __post_init__(self):
        if self.at_s < 0:
            raise TrafficError(f"spike at_s must be >= 0, got {self.at_s!r}")
        if self.duration_s <= 0:
            raise TrafficError(
                f"spike duration_s must be positive, got {self.duration_s!r}"
            )
        if self.factor <= 0:
            raise TrafficError(f"spike factor must be positive, got {self.factor!r}")

    @property
    def end_s(self) -> float:
        return self.at_s + self.duration_s

    def active(self, t: float) -> bool:
        return self.at_s <= t < self.end_s


@dataclass(frozen=True)
class TrafficSpec:
    """A seeded open-loop arrival process over ``[0, horizon_s)``.

    The instantaneous rate is::

        rate(t) = base_rate_per_s
                  * (1 + diurnal_amplitude * sin(2*pi*t / diurnal_period_s))
                  * prod(spike.factor for active spikes)

    Session lengths (calls per client) follow a bounded Pareto:
    ``calls = 1 + min(calls_max - 1, floor(Pareto(calls_alpha)))``,
    giving the heavy-tailed "mice and elephants" mix. Apps are drawn
    uniformly from ``apps``. ``deadline_s``, when set, stamps every
    entry with a completion deadline the SLO tracker and the admission
    controller both understand.
    """

    apps: tuple[str, ...]
    base_rate_per_s: float
    horizon_s: float
    diurnal_period_s: float = 60.0
    diurnal_amplitude: float = 0.0
    spikes: tuple[SpikeWindow, ...] = ()
    calls_alpha: float = 1.5
    calls_max: int = 6
    deadline_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "apps", tuple(self.apps))
        object.__setattr__(self, "spikes", tuple(self.spikes))
        if not self.apps:
            raise TrafficError("a traffic spec needs at least one app")
        if self.base_rate_per_s <= 0:
            raise TrafficError(
                f"base_rate_per_s must be positive, got {self.base_rate_per_s!r}"
            )
        if self.horizon_s <= 0:
            raise TrafficError(f"horizon_s must be positive, got {self.horizon_s!r}")
        if self.diurnal_period_s <= 0:
            raise TrafficError(
                f"diurnal_period_s must be positive, got {self.diurnal_period_s!r}"
            )
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise TrafficError(
                "diurnal_amplitude must be in [0, 1), got "
                f"{self.diurnal_amplitude!r}"
            )
        if self.calls_alpha <= 0:
            raise TrafficError(
                f"calls_alpha must be positive, got {self.calls_alpha!r}"
            )
        if self.calls_max < 1:
            raise TrafficError(f"calls_max must be >= 1, got {self.calls_max!r}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise TrafficError(
                f"deadline_s must be positive, got {self.deadline_s!r}"
            )
        for spike in self.spikes:
            if spike.at_s >= self.horizon_s:
                raise TrafficError(
                    f"spike at {spike.at_s!r}s starts past the "
                    f"{self.horizon_s!r}s horizon"
                )

    def rate_at(self, t: float) -> float:
        """The instantaneous arrival rate at ``t`` (arrivals/sec)."""
        rate = self.base_rate_per_s * (
            1.0
            + self.diurnal_amplitude
            * math.sin(2.0 * math.pi * t / self.diurnal_period_s)
        )
        for spike in self.spikes:
            if spike.active(t):
                rate *= spike.factor
        return rate

    @property
    def peak_rate_per_s(self) -> float:
        """An upper bound on ``rate_at`` (the thinning envelope)."""
        peak = self.base_rate_per_s * (1.0 + self.diurnal_amplitude)
        factor = 1.0
        for spike in self.spikes:
            factor = max(factor, spike.factor)
        return peak * factor


@dataclass(frozen=True)
class TraceEntry:
    """One client arrival: who, when, how much work, by when."""

    app: str
    arrival_s: float
    calls: int
    deadline_s: Optional[float] = None

    def __post_init__(self):
        if self.arrival_s < 0:
            raise TrafficError(f"arrival_s must be >= 0, got {self.arrival_s!r}")
        if self.calls < 1:
            raise TrafficError(f"calls must be >= 1, got {self.calls!r}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise TrafficError(
                f"deadline_s must be positive, got {self.deadline_s!r}"
            )


@dataclass(frozen=True)
class Trace:
    """A replayable arrival trace: entries sorted by arrival time."""

    entries: tuple[TraceEntry, ...]
    seed: int = 0
    horizon_s: float = 0.0

    def __post_init__(self):
        object.__setattr__(self, "entries", tuple(self.entries))
        arrivals = [e.arrival_s for e in self.entries]
        if arrivals != sorted(arrivals):
            raise TrafficError("trace entries must be sorted by arrival_s")

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def clients(self) -> int:
        return len(self.entries)

    @property
    def total_calls(self) -> int:
        return sum(e.calls for e in self.entries)

    def lines(self) -> list[str]:
        """Deterministic summary lines (checksum/replay input).

        Floats render with ``repr`` so two traces only compare equal
        when they are bit-identical.
        """
        out = [
            f"trace:{self.clients}:{self.total_calls}:seed={self.seed}"
            f":horizon={self.horizon_s!r}"
        ]
        for e in self.entries:
            out.append(
                f"{e.app},{e.arrival_s!r},{e.calls},{e.deadline_s!r}"
            )
        return out

    def to_cohorts(self) -> list[CohortSpec]:
        """The trace as explicit-arrival cohort specs.

        Entries are grouped by ``(app, calls)`` in first-seen order;
        each group becomes one :class:`CohortSpec` with an explicit
        arrival law, so the cohort machinery replays exactly the
        arrivals this trace records. (Deadlines do not survive the
        conversion — the cohort model is deadline-free by design; use
        the chaos harness's trace mode for deadline-aware replay.)
        """
        if not self.entries:
            raise TrafficError("an empty trace has no cohorts")
        groups: dict[tuple[str, int], list[float]] = {}
        for entry in self.entries:
            groups.setdefault((entry.app, entry.calls), []).append(entry.arrival_s)
        return [
            CohortSpec(
                app=app,
                clients=len(times),
                calls=calls,
                arrival=ArrivalLaw(kind="explicit", times=tuple(times)),
            )
            for (app, calls), times in groups.items()
        ]

    # -- serialisation -------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": TRACE_SCHEMA,
            "seed": self.seed,
            "horizon_s": self.horizon_s,
            "entries": [
                {
                    "app": e.app,
                    "arrival_s": e.arrival_s,
                    "calls": e.calls,
                    "deadline_s": e.deadline_s,
                }
                for e in self.entries
            ],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "Trace":
        if not isinstance(payload, dict):
            raise TrafficError(f"trace payload must be a dict, got {type(payload)}")
        schema = payload.get("schema")
        if schema != TRACE_SCHEMA:
            raise TrafficError(
                f"unsupported trace schema {schema!r}; expected {TRACE_SCHEMA!r}"
            )
        raw = payload.get("entries")
        if not isinstance(raw, list):
            raise TrafficError("trace payload needs an `entries` list")
        entries = []
        for item in raw:
            try:
                entries.append(
                    TraceEntry(
                        app=item["app"],
                        arrival_s=float(item["arrival_s"]),
                        calls=int(item["calls"]),
                        deadline_s=(
                            None
                            if item.get("deadline_s") is None
                            else float(item["deadline_s"])
                        ),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise TrafficError(f"malformed trace entry {item!r}: {exc}") from exc
        return cls(
            entries=tuple(entries),
            seed=int(payload.get("seed", 0)),
            horizon_s=float(payload.get("horizon_s", 0.0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TrafficError(f"invalid trace JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "Trace":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return cls.from_json(fh.read())
        except OSError as exc:
            raise TrafficError(f"cannot read trace {path}: {exc}") from exc


def generate_trace(spec: TrafficSpec) -> Trace:
    """Sample a :class:`Trace` from ``spec`` (seeded, replayable).

    Lewis-Shedler thinning against the peak-rate envelope: candidate
    arrivals come from a homogeneous Poisson process at
    ``spec.peak_rate_per_s`` and survive with probability
    ``rate_at(t) / peak``. Every random draw comes from one
    ``numpy.random.default_rng(spec.seed)`` stream in a fixed order,
    so the same spec always yields the same trace.
    """
    rng = np.random.default_rng(spec.seed)
    peak = spec.peak_rate_per_s
    entries = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / peak))
        if t >= spec.horizon_s:
            break
        if float(rng.random()) * peak > spec.rate_at(t):
            continue
        app = spec.apps[int(rng.integers(len(spec.apps)))]
        calls = 1 + min(spec.calls_max - 1, int(rng.pareto(spec.calls_alpha)))
        entries.append(
            TraceEntry(
                app=app,
                arrival_s=t,
                calls=calls,
                deadline_s=spec.deadline_s,
            )
        )
    return Trace(
        entries=tuple(entries), seed=spec.seed, horizon_s=spec.horizon_s
    )
