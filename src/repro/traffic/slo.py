"""SLO scoring for trace-driven runs (p99 latency, deadline-goodput).

An :class:`SLOTracker` consumes finished per-client
:class:`~repro.core.application.RunRecord`\\ s and scores each app
against its :class:`SLOTarget`:

- **p99 latency** — exact order-statistic p99 over the completed
  (admitted, non-shed) clients' end-to-end latencies on the simulated
  clock; violated when it exceeds ``p99_latency_s``.
- **deadline-goodput** — the fraction of *all* clients (shed ones
  included: a shed client is a denied client) that completed every
  call within their deadline; violated when it drops below
  ``goodput_floor``.

Scores are pure functions of the run records, every float is rendered
with ``repr`` in :meth:`SLOTracker.lines`, and the only side effect
is the optional ``slo_violations_total{app}`` counter — so two
replays of the same trace always produce byte-identical SLO lines,
which is what lets the chaos harness checksum them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.metrics import MetricsRegistry

__all__ = ["SLOReport", "SLOTarget", "SLOTracker"]


@dataclass(frozen=True)
class SLOTarget:
    """Per-app objectives; ``None`` disables that objective."""

    app: str
    p99_latency_s: Optional[float] = None
    goodput_floor: Optional[float] = None

    def __post_init__(self):
        if self.p99_latency_s is not None and self.p99_latency_s <= 0:
            raise ValueError(
                f"{self.app}: p99_latency_s must be positive, "
                f"got {self.p99_latency_s!r}"
            )
        if self.goodput_floor is not None and not 0.0 <= self.goodput_floor <= 1.0:
            raise ValueError(
                f"{self.app}: goodput_floor must be in [0, 1], "
                f"got {self.goodput_floor!r}"
            )


@dataclass(frozen=True)
class SLOReport:
    """One app's score: observed numbers plus the violated objectives."""

    app: str
    clients: int
    completed: int
    shed: int
    deadline_hits: int
    p99_latency_s: Optional[float]
    goodput: float
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations


def _p99(latencies: list[float]) -> Optional[float]:
    """Exact p99 order statistic (no interpolation, hence replayable)."""
    if not latencies:
        return None
    ordered = sorted(latencies)
    index = max(0, math.ceil(0.99 * len(ordered)) - 1)
    return ordered[index]


class SLOTracker:
    """Scores run records against per-app :class:`SLOTarget`\\ s."""

    def __init__(
        self,
        targets: Iterable[SLOTarget],
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.targets = {}
        for target in targets:
            if target.app in self.targets:
                raise ValueError(f"duplicate SLO target for app {target.app!r}")
            self.targets[target.app] = target
        self._latencies: dict[str, list[float]] = {}
        self._clients: dict[str, int] = {}
        self._completed: dict[str, int] = {}
        self._shed: dict[str, int] = {}
        self._deadline_hits: dict[str, int] = {}
        self._score_cache: Optional[dict[str, SLOReport]] = None
        self._violations_counter = (
            metrics.counter(
                "slo_violations_total",
                "SLO objectives violated, by application",
                labelnames=("app",),
            )
            if metrics is not None
            else None
        )

    def observe(self, record) -> None:
        """Fold one finished client's :class:`RunRecord` into the score."""
        app = record.app
        self._score_cache = None
        self._clients[app] = self._clients.get(app, 0) + 1
        if getattr(record, "shed_reason", None) is not None:
            self._shed[app] = self._shed.get(app, 0) + 1
            return
        if not record.finished:
            return
        latency = record.elapsed_s
        self._completed[app] = self._completed.get(app, 0) + 1
        self._latencies.setdefault(app, []).append(latency)
        deadline = getattr(record, "deadline_s", None)
        if deadline is None or latency <= deadline:
            self._deadline_hits[app] = self._deadline_hits.get(app, 0) + 1

    def observe_all(self, records: Iterable) -> None:
        for record in records:
            self.observe(record)

    def score(self) -> dict[str, SLOReport]:
        """Per-app reports for every app with a target or observations.

        The result is memoized until the next :meth:`observe`, and the
        ``slo_violations_total`` counter is only bumped on the first
        computation — so ``score()`` and ``lines()`` can be mixed
        freely without double counting.
        """
        if self._score_cache is not None:
            return self._score_cache
        apps = sorted(set(self.targets) | set(self._clients))
        reports = {}
        for app in apps:
            clients = self._clients.get(app, 0)
            completed = self._completed.get(app, 0)
            shed = self._shed.get(app, 0)
            hits = self._deadline_hits.get(app, 0)
            p99 = _p99(self._latencies.get(app, []))
            goodput = hits / clients if clients else 0.0
            target = self.targets.get(app)
            violations = []
            if target is not None:
                if (
                    target.p99_latency_s is not None
                    and p99 is not None
                    and p99 > target.p99_latency_s
                ):
                    violations.append("p99_latency")
                if (
                    target.goodput_floor is not None
                    and goodput < target.goodput_floor
                ):
                    violations.append("deadline_goodput")
            if violations and self._violations_counter is not None:
                self._violations_counter.labels(app=app).inc(len(violations))
            reports[app] = SLOReport(
                app=app,
                clients=clients,
                completed=completed,
                shed=shed,
                deadline_hits=hits,
                p99_latency_s=p99,
                goodput=goodput,
                violations=tuple(violations),
            )
        self._score_cache = reports
        return reports

    def lines(self) -> list[str]:
        """Deterministic per-app score lines (chaos checksum input)."""
        out = []
        for app, report in sorted(self.score().items()):
            verdict = "ok" if report.ok else "+".join(report.violations)
            out.append(
                f"slo {app} clients={report.clients} "
                f"completed={report.completed} shed={report.shed} "
                f"p99={report.p99_latency_s!r} "
                f"goodput={report.goodput!r} {verdict}"
            )
        return out
