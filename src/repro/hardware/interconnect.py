"""Interconnect models: Ethernet between servers, PCIe to the FPGA.

A :class:`Link` is a fair-share bandwidth server plus a fixed
per-transfer propagation latency. Both interconnects in the paper's
testbed are *shared* — the paper stresses that their transfer cost is
non-trivial to estimate statically, which is why Xar-Trek measures
migrated execution time "in locus". The link model reproduces that
property: concurrent transfers slow each other down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.hardware.sharing import FairShareServer
from repro.sim import Event, SimulationError, Simulator, Tracer

__all__ = ["LinkSpec", "Link", "ETHERNET_1GBPS", "PCIE_GEN3_X16"]


@dataclass(frozen=True)
class LinkSpec:
    """Static description of an interconnect."""

    name: str
    bandwidth_bytes_per_s: float
    latency_s: float = 0.0

    def __post_init__(self):
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")


#: The paper's server interconnect: 1 Gbps Ethernet (Section 4).
ETHERNET_1GBPS = LinkSpec("ethernet", bandwidth_bytes_per_s=125e6, latency_s=100e-6)

#: The paper's FPGA interconnect: PCIe at 32 GB/s (Section 4).
PCIE_GEN3_X16 = LinkSpec("pcie", bandwidth_bytes_per_s=32e9, latency_s=5e-6)


class Link:
    """A bidirectional, fair-shared interconnect."""

    def __init__(self, sim: Simulator, spec: LinkSpec, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.spec = spec
        self.tracer = tracer or Tracer(enabled=False)
        self._server = FairShareServer(
            sim, spec.name, capacity=spec.bandwidth_bytes_per_s, job_cap=None
        )
        self._degradation = 1.0

    @property
    def active_transfers(self) -> int:
        return self._server.active_jobs

    @property
    def degradation(self) -> float:
        """Current bandwidth fraction (1.0 = healthy)."""
        return self._degradation

    def set_degradation(self, factor: float) -> None:
        """Run the link at ``factor`` of its nominal bandwidth.

        ``factor`` in (0, 1]; 1.0 restores full speed. In-flight
        transfers finish later/earlier accordingly (exact fair-share
        rescheduling — see :meth:`FairShareServer.set_capacity`). The
        fault injector uses this for link-degradation windows.
        """
        if not 0.0 < factor <= 1.0:
            raise SimulationError(f"degradation factor must be in (0, 1], got {factor!r}")
        if factor == self._degradation:
            return
        self._degradation = factor
        self._server.set_capacity(self.spec.bandwidth_bytes_per_s * factor)
        self.tracer.record(
            "link",
            f"{self.spec.name}: bandwidth set to {factor:.0%} of nominal",
            link=self.spec.name,
            factor=factor,
        )

    def transfer(self, nbytes: float, tag: Any = None) -> Event:
        """Move ``nbytes`` across the link; the event fires on completion."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes!r}")
        sim = self.sim
        done = sim.event()
        latency = self.spec.latency_s

        def after_bandwidth(_job) -> None:
            # Propagation latency applies once the pipe has drained.
            sim.defer(latency, done.succeed, nbytes)

        self._server.submit(float(nbytes), tag=tag, on_complete=after_bandwidth)
        if self.tracer.enabled:
            self.tracer.record(
                "link",
                f"{self.spec.name}: transfer of {nbytes:.0f} B started",
                link=self.spec.name,
                nbytes=nbytes,
                concurrent=self.active_transfers,
                tag=tag,
            )
        return done

    def ideal_transfer_time(self, nbytes: float) -> float:
        """Uncontended transfer time for ``nbytes``."""
        return nbytes / self.spec.bandwidth_bytes_per_s + self.spec.latency_s

    def __repr__(self) -> str:
        gbps = self.spec.bandwidth_bytes_per_s * 8 / 1e9
        return f"Link({self.spec.name}: {gbps:.1f} Gbps, {self.active_transfers} active)"
