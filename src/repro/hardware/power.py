"""Power and energy accounting (paper Section 5's future-work axis).

The paper optimizes performance only, but names power as the natural
extension: compute performance-per-watt or energy-delay-product and let
the scheduler weigh them. This module adds the measurement substrate: a
:class:`PowerModel` with per-device idle/active power, and an
:class:`EnergyMeter` that integrates busy time from the platform's
fair-share servers and the FPGA's kernel occupancy into joules.

Default figures are datasheet-order-of-magnitude for the paper's
testbed: a Xeon Bronze 3104 (85 W TDP / 6 cores), a ThunderX (~120 W /
96 cores — the paper notes it is *not* power-efficient), and an Alveo
U50 (75 W max, ~10 W idle).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import Target

__all__ = ["DevicePower", "PowerModel", "EnergyMeter", "EnergyReport"]


@dataclass(frozen=True)
class DevicePower:
    """Idle and per-unit active power of one device."""

    idle_w: float
    active_w_per_unit: float  # per busy core (CPU) / per busy CU (FPGA)

    def __post_init__(self):
        if self.idle_w < 0 or self.active_w_per_unit < 0:
            raise ValueError("power figures must be non-negative")


@dataclass(frozen=True)
class PowerModel:
    """Per-device power figures for the platform."""

    x86: DevicePower = DevicePower(idle_w=25.0, active_w_per_unit=10.0)
    arm: DevicePower = DevicePower(idle_w=40.0, active_w_per_unit=0.85)
    fpga: DevicePower = DevicePower(idle_w=10.0, active_w_per_unit=40.0)

    def for_target(self, target: Target) -> DevicePower:
        if target is Target.X86:
            return self.x86
        if target is Target.ARM:
            return self.arm
        return self.fpga

    def marginal_energy_j(self, target: Target, busy_seconds: float) -> float:
        """Incremental energy of adding ``busy_seconds`` of work on a target."""
        return self.for_target(target).active_w_per_unit * busy_seconds


@dataclass(frozen=True)
class EnergyReport:
    """Joules per device over a measurement window."""

    x86_j: float
    arm_j: float
    fpga_j: float
    window_s: float

    @property
    def total_j(self) -> float:
        return self.x86_j + self.arm_j + self.fpga_j

    @property
    def average_power_w(self) -> float:
        if self.window_s <= 0:
            return 0.0
        return self.total_j / self.window_s

    def energy_delay_product(self, delay_s: float) -> float:
        """The EDP metric the paper cites ([9, 40])."""
        return self.total_j * delay_s


class EnergyMeter:
    """Integrates platform busy time into energy.

    Reads the fair-share servers' busy integrals (core-seconds of
    delivered service) and the FPGA's accumulated kernel-busy seconds;
    snapshot at start, report at end.
    """

    def __init__(self, platform, model: PowerModel | None = None):
        self.platform = platform
        self.model = model or PowerModel()
        self._start_time = platform.now
        self._start_busy = self._busy_integrals()

    def _busy_integrals(self) -> tuple[float, float, float]:
        x86_busy = self.platform.x86.cpu._server._busy_integral
        arm_busy = self.platform.arm.cpu._server._busy_integral
        fpga_busy = getattr(self.platform.fpga, "busy_seconds", 0.0)
        return (x86_busy, arm_busy, fpga_busy)

    def reset(self) -> None:
        self._start_time = self.platform.now
        self._start_busy = self._busy_integrals()

    def report(self) -> EnergyReport:
        """Energy since construction/reset, idle power included."""
        # Force the servers to account service up to `now`.
        self.platform.x86.cpu._server._advance()
        self.platform.arm.cpu._server._advance()
        window = self.platform.now - self._start_time
        now_busy = self._busy_integrals()
        busy = [now - start for now, start in zip(now_busy, self._start_busy)]
        return EnergyReport(
            x86_j=self.model.x86.idle_w * window
            + self.model.x86.active_w_per_unit * busy[0],
            arm_j=self.model.arm.idle_w * window
            + self.model.arm.active_w_per_unit * busy[1],
            fpga_j=self.model.fpga.idle_w * window
            + self.model.fpga.active_w_per_unit * busy[2],
            window_s=window,
        )
