"""The heterogeneous platform: x86 + ARM servers and an FPGA card.

:func:`paper_testbed` reproduces the evaluation hardware of Section 4:
a Dell 7920 (Xeon Bronze 3104, 6 cores @ 1.7 GHz, 64 GB), a Cavium
ThunderX (96 ARM cores @ 2 GHz, 128 GB), a Xilinx Alveo U50 card,
1 Gbps Ethernet between the servers, and 32 GB/s PCIe to the FPGA.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.cpu import CPUCluster, CPUSpec
from repro.hardware.fpga import ALVEO_U50, FPGADevice, FPGASpec
from repro.hardware.interconnect import ETHERNET_1GBPS, PCIE_GEN3_X16, Link, LinkSpec
from repro.hardware.server import Server, ServerSpec
from repro.metrics import MetricsRegistry
from repro.sim import RandomStreams, Simulator, Tracer
from repro.types import Target

__all__ = ["HeterogeneousPlatform", "paper_testbed", "XEON_BRONZE_3104", "THUNDERX"]

#: Dell 7920 host CPU (Section 4).
XEON_BRONZE_3104 = CPUSpec(name="x86", isa="x86_64", cores=6, freq_ghz=1.7)

#: Cavium ThunderX (Section 4). Per-core throughput on the paper's
#: compute kernels is well below the Xeon's (Table 1 shows 2.5-4x
#: slowdowns); 0.4 is the default for unprofiled work.
THUNDERX = CPUSpec(
    name="arm", isa="aarch64", cores=96, freq_ghz=2.0, relative_core_perf=0.4
)


class HeterogeneousPlatform:
    """x86 server + ARM server + FPGA card, with their interconnects."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        x86_spec: CPUSpec = XEON_BRONZE_3104,
        arm_spec: CPUSpec = THUNDERX,
        fpga_spec: FPGASpec = ALVEO_U50,
        ethernet_spec: LinkSpec = ETHERNET_1GBPS,
        pcie_spec: LinkSpec = PCIE_GEN3_X16,
        seed: int = 0,
        trace: bool = False,
    ):
        self.sim = sim or Simulator()
        self.tracer = Tracer(enabled=trace)
        self.tracer.bind_clock(lambda: self.sim.now)
        self.rng = RandomStreams(seed)
        #: The shared telemetry spine: every component attached to this
        #: platform records into the same registry, timestamped by the
        #: simulated clock and seeded by the platform RNG family.
        self.metrics = MetricsRegistry(
            clock=lambda: self.sim.now, rng=self.rng.spawn("metrics")
        )

        self.ethernet = Link(self.sim, ethernet_spec, tracer=self.tracer)
        self.pcie = Link(self.sim, pcie_spec, tracer=self.tracer)
        self.x86 = Server(
            self.sim,
            ServerSpec(cpu=x86_spec, memory_bytes=64 * 2**30),
            nic=self.ethernet,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.arm = Server(
            self.sim,
            ServerSpec(cpu=arm_spec, memory_bytes=128 * 2**30),
            nic=self.ethernet,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.fpga = FPGADevice(self.sim, fpga_spec, tracer=self.tracer)

    # -- convenience accessors ----------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def total_cores(self) -> int:
        """All CPU cores in the platform (102 in the paper's testbed)."""
        return self.x86.cpu.cores + self.arm.cpu.cores

    def cluster(self, target: Target) -> CPUCluster:
        """The CPU cluster for a CPU target; raises for FPGA."""
        if target is Target.X86:
            return self.x86.cpu
        if target is Target.ARM:
            return self.arm.cpu
        raise ValueError("FPGA is not a CPU cluster")

    @property
    def x86_load(self) -> int:
        """The scheduler's primary input: active processes on the x86 host."""
        return self.x86.cpu.load

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until)

    def __repr__(self) -> str:
        return (
            f"HeterogeneousPlatform(x86={self.x86.cpu.cores}c, "
            f"arm={self.arm.cpu.cores}c, fpga={self.fpga.spec.name})"
        )


def paper_testbed(seed: int = 0, trace: bool = False) -> HeterogeneousPlatform:
    """The exact evaluation platform of the paper (Section 4)."""
    return HeterogeneousPlatform(seed=seed, trace=trace)
