"""FPGA accelerator-card model (Xilinx Alveo U50-like).

The device holds at most one configuration image (XCLBIN) at a time;
swapping images costs a reconfiguration delay. Each loaded hardware
kernel has one compute unit, so concurrent invocations of the same
kernel serialize — exactly the contention an always-FPGA baseline
suffers in the paper's multi-tenant experiments.

Resource capacities (:class:`FPGAResources`) are shared with the
compiler's partitioning step (paper step E), which bin-packs kernels
into XCLBINs under the device's area budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from repro.sim import Event, Resource, SimulationError, Simulator, Tracer

__all__ = [
    "FPGAResources",
    "FPGASpec",
    "FPGADevice",
    "ConfigImage",
    "ALVEO_U50",
]


@dataclass(frozen=True)
class FPGAResources:
    """A resource vector: LUTs, flip-flops, BRAM36 blocks, DSPs, URAMs."""

    lut: int = 0
    ff: int = 0
    bram: int = 0
    dsp: int = 0
    uram: int = 0

    def __add__(self, other: "FPGAResources") -> "FPGAResources":
        return FPGAResources(
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            bram=self.bram + other.bram,
            dsp=self.dsp + other.dsp,
            uram=self.uram + other.uram,
        )

    def fits_in(self, budget: "FPGAResources") -> bool:
        """True if this vector fits within ``budget`` on every axis."""
        return (
            self.lut <= budget.lut
            and self.ff <= budget.ff
            and self.bram <= budget.bram
            and self.dsp <= budget.dsp
            and self.uram <= budget.uram
        )

    def max_fraction_of(self, budget: "FPGAResources") -> float:
        """The binding-constraint fraction of ``budget`` this vector uses."""
        fractions = []
        for attr in ("lut", "ff", "bram", "dsp", "uram"):
            cap = getattr(budget, attr)
            use = getattr(self, attr)
            if cap > 0:
                fractions.append(use / cap)
            elif use > 0:
                return float("inf")
        return max(fractions) if fractions else 0.0

    def scaled(self, factor: float) -> "FPGAResources":
        return FPGAResources(
            lut=int(self.lut * factor),
            ff=int(self.ff * factor),
            bram=int(self.bram * factor),
            dsp=int(self.dsp * factor),
            uram=int(self.uram * factor),
        )


@dataclass(frozen=True)
class FPGASpec:
    """Static description of an FPGA accelerator card."""

    name: str
    resources: FPGAResources
    hbm_bytes: int
    #: Fraction of the die reserved for the static shell (host interface,
    #: memory controllers, reconfiguration control — paper step E).
    shell_fraction: float = 0.2
    #: Fixed reconfiguration setup cost plus programming throughput.
    #: Programming an Alveo-class card over PCIe takes on the order of
    #: seconds end-to-end (driver setup + bitstream download), which is
    #: why hiding it behind CPU execution (Algorithm 2) and configuring
    #: at application start (Section 3.1) are load-bearing choices.
    reconfig_base_s: float = 2.0
    reconfig_bytes_per_s: float = 250e6

    @property
    def usable_resources(self) -> FPGAResources:
        """Resources left for user kernels after the static shell."""
        return self.resources.scaled(1.0 - self.shell_fraction)

    def reconfig_time(self, image_bytes: float) -> float:
        return self.reconfig_base_s + image_bytes / self.reconfig_bytes_per_s


#: The paper's card: Xilinx Alveo U50 (Section 4), 8 GB HBM2.
ALVEO_U50 = FPGASpec(
    name="alveo-u50",
    resources=FPGAResources(lut=872_000, ff=1_743_000, bram=1_344, dsp=5_952, uram=640),
    hbm_bytes=8 * 2**30,
)


class ConfigImage(Protocol):
    """What the device needs to know about an XCLBIN-like image."""

    name: str
    size_bytes: int

    @property
    def kernel_names(self) -> tuple[str, ...]: ...  # pragma: no cover


class FPGADevice:
    """A reconfigurable accelerator card attached over PCIe."""

    def __init__(self, sim: Simulator, spec: FPGASpec, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.spec = spec
        self.tracer = tracer or Tracer(enabled=False)
        self._image: Optional[ConfigImage] = None
        #: available_kernels memo, keyed on image identity.
        self._avail_image: Optional[ConfigImage] = None
        self._avail_kernels: tuple[str, ...] = ()
        self._reconfiguring = False
        self._reconfig_done: Optional[Event] = None
        self._compute_units: dict[str, Resource] = {}
        self.reconfiguration_count = 0
        self.failed_reconfigurations = 0
        #: Accumulated kernel-occupancy seconds (for energy accounting).
        self.busy_seconds = 0.0
        self._fail_next_reconfigs = 0
        #: Crash state: while crashed the card is off the bus — no
        #: kernels callable, configuration attempts fail asynchronously,
        #: in-flight runs abort. crash()/recover() are the fault
        #: injector's device-loss window.
        self._crashed = False
        self.crash_count = 0
        #: In-flight kernel executions (done events), failed en masse on
        #: a crash; finish callbacks guard on `done.triggered`.
        self._inflight_execs: dict[int, Event] = {}
        self._exec_ids = 0

    # -- queries -------------------------------------------------------------
    @property
    def configured_image(self) -> Optional[ConfigImage]:
        return self._image

    @property
    def reconfiguring(self) -> bool:
        return self._reconfiguring

    @property
    def crashed(self) -> bool:
        return self._crashed

    @property
    def available_kernels(self) -> tuple[str, ...]:
        """Kernels callable right now (none while reconfiguring/crashed)."""
        if self._image is None or self._reconfiguring or self._crashed:
            return ()
        # kernel_names rebuilds a tuple from the image's kernel dict on
        # every access; memoize per image identity (images are frozen).
        if self._avail_image is not self._image:
            self._avail_image = self._image
            self._avail_kernels = tuple(self._image.kernel_names)
        return self._avail_kernels

    def has_kernel(self, kernel_name: str) -> bool:
        if self._image is None or self._reconfiguring or self._crashed:
            return False
        if self._avail_image is not self._image:
            self._avail_image = self._image
            self._avail_kernels = tuple(self._image.kernel_names)
        return kernel_name in self._avail_kernels

    def settled(self) -> Event:
        """An event that fires once any in-flight reconfiguration settles.

        Succeeds regardless of the programming outcome — waiters
        re-check ``has_kernel`` — and immediately when nothing is in
        flight. Lets callers sleep until the card is decided instead of
        polling ``reconfiguring`` on a timer.
        """
        done = self.sim.event()
        inflight = self._reconfig_done
        if inflight is None:
            done.succeed()
        else:
            inflight.callbacks.append(lambda _ev: done.succeed())
        return done

    # -- fault injection ---------------------------------------------------
    def inject_reconfig_failures(self, count: int = 1) -> None:
        """Make the next ``count`` reconfigurations fail after their
        programming delay (driver/bitstream errors happen in practice;
        the scheduler must retry, not wedge).

        Validation happens *before* any state changes, and repeated
        arming is **additive**: ``inject_reconfig_failures(2)`` twice
        arms four failures. Injected failures are consumed strictly in
        reconfiguration order.
        """
        if not isinstance(count, int) or isinstance(count, bool):
            raise SimulationError(f"failure count must be an int, got {count!r}")
        if count < 0:
            raise SimulationError("failure count must be non-negative")
        self._fail_next_reconfigs += count

    @property
    def pending_reconfig_failures(self) -> int:
        """Armed-but-unconsumed reconfiguration failures."""
        return self._fail_next_reconfigs

    def crash(self) -> None:
        """The card drops off the bus (power fault, PCIe link loss).

        Idempotent while already crashed. Effects, all at the crash
        instant: the loaded image is lost, in-flight kernel runs fail,
        and an in-flight reconfiguration fails immediately (its
        ``configure`` event carries the error; ``settled`` waiters wake).
        """
        if self._crashed:
            return
        self._crashed = True
        self.crash_count += 1
        self.tracer.record("fpga", f"{self.spec.name}: device CRASHED")
        self._image = None
        self._compute_units = {}
        if self._reconfig_done is not None:
            done = self._reconfig_done
            self._reconfiguring = False
            self._reconfig_done = None
            self.failed_reconfigurations += 1
            done.fail(SimulationError(f"{self.spec.name}: device crashed mid-reconfiguration"))
        inflight = list(self._inflight_execs.values())
        self._inflight_execs.clear()
        for done in inflight:
            done.fail(SimulationError(f"{self.spec.name}: device crashed mid-run"))

    def recover(self) -> None:
        """The card comes back, unconfigured; the next ``configure``
        (e.g. the scheduler's background reconfiguration) restores it."""
        if not self._crashed:
            return
        self._crashed = False
        self.tracer.record("fpga", f"{self.spec.name}: device recovered (unconfigured)")

    # -- reconfiguration ------------------------------------------------------
    def configure(self, image: ConfigImage) -> Event:
        """Load ``image``; the event fires when kernels become callable.

        Configuring the already-loaded image is free. While a
        reconfiguration for the *same* image is in flight, callers share
        its completion event; requesting a *different* image mid-flight
        is an error (the paper serializes reconfigurations in the
        scheduler server).
        """
        if self._crashed:
            # Off the bus: fail asynchronously (callers treat it exactly
            # like a programming failure and retry after recovery).
            done = self.sim.event()
            done.fail(SimulationError(f"{self.spec.name}: device crashed"))
            return done
        if self._reconfiguring:
            assert self._reconfig_done is not None
            if self._image is not None and self._image.name == image.name:
                return self._reconfig_done
            raise SimulationError(
                f"{self.spec.name}: reconfiguration already in progress "
                f"(loading {self._image.name!r}, requested {image.name!r})"
            )
        if self._image is not None and self._image.name == image.name:
            done = self.sim.event()
            done.succeed(image.name)
            return done

        busy_cus = [
            name for name, cu in self._compute_units.items() if cu.count > 0
        ]
        if busy_cus:
            raise SimulationError(
                f"{self.spec.name}: cannot reconfigure while kernels run: {busy_cus}"
            )

        # Programming may fail; keep the outgoing image around so a
        # failure rolls back to it instead of leaving the card empty
        # (the resident kernels stayed valid — only the *new* bitstream
        # never took).
        prev_image = self._image
        prev_cus = self._compute_units
        self._image = image
        self._reconfiguring = True
        self.reconfiguration_count += 1
        delay = self.spec.reconfig_time(image.size_bytes)
        self.tracer.record(
            "fpga",
            f"{self.spec.name}: reconfiguring with {image.name} ({delay * 1e3:.1f} ms)",
            image=image.name,
            delay=delay,
        )
        done = self.sim.event()
        self._reconfig_done = done

        def finish() -> None:
            if done.triggered:
                return  # a crash already failed this reconfiguration
            self._reconfiguring = False
            self._reconfig_done = None
            if self._fail_next_reconfigs > 0:
                self._fail_next_reconfigs -= 1
                self.failed_reconfigurations += 1
                self._image = prev_image
                self._compute_units = prev_cus
                self.tracer.record(
                    "fpga",
                    f"{self.spec.name}: programming {image.name} FAILED"
                    + (f"; {prev_image.name} stays resident" if prev_image else ""),
                    image=image.name,
                )
                done.fail(
                    SimulationError(f"programming {image.name} failed")
                )
                return
            # Images may replicate compute units (space-sharing, paper
            # Section 7); default is one CU per kernel.
            cu_of = getattr(image, "compute_units", lambda _name: 1)
            self._compute_units = {
                name: Resource(self.sim, capacity=max(1, cu_of(name)))
                for name in image.kernel_names
            }
            self.tracer.record(
                "fpga",
                f"{self.spec.name}: {image.name} loaded",
                image=image.name,
                kernels=list(image.kernel_names),
            )
            done.succeed(image.name)

        self.sim.call_in(delay, finish)
        return done

    # -- execution -----------------------------------------------------------
    def execute(self, kernel_name: str, duration: float) -> Event:
        """Run ``kernel_name`` for ``duration`` seconds on its compute unit.

        Invocations of the same kernel queue FIFO on the single CU.
        """
        if not self.has_kernel(kernel_name):
            raise SimulationError(
                f"{self.spec.name}: kernel {kernel_name!r} not loaded "
                f"(available: {list(self.available_kernels)})"
            )
        if duration < 0:
            raise SimulationError(f"negative kernel duration {duration!r}")
        cu = self._compute_units[kernel_name]
        sim = self.sim
        done = sim.event()
        req = cu.request()
        self._exec_ids += 1
        token = self._exec_ids
        self._inflight_execs[token] = done

        def finish() -> None:
            self._inflight_execs.pop(token, None)
            if done.triggered:
                return  # aborted by a device crash mid-run
            cu.release(req)
            self.busy_seconds += duration
            self.tracer.record(
                "fpga",
                f"{self.spec.name}: {kernel_name} completed",
                kernel=kernel_name,
                duration=duration,
            )
            done.succeed(kernel_name)

        # Callback chain instead of a generator process: grant -> hold
        # the CU for ``duration`` -> release and report. Same FIFO
        # semantics, a fraction of the event traffic.
        req.callbacks.append(lambda _ev: sim.defer(duration, finish))
        return done

    def queue_length(self, kernel_name: str) -> int:
        """Waiting invocations for ``kernel_name`` (excluding the running one)."""
        cu = self._compute_units.get(kernel_name)
        return cu.queue_length if cu is not None else 0

    def __repr__(self) -> str:
        image = self._image.name if self._image else None
        return f"FPGADevice({self.spec.name}, image={image!r})"
