"""A server: one CPU cluster plus its memory and network attachment."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.cpu import CPUCluster, CPUSpec
from repro.hardware.interconnect import Link
from repro.metrics import MetricsRegistry
from repro.sim import Simulator, Tracer

__all__ = ["ServerSpec", "Server"]


@dataclass(frozen=True)
class ServerSpec:
    """Static description of a server machine."""

    cpu: CPUSpec
    memory_bytes: int

    @property
    def name(self) -> str:
        return self.cpu.name


class Server:
    """A machine with a CPU cluster and a NIC onto the shared Ethernet."""

    def __init__(
        self,
        sim: Simulator,
        spec: ServerSpec,
        nic: Optional[Link] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.sim = sim
        self.spec = spec
        self.cpu = CPUCluster(sim, spec.cpu, tracer=tracer, metrics=metrics)
        self.nic = nic

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def isa(self) -> str:
        return self.cpu.isa

    def __repr__(self) -> str:
        return f"Server({self.name}, {self.cpu!r})"
