"""Generalized processor-sharing service model.

Both CPU clusters and network links are *fair-share servers*: a pool of
service capacity divided equally among active jobs, with an optional
per-job rate cap. A 6-core CPU is capacity 6 with per-job cap 1 (a
single-threaded process cannot use more than one core); a 1 Gbps link is
capacity 125 MB/s with no per-job cap (a lone transfer gets the whole
pipe).

This model is what makes the paper's threshold arithmetic reproducible:
with N compute-bound processes on C cores, each runs at rate
``min(1, C/N)``, so the execution time of a T-second job under load N is
``T * max(1, N/C)`` — exactly the relation Xar-Trek's threshold
estimation tool (Section 3.1, step G) exploits.

Service accounting is *virtual-time* (epoch-batched): because every
active job receives the same instantaneous rate, the service each job
has accumulated is a single shared integral ``V`` (per-job service
since t=0). A job entering at ``V = v0`` with demand ``w`` finishes
exactly when ``V`` reaches ``v0 + w``, so the server keeps one float
and a min-heap of finish marks instead of rescaling every job's
residual work on every membership change. That turns the per-event
cost from O(active jobs) to O(log active jobs) — the difference
between the Figure 5 experiments (120 resident processes) crawling
and flying — without changing a single completion time.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Optional

from repro.sim import Event, SimulationError, Simulator

__all__ = ["FairShareServer", "Job"]

#: Relative tolerance for treating residual work as complete; guards
#: against floating-point dust when rescaling remaining work.
_EPSILON = 1e-9


def _completion_tolerance(now: float, rate: float, work: float) -> float:
    """Residual work below this counts as complete.

    Two guards combine: relative floating-point dust on the work
    amount, and — crucially — the *clock's* resolution: once a job's
    remaining service time falls below the ulp of the current simulated
    time, ``now + delay == now`` and the simulation could spin forever
    re-scheduling a zero-width step (e.g. the last bytes of a PCIe
    transfer at 32 GB/s when ``now`` is minutes). Anything that cannot
    advance the clock is, by definition, already finished.
    """
    work_dust = _EPSILON * max(1.0, work)
    time_dust = rate * max(1e-12, 8 * math.ulp(max(1.0, now)))
    return max(work_dust, time_dust)


@dataclass(slots=True)
class Job:
    """One unit of work in a fair-share server.

    Completion is delivered through ``done`` (an event the caller can
    yield on) *or*, when the caller only needs a notification, through
    ``on_complete`` — a plain callable invoked synchronously, skipping
    the event-queue round trip entirely. Exactly one of the two is set.
    """

    job_id: int
    work: float  # total demand, in capacity-units * seconds
    remaining: float
    done: Optional[Event]
    tag: Any = None
    start_time: float = 0.0
    finish_time: Optional[float] = None
    #: Shared-service integral at entry; served = V - entry_virtual.
    entry_virtual: float = field(default=0.0, repr=False)
    on_complete: Any = field(default=None, repr=False)
    _cancelled: bool = field(default=False, repr=False)


class FairShareServer:
    """Capacity shared equally among active jobs, each capped at ``job_cap``.

    Jobs are submitted with a total work demand; the server tracks
    remaining work analytically via the shared virtual-service integral
    and schedules a single "next completion" event, re-derived whenever
    the job set changes. This is exact (not time-stepped) processor
    sharing.
    """

    __slots__ = (
        "sim",
        "name",
        "capacity",
        "job_cap",
        "_jobs",
        "_ids",
        "_last_update",
        "_epoch",
        "_load_integral",
        "_busy_integral",
        "_virtual",
        "_finish_heap",
        "_first_submit",
        "_min_jobs",
        "_max_jobs",
        "_transitions",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity: float,
        job_cap: Optional[float] = None,
    ):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = float(capacity)
        self.job_cap = float(job_cap) if job_cap is not None else None
        self._jobs: dict[int, Job] = {}
        self._ids = itertools.count(1)
        self._last_update = sim.now
        self._epoch = 0  # invalidates stale completion callbacks
        #: cumulative (active_jobs * dt) integral, for utilization stats
        self._load_integral = 0.0
        self._busy_integral = 0.0
        #: cumulative per-job service delivered since t=0 (virtual time)
        self._virtual = 0.0
        #: (entry_virtual + work, job_id, Job) min-heap; entries for
        #: cancelled/finished jobs are skipped lazily.
        self._finish_heap: list[tuple[float, int, Job]] = []
        #: O(1) load aggregates, maintained on every job start/finish
        #: (submit / completion / cancel) so schedulers and metrics can
        #: read load statistics without walking the active set.
        self._first_submit: Optional[float] = None
        self._min_jobs: Optional[int] = None
        self._max_jobs: Optional[int] = None
        self._transitions = 0

    # -- queries ---------------------------------------------------------
    @property
    def active_jobs(self) -> int:
        """Number of jobs currently in service (the paper's "load")."""
        return len(self._jobs)

    def rate_per_job(self, n: Optional[int] = None) -> float:
        """Service rate each job receives when ``n`` jobs are active."""
        n = len(self._jobs) if n is None else n
        if n == 0:
            return 0.0
        share = self.capacity / n
        if self.job_cap is not None and share > self.job_cap:
            share = self.job_cap
        return share

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of capacity in use since time ``since``."""
        self._advance()
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / (elapsed * self.capacity)

    def mean_load(self, since: float = 0.0) -> float:
        """Time-averaged number of active jobs since time ``since``."""
        self._advance()
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return self._load_integral / elapsed

    def load_snapshot(self) -> dict[str, float]:
        """A gauge-shaped view of the load timeline, in O(1).

        Equivalent to push-sampling a gauge with ``active_jobs`` on
        every job start/finish — value, extrema, and the exact
        time-weighted mean over [first submit, now] — but derived from
        the running aggregates, so nothing is recomputed per scheduler
        decision or metrics export. Suitable for
        :meth:`repro.metrics.Gauge.bind_sampler`.
        """
        self._advance()
        n = len(self._jobs)
        if self._first_submit is None:
            return {
                "value": 0.0,
                "min": 0.0,
                "max": 0.0,
                "time_weighted_mean": 0.0,
                "updates": 0,
            }
        elapsed = self.sim.now - self._first_submit
        mean = self._load_integral / elapsed if elapsed > 0 else float(n)
        return {
            "value": float(n),
            "min": float(self._min_jobs),
            "max": float(self._max_jobs),
            "time_weighted_mean": mean,
            "updates": self._transitions,
        }

    def _record_transition(self) -> None:
        """Fold the post-change load into the O(1) aggregates."""
        n = len(self._jobs)
        if self._first_submit is None:
            self._first_submit = self.sim.now
        if self._min_jobs is None or n < self._min_jobs:
            self._min_jobs = n
        if self._max_jobs is None or n > self._max_jobs:
            self._max_jobs = n
        self._transitions += 1

    # -- capacity changes --------------------------------------------------
    def set_capacity(self, capacity: float) -> None:
        """Change the service capacity from *now* on (link degradation,
        core offlining). Exact under the virtual-time model: service
        already delivered was folded into the shared integral at the old
        rate by :meth:`_advance`; the next completion is re-derived at
        the new per-job rate. A no-op when the capacity is unchanged.
        """
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        if capacity == self.capacity:
            return
        self._advance()
        self.capacity = float(capacity)
        self._reschedule()

    # -- job lifecycle -----------------------------------------------------
    def submit(self, work: float, tag: Any = None, on_complete=None) -> Job:
        """Enter a job with total demand ``work``; returns its handle.

        The job's ``done`` event triggers (with the job as value) when
        the demand has been served — unless ``on_complete`` is given, in
        which case that callable is invoked with the job instead and no
        ``done`` event is allocated (the cheap path for callers that
        chain callbacks rather than block a process).
        """
        if work < 0:
            raise SimulationError(f"negative work {work!r}")
        # Inlined _advance/_record_transition/_reschedule (profile-hot:
        # one submit per job the simulation ever runs; the method-call
        # fan-out costs more than the arithmetic it performs).
        sim = self.sim
        now = sim.now
        jobs = self._jobs
        n = len(jobs)
        dt = now - self._last_update
        if dt != 0.0:
            if dt > 0.0 and n:
                capacity = self.capacity
                rate = capacity / n
                cap = self.job_cap
                if cap is not None and rate > cap:
                    rate = cap
                self._virtual += rate * dt
                self._load_integral += n * dt
                busy = rate * n
                self._busy_integral += (
                    capacity if busy > capacity else busy
                ) * dt
            self._last_update = now
        job = Job(
            job_id=next(self._ids),
            work=float(work),
            remaining=float(work),
            done=None if on_complete is not None else self.sim.event(),
            tag=tag,
            start_time=now,
            entry_virtual=self._virtual,
            on_complete=on_complete,
        )
        if work == 0:
            job.finish_time = now
            self._record_transition()
            if on_complete is not None:
                on_complete(job)
            else:
                job.done.succeed(job)
            return job
        jobs[job.job_id] = job
        n += 1
        heappush(self._finish_heap, (job.entry_virtual + job.work, job.job_id, job))
        # _record_transition, inline
        if self._first_submit is None:
            self._first_submit = now
        if self._min_jobs is None or n < self._min_jobs:
            self._min_jobs = n
        if self._max_jobs is None or n > self._max_jobs:
            self._max_jobs = n
        self._transitions += 1
        # _reschedule, inline (the new job may or may not be the head)
        self._epoch += 1
        head = self._next_finish()
        if head is not None:
            capacity = self.capacity
            rate = capacity / n
            cap = self.job_cap
            if cap is not None and rate > cap:
                rate = cap
            if rate > 0:
                shortest = head.entry_virtual + head.work - self._virtual
                if shortest < 0.0:
                    shortest = 0.0
                sim.defer(shortest / rate, self._on_completion, self._epoch)
        return job

    def cancel(self, job: Job) -> None:
        """Remove a job before completion; its ``done`` event never fires."""
        self._advance()
        if self._jobs.pop(job.job_id, None) is not None:
            job._cancelled = True
            job.remaining = max(0.0, job.entry_virtual + job.work - self._virtual)
            self._record_transition()
            self._reschedule()

    def remaining_work(self, job: Job) -> float:
        self._advance()
        if job.job_id not in self._jobs:
            return 0.0
        return max(0.0, job.entry_virtual + job.work - self._virtual)

    # -- internals -----------------------------------------------------------
    def _advance(self) -> None:
        """Account for service delivered since the last state change.

        O(1): every active job receives the same rate, so the service
        delivered is folded into the shared ``_virtual`` integral
        instead of being written back to each job.
        """
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0.0:
            n = len(self._jobs)
            if n:
                rate = self.rate_per_job(n)
                self._virtual += rate * dt
                self._load_integral += n * dt
                busy = rate * n
                if busy > self.capacity:
                    busy = self.capacity
                self._busy_integral += busy * dt
            self._last_update = now
        elif dt != 0.0:
            self._last_update = now

    def _next_finish(self) -> Optional[Job]:
        """The live job with the smallest finish mark (lazy heap cleanup)."""
        heap = self._finish_heap
        jobs = self._jobs
        while heap:
            _mark, job_id, job = heap[0]
            if job_id in jobs:
                return job
            heappop(heap)
        return None

    def _reschedule(self) -> None:
        """Re-derive the next completion after any job-set change."""
        self._last_update = self.sim.now
        self._epoch += 1
        head = self._next_finish()
        if head is None:
            return
        rate = self.rate_per_job()
        if rate <= 0:
            return
        shortest = max(0.0, head.entry_virtual + head.work - self._virtual)
        # defer() recycles the scheduled record and takes the epoch as a
        # plain argument — no per-reschedule closure or event allocation
        # on what profiling shows is the single hottest call site.
        self.sim.defer(shortest / rate, self._on_completion, self._epoch)

    def _on_completion(self, epoch: int) -> None:
        if epoch != self._epoch:
            return  # job set changed since this was scheduled
        # Fully inlined _advance / rate / _record_transition /
        # _reschedule (profile-hot: one call per completion event; the
        # helper fan-out used to dominate the arithmetic).
        sim = self.sim
        now = sim.now
        jobs = self._jobs
        n = len(jobs)
        capacity = self.capacity
        cap = self.job_cap
        rate = 0.0
        if n:
            rate = capacity / n
            if cap is not None and rate > cap:
                rate = cap
        dt = now - self._last_update
        if dt != 0.0:
            if dt > 0.0 and n:
                self._virtual += rate * dt
                self._load_integral += n * dt
                busy = rate * n
                self._busy_integral += (
                    capacity if busy > capacity else busy
                ) * dt
            self._last_update = now
        finished: list[Job] = []
        # Inlined head-draining loop. The completion tolerance's
        # time-dust term depends only on (now, rate), both
        # loop-invariant, so it is hoisted; the per-job work-dust term
        # stays inside. Bit-for-bit the same arithmetic as
        # _completion_tolerance.
        heap = self._finish_heap
        virtual = self._virtual
        time_dust = rate * max(1e-12, 8 * math.ulp(now if now > 1.0 else 1.0))
        while heap:
            _mark, job_id, head = heap[0]
            if job_id not in jobs:
                heappop(heap)  # cancelled/finished: lazy cleanup
                continue
            work = head.work
            work_dust = _EPSILON * (work if work > 1.0 else 1.0)
            if head.entry_virtual + work - virtual > (
                work_dust if work_dust > time_dust else time_dust
            ):
                break
            heappop(heap)
            del jobs[job_id]
            finished.append(head)
        if not finished and jobs:
            # Pure floating-point drift: the event fired for the
            # shortest job, so force it out rather than risk a
            # zero-width reschedule loop.
            head = self._next_finish()
            heappop(heap)
            del jobs[head.job_id]
            finished.append(head)
        for job in finished:
            job.remaining = 0.0
            job.finish_time = now
        n = len(jobs)
        if finished:
            # _record_transition, inline
            if self._first_submit is None:
                self._first_submit = now
            if self._min_jobs is None or n < self._min_jobs:
                self._min_jobs = n
            if self._max_jobs is None or n > self._max_jobs:
                self._max_jobs = n
            self._transitions += 1
        # _reschedule, inline
        self._last_update = now
        self._epoch += 1
        head = self._next_finish()
        if head is not None and n:
            rate = capacity / n
            if cap is not None and rate > cap:
                rate = cap
            if rate > 0:
                shortest = head.entry_virtual + head.work - self._virtual
                if shortest < 0.0:
                    shortest = 0.0
                sim.defer(shortest / rate, self._on_completion, self._epoch)
        for job in finished:
            if job.on_complete is not None:
                job.on_complete(job)
            else:
                job.done.succeed(job)
