"""Generalized processor-sharing service model.

Both CPU clusters and network links are *fair-share servers*: a pool of
service capacity divided equally among active jobs, with an optional
per-job rate cap. A 6-core CPU is capacity 6 with per-job cap 1 (a
single-threaded process cannot use more than one core); a 1 Gbps link is
capacity 125 MB/s with no per-job cap (a lone transfer gets the whole
pipe).

This model is what makes the paper's threshold arithmetic reproducible:
with N compute-bound processes on C cores, each runs at rate
``min(1, C/N)``, so the execution time of a T-second job under load N is
``T * max(1, N/C)`` — exactly the relation Xar-Trek's threshold
estimation tool (Section 3.1, step G) exploits.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim import Event, SimulationError, Simulator

__all__ = ["FairShareServer", "Job"]

#: Relative tolerance for treating residual work as complete; guards
#: against floating-point dust when rescaling remaining work.
_EPSILON = 1e-9


def _completion_tolerance(now: float, rate: float, work: float) -> float:
    """Residual work below this counts as complete.

    Two guards combine: relative floating-point dust on the work
    amount, and — crucially — the *clock's* resolution: once a job's
    remaining service time falls below the ulp of the current simulated
    time, ``now + delay == now`` and the simulation could spin forever
    re-scheduling a zero-width step (e.g. the last bytes of a PCIe
    transfer at 32 GB/s when ``now`` is minutes). Anything that cannot
    advance the clock is, by definition, already finished.
    """
    work_dust = _EPSILON * max(1.0, work)
    time_dust = rate * max(1e-12, 8 * math.ulp(max(1.0, now)))
    return max(work_dust, time_dust)


@dataclass
class Job:
    """One unit of work in a fair-share server."""

    job_id: int
    work: float  # total demand, in capacity-units * seconds
    remaining: float
    done: Event
    tag: Any = None
    start_time: float = 0.0
    finish_time: Optional[float] = None
    _cancelled: bool = field(default=False, repr=False)


class FairShareServer:
    """Capacity shared equally among active jobs, each capped at ``job_cap``.

    Jobs are submitted with a total work demand; the server tracks
    remaining work analytically and schedules a single "next completion"
    event, re-derived whenever the job set changes. This is exact (not
    time-stepped) processor sharing.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity: float,
        job_cap: Optional[float] = None,
    ):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = float(capacity)
        self.job_cap = float(job_cap) if job_cap is not None else None
        self._jobs: dict[int, Job] = {}
        self._ids = itertools.count(1)
        self._last_update = sim.now
        self._epoch = 0  # invalidates stale completion callbacks
        #: cumulative (active_jobs * dt) integral, for utilization stats
        self._load_integral = 0.0
        self._busy_integral = 0.0

    # -- queries ---------------------------------------------------------
    @property
    def active_jobs(self) -> int:
        """Number of jobs currently in service (the paper's "load")."""
        return len(self._jobs)

    def rate_per_job(self, n: Optional[int] = None) -> float:
        """Service rate each job receives when ``n`` jobs are active."""
        n = self.active_jobs if n is None else n
        if n == 0:
            return 0.0
        share = self.capacity / n
        if self.job_cap is not None:
            share = min(share, self.job_cap)
        return share

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of capacity in use since time ``since``."""
        self._advance()
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / (elapsed * self.capacity)

    def mean_load(self, since: float = 0.0) -> float:
        """Time-averaged number of active jobs since time ``since``."""
        self._advance()
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return self._load_integral / elapsed

    # -- job lifecycle -----------------------------------------------------
    def submit(self, work: float, tag: Any = None) -> Job:
        """Enter a job with total demand ``work``; returns its handle.

        The job's ``done`` event triggers (with the job as value) when
        the demand has been served.
        """
        if work < 0:
            raise SimulationError(f"negative work {work!r}")
        self._advance()
        job = Job(
            job_id=next(self._ids),
            work=float(work),
            remaining=float(work),
            done=self.sim.event(),
            tag=tag,
            start_time=self.sim.now,
        )
        if work == 0:
            job.finish_time = self.sim.now
            job.done.succeed(job)
            return job
        self._jobs[job.job_id] = job
        self._reschedule()
        return job

    def cancel(self, job: Job) -> None:
        """Remove a job before completion; its ``done`` event never fires."""
        self._advance()
        if self._jobs.pop(job.job_id, None) is not None:
            job._cancelled = True
            self._reschedule()

    def remaining_work(self, job: Job) -> float:
        self._advance()
        return job.remaining if job.job_id in self._jobs else 0.0

    # -- internals -----------------------------------------------------------
    def _advance(self) -> None:
        """Account for service delivered since the last state change."""
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0 and self._jobs:
            rate = self.rate_per_job()
            n = len(self._jobs)
            self._load_integral += n * dt
            self._busy_integral += min(self.capacity, rate * n) * dt
            for job in self._jobs.values():
                job.remaining = max(0.0, job.remaining - rate * dt)
        self._last_update = now

    def _reschedule(self) -> None:
        """Re-derive the next completion after any job-set change."""
        self._last_update = self.sim.now
        self._epoch += 1
        if not self._jobs:
            return
        rate = self.rate_per_job()
        shortest = min(job.remaining for job in self._jobs.values())
        delay = shortest / rate if rate > 0 else math.inf
        if math.isinf(delay):
            return
        epoch = self._epoch
        self.sim.call_in(delay, lambda: self._on_completion(epoch))

    def _on_completion(self, epoch: int) -> None:
        if epoch != self._epoch:
            return  # job set changed since this was scheduled
        self._advance()
        rate = self.rate_per_job()
        finished = [
            job
            for job in self._jobs.values()
            if job.remaining <= _completion_tolerance(self.sim.now, rate, job.work)
        ]
        if not finished and self._jobs:
            # Pure floating-point drift: the event fired for the
            # shortest job, so force it out rather than risk a
            # zero-width reschedule loop.
            finished = [min(self._jobs.values(), key=lambda j: j.remaining)]
        for job in finished:
            del self._jobs[job.job_id]
            job.remaining = 0.0
            job.finish_time = self.sim.now
        self._reschedule()
        for job in finished:
            job.done.succeed(job)
