"""Hardware substrate models: CPUs, FPGA, interconnects, platform."""

from repro.hardware.cpu import CPUCluster, CPUSpec
from repro.hardware.fpga import ALVEO_U50, ConfigImage, FPGADevice, FPGAResources, FPGASpec
from repro.hardware.interconnect import ETHERNET_1GBPS, PCIE_GEN3_X16, Link, LinkSpec
from repro.hardware.platform import (
    THUNDERX,
    XEON_BRONZE_3104,
    HeterogeneousPlatform,
    paper_testbed,
)
from repro.hardware.power import DevicePower, EnergyMeter, EnergyReport, PowerModel
from repro.hardware.server import Server, ServerSpec
from repro.hardware.sharing import FairShareServer, Job

__all__ = [
    "ALVEO_U50",
    "CPUCluster",
    "CPUSpec",
    "ConfigImage",
    "DevicePower",
    "ETHERNET_1GBPS",
    "EnergyMeter",
    "EnergyReport",
    "PowerModel",
    "FPGADevice",
    "FPGAResources",
    "FPGASpec",
    "FairShareServer",
    "HeterogeneousPlatform",
    "Job",
    "Link",
    "LinkSpec",
    "PCIE_GEN3_X16",
    "Server",
    "ServerSpec",
    "THUNDERX",
    "XEON_BRONZE_3104",
    "paper_testbed",
]
