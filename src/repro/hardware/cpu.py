"""CPU cluster model.

A :class:`CPUCluster` is a multi-core, processor-sharing compute server.
Work is expressed in *dedicated-core seconds on this cluster*; callers
that want cross-ISA comparisons scale the demand by the workload's
per-ISA performance profile before submitting (see
:mod:`repro.workloads.perfmodel`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.hardware.sharing import FairShareServer, Job
from repro.metrics import MetricsRegistry
from repro.sim import Event, Simulator, Tracer

__all__ = ["CPUSpec", "CPUCluster"]


@dataclass(frozen=True)
class CPUSpec:
    """Static description of a CPU cluster."""

    name: str
    isa: str  # "x86_64" or "aarch64"
    cores: int
    freq_ghz: float
    #: Per-core relative throughput vs. the reference x86 core; used only
    #: as a default when a workload has no measured per-ISA profile.
    relative_core_perf: float = 1.0

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.freq_ghz <= 0:
            raise ValueError(f"freq_ghz must be positive, got {self.freq_ghz}")
        if self.isa not in ("x86_64", "aarch64", "riscv64"):
            raise ValueError(f"unknown ISA {self.isa!r}")


class CPUCluster:
    """A processor-sharing multi-core CPU.

    ``load`` is the number of active compute jobs — the same metric the
    paper's scheduler samples ("x86 CPU load" in Algorithms 1/2 and the
    process-count-based definition of Table 3).
    """

    def __init__(
        self,
        sim: Simulator,
        spec: CPUSpec,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.sim = sim
        self.spec = spec
        self.tracer = tracer or Tracer(enabled=False)
        self._server = FairShareServer(sim, spec.name, capacity=spec.cores, job_cap=1.0)
        self._load_gauge = None
        if metrics is not None:
            # The scheduler's primary input. Pull-sampled: the fair-share
            # server already maintains the load timeline's aggregates
            # incrementally (O(1) per job start/finish), so the gauge
            # reads them at snapshot time instead of push-sampling on
            # every transition — the exported series is identical, the
            # per-job instrumentation cost is gone.
            self._load_gauge = metrics.gauge(
                "cpu_load",
                "active compute jobs per CPU cluster",
                labelnames=("cluster",),
            ).labels(cluster=spec.name)
            self._load_gauge.bind_sampler(self._server.load_snapshot)

    # -- load metrics -------------------------------------------------------
    @property
    def load(self) -> int:
        """Current number of active compute jobs on this cluster."""
        return self._server.active_jobs

    @property
    def cores(self) -> int:
        return self.spec.cores

    @property
    def isa(self) -> str:
        return self.spec.isa

    def utilization(self, since: float = 0.0) -> float:
        return self._server.utilization(since)

    def load_snapshot(self) -> dict[str, float]:
        """O(1) gauge-shaped load aggregates (see FairShareServer)."""
        return self._server.load_snapshot()

    def mean_load(self, since: float = 0.0) -> float:
        return self._server.mean_load(since)

    def busy_core_seconds(self) -> float:
        """Cumulative core-busy seconds served since t=0.

        Differencing this across a window gives the CPU work executed
        *during* that window — how reconfiguration-overlap accounting
        measures the latency Algorithm 2 hides behind CPU execution.
        """
        return self._server.utilization(0.0) * self.sim.now * self._server.capacity

    # -- execution --------------------------------------------------------
    def execute(self, core_seconds: float, tag: Any = None) -> Event:
        """Run ``core_seconds`` of single-threaded work; returns done event."""
        job = self.execute_job(core_seconds, tag=tag)
        if self.tracer.enabled:
            self.tracer.record(
                "cpu",
                f"{self.spec.name}: job {job.job_id} submitted",
                cluster=self.spec.name,
                work=core_seconds,
                load=self.load,
                tag=tag,
            )
        return job.done

    def execute_job(self, core_seconds: float, tag: Any = None, on_complete=None) -> Job:
        """Like :meth:`execute` but returns the cancellable job handle.

        ``on_complete`` forwards to :meth:`FairShareServer.submit`: the
        callable is invoked with the job at completion and no ``done``
        event is allocated. Load metrics need no per-job hooks here —
        the server's own aggregates feed the pull-sampled gauge.
        """
        return self._server.submit(core_seconds, tag=tag, on_complete=on_complete)

    def cancel(self, job: Job) -> None:
        self._server.cancel(job)

    def predicted_time(self, core_seconds: float, extra_jobs: int = 0) -> float:
        """Time to finish ``core_seconds`` if the load stayed constant.

        ``extra_jobs`` lets callers ask "what if N more jobs arrive?" —
        used by threshold estimation.
        """
        n = self._server.active_jobs + extra_jobs + 1  # +1 for the new job
        rate = self._server.rate_per_job(n)
        return core_seconds / rate if rate > 0 else float("inf")

    def __repr__(self) -> str:
        return (
            f"CPUCluster({self.spec.name}: {self.spec.cores}x{self.spec.isa}"
            f"@{self.spec.freq_ghz}GHz, load={self.load})"
        )
