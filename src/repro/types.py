"""Shared core types.

:class:`Target` mirrors the paper's migration-flag encoding
(Section 3.2): 0 = x86 (do not migrate), 1 = ARM (software migration via
Popcorn), 2 = FPGA (hardware migration via XRT).
"""

from __future__ import annotations

import enum

__all__ = ["Target"]


class Target(enum.IntEnum):
    """Where a selected function executes."""

    X86 = 0
    ARM = 1
    FPGA = 2

    @property
    def isa(self) -> str:
        """The ISA string for CPU targets; raises for FPGA."""
        if self is Target.X86:
            return "x86_64"
        if self is Target.ARM:
            return "aarch64"
        raise ValueError("FPGA target has no CPU ISA")

    def __str__(self) -> str:
        return self.name.lower()
