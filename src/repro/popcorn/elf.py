"""XELF: an on-disk container for multi-ISA binaries.

Popcorn's artifacts are ELF executables with extra sections: one
machine-code image per ISA, a cross-ISA-aligned symbol table, and the
``.popcorn.metadata`` liveness records the run-time transformer reads.
This module implements a compact, versioned binary container with the
same information content — a real byte format with a writer and a
strict parser (every truncation/corruption path raises
:class:`XELFError`), so artifacts can be written to disk, shipped, and
reloaded without the Python object graph.

Layout (little-endian)::

    magic "XARB" | u16 version | header
    application name, base address
    ISA table        (name, text/data/metadata sizes)
    symbol table     (name, kind, align, per-ISA sizes)
    migration points (id, function, offset, live vars with per-ISA
                      register/stack locations)
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO

from repro.popcorn.binary import ISAImage, MultiISABinary, Symbol, SymbolKind
from repro.popcorn.migration_points import (
    CType,
    LivenessMetadata,
    LiveVar,
    MigrationPoint,
    RegisterLoc,
    StackLoc,
)

__all__ = ["XELFError", "write_xelf", "read_xelf", "dump_xelf", "load_xelf"]

_MAGIC = b"XARB"
_VERSION = 1

_KIND_CODES = {SymbolKind.FUNCTION: 1, SymbolKind.OBJECT: 2, SymbolKind.TLS: 3}
_KIND_NAMES = {code: kind for kind, code in _KIND_CODES.items()}
_CTYPE_CODES = {c: i + 1 for i, c in enumerate(CType.ALL)}
_CTYPE_NAMES = {code: c for c, code in _CTYPE_CODES.items()}
_LOC_REGISTER = 1
_LOC_STACK = 2


class XELFError(Exception):
    """Raised for malformed or truncated XELF data."""


# -- primitive encoders ----------------------------------------------------------
def _write_str(out: BinaryIO, text: str) -> None:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise XELFError(f"string too long ({len(raw)} bytes)")
    out.write(struct.pack("<H", len(raw)))
    out.write(raw)


def _read_exact(stream: BinaryIO, n: int) -> bytes:
    data = stream.read(n)
    if len(data) != n:
        raise XELFError(f"truncated: wanted {n} bytes, got {len(data)}")
    return data


def _read_str(stream: BinaryIO) -> str:
    (length,) = struct.unpack("<H", _read_exact(stream, 2))
    return _read_exact(stream, length).decode("utf-8")


def _unpack(stream: BinaryIO, fmt: str):
    return struct.unpack(fmt, _read_exact(stream, struct.calcsize(fmt)))


# -- writing --------------------------------------------------------------------
def write_xelf(
    binary: MultiISABinary, metadata: LivenessMetadata | None = None
) -> bytes:
    """Serialize a multi-ISA binary (and optionally its metadata)."""
    out = io.BytesIO()
    isas = list(binary.isas)
    points = sorted(metadata.points.values(), key=lambda p: p.point_id) if metadata else []

    out.write(_MAGIC)
    out.write(
        struct.pack(
            "<HHHIQ",
            _VERSION,
            len(isas),
            len(binary.symbols),
            len(points),
            0x400000 if not binary.symbols else min(binary.addresses.values()),
        )
    )
    _write_str(out, binary.name)

    for isa in isas:
        image = binary.images[isa]
        _write_str(out, isa)
        out.write(
            struct.pack(
                "<QQQ", image.text_bytes, image.data_bytes, image.metadata_bytes
            )
        )

    isa_index = {isa: i for i, isa in enumerate(isas)}
    for sym in binary.symbols:
        _write_str(out, sym.name)
        out.write(struct.pack("<BHH", _KIND_CODES[sym.kind], sym.align, len(sym.sizes)))
        for isa, size in sorted(sym.sizes.items()):
            if isa not in isa_index:
                raise XELFError(f"symbol {sym.name!r} sized for unknown ISA {isa!r}")
            out.write(struct.pack("<HQ", isa_index[isa], size))

    for point in points:
        out.write(struct.pack("<II", point.point_id, point.offset))
        _write_str(out, point.function)
        out.write(struct.pack("<H", len(point.live_vars)))
        for var in point.live_vars:
            _write_str(out, var.name)
            out.write(struct.pack("<BH", _CTYPE_CODES[var.ctype], len(var.locations)))
            for isa, loc in sorted(var.locations.items()):
                _write_str(out, isa)
                if isinstance(loc, RegisterLoc):
                    out.write(struct.pack("<B", _LOC_REGISTER))
                    _write_str(out, loc.register)
                elif isinstance(loc, StackLoc):
                    out.write(struct.pack("<BI", _LOC_STACK, loc.offset))
                else:  # pragma: no cover - closed hierarchy
                    raise XELFError(f"unknown location {loc!r}")
    return out.getvalue()


# -- reading --------------------------------------------------------------------
def read_xelf(data: bytes) -> tuple[MultiISABinary, LivenessMetadata]:
    """Parse XELF bytes back into the binary + liveness metadata."""
    stream = io.BytesIO(data)
    if _read_exact(stream, 4) != _MAGIC:
        raise XELFError("bad magic: not an XELF container")
    version, n_isas, n_symbols, n_points, base_address = _unpack(stream, "<HHHIQ")
    if version != _VERSION:
        raise XELFError(f"unsupported XELF version {version}")
    if n_isas == 0:
        raise XELFError("container declares zero ISAs")
    name = _read_str(stream)

    isas: list[str] = []
    images: dict[str, ISAImage] = {}
    for _ in range(n_isas):
        isa = _read_str(stream)
        text, data_bytes, metadata_bytes = _unpack(stream, "<QQQ")
        if isa in images:
            raise XELFError(f"duplicate ISA {isa!r}")
        isas.append(isa)
        images[isa] = ISAImage(isa, text, data_bytes, metadata_bytes)

    symbols: list[Symbol] = []
    for _ in range(n_symbols):
        sym_name = _read_str(stream)
        kind_code, align, n_sizes = _unpack(stream, "<BHH")
        if kind_code not in _KIND_NAMES:
            raise XELFError(f"symbol {sym_name!r}: unknown kind code {kind_code}")
        sizes: dict[str, int] = {}
        for _ in range(n_sizes):
            isa_idx, size = _unpack(stream, "<HQ")
            if isa_idx >= len(isas):
                raise XELFError(f"symbol {sym_name!r}: ISA index {isa_idx} out of range")
            sizes[isas[isa_idx]] = size
        symbols.append(Symbol(sym_name, _KIND_NAMES[kind_code], sizes, align=align))

    points: list[MigrationPoint] = []
    for _ in range(n_points):
        point_id, offset = _unpack(stream, "<II")
        function = _read_str(stream)
        (n_vars,) = _unpack(stream, "<H")
        live_vars = []
        for _ in range(n_vars):
            var_name = _read_str(stream)
            ctype_code, n_locs = _unpack(stream, "<BH")
            if ctype_code not in _CTYPE_NAMES:
                raise XELFError(f"var {var_name!r}: unknown ctype code {ctype_code}")
            locations = {}
            for _ in range(n_locs):
                isa = _read_str(stream)
                (loc_kind,) = _unpack(stream, "<B")
                if loc_kind == _LOC_REGISTER:
                    locations[isa] = RegisterLoc(_read_str(stream))
                elif loc_kind == _LOC_STACK:
                    (stack_offset,) = _unpack(stream, "<I")
                    locations[isa] = StackLoc(stack_offset)
                else:
                    raise XELFError(f"var {var_name!r}: unknown location kind {loc_kind}")
            live_vars.append(LiveVar(var_name, _CTYPE_NAMES[ctype_code], locations))
        points.append(
            MigrationPoint(
                point_id=point_id,
                function=function,
                offset=offset,
                live_vars=tuple(live_vars),
            )
        )

    trailing = stream.read(1)
    if trailing:
        raise XELFError("trailing bytes after XELF payload")

    binary = MultiISABinary(
        name, images=images, symbols=symbols, base_address=base_address
    )
    return binary, LivenessMetadata(points)


# -- file helpers ----------------------------------------------------------------
def dump_xelf(
    path, binary: MultiISABinary, metadata: LivenessMetadata | None = None
) -> int:
    """Write an XELF file; returns the byte count."""
    payload = write_xelf(binary, metadata)
    with open(path, "wb") as handle:
        handle.write(payload)
    return len(payload)


def load_xelf(path) -> tuple[MultiISABinary, LivenessMetadata]:
    """Read an XELF file."""
    with open(path, "rb") as handle:
        return read_xelf(handle.read())
