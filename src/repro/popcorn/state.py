"""Run-time program state and the cross-ISA state transformation.

The transformer is *executable*, not just a cost model: a
:class:`MachineState` carries raw 8-byte register and stack-slot values,
and :class:`StateTransformer` re-locates every live variable from its
source-ISA location to its destination-ISA location using the liveness
metadata — the same job Popcorn Linux's run-time performs when a thread
hops ISAs. Round-tripping x86-64 -> aarch64 -> x86-64 must reproduce the
original state bit-for-bit (a property test enforces this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.popcorn.abi import isa_def
from repro.popcorn.migration_points import (
    CType,
    LivenessMetadata,
    MetadataError,
    MigrationPoint,
    RegisterLoc,
    StackLoc,
)

__all__ = ["Frame", "MachineState", "StateTransformer", "TransformError", "STACK_TOP"]

#: Top of the (downward-growing) user stack; the same virtual address on
#: every ISA, per Popcorn's aligned address-space layout.
STACK_TOP = 0x7FFF_FFFF_0000


class TransformError(Exception):
    """Raised when a state cannot be transformed (bad metadata, wrong ISA)."""


@dataclass
class Frame:
    """One activation record, halted at a migration point.

    ``registers`` holds raw 8-byte values for the registers carrying
    live variables of this frame; ``stack`` maps frame-base-relative
    offsets to raw 8-byte slot values.
    """

    function: str
    point_id: int
    registers: dict[str, bytes] = field(default_factory=dict)
    stack: dict[int, bytes] = field(default_factory=dict)
    return_address: int = 0

    def copy(self) -> "Frame":
        return Frame(
            function=self.function,
            point_id=self.point_id,
            registers=dict(self.registers),
            stack=dict(self.stack),
            return_address=self.return_address,
        )

    def size_bytes(self) -> int:
        """Bytes of live state in this frame (registers + spilled slots)."""
        return 8 * (len(self.registers) + len(self.stack)) + 8  # + return addr


@dataclass
class MachineState:
    """A halted thread: a call stack of frames plus the stack pointer.

    ``frames[0]`` is the outermost frame (``main``); ``frames[-1]`` is
    the active one.
    """

    isa: str
    frames: list[Frame]
    stack_pointer: int = STACK_TOP

    @property
    def depth(self) -> int:
        return len(self.frames)

    @property
    def active_frame(self) -> Frame:
        if not self.frames:
            raise TransformError("state has no frames")
        return self.frames[-1]

    def size_bytes(self) -> int:
        """Total bytes of transformable state (what migration must move)."""
        return sum(frame.size_bytes() for frame in self.frames) + 64

    def live_value_count(self) -> int:
        return sum(len(f.registers) + len(f.stack) for f in self.frames)

    def copy(self) -> "MachineState":
        return MachineState(
            isa=self.isa,
            frames=[frame.copy() for frame in self.frames],
            stack_pointer=self.stack_pointer,
        )


class StateTransformer:
    """Re-encodes a :class:`MachineState` from one ISA's layout to another's."""

    #: Cost-model constants, calibrated to Popcorn Linux's reported
    #: state-transformation latencies (tens of microseconds for shallow
    #: stacks): fixed per-migration work plus per-frame and per-value terms.
    BASE_COST_S = 20e-6
    PER_FRAME_COST_S = 5e-6
    PER_VALUE_COST_S = 0.2e-6

    def __init__(self, metadata: LivenessMetadata):
        self.metadata = metadata

    # -- value plumbing ------------------------------------------------------
    def read_live_values(self, frame: Frame, isa: str) -> dict[str, Any]:
        """Decode ``{var_name: python_value}`` from a frame's raw slots."""
        point = self.metadata.point(frame.point_id)
        if point.function != frame.function:
            raise TransformError(
                f"frame is in {frame.function!r} but point {frame.point_id} "
                f"belongs to {point.function!r}"
            )
        values: dict[str, Any] = {}
        for var in point.live_vars:
            loc = var.location(isa)
            if isinstance(loc, RegisterLoc):
                try:
                    raw = frame.registers[loc.register]
                except KeyError:
                    raise TransformError(
                        f"{frame.function}: live var {var.name!r} expected in "
                        f"register {loc.register!r} but it is absent"
                    ) from None
            elif isinstance(loc, StackLoc):
                try:
                    raw = frame.stack[loc.offset]
                except KeyError:
                    raise TransformError(
                        f"{frame.function}: live var {var.name!r} expected at "
                        f"stack offset {loc.offset} but the slot is absent"
                    ) from None
            else:  # pragma: no cover - Location is a closed hierarchy
                raise TransformError(f"unknown location {loc!r}")
            values[var.name] = CType.unpack(var.ctype, raw)
        return values

    def build_frame(
        self,
        function: str,
        point: MigrationPoint,
        values: dict[str, Any],
        isa: str,
        return_address: int = 0,
    ) -> Frame:
        """Encode python values into a frame laid out for ``isa``."""
        abi = isa_def(isa)  # validates the ISA name
        frame = Frame(
            function=function, point_id=point.point_id, return_address=return_address
        )
        for var in point.live_vars:
            if var.name not in values:
                raise TransformError(
                    f"{function}: missing value for live var {var.name!r}"
                )
            raw = CType.pack(var.ctype, values[var.name])
            loc = var.location(isa)
            if isinstance(loc, RegisterLoc):
                if loc.register not in abi.all_registers:
                    raise TransformError(
                        f"{var.name!r} mapped to {loc.register!r}, which is not "
                        f"an {isa} register"
                    )
                frame.registers[loc.register] = raw
            else:
                assert isinstance(loc, StackLoc)
                frame.stack[loc.offset] = raw
        return frame

    # -- the transformation ---------------------------------------------------
    def transform(self, state: MachineState, to_isa: str) -> MachineState:
        """Produce the equivalent state in ``to_isa``'s layout.

        The source state is not mutated. Transforming to the current ISA
        returns a copy (useful for snapshotting).
        """
        isa_def(state.isa)
        isa_def(to_isa)
        if to_isa == state.isa:
            return state.copy()
        new_frames = []
        for frame in state.frames:
            point = self.metadata.point(frame.point_id)
            values = self.read_live_values(frame, state.isa)
            new_frames.append(
                self.build_frame(
                    frame.function,
                    point,
                    values,
                    to_isa,
                    return_address=frame.return_address,
                )
            )
        # The destination stack grows from the same aligned top; frame
        # footprints differ per ISA, so recompute the stack pointer.
        abi = isa_def(to_isa)
        top = STACK_TOP
        used = sum(
            self.metadata.point(f.point_id).frame_bytes(to_isa) + 16
            for f in new_frames
        )
        sp = (top - used) & ~(abi.stack_align - 1)
        return MachineState(isa=to_isa, frames=new_frames, stack_pointer=sp)

    def transform_cost_seconds(self, state: MachineState) -> float:
        """CPU time the transformation itself consumes."""
        return (
            self.BASE_COST_S
            + self.PER_FRAME_COST_S * state.depth
            + self.PER_VALUE_COST_S * state.live_value_count()
        )

    def states_equivalent(self, a: MachineState, b: MachineState) -> bool:
        """True if two states carry identical live values (any ISA pair)."""
        if a.depth != b.depth:
            return False
        for frame_a, frame_b in zip(a.frames, b.frames):
            if (frame_a.function, frame_a.point_id) != (
                frame_b.function,
                frame_b.point_id,
            ):
                return False
            try:
                values_a = self.read_live_values(frame_a, a.isa)
                values_b = self.read_live_values(frame_b, b.isa)
            except (TransformError, MetadataError):
                return False
            if values_a != values_b:
                return False
        return True
