"""A migratable virtual machine: execution migration made literal.

The rest of :mod:`repro.popcorn` transforms *snapshots*; this module
closes the loop. :class:`MigratableVM` executes a small register-based
IR whose variables are stored **in the ISA-encoded frame layout** —
raw 8-byte register/stack slots laid out by the same allocator the
compiler uses. Every read and write of a variable goes through the
current ISA's location map, so when a thread migrates at a migration
point (state transformed x86-64 <-> AArch64 mid-execution), any
transformation bug corrupts the subsequent computation. Tests run real
programs (factorial, gcd, heap array sums) under arbitrary migration
schedules and demand bit-identical results to an unmigrated run — the
paper's transparency guarantee, demonstrated end-to-end.

The IR deliberately mirrors what Xar-Trek supports: self-contained
functions, calls at function boundaries, explicit migration points
(inserted where "the program has equivalent memory state across ISAs"),
and flat shared memory for heap data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.popcorn.migration_points import (
    CType,
    LivenessMetadata,
    MigrationPoint,
    RegisterLoc,
    StackLoc,
    allocate_locations,
)
from repro.popcorn.state import Frame, MachineState, StateTransformer

__all__ = [
    "VMError",
    "Instr",
    "Const",
    "BinOp",
    "Load",
    "Store",
    "Jump",
    "Branch",
    "Call",
    "Ret",
    "MigrationPointInstr",
    "Function",
    "Program",
    "compile_program",
    "instrument_program",
    "MigratableVM",
]


class VMError(Exception):
    """Raised for ill-formed programs or run-time faults."""


# -- the IR -------------------------------------------------------------------
class Instr:
    """Base class for IR instructions."""


@dataclass(frozen=True)
class Const(Instr):
    """``dst = value``"""

    dst: str
    value: Any


@dataclass(frozen=True)
class BinOp(Instr):
    """``dst = a <op> b``; operands are variable names."""

    op: str  # add sub mul div mod eq ne lt le gt ge
    dst: str
    a: str
    b: str


@dataclass(frozen=True)
class Load(Instr):
    """``dst = heap[addr_var + offset]`` (one 8-byte word)."""

    dst: str
    addr_var: str
    offset: int = 0


@dataclass(frozen=True)
class Store(Instr):
    """``heap[addr_var + offset] = src``."""

    src: str
    addr_var: str
    offset: int = 0


@dataclass(frozen=True)
class Jump(Instr):
    label: str


@dataclass(frozen=True)
class Branch(Instr):
    """Jump to ``label`` when ``cond_var`` is non-zero."""

    cond_var: str
    label: str


@dataclass(frozen=True)
class Call(Instr):
    """``dst = function(args...)``; args are caller variable names."""

    dst: str
    function: str
    args: tuple[str, ...] = ()


@dataclass(frozen=True)
class Ret(Instr):
    var: Optional[str] = None


@dataclass(frozen=True)
class MigrationPointInstr(Instr):
    """A cross-ISA-equivalent location; the hook may migrate here."""

    tag: str = ""


@dataclass
class Function:
    """One self-contained IR function.

    ``variables`` declares every local (params first) with its C type;
    the compiler allocates each a per-ISA register/stack location.
    """

    name: str
    params: tuple[str, ...]
    variables: tuple[tuple[str, str], ...]  # (name, ctype), params included
    body: tuple[Instr, ...]
    labels: dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        declared = [name for name, _ in self.variables]
        if len(set(declared)) != len(declared):
            raise VMError(f"{self.name}: duplicate variable declarations")
        missing = [p for p in self.params if p not in declared]
        if missing:
            raise VMError(f"{self.name}: params not declared: {missing}")


@dataclass
class Program:
    """A set of functions with a designated entry point."""

    functions: dict[str, Function]
    entry: str

    def __post_init__(self):
        if self.entry not in self.functions:
            raise VMError(f"entry function {self.entry!r} not defined")

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise VMError(f"undefined function {name!r}") from None


# -- compilation: labels, migration points, liveness -----------------------------
@dataclass(frozen=True)
class CompiledProgram:
    """A program plus its liveness metadata and per-function points."""

    program: Program
    metadata: LivenessMetadata
    #: (function, pc) -> migration point, for the VM's hook.
    points_at: dict[tuple[str, int], MigrationPoint]
    #: Migration point representing each function's entry (for frames
    #: created by Call).
    entry_points: dict[str, MigrationPoint]


def instrument_program(program: Program, selected: Iterable[str]) -> Program:
    """Compiler step B at the IR level: insert migration points.

    For each *selected* function (the ones the profiling step marked
    for cross-target execution), a :class:`MigrationPointInstr` is
    inserted at entry and before every ``Ret`` — the function-boundary
    points where memory state is cross-ISA equivalent (Section 3.1).
    Functions that already start with a migration point are left alone;
    ``@pc`` jump targets are re-pointed across the insertions.

    Jump targets keep addressing their original instruction, so a
    branch that jumps *directly to* a ``Ret`` bypasses that return's
    guard point (it still passed the entry point). This mirrors
    instrumentation at statement granularity; exhaustive per-edge
    points would need a control-flow-graph pass.
    """
    selected = set(selected)
    unknown = selected - set(program.functions)
    if unknown:
        raise VMError(f"cannot instrument undefined functions: {sorted(unknown)}")

    new_functions: dict[str, Function] = {}
    for name, fn in program.functions.items():
        if name not in selected or (
            fn.body and isinstance(fn.body[0], MigrationPointInstr)
        ):
            new_functions[name] = fn
            continue
        # Insertion positions in the OLD body: entry (0) + before Rets.
        insert_before = [0] + [
            pc for pc, instr in enumerate(fn.body) if isinstance(instr, Ret)
        ]
        # old pc -> new pc mapping.
        shift = [0] * (len(fn.body) + 1)
        bump = 0
        for pc in range(len(fn.body) + 1):
            bump += insert_before.count(pc)
            shift[pc] = pc + bump
        new_body: list[Instr] = []
        for pc, instr in enumerate(fn.body):
            if pc in insert_before:
                tag = "entry" if pc == 0 else "return"
                new_body.append(MigrationPointInstr(tag))
            if isinstance(instr, (Jump, Branch)) and instr.label.startswith("@"):
                target = shift[int(instr.label[1:])]
                instr = (
                    Jump(f"@{target}")
                    if isinstance(instr, Jump)
                    else Branch(instr.cond_var, f"@{target}")
                )
            new_body.append(instr)
        new_functions[name] = Function(
            name=fn.name,
            params=fn.params,
            variables=fn.variables,
            body=tuple(new_body),
            labels={label: shift[pc] for label, pc in fn.labels.items()},
        )
    return Program(functions=new_functions, entry=program.entry)


def compile_program(program: Program) -> CompiledProgram:
    """Resolve labels and emit liveness metadata.

    All declared variables are treated as live at every migration point
    (a conservative liveness analysis — exactly what lets the VM store
    variables in the point's layout at all times).
    """
    points: list[MigrationPoint] = []
    points_at: dict[tuple[str, int], MigrationPoint] = {}
    entry_points: dict[str, MigrationPoint] = {}
    next_id = 1
    for fn in program.functions.values():
        # Jump/Branch targets are either "@<pc>" literals or names the
        # function pre-declared in ``fn.labels``; both resolve lazily in
        # the VM, so compilation only validates named labels here.
        for instr in fn.body:
            if isinstance(instr, (Jump, Branch)):
                label = instr.label
                if not label.startswith("@") and label not in fn.labels:
                    raise VMError(f"{fn.name}: undefined label {label!r}")
        live_vars = tuple(allocate_locations(list(fn.variables)))
        entry = MigrationPoint(
            point_id=next_id, function=fn.name, offset=0, live_vars=live_vars
        )
        next_id += 1
        points.append(entry)
        entry_points[fn.name] = entry
        for pc, instr in enumerate(fn.body):
            if isinstance(instr, MigrationPointInstr):
                point = MigrationPoint(
                    point_id=next_id,
                    function=fn.name,
                    offset=pc,
                    live_vars=live_vars,
                )
                next_id += 1
                points.append(point)
                points_at[(fn.name, pc)] = point
    return CompiledProgram(
        program=program,
        metadata=LivenessMetadata(points),
        points_at=points_at,
        entry_points=entry_points,
    )


# -- the VM ------------------------------------------------------------------
_INT_OPS: dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a // b if b else _raise_div(),
    "mod": lambda a, b: a % b if b else _raise_div(),
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
}


def _raise_div():
    raise VMError("division by zero")


@dataclass
class _Activation:
    """VM bookkeeping per frame (the architectural part lives in Frame)."""

    function: str
    pc: int
    dst_in_caller: Optional[str]  # where Call writes the return value


class MigratableVM:
    """Executes a compiled program over ISA-encoded machine state.

    ``isa`` selects the current layout; :meth:`migrate` re-encodes every
    live frame with the state transformer and continues. The
    ``migration_hook`` is called at every :class:`MigrationPointInstr`
    with ``(vm, function, tag, point)`` and may call ``vm.migrate(...)``.
    """

    def __init__(
        self,
        compiled: CompiledProgram,
        isa: str = "x86_64",
        heap_words: int = 4096,
        migration_hook: Optional[Callable] = None,
        max_steps: int = 1_000_000,
    ):
        self.compiled = compiled
        self.program = compiled.program
        self.transformer = StateTransformer(compiled.metadata)
        self.isa = isa
        self.heap = [0] * heap_words
        self.migration_hook = migration_hook
        self.max_steps = max_steps
        self.steps_executed = 0
        self.migrations = 0
        #: Heap words per "page" for migration-traffic accounting (a
        #: 4 KiB page of 8-byte words).
        self.page_words = 512
        self._dirty_pages: set[int] = set()
        #: Pages whose contents crossed the wire over all migrations —
        #: what the DSM would have moved for this thread.
        self.pages_migrated = 0
        self._frames: list[Frame] = []
        self._activations: list[_Activation] = []
        self._types: dict[str, dict[str, str]] = {
            fn.name: dict(fn.variables) for fn in self.program.functions.values()
        }

    # -- variable access through the ISA layout ------------------------------
    def _locate(self, function: str, var: str):
        point = self.compiled.entry_points[function]
        for live_var in point.live_vars:
            if live_var.name == var:
                return live_var
        raise VMError(f"{function}: undeclared variable {var!r}")

    def read_var(self, var: str) -> Any:
        frame = self._frames[-1]
        live_var = self._locate(frame.function, var)
        loc = live_var.location(self.isa)
        if isinstance(loc, RegisterLoc):
            raw = frame.registers.get(loc.register)
        else:
            assert isinstance(loc, StackLoc)
            raw = frame.stack.get(loc.offset)
        if raw is None:
            raise VMError(f"{frame.function}: read of uninitialized {var!r}")
        return CType.unpack(live_var.ctype, raw)

    def write_var(self, var: str, value: Any) -> None:
        frame = self._frames[-1]
        live_var = self._locate(frame.function, var)
        if not CType.is_float(live_var.ctype):
            value = int(value)
            bits = 32 if live_var.ctype == CType.I32 else 64
            if live_var.ctype != CType.PTR:
                # Wrap to the declared width (C semantics).
                value = (value + (1 << (bits - 1))) % (1 << bits) - (1 << (bits - 1))
            else:
                value %= 1 << 64
        raw = CType.pack(live_var.ctype, value)
        loc = live_var.location(self.isa)
        if isinstance(loc, RegisterLoc):
            frame.registers[loc.register] = raw
        else:
            assert isinstance(loc, StackLoc)
            frame.stack[loc.offset] = raw

    # -- frames -----------------------------------------------------------
    def _push_frame(self, function: str, args: Iterable[Any], dst: Optional[str]):
        fn = self.program.function(function)
        args = list(args)
        if len(args) != len(fn.params):
            raise VMError(
                f"{function}: expected {len(fn.params)} args, got {len(args)}"
            )
        point = self.compiled.entry_points[function]
        frame = Frame(function=function, point_id=point.point_id)
        self._frames.append(frame)
        self._activations.append(_Activation(function, 0, dst))
        for param, value in zip(fn.params, args):
            self.write_var(param, value)
        # Initialize non-param locals to zero so migration metadata can
        # always encode every live slot.
        for name, _ctype in fn.variables:
            if name not in fn.params:
                self.write_var(name, 0)

    # -- migration --------------------------------------------------------
    @property
    def state(self) -> MachineState:
        return MachineState(isa=self.isa, frames=self._frames)

    def migrate(self, to_isa: str) -> None:
        """Re-encode every frame for ``to_isa`` and continue there.

        Also accounts the heap pages dirtied since the last migration:
        in the full system these are the working-set pages the DSM
        pushes to the destination (``pages_migrated`` accumulates what
        would cross the wire).
        """
        if to_isa == self.isa:
            return
        new_state = self.transformer.transform(self.state, to_isa)
        self._frames = new_state.frames
        self.isa = to_isa
        self.migrations += 1
        self.pages_migrated += len(self._dirty_pages)
        self._dirty_pages.clear()

    # -- execution --------------------------------------------------------
    def run(self, *args: Any) -> Any:
        """Execute the entry function with ``args``; returns its result."""
        if self._frames:
            raise VMError("VM already ran; create a fresh instance")
        self._push_frame(self.program.entry, args, dst=None)
        result: Any = None
        while self._activations:
            act = self._activations[-1]
            fn = self.program.function(act.function)
            if act.pc >= len(fn.body):
                raise VMError(f"{fn.name}: fell off the end (missing Ret)")
            self.steps_executed += 1
            if self.steps_executed > self.max_steps:
                raise VMError(f"step budget exceeded ({self.max_steps})")
            instr = fn.body[act.pc]
            act.pc += 1

            if isinstance(instr, Const):
                self.write_var(instr.dst, instr.value)
            elif isinstance(instr, BinOp):
                a = self.read_var(instr.a)
                b = self.read_var(instr.b)
                if instr.op not in _INT_OPS:
                    raise VMError(f"unknown op {instr.op!r}")
                if isinstance(a, float) or isinstance(b, float):
                    value = _float_op(instr.op, a, b)
                else:
                    value = _INT_OPS[instr.op](a, b)
                self.write_var(instr.dst, value)
            elif isinstance(instr, Load):
                address = self.read_var(instr.addr_var) + instr.offset
                self._check_heap(address)
                self.write_var(instr.dst, self.heap[address])
            elif isinstance(instr, Store):
                address = self.read_var(instr.addr_var) + instr.offset
                self._check_heap(address)
                self.heap[address] = self.read_var(instr.src)
                self._dirty_pages.add(address // self.page_words)
            elif isinstance(instr, Jump):
                act.pc = self._label(fn, instr.label)
            elif isinstance(instr, Branch):
                if self.read_var(instr.cond_var):
                    act.pc = self._label(fn, instr.label)
            elif isinstance(instr, Call):
                values = [self.read_var(a) for a in instr.args]
                self._push_frame(instr.function, values, dst=instr.dst)
            elif isinstance(instr, Ret):
                value = self.read_var(instr.var) if instr.var else None
                self._frames.pop()
                finished = self._activations.pop()
                if self._activations:
                    if finished.dst_in_caller is not None:
                        self.write_var(finished.dst_in_caller, value)
                else:
                    result = value
            elif isinstance(instr, MigrationPointInstr):
                point = self.compiled.points_at.get((fn.name, act.pc - 1))
                # Sync frame point_id so a transform here uses this
                # point's (identical) layout.
                if self.migration_hook is not None and point is not None:
                    self.migration_hook(self, fn.name, instr.tag, point)
            else:  # pragma: no cover - closed IR
                raise VMError(f"unknown instruction {instr!r}")
        return result

    def _check_heap(self, address: int) -> None:
        if not 0 <= address < len(self.heap):
            raise VMError(f"heap access out of bounds: {address}")

    @staticmethod
    def _label(fn: Function, label: str) -> int:
        # Labels are "@<pc>" literals (resolved positions) or named
        # entries in fn.labels.
        if label.startswith("@"):
            try:
                target = int(label[1:])
            except ValueError:
                raise VMError(f"{fn.name}: bad label {label!r}") from None
        else:
            if label not in fn.labels:
                raise VMError(f"{fn.name}: undefined label {label!r}")
            target = fn.labels[label]
        if not 0 <= target <= len(fn.body):
            raise VMError(f"{fn.name}: label {label!r} out of range")
        return target


def _float_op(op: str, a: float, b: float) -> float:
    table: dict[str, Callable[[float, float], float]] = {
        "add": lambda x, y: x + y,
        "sub": lambda x, y: x - y,
        "mul": lambda x, y: x * y,
        "div": lambda x, y: x / y,
        "eq": lambda x, y: float(x == y),
        "ne": lambda x, y: float(x != y),
        "lt": lambda x, y: float(x < y),
        "le": lambda x, y: float(x <= y),
        "gt": lambda x, y: float(x > y),
        "ge": lambda x, y: float(x >= y),
    }
    if op not in table:
        raise VMError(f"op {op!r} unsupported for floats")
    return table[op](a, b)
