"""A migratable virtual machine: execution migration made literal.

The rest of :mod:`repro.popcorn` transforms *snapshots*; this module
closes the loop. :class:`MigratableVM` executes a small register-based
IR whose variables are stored **in the ISA-encoded frame layout** —
raw 8-byte register/stack slots laid out by the same allocator the
compiler uses. Every read and write of a variable goes through the
current ISA's location map, so when a thread migrates at a migration
point (state transformed x86-64 <-> AArch64 mid-execution), any
transformation bug corrupts the subsequent computation. Tests run real
programs (factorial, gcd, heap array sums) under arbitrary migration
schedules and demand bit-identical results to an unmigrated run — the
paper's transparency guarantee, demonstrated end-to-end.

The IR deliberately mirrors what Xar-Trek supports: self-contained
functions, calls at function boundaries, explicit migration points
(inserted where "the program has equivalent memory state across ISAs"),
and flat shared memory for heap data.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.popcorn.migration_points import (
    CType,
    LivenessMetadata,
    MigrationPoint,
    RegisterLoc,
    StackLoc,
    allocate_locations,
)
from repro.popcorn.state import Frame, MachineState, StateTransformer

__all__ = [
    "VMError",
    "Instr",
    "Const",
    "BinOp",
    "Load",
    "Store",
    "Jump",
    "Branch",
    "Call",
    "Ret",
    "MigrationPointInstr",
    "Function",
    "Program",
    "compile_program",
    "instrument_program",
    "MigratableVM",
]


class VMError(Exception):
    """Raised for ill-formed programs or run-time faults."""


# -- the IR -------------------------------------------------------------------
class Instr:
    """Base class for IR instructions."""


@dataclass(frozen=True)
class Const(Instr):
    """``dst = value``"""

    dst: str
    value: Any


@dataclass(frozen=True)
class BinOp(Instr):
    """``dst = a <op> b``; operands are variable names."""

    op: str  # add sub mul div mod eq ne lt le gt ge
    dst: str
    a: str
    b: str


@dataclass(frozen=True)
class Load(Instr):
    """``dst = heap[addr_var + offset]`` (one 8-byte word)."""

    dst: str
    addr_var: str
    offset: int = 0


@dataclass(frozen=True)
class Store(Instr):
    """``heap[addr_var + offset] = src``."""

    src: str
    addr_var: str
    offset: int = 0


@dataclass(frozen=True)
class Jump(Instr):
    label: str


@dataclass(frozen=True)
class Branch(Instr):
    """Jump to ``label`` when ``cond_var`` is non-zero."""

    cond_var: str
    label: str


@dataclass(frozen=True)
class Call(Instr):
    """``dst = function(args...)``; args are caller variable names."""

    dst: str
    function: str
    args: tuple[str, ...] = ()


@dataclass(frozen=True)
class Ret(Instr):
    var: Optional[str] = None


@dataclass(frozen=True)
class MigrationPointInstr(Instr):
    """A cross-ISA-equivalent location; the hook may migrate here."""

    tag: str = ""


@dataclass
class Function:
    """One self-contained IR function.

    ``variables`` declares every local (params first) with its C type;
    the compiler allocates each a per-ISA register/stack location.
    """

    name: str
    params: tuple[str, ...]
    variables: tuple[tuple[str, str], ...]  # (name, ctype), params included
    body: tuple[Instr, ...]
    labels: dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        declared = [name for name, _ in self.variables]
        if len(set(declared)) != len(declared):
            raise VMError(f"{self.name}: duplicate variable declarations")
        missing = [p for p in self.params if p not in declared]
        if missing:
            raise VMError(f"{self.name}: params not declared: {missing}")


@dataclass
class Program:
    """A set of functions with a designated entry point."""

    functions: dict[str, Function]
    entry: str

    def __post_init__(self):
        if self.entry not in self.functions:
            raise VMError(f"entry function {self.entry!r} not defined")

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise VMError(f"undefined function {name!r}") from None


# -- compilation: labels, migration points, liveness -----------------------------
@dataclass(frozen=True)
class CompiledProgram:
    """A program plus its liveness metadata and per-function points.

    Beyond the metadata fields, a compiled program carries *threaded
    code*: every IR instruction is compiled to a bound Python closure
    (see :func:`_compile_closures`), so :meth:`MigratableVM.run` is a
    plain ``ops[pc](vm, act)`` loop with no isinstance dispatch. The
    closure table is derived state — it is built eagerly by
    :func:`compile_program`, rebuilt on demand after unpickling, and
    never serialized (closures don't pickle).
    """

    program: Program
    metadata: LivenessMetadata
    #: (function, pc) -> migration point, for the VM's hook.
    points_at: dict[tuple[str, int], MigrationPoint]
    #: Migration point representing each function's entry (for frames
    #: created by Call).
    entry_points: dict[str, MigrationPoint]

    _DERIVED = ("_code", "_var_maps")

    @property
    def code(self) -> dict[str, "_FunctionCode"]:
        """function name -> threaded-code table (lazily rebuilt)."""
        code = self.__dict__.get("_code")
        if code is None:
            code = _compile_closures(self)
            object.__setattr__(self, "_code", code)
        return code

    @property
    def var_maps(self) -> dict[str, dict[str, Any]]:
        """function name -> {var name -> LiveVar} (O(1) lookup maps)."""
        maps = self.__dict__.get("_var_maps")
        if maps is None:
            maps = {
                name: {var.name: var for var in point.live_vars}
                for name, point in self.entry_points.items()
            }
            object.__setattr__(self, "_var_maps", maps)
        return maps

    def __getstate__(self):
        return {
            key: value
            for key, value in self.__dict__.items()
            if key not in self._DERIVED
        }

    def __setstate__(self, state):
        for key, value in state.items():
            object.__setattr__(self, key, value)


def instrument_program(program: Program, selected: Iterable[str]) -> Program:
    """Compiler step B at the IR level: insert migration points.

    For each *selected* function (the ones the profiling step marked
    for cross-target execution), a :class:`MigrationPointInstr` is
    inserted at entry and before every ``Ret`` — the function-boundary
    points where memory state is cross-ISA equivalent (Section 3.1).
    Functions that already start with a migration point are left alone;
    ``@pc`` jump targets are re-pointed across the insertions.

    Jump targets keep addressing their original instruction, so a
    branch that jumps *directly to* a ``Ret`` bypasses that return's
    guard point (it still passed the entry point). This mirrors
    instrumentation at statement granularity; exhaustive per-edge
    points would need a control-flow-graph pass.
    """
    selected = set(selected)
    unknown = selected - set(program.functions)
    if unknown:
        raise VMError(f"cannot instrument undefined functions: {sorted(unknown)}")

    new_functions: dict[str, Function] = {}
    for name, fn in program.functions.items():
        if name not in selected or (
            fn.body and isinstance(fn.body[0], MigrationPointInstr)
        ):
            new_functions[name] = fn
            continue
        # Insertion positions in the OLD body: entry (0) + before Rets.
        insert_before = [0] + [
            pc for pc, instr in enumerate(fn.body) if isinstance(instr, Ret)
        ]
        # old pc -> new pc mapping.
        shift = [0] * (len(fn.body) + 1)
        bump = 0
        for pc in range(len(fn.body) + 1):
            bump += insert_before.count(pc)
            shift[pc] = pc + bump
        new_body: list[Instr] = []
        for pc, instr in enumerate(fn.body):
            if pc in insert_before:
                tag = "entry" if pc == 0 else "return"
                new_body.append(MigrationPointInstr(tag))
            if isinstance(instr, (Jump, Branch)) and instr.label.startswith("@"):
                target = shift[int(instr.label[1:])]
                instr = (
                    Jump(f"@{target}")
                    if isinstance(instr, Jump)
                    else Branch(instr.cond_var, f"@{target}")
                )
            new_body.append(instr)
        new_functions[name] = Function(
            name=fn.name,
            params=fn.params,
            variables=fn.variables,
            body=tuple(new_body),
            labels={label: shift[pc] for label, pc in fn.labels.items()},
        )
    return Program(functions=new_functions, entry=program.entry)


def compile_program(program: Program) -> CompiledProgram:
    """Resolve labels and emit liveness metadata.

    All declared variables are treated as live at every migration point
    (a conservative liveness analysis — exactly what lets the VM store
    variables in the point's layout at all times).
    """
    points: list[MigrationPoint] = []
    points_at: dict[tuple[str, int], MigrationPoint] = {}
    entry_points: dict[str, MigrationPoint] = {}
    next_id = 1
    for fn in program.functions.values():
        # Jump/Branch targets are either "@<pc>" literals or names the
        # function pre-declared in ``fn.labels``; both resolve lazily in
        # the VM, so compilation only validates named labels here.
        for instr in fn.body:
            if isinstance(instr, (Jump, Branch)):
                label = instr.label
                if not label.startswith("@") and label not in fn.labels:
                    raise VMError(f"{fn.name}: undefined label {label!r}")
        live_vars = tuple(allocate_locations(list(fn.variables)))
        entry = MigrationPoint(
            point_id=next_id, function=fn.name, offset=0, live_vars=live_vars
        )
        next_id += 1
        points.append(entry)
        entry_points[fn.name] = entry
        for pc, instr in enumerate(fn.body):
            if isinstance(instr, MigrationPointInstr):
                point = MigrationPoint(
                    point_id=next_id,
                    function=fn.name,
                    offset=pc,
                    live_vars=live_vars,
                )
                next_id += 1
                points.append(point)
                points_at[(fn.name, pc)] = point
    compiled = CompiledProgram(
        program=program,
        metadata=LivenessMetadata(points),
        points_at=points_at,
        entry_points=entry_points,
    )
    compiled.code  # build the threaded-code tables at compile time
    return compiled


# -- closure compilation (threaded code) --------------------------------------
#: Prebound (Struct, pack-to-8-bytes) codecs per C type; byte-identical
#: to CType.pack/unpack, without the per-call table lookups.
_SLOT_STRUCTS: dict[str, struct.Struct] = {
    ctype: struct.Struct(CType._PACK[ctype]) for ctype in CType.ALL
}


def _make_converter(ctype: str):
    """The value-conversion step of ``write_var`` for one C type."""
    if CType.is_float(ctype):
        return lambda value: value
    if ctype == CType.PTR:
        return lambda value: int(value) % (1 << 64)
    bits = 32 if ctype == CType.I32 else 64
    half, span = 1 << (bits - 1), 1 << bits
    return lambda value: (int(value) + half) % span - half


def _make_accessors(function: str, live_var):
    """(read, write, set_raw) closures for one variable.

    Each closure takes ``(frame, isa)`` and memoizes the per-ISA
    register/stack resolution on first use, so steady-state access is
    two dict lookups — no linear scan, no isinstance on Location.
    """
    name = live_var.name
    codec = _SLOT_STRUCTS[live_var.ctype]
    convert = _make_converter(live_var.ctype)
    per_isa: dict[str, tuple[bool, Any]] = {}

    def resolve(isa: str) -> tuple[bool, Any]:
        loc = live_var.location(isa)  # raises MetadataError for bad ISAs
        entry = (
            (True, loc.register)
            if isinstance(loc, RegisterLoc)
            else (False, loc.offset)
        )
        per_isa[isa] = entry
        return entry

    def read(frame, isa):
        is_reg, key = per_isa.get(isa) or resolve(isa)
        raw = (frame.registers if is_reg else frame.stack).get(key)
        if raw is None:
            raise VMError(f"{function}: read of uninitialized {name!r}")
        return codec.unpack_from(raw)[0]

    def write(frame, isa, value):
        is_reg, key = per_isa.get(isa) or resolve(isa)
        raw = codec.pack(convert(value)).ljust(8, b"\x00")
        (frame.registers if is_reg else frame.stack)[key] = raw

    def set_raw(frame, isa, raw):
        is_reg, key = per_isa.get(isa) or resolve(isa)
        (frame.registers if is_reg else frame.stack)[key] = raw

    return read, write, set_raw


class _FunctionCode:
    """Threaded code for one function: op closures plus the frame-push
    prologue (parameter writes + zero-initialized locals)."""

    __slots__ = ("ops", "prologue")


def _raising_op(message: str):
    """An op that defers a compile-detected fault to execution time, so
    malformed-but-unreached instructions keep their original behavior."""

    def op(vm, act):
        raise VMError(message)

    return op


def _resolve_label(fn: Function, label: str) -> int:
    """Resolve "@<pc>" literals or named labels (shared with the VM)."""
    if label.startswith("@"):
        try:
            target = int(label[1:])
        except ValueError:
            raise VMError(f"{fn.name}: bad label {label!r}") from None
    else:
        if label not in fn.labels:
            raise VMError(f"{fn.name}: undefined label {label!r}")
        target = fn.labels[label]
    if not 0 <= target <= len(fn.body):
        raise VMError(f"{fn.name}: label {label!r} out of range")
    return target


def _make_prologue(fn: Function, acc: dict, point_id: int, fn_code: _FunctionCode):
    """Frame-push closure: arity check, param writes, zeroed locals."""
    fname = fn.name
    nparams = len(fn.params)
    param_writers = tuple(acc[param][1] for param in fn.params)
    zero_inits = tuple(
        (
            acc[name][2],
            _SLOT_STRUCTS[ctype].pack(_make_converter(ctype)(0)).ljust(8, b"\x00"),
        )
        for name, ctype in fn.variables
        if name not in fn.params
    )

    def prologue(vm, args, dst_name, dst_writer):
        if len(args) != nparams:
            raise VMError(f"{fname}: expected {nparams} args, got {len(args)}")
        frame = Frame(function=fname, point_id=point_id)
        isa = vm.isa
        vm._frames.append(frame)
        vm._activations.append(
            _Activation(fname, 0, dst_name, dst_writer, fn_code.ops)
        )
        for writer, value in zip(param_writers, args):
            writer(frame, isa, value)
        for set_raw, raw_zero in zero_inits:
            set_raw(frame, isa, raw_zero)

    return prologue


def _compile_instr(compiled: CompiledProgram, fn: Function, pc: int, instr, acc, code):
    """One IR instruction -> one ``op(vm, act)`` closure.

    Fault cases (undeclared variables, unknown ops, bad labels, bad
    callees) compile to closures raising the interpreter's exact
    errors at the same execution point they used to surface.
    """
    fname = fn.name

    def lookup(var: str):
        try:
            return acc[var]
        except KeyError:
            return None

    def undeclared(var: str):
        return _raising_op(f"{fname}: undeclared variable {var!r}")

    if isinstance(instr, Const):
        dst = lookup(instr.dst)
        if dst is None:
            return undeclared(instr.dst)
        _read, write, set_raw = dst
        try:
            live_var = compiled.var_maps[fname][instr.dst]
            raw = (
                _SLOT_STRUCTS[live_var.ctype]
                .pack(_make_converter(live_var.ctype)(instr.value))
                .ljust(8, b"\x00")
            )
        except Exception:
            # Unencodable constant: keep converting at execution time so
            # the original exception surfaces when (and only when) the
            # instruction runs.
            value = instr.value

            def op(vm, act):
                write(vm._frames[-1], vm.isa, value)

            return op

        def op(vm, act):
            set_raw(vm._frames[-1], vm.isa, raw)

        return op

    if isinstance(instr, BinOp):
        a_acc, b_acc, dst_acc = lookup(instr.a), lookup(instr.b), lookup(instr.dst)
        if a_acc is None:
            return undeclared(instr.a)
        if b_acc is None:
            return undeclared(instr.b)
        read_a, read_b = a_acc[0], b_acc[0]
        op_name = instr.op
        if op_name not in _INT_OPS:
            # The interpreter read both operands before rejecting the op.
            def op(vm, act):
                frame = vm._frames[-1]
                read_a(frame, vm.isa)
                read_b(frame, vm.isa)
                raise VMError(f"unknown op {op_name!r}")

            return op
        if dst_acc is None:
            def op(vm, act):
                frame = vm._frames[-1]
                read_a(frame, vm.isa)
                read_b(frame, vm.isa)
                raise VMError(f"{fname}: undeclared variable {instr.dst!r}")

            return op
        int_op = _INT_OPS[op_name]
        write_dst = dst_acc[1]

        def op(vm, act):
            frame = vm._frames[-1]
            isa = vm.isa
            a = read_a(frame, isa)
            b = read_b(frame, isa)
            if isinstance(a, float) or isinstance(b, float):
                value = _float_op(op_name, a, b)
            else:
                value = int_op(a, b)
            write_dst(frame, isa, value)

        return op

    if isinstance(instr, Load):
        addr_acc, dst_acc = lookup(instr.addr_var), lookup(instr.dst)
        if addr_acc is None:
            return undeclared(instr.addr_var)
        read_addr = addr_acc[0]
        offset = instr.offset
        if dst_acc is None:
            def op(vm, act):
                address = read_addr(vm._frames[-1], vm.isa) + offset
                vm._check_heap(address)
                raise VMError(f"{fname}: undeclared variable {instr.dst!r}")

            return op
        write_dst = dst_acc[1]

        def op(vm, act):
            frame = vm._frames[-1]
            isa = vm.isa
            address = read_addr(frame, isa) + offset
            if not 0 <= address < len(vm.heap):
                raise VMError(f"heap access out of bounds: {address}")
            write_dst(frame, isa, vm.heap[address])

        return op

    if isinstance(instr, Store):
        addr_acc, src_acc = lookup(instr.addr_var), lookup(instr.src)
        if addr_acc is None:
            return undeclared(instr.addr_var)
        read_addr = addr_acc[0]
        offset = instr.offset
        if src_acc is None:
            def op(vm, act):
                address = read_addr(vm._frames[-1], vm.isa) + offset
                vm._check_heap(address)
                raise VMError(f"{fname}: undeclared variable {instr.src!r}")

            return op
        read_src = src_acc[0]

        def op(vm, act):
            frame = vm._frames[-1]
            isa = vm.isa
            address = read_addr(frame, isa) + offset
            if not 0 <= address < len(vm.heap):
                raise VMError(f"heap access out of bounds: {address}")
            vm.heap[address] = read_src(frame, isa)
            vm._dirty_pages.add(address // vm.page_words)

        return op

    if isinstance(instr, Jump):
        try:
            target = _resolve_label(fn, instr.label)
        except VMError as exc:
            return _raising_op(str(exc))

        def op(vm, act):
            act.pc = target

        return op

    if isinstance(instr, Branch):
        cond_acc = lookup(instr.cond_var)
        if cond_acc is None:
            return undeclared(instr.cond_var)
        read_cond = cond_acc[0]
        try:
            target = _resolve_label(fn, instr.label)
        except VMError as exc:
            message = str(exc)
            # The interpreter resolved the label only on a taken branch.
            def op(vm, act):
                if read_cond(vm._frames[-1], vm.isa):
                    raise VMError(message)

            return op

        def op(vm, act):
            if read_cond(vm._frames[-1], vm.isa):
                act.pc = target

        return op

    if isinstance(instr, Call):
        readers = []
        for arg in instr.args:
            arg_acc = lookup(arg)
            if arg_acc is None:
                return undeclared(arg)
            readers.append(arg_acc[0])
        readers = tuple(readers)
        callee_code = code.get(instr.function)
        if callee_code is None:
            return _raising_op(f"undefined function {instr.function!r}")
        dst = instr.dst
        dst_acc = lookup(dst)
        if dst_acc is not None:
            dst_writer = dst_acc[1]
        else:
            # Surfaces when the callee returns, as before.
            def dst_writer(frame, isa, value):
                raise VMError(f"{fname}: undeclared variable {dst!r}")

        def op(vm, act):
            frame = vm._frames[-1]
            isa = vm.isa
            values = [read(frame, isa) for read in readers]
            callee_code.prologue(vm, values, dst, dst_writer)

        return op

    if isinstance(instr, Ret):
        read_ret = None
        if instr.var:
            ret_acc = lookup(instr.var)
            if ret_acc is None:
                return undeclared(instr.var)
            read_ret = ret_acc[0]

        def op(vm, act):
            value = (
                read_ret(vm._frames[-1], vm.isa) if read_ret is not None else None
            )
            vm._frames.pop()
            finished = vm._activations.pop()
            if vm._activations:
                writer = finished.dst_writer
                if writer is not None:
                    writer(vm._frames[-1], vm.isa, value)
            else:
                vm._result = value

        return op

    if isinstance(instr, MigrationPointInstr):
        point = compiled.points_at.get((fname, pc))
        tag = instr.tag

        def op(vm, act):
            hook = vm.migration_hook
            if hook is not None and point is not None:
                hook(vm, fname, tag, point)

        return op

    return _raising_op(f"unknown instruction {instr!r}")  # pragma: no cover


def _compile_closures(compiled: CompiledProgram) -> dict[str, _FunctionCode]:
    """Build the threaded-code tables for every function.

    Two passes: accessors and prologues first (so Call closures can
    bind their callee's prologue directly), then instruction bodies.
    """
    program = compiled.program
    accessors: dict[str, dict] = {}
    code: dict[str, _FunctionCode] = {}
    for name, fn in program.functions.items():
        point = compiled.entry_points[name]
        acc = {var.name: _make_accessors(name, var) for var in point.live_vars}
        accessors[name] = acc
        fn_code = _FunctionCode()
        fn_code.prologue = _make_prologue(fn, acc, point.point_id, fn_code)
        code[name] = fn_code
    for name, fn in program.functions.items():
        code[name].ops = tuple(
            _compile_instr(compiled, fn, pc, instr, accessors[name], code)
            for pc, instr in enumerate(fn.body)
        )
    return code


# -- the VM ------------------------------------------------------------------
_INT_OPS: dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a // b if b else _raise_div(),
    "mod": lambda a, b: a % b if b else _raise_div(),
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
}


def _raise_div():
    raise VMError("division by zero")


@dataclass
class _Activation:
    """VM bookkeeping per frame (the architectural part lives in Frame)."""

    function: str
    pc: int
    dst_in_caller: Optional[str]  # where Call writes the return value
    #: Bound writer for ``dst_in_caller`` (compiled by the Call site).
    dst_writer: Optional[Callable] = None
    #: This function's threaded-code table (set by the prologue).
    ops: tuple = ()


class MigratableVM:
    """Executes a compiled program over ISA-encoded machine state.

    ``isa`` selects the current layout; :meth:`migrate` re-encodes every
    live frame with the state transformer and continues. The
    ``migration_hook`` is called at every :class:`MigrationPointInstr`
    with ``(vm, function, tag, point)`` and may call ``vm.migrate(...)``.
    """

    def __init__(
        self,
        compiled: CompiledProgram,
        isa: str = "x86_64",
        heap_words: int = 4096,
        migration_hook: Optional[Callable] = None,
        max_steps: int = 1_000_000,
    ):
        self.compiled = compiled
        self.program = compiled.program
        self.transformer = StateTransformer(compiled.metadata)
        self.isa = isa
        self.heap = [0] * heap_words
        self.migration_hook = migration_hook
        self.max_steps = max_steps
        self.steps_executed = 0
        self.migrations = 0
        #: Heap words per "page" for migration-traffic accounting (a
        #: 4 KiB page of 8-byte words).
        self.page_words = 512
        self._dirty_pages: set[int] = set()
        #: Pages whose contents crossed the wire over all migrations —
        #: what the DSM would have moved for this thread.
        self.pages_migrated = 0
        self._frames: list[Frame] = []
        self._activations: list[_Activation] = []
        self._result: Any = None
        self._types: dict[str, dict[str, str]] = {
            fn.name: dict(fn.variables) for fn in self.program.functions.values()
        }

    # -- variable access through the ISA layout ------------------------------
    def _locate(self, function: str, var: str):
        try:
            return self.compiled.var_maps[function][var]
        except KeyError:
            raise VMError(f"{function}: undeclared variable {var!r}") from None

    def read_var(self, var: str) -> Any:
        frame = self._frames[-1]
        live_var = self._locate(frame.function, var)
        loc = live_var.location(self.isa)
        if isinstance(loc, RegisterLoc):
            raw = frame.registers.get(loc.register)
        else:
            assert isinstance(loc, StackLoc)
            raw = frame.stack.get(loc.offset)
        if raw is None:
            raise VMError(f"{frame.function}: read of uninitialized {var!r}")
        return CType.unpack(live_var.ctype, raw)

    def write_var(self, var: str, value: Any) -> None:
        frame = self._frames[-1]
        live_var = self._locate(frame.function, var)
        if not CType.is_float(live_var.ctype):
            value = int(value)
            bits = 32 if live_var.ctype == CType.I32 else 64
            if live_var.ctype != CType.PTR:
                # Wrap to the declared width (C semantics).
                value = (value + (1 << (bits - 1))) % (1 << bits) - (1 << (bits - 1))
            else:
                value %= 1 << 64
        raw = CType.pack(live_var.ctype, value)
        loc = live_var.location(self.isa)
        if isinstance(loc, RegisterLoc):
            frame.registers[loc.register] = raw
        else:
            assert isinstance(loc, StackLoc)
            frame.stack[loc.offset] = raw

    # -- frames -----------------------------------------------------------
    def _push_frame(self, function: str, args: Iterable[Any], dst: Optional[str]):
        try:
            fn_code = self.compiled.code[function]
        except KeyError:
            raise VMError(f"undefined function {function!r}") from None
        dst_writer = None
        if dst is not None:
            def dst_writer(_frame, _isa, value):
                self.write_var(dst, value)

        fn_code.prologue(self, list(args), dst, dst_writer)

    # -- migration --------------------------------------------------------
    @property
    def state(self) -> MachineState:
        return MachineState(isa=self.isa, frames=self._frames)

    def migrate(self, to_isa: str) -> None:
        """Re-encode every frame for ``to_isa`` and continue there.

        Also accounts the heap pages dirtied since the last migration:
        in the full system these are the working-set pages the DSM
        pushes to the destination (``pages_migrated`` accumulates what
        would cross the wire).
        """
        if to_isa == self.isa:
            return
        new_state = self.transformer.transform(self.state, to_isa)
        self._frames = new_state.frames
        self.isa = to_isa
        self.migrations += 1
        self.pages_migrated += len(self._dirty_pages)
        self._dirty_pages.clear()

    # -- execution --------------------------------------------------------
    def run(self, *args: Any) -> Any:
        """Execute the entry function with ``args``; returns its result.

        Threaded-code dispatch: each iteration calls the closure the
        compiler bound for the current instruction — no isinstance
        chain, no per-access location scan.
        """
        if self._frames:
            raise VMError("VM already ran; create a fresh instance")
        self._result = None
        self._push_frame(self.program.entry, args, dst=None)
        activations = self._activations
        max_steps = self.max_steps
        steps = self.steps_executed
        while activations:
            act = activations[-1]
            ops = act.ops
            pc = act.pc
            if pc >= len(ops):
                raise VMError(f"{act.function}: fell off the end (missing Ret)")
            steps += 1
            if steps > max_steps:
                self.steps_executed = steps
                raise VMError(f"step budget exceeded ({max_steps})")
            self.steps_executed = steps
            act.pc = pc + 1
            ops[pc](self, act)
        return self._result

    def _check_heap(self, address: int) -> None:
        if not 0 <= address < len(self.heap):
            raise VMError(f"heap access out of bounds: {address}")

    @staticmethod
    def _label(fn: Function, label: str) -> int:
        # Labels are "@<pc>" literals (resolved positions) or named
        # entries in fn.labels.
        return _resolve_label(fn, label)


def _float_op(op: str, a: float, b: float) -> float:
    table: dict[str, Callable[[float, float], float]] = {
        "add": lambda x, y: x + y,
        "sub": lambda x, y: x - y,
        "mul": lambda x, y: x * y,
        "div": lambda x, y: x / y,
        "eq": lambda x, y: float(x == y),
        "ne": lambda x, y: float(x != y),
        "lt": lambda x, y: float(x < y),
        "le": lambda x, y: float(x <= y),
        "gt": lambda x, y: float(x > y),
        "ge": lambda x, y: float(x >= y),
    }
    if op not in table:
        raise VMError(f"op {op!r} unsupported for floats")
    return table[op](a, b)
